//! Distributed data-structure services layered over the Photon runtime.
//!
//! The paper positions Photon as middleware *for runtime systems*: the
//! point of exposing RDMA put/get/atomics and typed invocations is that
//! higher-level services get built from them. This crate is that layer for
//! two structures HPX-5-class runtimes lean on:
//!
//! * [`Dht`] — a hash table sharded across ranks by key hash. Fixed-size
//!   buckets live in registered memory, so remote ranks can read and write
//!   them **one-sided** (seqlock-versioned buckets, locked with remote
//!   compare-and-swap) with zero owner involvement — or go through the
//!   owner with **RPC** methods (`dht.get`/`dht.put`/`dht.cas`). Both paths
//!   honour the same bucket locking protocol, so they interleave safely.
//! * [`DQueue`] — a multi-producer single-consumer queue whose ring lives
//!   on one owner rank. Producers claim slot tickets with remote CAS and
//!   publish payloads one-sided, or push via RPC (`dq.push`); the owner
//!   pops locally, remote ranks pop via RPC (`dq.pop`).
//!
//! The two paths exist because their cost crossover is the interesting
//! systems question (measured in `photon-bench` experiment E20): one-sided
//! operations skip the owner's scheduler but pay multiple round trips for
//! lock/publish protocols; RPC pays scheduling and handler dispatch but
//! moves each datum in one round trip and can use owner-local spill storage
//! for values larger than a bucket.
//!
//! Mutating operations that are not idempotent (`dht.cas`, `dq.push`,
//! `dq.pop`) ride the RPC layer's at-most-once delivery; idempotent ones
//! (`dht.get`, last-write-wins `dht.put`) use at-least-once, which is
//! cheaper under retry storms.
//!
//! Like the KV exemplar, method names are compile-time constants: create at
//! most **one** `Dht` and one `DQueue` per cluster.

#![warn(missing_docs)]

pub mod dht;
pub mod queue;

pub use dht::{Dht, DhtConfig};
pub use queue::{DQueue, DQueueConfig};

use photon_runtime::RtError;

/// Which mechanism an operation should use to reach the owning rank.
///
/// Operations on data the calling rank itself owns short-circuit to plain
/// local memory access under either path (the shared-memory shortcut every
/// real deployment also takes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Direct RDMA put/get/CAS against the owner's registered region; no
    /// owner CPU involvement.
    OneSided,
    /// A typed invocation executed by the owner (rides the parcel
    /// scheduler).
    Rpc,
}

/// Typed failures of the data-structure layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsError {
    /// The key's bounded probe window holds only other keys: the table is
    /// (locally) full. Grow `buckets_per_rank` or `probe_len`.
    Full,
    /// Key empty or longer than the structure's `key_max`.
    BadKey {
        /// Offered key length.
        len: usize,
        /// Structure's configured maximum.
        max: usize,
    },
    /// A bucket or ticket stayed contended/locked past the retry budget.
    /// With live peers this is transient back-pressure; after a peer crash
    /// it can be permanent for buckets whose lock died with the peer (see
    /// DESIGN.md, "Data-structure layer" — the known seqlock limitation).
    Unavailable(&'static str),
    /// The queue ring is at capacity.
    QueueFull,
    /// Transport or invocation failure (peer dead, RPC timeout, ...).
    Rt(RtError),
}

impl std::fmt::Display for DsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsError::Full => write!(f, "hash table probe window full"),
            DsError::BadKey { len, max } => write!(f, "bad key: len {len} (max {max}, min 1)"),
            DsError::Unavailable(what) => write!(f, "unavailable: {what}"),
            DsError::QueueFull => write!(f, "queue at capacity"),
            DsError::Rt(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for DsError {}

impl From<RtError> for DsError {
    fn from(e: RtError) -> DsError {
        DsError::Rt(e)
    }
}

impl From<photon_core::PhotonError> for DsError {
    fn from(e: photon_core::PhotonError) -> DsError {
        DsError::Rt(RtError::Photon(e))
    }
}

/// Result alias for data-structure operations.
pub type DsResult<T> = std::result::Result<T, DsError>;

// Status codes carried in RPC replies of the ds methods (`u8` on the wire).
// Handler-level verdicts, distinct from the RPC layer's own status byte:
// these describe the data structure's answer, not the invocation's fate.
pub(crate) const DS_OK: u8 = 0;
pub(crate) const DS_FULL: u8 = 1;
pub(crate) const DS_BAD_KEY: u8 = 2;
pub(crate) const DS_UNAVAILABLE: u8 = 3;
pub(crate) const DS_MISMATCH: u8 = 4;
pub(crate) const DS_QUEUE_FULL: u8 = 5;

photon_core::counter_registry! {
    /// Atomic operation counters for one data-structure instance
    /// (cluster-wide totals; see [`DsStats`]).
    registry DsCounters;
    /// Operation statistics for one data-structure instance.
    snapshot DsStats;
    table DS_COUNTERS;
    counters {
        /// DHT get operations started (any path).
        dht_gets,
        /// DHT put operations started (any path).
        dht_puts,
        /// DHT compare-and-set operations started.
        dht_cas,
        /// One-sided DHT operations that fell back to the RPC path
        /// (locked bucket past the retry budget, or a spilled value).
        dht_rpc_fallbacks,
        /// Values stored in owner-side spill maps instead of inline
        /// bucket bytes (larger than `val_max`).
        dht_spills,
        /// Bucket lock acquisitions that lost a CAS race and re-read.
        dht_lock_conflicts,
        /// Queue push operations started (any path).
        dq_pushes,
        /// Queue pop operations started.
        dq_pops,
        /// One-sided pushes that fell back to the RPC path (oversized
        /// payload or ticket contention past the retry budget).
        dq_rpc_fallbacks,
        /// Push attempts rejected because the ring was full.
        dq_full,
    }
}
