//! A hash table sharded across ranks, with one-sided and RPC access paths.
//!
//! # Sharding and bucket layout
//!
//! A key hashes (FNV-1a) to an owning rank; a second mix picks its home
//! bucket inside the owner's registered region. Collisions probe linearly
//! through a bounded window of `probe_len` buckets (there are no deletes,
//! so the first empty bucket terminates every lookup). Each bucket is a
//! fixed-size slot:
//!
//! ```text
//! [ version u64 | key hash u64 | key_len|val_len u64 | key bytes | val bytes ]
//! ```
//!
//! The version word is a **seqlock**: even = stable, odd = locked by a
//! writer. Writers acquire it with compare-and-swap (`v -> v+1`), write the
//! payload fields, and release with `v+2`. Because remote atomics and RDMA
//! reads/writes serialize on the simulated region, a successful CAS from
//! version `v` proves the bucket still holds exactly the content read at
//! `v` — writers never need to re-read after locking.
//!
//! # The two paths
//!
//! *One-sided* readers issue a single RDMA read of the whole slot and
//! accept it if the version is even. (The simulated fabric makes that read
//! an atomic snapshot; production hardware would re-read the version word
//! after the payload, which costs one more round trip.) One-sided writers
//! run the CAS/put/release protocol above — three round trips, but zero
//! owner CPU. *RPC* operations execute at the owner under the **same**
//! version protocol (via local CAS on the region), so the two paths
//! interleave safely; the owner additionally keeps a heap *spill map* for
//! values too large for the inline `val_max` bytes — a bucket then stores
//! the sentinel length [`SPILL`] and one-sided readers bounce to RPC.
//!
//! Value compare-and-set is owner-only (RPC, at-most-once): emulating it
//! one-sided would need a multi-word atomic the fabric does not have.
//!
//! # Failure semantics
//!
//! A writer that crashes while holding a bucket lock leaves the version
//! word odd forever; operations on that bucket exhaust their retry budget
//! and resolve as [`DsError::Unavailable`] (the documented seqlock
//! limitation — leases would fix it at the cost of a clock contract).
//! Operations on keys owned by a dead rank resolve as typed transport
//! errors from the health machine.

use crate::{
    AccessPath, DsCounters, DsError, DsResult, DsStats, DS_BAD_KEY, DS_FULL, DS_MISMATCH, DS_OK,
    DS_UNAVAILABLE,
};
use parking_lot::Mutex;
use photon_core::buffers::BufferDescriptor;
use photon_core::layout::{Layout, SlotRegion};
use photon_core::{KeyedLatency, PhotonBuffer, Rank};
use photon_runtime::rpc::RpcMethod;
use photon_runtime::{RpcClient, RpcOptions, RtNode, RuntimeCluster};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel `val_len` marking a value stored in the owner's spill map
/// instead of inline bucket bytes.
pub const SPILL: u32 = u32::MAX;

/// Wall-clock pause between retries of a locked bucket (the lock holder is
/// mid-protocol; its remaining round trips complete in simulated-fabric
/// wall time, so micro-sleeps beat busy spinning).
const LOCK_PAUSE: Duration = Duration::from_micros(50);

/// Configuration of a [`Dht`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhtConfig {
    /// Buckets per owning rank (total capacity ≈ `n * buckets_per_rank`,
    /// degraded by probe-window clustering).
    pub buckets_per_rank: usize,
    /// Maximum key length in bytes (keys are stored inline).
    pub key_max: usize,
    /// Maximum *inline* value length; larger values spill to the owner's
    /// heap and always travel by RPC.
    pub val_max: usize,
    /// Linear-probe window: how many buckets a key may displace before the
    /// table reports [`DsError::Full`].
    pub probe_len: usize,
    /// Retry budget for locked buckets and lost CAS races before an
    /// operation falls back (one-sided → RPC) or resolves
    /// [`DsError::Unavailable`].
    pub lock_retries: usize,
    /// Modeled owner-CPU cost of dispatching one RPC handler, nanoseconds,
    /// charged to the owner's *virtual* clock per handled request (plus a
    /// per-byte memcpy term). This is the middleware trade-off the paper
    /// turns on: a one-sided op is pure NIC work at the target, while an
    /// RPC op occupies the owner's scheduler and handler — so under load
    /// RPC replies carry queueing delay, which Lamport clock propagation
    /// surfaces in every client's virtual time. Zero disables the charge.
    pub handler_ns: u64,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            buckets_per_rank: 1024,
            key_max: 32,
            val_max: 64,
            probe_len: 8,
            lock_retries: 256,
            handler_ns: 2_000,
        }
    }
}

/// Byte offsets of one bucket's fields (see the module docs for the
/// layout).
#[derive(Debug, Clone, Copy)]
struct BucketLayout {
    ver: usize,
    hash: usize,
    meta: usize,
    key: usize,
    val: usize,
}

impl BucketLayout {
    fn new(cfg: &DhtConfig) -> (BucketLayout, usize) {
        let mut l = Layout::new();
        let lay = BucketLayout {
            ver: l.field(8),
            hash: l.field(8),
            meta: l.field(8),
            key: l.field(cfg.key_max),
            val: l.field(cfg.val_max),
        };
        (lay, l.size())
    }
}

fn pack_meta(key_len: usize, val_len: u32) -> u64 {
    key_len as u64 | (val_len as u64) << 32
}

fn unpack_meta(meta: u64) -> (usize, u32) {
    ((meta & 0xffff_ffff) as usize, (meta >> 32) as u32)
}

/// FNV-1a 64-bit over the key: picks the owning rank.
fn hash_key(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the bucket index from the rank
/// choice (both derive from the same hash).
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// What a consistent bucket snapshot showed.
#[derive(Debug, PartialEq, Eq)]
enum Slot {
    /// Never written.
    Empty,
    /// Holds `key` with inline value bytes.
    Inline(Vec<u8>),
    /// Holds `key`; the value lives in the owner's spill map.
    Spilled,
    /// Holds a different key.
    Other,
}

/// Interned latency keys, one per (operation, path).
#[derive(Debug, Clone, Copy)]
struct LatKeys {
    get_os: usize,
    get_rpc: usize,
    get_loc: usize,
    put_os: usize,
    put_rpc: usize,
    put_loc: usize,
    cas_rpc: usize,
    cas_loc: usize,
}

/// State shared by the client handle and every rank's RPC handlers. Holds
/// no runtime references, so handler registration creates no `Arc` cycle
/// back into the nodes.
struct Shared {
    cfg: DhtConfig,
    lay: BucketLayout,
    slot: SlotRegion,
    n: usize,
    /// Per-rank bucket regions (index = owning rank).
    regions: Vec<PhotonBuffer>,
    /// Remote descriptors of `regions`, for the one-sided path.
    descs: Vec<BufferDescriptor>,
    /// Per-rank spill maps for values larger than `val_max`. Mutated only
    /// while holding the key's bucket lock, so a bucket snapshot plus an
    /// unchanged version word pins the matching spill entry.
    spills: Vec<Mutex<HashMap<Vec<u8>, Vec<u8>>>>,
    counters: DsCounters,
    latency: KeyedLatency,
    keys: LatKeys,
}

/// The distributed hash table handle (see the module docs).
///
/// Cluster-wide object, shared by all ranks in this simulated process
/// (like [`photon_runtime::GlobalArray`]); operations say which node they
/// run *as*. Method names are compile-time constants, so create at most
/// one `Dht` per cluster.
pub struct Dht {
    sh: Arc<Shared>,
    /// `(caller, owner)` → cached RPC client, so repeated calls share one
    /// at-most-once identity instead of minting one per operation.
    clients: Mutex<HashMap<(Rank, Rank), Arc<RpcClient>>>,
}

impl std::fmt::Debug for Dht {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dht")
            .field("buckets_per_rank", &self.sh.cfg.buckets_per_rank)
            .field("ranks", &self.sh.n)
            .finish()
    }
}

/// `dht.get` — key in, optional value out, plus a ds status code.
struct GetM;
impl RpcMethod for GetM {
    const NAME: &'static str = "dht.get";
    type Req = Vec<u8>;
    type Rep = (u8, Option<Vec<u8>>);
}

/// `dht.put` — `(key, value)` in, ds status code out.
struct PutM;
impl RpcMethod for PutM {
    const NAME: &'static str = "dht.put";
    type Req = (Vec<u8>, Vec<u8>);
    type Rep = u8;
}

/// `dht.cas` — `(key, expected, new)` in, `(code, previous)` out.
struct CasM;
impl RpcMethod for CasM {
    const NAME: &'static str = "dht.cas";
    type Req = (Vec<u8>, Option<Vec<u8>>, Vec<u8>);
    type Rep = (u8, Option<Vec<u8>>);
}

impl Dht {
    /// Collectively create the table: register `buckets_per_rank` buckets
    /// on every rank and install the `dht.*` method handlers (boot-thread
    /// call, before traffic).
    pub fn new(cluster: &RuntimeCluster, cfg: DhtConfig) -> DsResult<Dht> {
        let (lay, slot_bytes) = BucketLayout::new(&cfg);
        let slot = SlotRegion::new(slot_bytes, cfg.buckets_per_rank)?;
        let n = cluster.len();
        let mut regions = Vec::with_capacity(n);
        for node in cluster.nodes() {
            regions.push(node.photon().register_buffer(slot.total_bytes())?);
        }
        let descs = regions.iter().map(|b| b.descriptor()).collect();
        let latency = KeyedLatency::new();
        let keys = LatKeys {
            get_os: latency.register("dht.get@1s"),
            get_rpc: latency.register("dht.get@rpc"),
            get_loc: latency.register("dht.get@loc"),
            put_os: latency.register("dht.put@1s"),
            put_rpc: latency.register("dht.put@rpc"),
            put_loc: latency.register("dht.put@loc"),
            cas_rpc: latency.register("dht.cas@rpc"),
            cas_loc: latency.register("dht.cas@loc"),
        };
        let sh = Arc::new(Shared {
            cfg,
            lay,
            slot,
            n,
            regions,
            descs,
            spills: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: DsCounters::default(),
            latency,
            keys,
        });
        for node in cluster.nodes() {
            let rank = node.rank();
            // Each handler charges the owner's virtual clock for its
            // dispatch + memcpy (see `DhtConfig::handler_ns`); the local
            // short-circuit path calls `owner_*` directly and pays nothing.
            let s = Arc::clone(&sh);
            let p = Arc::clone(node.photon());
            node.rpc_serve::<GetM>(move |key| {
                let out = owner_get(&s, rank, &key);
                let moved = key.len() + out.1.as_ref().map_or(0, |v| v.len());
                p.elapse(handler_cost(&s.cfg, moved));
                Ok(out)
            });
            let s = Arc::clone(&sh);
            let p = Arc::clone(node.photon());
            node.rpc_serve::<PutM>(move |(key, val)| {
                let moved = key.len() + val.len();
                let out = owner_put(&s, rank, &key, &val);
                p.elapse(handler_cost(&s.cfg, moved));
                Ok(out)
            });
            let s = Arc::clone(&sh);
            let p = Arc::clone(node.photon());
            node.rpc_serve::<CasM>(move |(key, expected, new)| {
                let moved = key.len() + new.len();
                let out = owner_cas(&s, rank, &key, expected.as_deref(), &new);
                p.elapse(handler_cost(&s.cfg, moved));
                Ok(out)
            });
        }
        Ok(Dht { sh, clients: Mutex::new(HashMap::new()) })
    }

    /// The rank owning `key`.
    pub fn owner_of(&self, key: &[u8]) -> Rank {
        (hash_key(key) % self.sh.n as u64) as Rank
    }

    /// Operation counters (cluster-wide totals).
    pub fn stats(&self) -> DsStats {
        self.sh.counters.snapshot()
    }

    /// Per-operation latency bank, keyed `dht.<op>@{1s,rpc,loc}` (one-sided,
    /// RPC, owner-local short-circuit).
    pub fn latency(&self) -> &KeyedLatency {
        &self.sh.latency
    }

    /// Look up `key` as `node`, via `path`. `Ok(None)` means absent.
    pub fn get(
        &self,
        node: &Arc<RtNode>,
        key: &[u8],
        path: AccessPath,
    ) -> DsResult<Option<Vec<u8>>> {
        DsCounters::bump(&self.sh.counters.dht_gets);
        check_key(&self.sh.cfg, key)?;
        let owner = self.owner_of(key);
        let start = Instant::now();
        if owner == node.rank() {
            let out = code_opt_to_result(owner_get(&self.sh, owner, key));
            self.sh.latency.record(self.sh.keys.get_loc, start.elapsed().as_nanos() as u64);
            return out;
        }
        let (out, lat_key) = match path {
            AccessPath::OneSided => match self.os_get(node, owner, key)? {
                Some(v) => (Ok(v), self.sh.keys.get_os),
                // Locked bucket or spilled value: the owner has to answer.
                None => {
                    DsCounters::bump(&self.sh.counters.dht_rpc_fallbacks);
                    (self.rpc_get(node, owner, key), self.sh.keys.get_rpc)
                }
            },
            AccessPath::Rpc => (self.rpc_get(node, owner, key), self.sh.keys.get_rpc),
        };
        self.sh.latency.record(lat_key, start.elapsed().as_nanos() as u64);
        out
    }

    /// Store `key -> val` as `node`, via `path` (last-write-wins).
    pub fn put(
        &self,
        node: &Arc<RtNode>,
        key: &[u8],
        val: &[u8],
        path: AccessPath,
    ) -> DsResult<()> {
        DsCounters::bump(&self.sh.counters.dht_puts);
        check_key(&self.sh.cfg, key)?;
        let owner = self.owner_of(key);
        let start = Instant::now();
        if owner == node.rank() {
            let out = code_to_result(owner_put(&self.sh, owner, key, val));
            self.sh.latency.record(self.sh.keys.put_loc, start.elapsed().as_nanos() as u64);
            return out;
        }
        let (out, lat_key) = match path {
            AccessPath::OneSided => match self.os_put(node, owner, key, val)? {
                true => (Ok(()), self.sh.keys.put_os),
                false => {
                    DsCounters::bump(&self.sh.counters.dht_rpc_fallbacks);
                    (self.rpc_put(node, owner, key, val), self.sh.keys.put_rpc)
                }
            },
            AccessPath::Rpc => (self.rpc_put(node, owner, key, val), self.sh.keys.put_rpc),
        };
        self.sh.latency.record(lat_key, start.elapsed().as_nanos() as u64);
        out
    }

    /// Atomically replace `key`'s value with `new` iff its current value
    /// equals `expected` (`None` = absent, so `expected: None` is an
    /// insert-if-absent). Returns `(applied, previous)`. Always executes at
    /// the owner with at-most-once delivery — there is no one-sided path
    /// for value CAS.
    pub fn cas(
        &self,
        node: &Arc<RtNode>,
        key: &[u8],
        expected: Option<&[u8]>,
        new: &[u8],
    ) -> DsResult<(bool, Option<Vec<u8>>)> {
        DsCounters::bump(&self.sh.counters.dht_cas);
        check_key(&self.sh.cfg, key)?;
        let owner = self.owner_of(key);
        let start = Instant::now();
        let (out, lat_key) = if owner == node.rank() {
            (owner_cas(&self.sh, owner, key, expected, new), self.sh.keys.cas_loc)
        } else {
            let req = (key.to_vec(), expected.map(<[u8]>::to_vec), new.to_vec());
            (
                self.client(node, owner).call::<CasM>(&req, RpcOptions::at_most_once())?,
                self.sh.keys.cas_rpc,
            )
        };
        self.sh.latency.record(lat_key, start.elapsed().as_nanos() as u64);
        match out {
            (DS_OK, prev) => Ok((true, prev)),
            (DS_MISMATCH, prev) => Ok((false, prev)),
            (code, _) => Err(code_to_error(code)),
        }
    }

    fn client(&self, node: &Arc<RtNode>, owner: Rank) -> Arc<RpcClient> {
        Arc::clone(
            self.clients
                .lock()
                .entry((node.rank(), owner))
                .or_insert_with(|| Arc::new(node.rpc_client(owner))),
        )
    }

    fn rpc_get(&self, node: &Arc<RtNode>, owner: Rank, key: &[u8]) -> DsResult<Option<Vec<u8>>> {
        let rep =
            self.client(node, owner).call::<GetM>(&key.to_vec(), RpcOptions::at_least_once())?;
        code_opt_to_result(rep)
    }

    fn rpc_put(&self, node: &Arc<RtNode>, owner: Rank, key: &[u8], val: &[u8]) -> DsResult<()> {
        let req = (key.to_vec(), val.to_vec());
        let code = self.client(node, owner).call::<PutM>(&req, RpcOptions::at_least_once())?;
        code_to_result(code)
    }

    /// One-sided lookup. `Ok(Some(result))` is a completed lookup;
    /// `Ok(None)` means "this path cannot answer" (bucket stayed locked, or
    /// the value is spilled) and the caller should fall back to RPC.
    fn os_get(
        &self,
        node: &Arc<RtNode>,
        owner: Rank,
        key: &[u8],
    ) -> DsResult<Option<Option<Vec<u8>>>> {
        let sh = &self.sh;
        let p = node.photon();
        let h = hash_key(key);
        let tmp = p.register_buffer(sh.slot.slot_bytes())?;
        let out = (|| {
            'probe: for i in 0..sh.cfg.probe_len {
                let off = sh.slot.offset(bucket_at(sh, h, i));
                for _ in 0..sh.cfg.lock_retries {
                    let rid = p.internal_rid();
                    p.get_with_completion(
                        owner,
                        &tmp,
                        0,
                        sh.slot.slot_bytes(),
                        &sh.descs[owner],
                        off,
                        rid,
                    )?;
                    p.wait_local(rid)?;
                    // The simulated fabric reads the slot atomically, so an
                    // even version certifies the whole snapshot (hardware
                    // would re-read the version word here).
                    let v = tmp.read_u64(sh.lay.ver);
                    if v & 1 == 1 {
                        std::thread::sleep(LOCK_PAUSE);
                        continue;
                    }
                    match parse_snapshot(sh, &tmp, h, key) {
                        Slot::Empty => return Ok(Some(None)),
                        Slot::Other => continue 'probe,
                        Slot::Spilled => return Ok(None), // owner must answer
                        Slot::Inline(val) => return Ok(Some(Some(val))),
                    }
                }
                return Ok(None); // lock stuck: let the owner arbitrate
            }
            Ok(Some(None))
        })();
        p.release_buffer(&tmp)?;
        out
    }

    /// One-sided store. `Ok(true)` = stored; `Ok(false)` = fall back to RPC
    /// (oversized value, spilled predecessor, or contention past budget).
    fn os_put(&self, node: &Arc<RtNode>, owner: Rank, key: &[u8], val: &[u8]) -> DsResult<bool> {
        let sh = &self.sh;
        if val.len() > sh.cfg.val_max {
            return Ok(false); // inline bytes can't hold it: owner spills
        }
        let p = node.photon();
        let h = hash_key(key);
        let tmp = p.register_buffer(sh.slot.slot_bytes())?;
        let word = p.register_buffer(8)?;
        let out = (|| {
            'probe: for i in 0..sh.cfg.probe_len {
                let off = sh.slot.offset(bucket_at(sh, h, i));
                for _ in 0..sh.cfg.lock_retries {
                    let rid = p.internal_rid();
                    p.get_with_completion(
                        owner,
                        &tmp,
                        0,
                        sh.slot.slot_bytes(),
                        &sh.descs[owner],
                        off,
                        rid,
                    )?;
                    p.wait_local(rid)?;
                    let v = tmp.read_u64(sh.lay.ver);
                    if v & 1 == 1 {
                        std::thread::sleep(LOCK_PAUSE);
                        continue;
                    }
                    match parse_snapshot(sh, &tmp, h, key) {
                        Slot::Other => continue 'probe,
                        // The owner must clear its spill entry with the
                        // bucket lock held; only the RPC path can.
                        Slot::Spilled => return Ok(false),
                        Slot::Empty | Slot::Inline(_) => {}
                    }
                    // Lock: CAS v -> v+1. Success proves the bucket is
                    // unchanged since the snapshot (versions only grow).
                    if p.compare_swap(owner, &sh.descs[owner], off + sh.lay.ver, v, v + 1)? != v {
                        DsCounters::bump(&sh.counters.dht_lock_conflicts);
                        continue;
                    }
                    // Write every payload field in one put (hash onward).
                    tmp.write_u64(sh.lay.hash, h);
                    tmp.write_u64(sh.lay.meta, pack_meta(key.len(), val.len() as u32));
                    tmp.write_at(sh.lay.key, key);
                    tmp.write_at(sh.lay.val, val);
                    let rid = p.internal_rid();
                    p.put(
                        owner,
                        &tmp,
                        sh.lay.hash,
                        sh.slot.slot_bytes() - sh.lay.hash,
                        &sh.descs[owner],
                        off + sh.lay.hash,
                        rid,
                    )?;
                    p.wait_local(rid)?;
                    // Release: publish version v+2.
                    word.write_u64(0, v + 2);
                    let rid = p.internal_rid();
                    p.put(owner, &word, 0, 8, &sh.descs[owner], off + sh.lay.ver, rid)?;
                    p.wait_local(rid)?;
                    return Ok(true);
                }
                return Ok(false); // contention budget spent: try RPC
            }
            Err(DsError::Full)
        })();
        p.release_buffer(&tmp)?;
        p.release_buffer(&word)?;
        out
    }
}

fn check_key(cfg: &DhtConfig, key: &[u8]) -> DsResult<()> {
    if key.is_empty() || key.len() > cfg.key_max {
        return Err(DsError::BadKey { len: key.len(), max: cfg.key_max });
    }
    Ok(())
}

fn bucket_at(sh: &Shared, h: u64, i: usize) -> usize {
    (mix(h) as usize + i) % sh.cfg.buckets_per_rank
}

fn code_to_error(code: u8) -> DsError {
    match code {
        DS_FULL => DsError::Full,
        DS_BAD_KEY => DsError::BadKey { len: 0, max: 0 },
        _ => DsError::Unavailable("bucket lock retry budget exhausted"),
    }
}

fn code_to_result(code: u8) -> DsResult<()> {
    if code == DS_OK {
        Ok(())
    } else {
        Err(code_to_error(code))
    }
}

fn code_opt_to_result((code, val): (u8, Option<Vec<u8>>)) -> DsResult<Option<Vec<u8>>> {
    if code == DS_OK {
        Ok(val)
    } else {
        Err(code_to_error(code))
    }
}

/// Classify a consistent slot snapshot in `buf` against `key`.
fn parse_snapshot(sh: &Shared, buf: &PhotonBuffer, h: u64, key: &[u8]) -> Slot {
    let (key_len, val_len) = unpack_meta(buf.read_u64(sh.lay.meta));
    if key_len == 0 {
        return Slot::Empty;
    }
    if buf.read_u64(sh.lay.hash) != h || key_len != key.len() {
        return Slot::Other;
    }
    if buf.to_vec(sh.lay.key, key_len) != key {
        return Slot::Other;
    }
    if val_len == SPILL {
        return Slot::Spilled;
    }
    Slot::Inline(buf.to_vec(sh.lay.val, val_len as usize))
}

/// Seqlock read of one bucket at the owner: returns the version it was
/// consistent at plus its classification, or `None` when the lock stayed
/// held past the retry budget.
fn owner_read(sh: &Shared, rank: Rank, off: usize, h: u64, key: &[u8]) -> Option<(u64, Slot)> {
    let region = &sh.regions[rank];
    for _ in 0..sh.cfg.lock_retries {
        let v = region.read_u64(off + sh.lay.ver);
        if v & 1 == 1 {
            std::thread::sleep(LOCK_PAUSE);
            continue;
        }
        let (key_len, val_len) = unpack_meta(region.read_u64(off + sh.lay.meta));
        let slot = if key_len == 0 {
            Slot::Empty
        } else if region.read_u64(off + sh.lay.hash) != h
            || key_len != key.len()
            || region.to_vec(off + sh.lay.key, key_len) != key
        {
            Slot::Other
        } else if val_len == SPILL {
            Slot::Spilled
        } else {
            Slot::Inline(region.to_vec(off + sh.lay.val, val_len as usize))
        };
        // Unlike the one-sided snapshot, these were separate reads: only an
        // unchanged version word proves they were mutually consistent.
        if region.read_u64(off + sh.lay.ver) == v {
            return Some((v, slot));
        }
    }
    None
}

/// Modeled owner-CPU nanoseconds for one RPC dispatch touching `bytes`:
/// the configured constant plus a ~10 GB/s memcpy term. Zero stays zero.
fn handler_cost(cfg: &DhtConfig, bytes: usize) -> u64 {
    if cfg.handler_ns == 0 {
        return 0;
    }
    cfg.handler_ns + bytes as u64 / 10
}

/// Owner-side lookup (RPC handler body and owner-local short-circuit).
fn owner_get(sh: &Arc<Shared>, rank: Rank, key: &[u8]) -> (u8, Option<Vec<u8>>) {
    if key.is_empty() || key.len() > sh.cfg.key_max {
        return (DS_BAD_KEY, None);
    }
    let h = hash_key(key);
    for i in 0..sh.cfg.probe_len {
        let off = sh.slot.offset(bucket_at(sh, h, i));
        let Some((v, slot)) = owner_read(sh, rank, off, h, key) else {
            return (DS_UNAVAILABLE, None);
        };
        match slot {
            Slot::Empty => return (DS_OK, None),
            Slot::Other => continue,
            Slot::Inline(val) => return (DS_OK, Some(val)),
            Slot::Spilled => {
                let val = sh.spills[rank].lock().get(key).cloned();
                // Spill entries change only under the bucket lock: an
                // unchanged version pins this lookup to our snapshot.
                if sh.regions[rank].read_u64(off + sh.lay.ver) == v {
                    return (DS_OK, val);
                }
                // Raced a writer between snapshot and spill lookup: the
                // bucket moved on, so re-probe from this slot.
                return owner_get(sh, rank, key);
            }
        }
    }
    (DS_OK, None)
}

/// Lock bucket `off` at the version `v` its snapshot was taken at.
/// Returns false when another writer got there first (caller re-reads).
fn owner_lock(sh: &Shared, rank: Rank, off: usize, v: u64) -> bool {
    if sh.regions[rank].region().compare_swap_u64(off + sh.lay.ver, v, v + 1) == v {
        true
    } else {
        DsCounters::bump(&sh.counters.dht_lock_conflicts);
        false
    }
}

/// Write `key -> val` into the locked bucket at `off` and release it.
/// `was_spilled` says whether the bucket previously pointed at a spill
/// entry (which must be cleared if the new value fits inline).
fn owner_write(
    sh: &Shared,
    rank: Rank,
    off: usize,
    v: u64,
    key: &[u8],
    val: &[u8],
    was_spilled: bool,
) {
    let region = &sh.regions[rank];
    let spill_needed = val.len() > sh.cfg.val_max;
    if spill_needed {
        DsCounters::bump(&sh.counters.dht_spills);
        sh.spills[rank].lock().insert(key.to_vec(), val.to_vec());
    } else if was_spilled {
        sh.spills[rank].lock().remove(key);
    }
    region.write_u64(off + sh.lay.hash, hash_key(key));
    region.write_u64(
        off + sh.lay.meta,
        pack_meta(key.len(), if spill_needed { SPILL } else { val.len() as u32 }),
    );
    region.write_at(off + sh.lay.key, key);
    if !spill_needed {
        region.write_at(off + sh.lay.val, val);
    }
    region.write_u64(off + sh.lay.ver, v + 2);
}

/// Owner-side store (RPC handler body and owner-local short-circuit).
fn owner_put(sh: &Arc<Shared>, rank: Rank, key: &[u8], val: &[u8]) -> u8 {
    if key.is_empty() || key.len() > sh.cfg.key_max {
        return DS_BAD_KEY;
    }
    let h = hash_key(key);
    'probe: for i in 0..sh.cfg.probe_len {
        let off = sh.slot.offset(bucket_at(sh, h, i));
        for _ in 0..sh.cfg.lock_retries {
            let Some((v, slot)) = owner_read(sh, rank, off, h, key) else {
                return DS_UNAVAILABLE;
            };
            let was_spilled = match slot {
                Slot::Other => continue 'probe,
                Slot::Spilled => true,
                Slot::Empty | Slot::Inline(_) => false,
            };
            if !owner_lock(sh, rank, off, v) {
                continue; // lost the race: re-read and retry this bucket
            }
            owner_write(sh, rank, off, v, key, val, was_spilled);
            return DS_OK;
        }
        return DS_UNAVAILABLE;
    }
    DS_FULL
}

/// Owner-side value compare-and-set (always via the owner; see
/// [`Dht::cas`]).
fn owner_cas(
    sh: &Arc<Shared>,
    rank: Rank,
    key: &[u8],
    expected: Option<&[u8]>,
    new: &[u8],
) -> (u8, Option<Vec<u8>>) {
    if key.is_empty() || key.len() > sh.cfg.key_max {
        return (DS_BAD_KEY, None);
    }
    let h = hash_key(key);
    'probe: for i in 0..sh.cfg.probe_len {
        let off = sh.slot.offset(bucket_at(sh, h, i));
        for _ in 0..sh.cfg.lock_retries {
            let Some((v, slot)) = owner_read(sh, rank, off, h, key) else {
                return (DS_UNAVAILABLE, None);
            };
            let (current, was_spilled) = match slot {
                Slot::Other => continue 'probe,
                Slot::Empty => (None, false),
                Slot::Inline(val) => (Some(val), false),
                Slot::Spilled => (sh.spills[rank].lock().get(key).cloned(), true),
            };
            if !owner_lock(sh, rank, off, v) {
                continue;
            }
            // The lock's CAS succeeded from version v, so `current` is
            // still the bucket's value.
            if current.as_deref() == expected {
                owner_write(sh, rank, off, v, key, new, was_spilled);
                return (DS_OK, current);
            }
            // No mutation: restore the version word untouched.
            sh.regions[rank].write_u64(off + sh.lay.ver, v);
            return (DS_MISMATCH, current);
        }
        return (DS_UNAVAILABLE, None);
    }
    // Probe window exhausted: the key is provably absent (inserts always
    // land within the window). An insert attempt fails for space; a
    // compare against a concrete value fails as a mismatch with None.
    if expected.is_none() {
        (DS_FULL, None)
    } else {
        (DS_MISMATCH, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_fabric::{NetworkModel, VTime};
    use photon_runtime::{ActionRegistry, RtConfig, RuntimeCluster};

    fn boot(n: usize) -> RuntimeCluster {
        RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), ActionRegistry::new())
    }

    fn small_cfg() -> DhtConfig {
        DhtConfig { buckets_per_rank: 64, ..DhtConfig::default() }
    }

    /// A key owned by `owner` (so tests can force cross-rank traffic).
    fn key_owned_by(dht: &Dht, owner: Rank) -> Vec<u8> {
        (0u32..).map(|i| format!("k{i}").into_bytes()).find(|k| dht.owner_of(k) == owner).unwrap()
    }

    #[test]
    fn put_get_round_trips_on_both_paths_and_they_cohere() {
        let c = boot(3);
        let dht = Dht::new(&c, small_cfg()).unwrap();
        let node = c.node(0);
        let k1 = key_owned_by(&dht, 1);
        let k2 = key_owned_by(&dht, 2);

        // Written one-sided, read by RPC — and the reverse.
        dht.put(node, &k1, b"alpha", AccessPath::OneSided).unwrap();
        assert_eq!(dht.get(node, &k1, AccessPath::Rpc).unwrap(), Some(b"alpha".to_vec()));
        dht.put(node, &k2, b"beta", AccessPath::Rpc).unwrap();
        assert_eq!(dht.get(node, &k2, AccessPath::OneSided).unwrap(), Some(b"beta".to_vec()));

        // Overwrite across paths: last write wins.
        dht.put(node, &k1, b"alpha2", AccessPath::Rpc).unwrap();
        assert_eq!(dht.get(node, &k1, AccessPath::OneSided).unwrap(), Some(b"alpha2".to_vec()));

        // Absent key, both paths.
        assert_eq!(dht.get(node, b"nope", AccessPath::OneSided).unwrap(), None);
        assert_eq!(dht.get(node, b"nope", AccessPath::Rpc).unwrap(), None);

        // Another rank sees the same data one-sided.
        assert_eq!(
            dht.get(c.node(2), &k1, AccessPath::OneSided).unwrap(),
            Some(b"alpha2".to_vec())
        );
        c.shutdown();
    }

    #[test]
    fn owner_local_operations_short_circuit() {
        let c = boot(2);
        let dht = Dht::new(&c, small_cfg()).unwrap();
        let k = key_owned_by(&dht, 0);
        dht.put(c.node(0), &k, b"self", AccessPath::OneSided).unwrap();
        assert_eq!(dht.get(c.node(0), &k, AccessPath::Rpc).unwrap(), Some(b"self".to_vec()));
        assert!(dht.latency().summary_of("dht.put@loc").is_some_and(|s| s.count == 1));
        assert!(dht.latency().summary_of("dht.get@loc").is_some_and(|s| s.count == 1));
        c.shutdown();
    }

    #[test]
    fn colliding_keys_probe_and_a_full_window_is_typed() {
        let c = boot(1);
        let cfg = DhtConfig { buckets_per_rank: 4, probe_len: 2, ..DhtConfig::default() };
        let dht = Dht::new(&c, cfg).unwrap();
        let node = c.node(0);
        // Three keys whose home bucket coincides: the first two fit in the
        // probe window, the third must fail typed (not hang, not clobber).
        let base = |k: &[u8]| bucket_at(&dht.sh, hash_key(k), 0);
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut i = 0u32;
        while keys.len() < 3 {
            let k = format!("c{i}").into_bytes();
            if keys.is_empty() || base(&k) == base(&keys[0]) {
                keys.push(k);
            }
            i += 1;
        }
        dht.put(node, &keys[0], b"v0", AccessPath::OneSided).unwrap();
        dht.put(node, &keys[1], b"v1", AccessPath::OneSided).unwrap();
        assert_eq!(dht.put(node, &keys[2], b"v2", AccessPath::OneSided), Err(DsError::Full));
        assert_eq!(dht.get(node, &keys[0], AccessPath::OneSided).unwrap(), Some(b"v0".to_vec()));
        assert_eq!(dht.get(node, &keys[1], AccessPath::OneSided).unwrap(), Some(b"v1".to_vec()));
        assert_eq!(dht.get(node, &keys[2], AccessPath::OneSided).unwrap(), None);
        c.shutdown();
    }

    #[test]
    fn oversized_values_spill_and_both_paths_read_them() {
        let c = boot(2);
        let dht = Dht::new(&c, small_cfg()).unwrap();
        let node = c.node(0);
        let k = key_owned_by(&dht, 1);
        let big = vec![0xEE; 4096]; // val_max is 64
                                    // One-sided put falls back to RPC transparently.
        dht.put(node, &k, &big, AccessPath::OneSided).unwrap();
        assert!(dht.stats().dht_spills >= 1);
        assert!(dht.stats().dht_rpc_fallbacks >= 1);
        // One-sided get sees the sentinel and bounces to the owner.
        assert_eq!(dht.get(node, &k, AccessPath::OneSided).unwrap(), Some(big.clone()));
        assert_eq!(dht.get(node, &k, AccessPath::Rpc).unwrap(), Some(big.clone()));
        // Shrinking the value back inline clears the spill entry.
        dht.put(node, &k, b"small", AccessPath::Rpc).unwrap();
        assert_eq!(dht.get(node, &k, AccessPath::OneSided).unwrap(), Some(b"small".to_vec()));
        assert!(dht.sh.spills[1].lock().is_empty(), "spill entry must be reclaimed");
        c.shutdown();
    }

    #[test]
    fn bad_keys_are_rejected_up_front() {
        let c = boot(1);
        let dht = Dht::new(&c, small_cfg()).unwrap();
        let node = c.node(0);
        let too_long = vec![1u8; 33];
        assert!(matches!(
            dht.put(node, b"", b"v", AccessPath::Rpc),
            Err(DsError::BadKey { len: 0, .. })
        ));
        assert!(matches!(
            dht.put(node, &too_long, b"v", AccessPath::OneSided),
            Err(DsError::BadKey { len: 33, .. })
        ));
        assert!(matches!(dht.get(node, b"", AccessPath::Rpc), Err(DsError::BadKey { .. })));
        c.shutdown();
    }

    #[test]
    fn cas_inserts_compares_and_reports_mismatches() {
        let c = boot(2);
        let dht = Dht::new(&c, small_cfg()).unwrap();
        let node = c.node(0);
        let k = key_owned_by(&dht, 1);
        // Insert-if-absent.
        assert_eq!(dht.cas(node, &k, None, b"one").unwrap(), (true, None));
        // Second insert attempt observes the value.
        assert_eq!(dht.cas(node, &k, None, b"two").unwrap(), (false, Some(b"one".to_vec())));
        // Conditional replace.
        assert_eq!(
            dht.cas(node, &k, Some(b"one".as_slice()), b"two").unwrap(),
            (true, Some(b"one".to_vec()))
        );
        assert_eq!(dht.get(node, &k, AccessPath::OneSided).unwrap(), Some(b"two".to_vec()));
        // Mismatch leaves the bucket readable and unchanged.
        assert_eq!(
            dht.cas(node, &k, Some(b"zzz".as_slice()), b"x").unwrap(),
            (false, Some(b"two".to_vec()))
        );
        assert_eq!(dht.get(node, &k, AccessPath::Rpc).unwrap(), Some(b"two".to_vec()));
        c.shutdown();
    }

    #[test]
    fn concurrent_cas_increments_linearize() {
        let c = boot(3);
        let dht = Arc::new(Dht::new(&c, small_cfg()).unwrap());
        let k = key_owned_by(&dht, 0);
        dht.put(c.node(0), &k, &0u64.to_le_bytes(), AccessPath::Rpc).unwrap();
        const PER: u64 = 20;
        let mut threads = Vec::new();
        for rank in [1usize, 2] {
            let dht = Arc::clone(&dht);
            let node = Arc::clone(c.node(rank));
            let k = k.clone();
            threads.push(std::thread::spawn(move || {
                for _ in 0..PER {
                    loop {
                        let cur = dht.get(&node, &k, AccessPath::Rpc).unwrap().unwrap();
                        let n = u64::from_le_bytes(cur[..8].try_into().unwrap());
                        let (ok, _) = dht
                            .cas(&node, &k, Some(cur.as_slice()), &(n + 1).to_le_bytes())
                            .unwrap();
                        if ok {
                            break;
                        }
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let fin = dht.get(c.node(0), &k, AccessPath::OneSided).unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(fin[..8].try_into().unwrap()), 2 * PER);
        c.shutdown();
    }

    #[test]
    fn one_sided_writers_racing_the_same_key_converge() {
        let c = boot(3);
        let dht = Arc::new(Dht::new(&c, small_cfg()).unwrap());
        let k = key_owned_by(&dht, 0);
        let mut threads = Vec::new();
        for rank in [1usize, 2] {
            let dht = Arc::clone(&dht);
            let node = Arc::clone(c.node(rank));
            let k = k.clone();
            threads.push(std::thread::spawn(move || {
                for i in 0..10u32 {
                    let val = format!("r{rank}i{i}").into_bytes();
                    dht.put(&node, &k, &val, AccessPath::OneSided).unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        // Last-write-wins: the surviving value is one of the final writes.
        let v = dht.get(c.node(0), &k, AccessPath::Rpc).unwrap().unwrap();
        assert!(v == b"r1i9".to_vec() || v == b"r2i9".to_vec(), "got {v:?}");
        c.shutdown();
    }

    #[test]
    fn a_stuck_lock_resolves_unavailable_and_recovers_on_release() {
        let c = boot(2);
        let cfg = DhtConfig { lock_retries: 3, ..small_cfg() };
        let dht = Dht::new(&c, cfg).unwrap();
        let node = c.node(0);
        let k = key_owned_by(&dht, 1);
        dht.put(node, &k, b"v", AccessPath::OneSided).unwrap();
        // Simulate a writer that died mid-protocol: bucket lock held (odd
        // version), never released.
        let off = dht.sh.slot.offset(bucket_at(&dht.sh, hash_key(&k), 0));
        let v = dht.sh.regions[1].read_u64(off + dht.sh.lay.ver);
        dht.sh.regions[1].write_u64(off + dht.sh.lay.ver, v + 1);
        // One-sided exhausts its budget, falls back to RPC, and the owner
        // exhausts its budget too: a typed Unavailable, not a hang.
        assert_eq!(
            dht.get(node, &k, AccessPath::OneSided),
            Err(DsError::Unavailable("bucket lock retry budget exhausted"))
        );
        assert!(matches!(dht.put(node, &k, b"w", AccessPath::Rpc), Err(DsError::Unavailable(_))));
        // Lock released (e.g. an operator reset): everything works again.
        dht.sh.regions[1].write_u64(off + dht.sh.lay.ver, v);
        assert_eq!(dht.get(node, &k, AccessPath::OneSided).unwrap(), Some(b"v".to_vec()));
        dht.put(node, &k, b"w", AccessPath::Rpc).unwrap();
        c.shutdown();
    }

    #[test]
    fn operations_on_a_dead_owner_resolve_typed() {
        let c = boot(3);
        let dht = Dht::new(&c, small_cfg()).unwrap();
        let node = c.node(0);
        let k = key_owned_by(&dht, 2);
        dht.put(node, &k, b"v", AccessPath::Rpc).unwrap();
        c.photon().fabric().switch().faults().kill_node_at(2, VTime(0));
        // Both paths degrade to typed transport errors, not hangs.
        assert!(matches!(dht.get(node, &k, AccessPath::OneSided), Err(DsError::Rt(_))));
        assert!(matches!(dht.put(node, &k, b"w", AccessPath::Rpc), Err(DsError::Rt(_))));
        assert!(matches!(dht.cas(node, &k, None, b"x"), Err(DsError::Rt(_))));
        // Keys owned by survivors keep working.
        let alive = key_owned_by(&dht, 1);
        dht.put(node, &alive, b"ok", AccessPath::OneSided).unwrap();
        assert_eq!(dht.get(node, &alive, AccessPath::Rpc).unwrap(), Some(b"ok".to_vec()));
        c.shutdown();
    }
}
