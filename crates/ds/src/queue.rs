//! A distributed multi-producer single-consumer queue.
//!
//! The ring lives on one *owner* rank: a 16-byte control block
//! (`[tail ticket | published head]`) plus `capacity` fixed-size slots
//! (`[seq | len | payload]`), all in registered memory.
//!
//! # Push: ticket claim by compare-and-swap
//!
//! A producer reads the control block (one RDMA read), checks
//! `tail - published_head < capacity`, and claims ticket `t` by CAS-ing the
//! tail word `t -> t+1`. Claiming by CAS — not fetch-add — matters under
//! failures: a fetch-add that succeeds just before its producer crashes
//! burns a ticket nobody will ever fill, whereas a CAS-claim admits exactly
//! the producers who then publish. (A producer that crashes *between* claim
//! and publish still wedges the consumer at that slot — the same bounded
//! lock-holder limitation the DHT documents.) The fullness check is
//! conservative-correct: the published head only lags the true head, so a
//! passing check proves the claimed slot's previous occupant was already
//! popped, and no slot is ever overwritten live. The producer then writes
//! `len|payload` and *publishes* by writing the slot's `seq` word to `t+1`
//! — the consumer treats a slot as present only when `seq == head+1`.
//!
//! Pushes via **RPC** (`dq.push`, at-most-once: a push is not idempotent)
//! run the same claim protocol owner-locally, and may spill payloads larger
//! than the inline slot into an owner-side map keyed by ticket; one-sided
//! pushes of oversized payloads fall back to RPC.
//!
//! # Pop: owner-only
//!
//! MPSC means a single consumer: the owner pops locally under a mutex
//! (other ranks pop through `dq.pop`, also at-most-once since a pop is
//! destructive). A pop republishes the head into the control block so
//! producers' fullness checks advance.

use crate::{
    AccessPath, DsCounters, DsError, DsResult, DsStats, DS_OK, DS_QUEUE_FULL, DS_UNAVAILABLE,
};
use parking_lot::Mutex;
use photon_core::buffers::BufferDescriptor;
use photon_core::layout::{Layout, SlotRegion};
use photon_core::{KeyedLatency, PhotonBuffer, Rank};
use photon_runtime::rpc::RpcMethod;
use photon_runtime::{RpcClient, RpcOptions, RtNode, RuntimeCluster};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sentinel slot `len` marking a payload stored in the owner's spill map
/// (keyed by ticket) instead of inline slot bytes.
const SPILL64: u64 = u64::MAX;

/// Control-block offsets: the producer-CAS'd tail ticket and the
/// consumer-published head.
const CTRL_TAIL: usize = 0;
const CTRL_HEAD: usize = 8;
const CTRL_BYTES: usize = 16;

/// Configuration of a [`DQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DQueueConfig {
    /// Ring capacity in elements.
    pub capacity: usize,
    /// Maximum *inline* payload length; larger payloads travel by RPC and
    /// spill to the owner's heap.
    pub val_max: usize,
    /// The rank hosting the ring (and the only rank that may pop locally).
    pub owner: Rank,
    /// Retry budget for lost ticket-CAS races before a one-sided push
    /// falls back to RPC (or the owner reports back-pressure).
    pub claim_retries: usize,
    /// Modeled owner-CPU cost of dispatching one RPC handler, nanoseconds,
    /// charged to the owner's virtual clock per handled request plus a
    /// ~10 GB/s memcpy term (same knob as [`crate::DhtConfig::handler_ns`]:
    /// one-sided pushes are NIC-only at the owner, RPC pushes occupy its
    /// scheduler, and Lamport propagation turns that into visible queueing
    /// delay under load). Zero disables the charge.
    pub handler_ns: u64,
}

impl Default for DQueueConfig {
    fn default() -> Self {
        DQueueConfig {
            capacity: 1024,
            val_max: 64,
            owner: 0,
            claim_retries: 256,
            handler_ns: 2_000,
        }
    }
}

/// Byte offsets of one ring slot's fields.
#[derive(Debug, Clone, Copy)]
struct SlotLayout {
    seq: usize,
    len: usize,
    payload: usize,
}

/// `dq.push` — payload in, ds status code out.
struct PushM;
impl RpcMethod for PushM {
    const NAME: &'static str = "dq.push";
    type Req = Vec<u8>;
    type Rep = u8;
}

/// `dq.pop` — unit in, `(code, payload)` out (`None` = empty).
struct PopM;
impl RpcMethod for PopM {
    const NAME: &'static str = "dq.pop";
    type Req = ();
    type Rep = (u8, Option<Vec<u8>>);
}

/// Modeled owner-CPU nanoseconds for one RPC dispatch touching `bytes`:
/// the configured constant plus a ~10 GB/s memcpy term. Zero stays zero.
fn handler_cost(cfg: &DQueueConfig, bytes: usize) -> u64 {
    if cfg.handler_ns == 0 {
        return 0;
    }
    cfg.handler_ns + bytes as u64 / 10
}

/// Interned latency keys, one per (operation, path).
#[derive(Debug, Clone, Copy)]
struct LatKeys {
    push_os: usize,
    push_rpc: usize,
    push_loc: usize,
    pop_loc: usize,
    pop_rpc: usize,
}

/// Owner-side and shared state (no runtime references; see the DHT's
/// `Shared` for why).
struct Shared {
    cfg: DQueueConfig,
    lay: SlotLayout,
    slot: SlotRegion,
    ctrl: PhotonBuffer,
    ctrl_desc: BufferDescriptor,
    ring: PhotonBuffer,
    ring_desc: BufferDescriptor,
    /// The true head, advanced only by the single consumer.
    head: AtomicU64,
    /// Serializes consumers (the MPSC contract made structural).
    pop_lock: Mutex<()>,
    /// Ticket → payload for pushes larger than `val_max`.
    spill: Mutex<HashMap<u64, Vec<u8>>>,
    counters: DsCounters,
    latency: KeyedLatency,
    keys: LatKeys,
}

/// The distributed MPSC queue handle (see the module docs).
///
/// Cluster-wide object; operations say which node they run *as*. Method
/// names are compile-time constants, so create at most one `DQueue` per
/// cluster.
pub struct DQueue {
    sh: Arc<Shared>,
    /// caller rank → cached RPC client toward the owner.
    clients: Mutex<HashMap<Rank, Arc<RpcClient>>>,
}

impl std::fmt::Debug for DQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DQueue")
            .field("capacity", &self.sh.cfg.capacity)
            .field("owner", &self.sh.cfg.owner)
            .finish()
    }
}

impl DQueue {
    /// Collectively create the queue: register the ring on `cfg.owner` and
    /// install the `dq.*` handlers there (boot-thread call).
    pub fn new(cluster: &RuntimeCluster, cfg: DQueueConfig) -> DsResult<DQueue> {
        if cfg.owner >= cluster.len() {
            return Err(DsError::Rt(photon_runtime::RtError::InvalidRank(cfg.owner)));
        }
        let mut l = Layout::new();
        let lay = SlotLayout { seq: l.field(8), len: l.field(8), payload: l.field(cfg.val_max) };
        let slot = SlotRegion::new(l.size(), cfg.capacity)?;
        let owner_node = cluster.node(cfg.owner);
        let ctrl = owner_node.photon().register_buffer(CTRL_BYTES)?;
        let ring = owner_node.photon().register_buffer(slot.total_bytes())?;
        let latency = KeyedLatency::new();
        let keys = LatKeys {
            push_os: latency.register("dq.push@1s"),
            push_rpc: latency.register("dq.push@rpc"),
            push_loc: latency.register("dq.push@loc"),
            pop_loc: latency.register("dq.pop@loc"),
            pop_rpc: latency.register("dq.pop@rpc"),
        };
        let sh = Arc::new(Shared {
            cfg,
            lay,
            slot,
            ctrl_desc: ctrl.descriptor(),
            ctrl,
            ring_desc: ring.descriptor(),
            ring,
            head: AtomicU64::new(0),
            pop_lock: Mutex::new(()),
            spill: Mutex::new(HashMap::new()),
            counters: DsCounters::default(),
            latency,
            keys,
        });
        // Handlers charge the owner's virtual clock for dispatch + memcpy
        // (`DQueueConfig::handler_ns`); local short-circuits pay nothing.
        let s = Arc::clone(&sh);
        let p = Arc::clone(owner_node.photon());
        owner_node.rpc_serve::<PushM>(move |val| {
            let out = owner_push(&s, &val);
            p.elapse(handler_cost(&s.cfg, val.len()));
            Ok(out)
        });
        let s = Arc::clone(&sh);
        let p = Arc::clone(owner_node.photon());
        owner_node.rpc_serve::<PopM>(move |()| {
            let out = owner_pop(&s);
            let moved = out.1.as_ref().map_or(0, |v| v.len());
            p.elapse(handler_cost(&s.cfg, moved));
            Ok(out)
        });
        Ok(DQueue { sh, clients: Mutex::new(HashMap::new()) })
    }

    /// The rank hosting the ring.
    pub fn owner(&self) -> Rank {
        self.sh.cfg.owner
    }

    /// Elements currently queued (claimed tickets minus popped; racy by
    /// nature, for observability).
    pub fn len(&self) -> usize {
        let t = self.sh.ctrl.read_u64(CTRL_TAIL);
        (t - self.sh.head.load(Ordering::Relaxed)) as usize
    }

    /// True when no element is queued (racy, like [`DQueue::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters (cluster-wide totals).
    pub fn stats(&self) -> DsStats {
        self.sh.counters.snapshot()
    }

    /// Per-operation latency bank, keyed `dq.<op>@{1s,rpc,loc}`.
    pub fn latency(&self) -> &KeyedLatency {
        &self.sh.latency
    }

    /// Append `val` as `node`, via `path`. [`DsError::QueueFull`] when the
    /// ring is at capacity.
    pub fn push(&self, node: &Arc<RtNode>, val: &[u8], path: AccessPath) -> DsResult<()> {
        DsCounters::bump(&self.sh.counters.dq_pushes);
        let start = Instant::now();
        if node.rank() == self.sh.cfg.owner {
            let out = push_code(&self.sh, owner_push(&self.sh, val));
            self.sh.latency.record(self.sh.keys.push_loc, start.elapsed().as_nanos() as u64);
            return out;
        }
        let (out, lat_key) = match path {
            AccessPath::OneSided => match self.os_push(node, val)? {
                true => (Ok(()), self.sh.keys.push_os),
                // Oversized payload, ticket contention, or an
                // observed-full ring (conservative): the owner arbitrates.
                false => {
                    DsCounters::bump(&self.sh.counters.dq_rpc_fallbacks);
                    (self.rpc_push(node, val), self.sh.keys.push_rpc)
                }
            },
            AccessPath::Rpc => (self.rpc_push(node, val), self.sh.keys.push_rpc),
        };
        self.sh.latency.record(lat_key, start.elapsed().as_nanos() as u64);
        out
    }

    /// Pop the oldest element as `node` (`Ok(None)` = empty). Executes at
    /// the owner: locally for the owner rank, via at-most-once RPC from
    /// anywhere else.
    pub fn pop(&self, node: &Arc<RtNode>) -> DsResult<Option<Vec<u8>>> {
        DsCounters::bump(&self.sh.counters.dq_pops);
        let start = Instant::now();
        if node.rank() == self.sh.cfg.owner {
            let (code, val) = owner_pop(&self.sh);
            self.sh.latency.record(self.sh.keys.pop_loc, start.elapsed().as_nanos() as u64);
            return if code == DS_OK { Ok(val) } else { Err(pop_error(code)) };
        }
        let (code, val) = self.client(node).call::<PopM>(&(), RpcOptions::at_most_once())?;
        self.sh.latency.record(self.sh.keys.pop_rpc, start.elapsed().as_nanos() as u64);
        if code == DS_OK {
            Ok(val)
        } else {
            Err(pop_error(code))
        }
    }

    fn client(&self, node: &Arc<RtNode>) -> Arc<RpcClient> {
        Arc::clone(
            self.clients
                .lock()
                .entry(node.rank())
                .or_insert_with(|| Arc::new(node.rpc_client(self.sh.cfg.owner))),
        )
    }

    fn rpc_push(&self, node: &Arc<RtNode>, val: &[u8]) -> DsResult<()> {
        let code = self.client(node).call::<PushM>(&val.to_vec(), RpcOptions::at_most_once())?;
        push_code(&self.sh, code)
    }

    /// One-sided push. `Ok(true)` = published; `Ok(false)` = fall back to
    /// RPC (oversized, contended past budget, or conservatively full).
    fn os_push(&self, node: &Arc<RtNode>, val: &[u8]) -> DsResult<bool> {
        let sh = &self.sh;
        if val.len() > sh.cfg.val_max {
            return Ok(false); // inline slot can't hold it: owner spills
        }
        let p = node.photon();
        let owner = sh.cfg.owner;
        let tmp = p.register_buffer(sh.slot.slot_bytes().max(CTRL_BYTES))?;
        let out = (|| {
            for _ in 0..sh.cfg.claim_retries {
                let rid = p.internal_rid();
                p.get_with_completion(owner, &tmp, 0, CTRL_BYTES, &sh.ctrl_desc, 0, rid)?;
                p.wait_local(rid)?;
                let t = tmp.read_u64(CTRL_TAIL);
                let head_pub = tmp.read_u64(CTRL_HEAD);
                // Conservative-correct: head_pub <= true head, so passing
                // here proves slot t%cap was already consumed. Failing may
                // be spurious (lagging head_pub) — the owner re-checks with
                // the true head on the RPC path.
                if t - head_pub >= sh.cfg.capacity as u64 {
                    return Ok(false);
                }
                if p.compare_swap(owner, &sh.ctrl_desc, CTRL_TAIL, t, t + 1)? != t {
                    DsCounters::bump(&sh.counters.dht_lock_conflicts);
                    continue;
                }
                // Ticket t claimed: write payload, then publish seq = t+1.
                let off = sh.slot.offset((t % sh.cfg.capacity as u64) as usize);
                tmp.write_u64(sh.lay.len, val.len() as u64);
                tmp.write_at(sh.lay.payload, val);
                let rid = p.internal_rid();
                p.put(
                    owner,
                    &tmp,
                    sh.lay.len,
                    sh.slot.slot_bytes() - sh.lay.len,
                    &sh.ring_desc,
                    off + sh.lay.len,
                    rid,
                )?;
                p.wait_local(rid)?;
                tmp.write_u64(0, t + 1);
                let rid = p.internal_rid();
                p.put(owner, &tmp, 0, 8, &sh.ring_desc, off + sh.lay.seq, rid)?;
                p.wait_local(rid)?;
                return Ok(true);
            }
            Ok(false) // claim contention: let the owner serialize us
        })();
        p.release_buffer(&tmp)?;
        out
    }
}

fn push_code(sh: &Shared, code: u8) -> DsResult<()> {
    match code {
        DS_OK => Ok(()),
        DS_QUEUE_FULL => {
            DsCounters::bump(&sh.counters.dq_full);
            Err(DsError::QueueFull)
        }
        _ => Err(DsError::Unavailable("queue ticket contention exhausted")),
    }
}

fn pop_error(_code: u8) -> DsError {
    DsError::Unavailable("queue pop failed at owner")
}

/// Owner-side push (RPC handler body and owner-local short-circuit): the
/// same claim protocol against the same words, via local region atomics.
fn owner_push(sh: &Arc<Shared>, val: &[u8]) -> u8 {
    for _ in 0..sh.cfg.claim_retries {
        let t = sh.ctrl.read_u64(CTRL_TAIL);
        let head = sh.head.load(Ordering::Acquire);
        if t - head >= sh.cfg.capacity as u64 {
            return DS_QUEUE_FULL;
        }
        if sh.ctrl.region().compare_swap_u64(CTRL_TAIL, t, t + 1) != t {
            DsCounters::bump(&sh.counters.dht_lock_conflicts);
            continue;
        }
        let off = sh.slot.offset((t % sh.cfg.capacity as u64) as usize);
        if val.len() > sh.cfg.val_max {
            DsCounters::bump(&sh.counters.dht_spills);
            sh.spill.lock().insert(t, val.to_vec());
            sh.ring.write_u64(off + sh.lay.len, SPILL64);
        } else {
            sh.ring.write_u64(off + sh.lay.len, val.len() as u64);
            sh.ring.write_at(off + sh.lay.payload, val);
        }
        sh.ring.write_u64(off + sh.lay.seq, t + 1); // publish
        return DS_OK;
    }
    DS_UNAVAILABLE
}

/// Owner-side pop: single consumer under the pop lock.
fn owner_pop(sh: &Arc<Shared>) -> (u8, Option<Vec<u8>>) {
    let _consumer = sh.pop_lock.lock();
    let h = sh.head.load(Ordering::Relaxed);
    let off = sh.slot.offset((h % sh.cfg.capacity as u64) as usize);
    // Present only when the producer published seq == h+1. A claimed but
    // unpublished ticket reads as empty — the element is not linearized
    // until its publish lands.
    if sh.ring.read_u64(off + sh.lay.seq) != h + 1 {
        return (DS_OK, None);
    }
    let len = sh.ring.read_u64(off + sh.lay.len);
    let val = if len == SPILL64 {
        sh.spill.lock().remove(&h).unwrap_or_default()
    } else {
        sh.ring.to_vec(off + sh.lay.payload, len as usize)
    };
    sh.head.store(h + 1, Ordering::Release);
    sh.ctrl.write_u64(CTRL_HEAD, h + 1); // advance producers' fullness view
    (DS_OK, Some(val))
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_fabric::{NetworkModel, VTime};
    use photon_runtime::{ActionRegistry, RtConfig, RuntimeCluster};

    fn boot(n: usize) -> RuntimeCluster {
        RuntimeCluster::new(n, NetworkModel::ib_fdr(), RtConfig::default(), ActionRegistry::new())
    }

    fn cfg(capacity: usize) -> DQueueConfig {
        DQueueConfig { capacity, owner: 0, ..DQueueConfig::default() }
    }

    #[test]
    fn fifo_per_producer_across_both_paths() {
        let c = boot(2);
        let q = DQueue::new(&c, cfg(16)).unwrap();
        let prod = c.node(1);
        for i in 0..6u8 {
            let path = if i % 2 == 0 { AccessPath::OneSided } else { AccessPath::Rpc };
            q.push(prod, &[i], path).unwrap();
        }
        // Owner pops locally, in push order.
        for i in 0..6u8 {
            assert_eq!(q.pop(c.node(0)).unwrap(), Some(vec![i]));
        }
        assert_eq!(q.pop(c.node(0)).unwrap(), None);
        c.shutdown();
    }

    #[test]
    fn remote_ranks_pop_via_rpc() {
        let c = boot(3);
        let q = DQueue::new(&c, cfg(8)).unwrap();
        q.push(c.node(1), b"a", AccessPath::OneSided).unwrap();
        q.push(c.node(2), b"b", AccessPath::Rpc).unwrap();
        assert_eq!(q.pop(c.node(2)).unwrap(), Some(b"a".to_vec()));
        assert_eq!(q.pop(c.node(1)).unwrap(), Some(b"b".to_vec()));
        assert_eq!(q.pop(c.node(1)).unwrap(), None);
        c.shutdown();
    }

    #[test]
    fn a_full_ring_is_typed_and_drains() {
        let c = boot(2);
        let q = DQueue::new(&c, cfg(4)).unwrap();
        let prod = c.node(1);
        for i in 0..4u8 {
            q.push(prod, &[i], AccessPath::OneSided).unwrap();
        }
        // Ring full: one-sided observes it and the owner confirms it.
        assert_eq!(q.push(prod, &[9], AccessPath::OneSided), Err(DsError::QueueFull));
        assert_eq!(q.push(prod, &[9], AccessPath::Rpc), Err(DsError::QueueFull));
        assert!(q.stats().dq_full >= 2);
        // One pop frees one slot; the ring wraps and stays FIFO.
        assert_eq!(q.pop(c.node(0)).unwrap(), Some(vec![0]));
        q.push(prod, &[4], AccessPath::OneSided).unwrap();
        for i in 1..5u8 {
            assert_eq!(q.pop(c.node(0)).unwrap(), Some(vec![i]));
        }
        c.shutdown();
    }

    #[test]
    fn ring_reuse_survives_many_wraps() {
        let c = boot(2);
        let q = DQueue::new(&c, cfg(4)).unwrap();
        for i in 0..64u64 {
            q.push(c.node(1), &i.to_le_bytes(), AccessPath::OneSided).unwrap();
            assert_eq!(q.pop(c.node(0)).unwrap(), Some(i.to_le_bytes().to_vec()));
        }
        assert!(q.is_empty());
        c.shutdown();
    }

    #[test]
    fn oversized_payloads_spill_through_rpc() {
        let c = boot(2);
        let q = DQueue::new(&c, cfg(8)).unwrap();
        let big = vec![0xAA; 5000]; // val_max is 64
        q.push(c.node(1), &big, AccessPath::OneSided).unwrap();
        q.push(c.node(1), b"small", AccessPath::OneSided).unwrap();
        assert!(q.stats().dq_rpc_fallbacks >= 1);
        assert_eq!(q.pop(c.node(0)).unwrap(), Some(big));
        assert_eq!(q.pop(c.node(0)).unwrap(), Some(b"small".to_vec()));
        assert!(q.sh.spill.lock().is_empty(), "spill entry must be reclaimed");
        c.shutdown();
    }

    #[test]
    fn concurrent_producers_neither_lose_nor_duplicate() {
        let c = boot(3);
        let q = Arc::new(DQueue::new(&c, cfg(64)).unwrap());
        const PER: u64 = 40;
        let mut threads = Vec::new();
        for rank in [1usize, 2] {
            let q = Arc::clone(&q);
            let node = Arc::clone(c.node(rank));
            threads.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let path = if i % 2 == 0 { AccessPath::OneSided } else { AccessPath::Rpc };
                    let mut v = vec![rank as u8];
                    v.extend_from_slice(&i.to_le_bytes());
                    loop {
                        match q.push(&node, &v, path) {
                            Ok(()) => break,
                            Err(DsError::QueueFull) => std::thread::yield_now(),
                            Err(e) => panic!("push failed: {e}"),
                        }
                    }
                }
            }));
        }
        // The owner drains concurrently; per-producer order must hold.
        let mut seen: HashMap<u8, Vec<u64>> = HashMap::new();
        let mut total = 0;
        while total < 2 * PER {
            if let Some(v) = q.pop(c.node(0)).unwrap() {
                let i = u64::from_le_bytes(v[1..9].try_into().unwrap());
                seen.entry(v[0]).or_default().push(i);
                total += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for t in threads {
            t.join().unwrap();
        }
        for (producer, items) in &seen {
            assert_eq!(items.len() as u64, PER, "producer {producer} lost/duplicated items");
            assert!(items.windows(2).all(|w| w[0] < w[1]), "producer {producer} out of order");
        }
        assert_eq!(q.pop(c.node(0)).unwrap(), None);
        c.shutdown();
    }

    #[test]
    fn a_dead_owner_resolves_typed() {
        let c = boot(3);
        let q = DQueue::new(&c, DQueueConfig { owner: 1, ..cfg(8) }).unwrap();
        q.push(c.node(0), b"x", AccessPath::OneSided).unwrap();
        c.photon().fabric().switch().faults().kill_node_at(1, VTime(0));
        assert!(matches!(q.push(c.node(0), b"y", AccessPath::OneSided), Err(DsError::Rt(_))));
        assert!(matches!(q.push(c.node(2), b"y", AccessPath::Rpc), Err(DsError::Rt(_))));
        assert!(matches!(q.pop(c.node(0)), Err(DsError::Rt(_))));
        c.shutdown();
    }
}
