//! RDMA-written completion ledgers.
//!
//! A ledger is a circular buffer of fixed-size entries living in the
//! *consumer's* registered memory.  The producer appends entries with plain
//! RDMA writes (no target-side CPU involvement); the consumer discovers them
//! by polling local memory — the key mechanism that lets Photon deliver
//! *remote* completion identifiers one-sidedly.
//!
//! Validity is sequence-number based: slot `k` of wraparound epoch `e` is
//! valid when it contains sequence `e * slots + k + 1`.  Because sequence
//! numbers never repeat in a slot, no cleanup write is needed after
//! consumption.
//!
//! Flow control is credit-based: the producer may be at most `slots` entries
//! ahead of the consumer's last *returned* count.  The consumer returns its
//! consumed count every [`crate::PhotonConfig::credit_interval_entries`]
//! entries by RDMA-writing it to a credit word in the producer's memory.
//!
//! This module contains only the pure state machines and the wire encoding;
//! the [`crate::photon`] engine performs the actual RDMA operations.

/// Size of one ledger entry on the wire.
pub const ENTRY_BYTES: usize = 48;

/// Byte offset of the delivery-timestamp field within an entry (stamped by
/// the fabric; see `photon_fabric::SendWr::with_stamp`).
pub const TS_OFFSET: usize = 40;

/// What an entry announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Remote completion of a large (direct RDMA) put-with-completion.
    Completion,
    /// Remote notification of a get-with-completion.
    GetNotify,
    /// Rendezvous: the sender should fetch this receive-buffer descriptor.
    RdvPost,
    /// Rendezvous: the put into the announced buffer has finished.
    Fin,
}

impl EntryKind {
    fn to_u8(self) -> u8 {
        match self {
            EntryKind::Completion => 1,
            EntryKind::GetNotify => 2,
            EntryKind::RdvPost => 3,
            EntryKind::Fin => 4,
        }
    }

    fn from_u8(v: u8) -> Option<EntryKind> {
        match v {
            1 => Some(EntryKind::Completion),
            2 => Some(EntryKind::GetNotify),
            3 => Some(EntryKind::RdvPost),
            4 => Some(EntryKind::Fin),
            _ => None,
        }
    }
}

/// One ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Validity sequence number (1-based production count).
    pub seq: u64,
    /// The completion identifier (or rendezvous tag).
    pub rid: u64,
    /// Payload size the entry describes (put size, announced buffer size).
    pub size: u64,
    /// Auxiliary address (announced buffer base for `RdvPost`).
    pub addr: u64,
    /// Auxiliary rkey (announced buffer key for `RdvPost`).
    pub rkey: u32,
    /// Entry classification.
    pub kind: EntryKind,
    /// Virtual delivery time in nanoseconds (stamped by the fabric).
    pub ts: u64,
}

impl Entry {
    /// Encode to the fixed wire format.
    pub fn encode(&self) -> [u8; ENTRY_BYTES] {
        let mut b = [0u8; ENTRY_BYTES];
        b[0..8].copy_from_slice(&self.seq.to_le_bytes());
        b[8..16].copy_from_slice(&self.rid.to_le_bytes());
        b[16..24].copy_from_slice(&self.size.to_le_bytes());
        b[24..32].copy_from_slice(&self.addr.to_le_bytes());
        b[32..36].copy_from_slice(&self.rkey.to_le_bytes());
        b[36] = self.kind.to_u8();
        b[TS_OFFSET..TS_OFFSET + 8].copy_from_slice(&self.ts.to_le_bytes());
        b
    }

    /// Decode from the wire format; `None` if the kind byte is invalid
    /// (e.g. an unwritten slot).
    pub fn decode(b: &[u8]) -> Option<Entry> {
        debug_assert!(b.len() >= ENTRY_BYTES);
        let kind = EntryKind::from_u8(b[36])?;
        Some(Entry {
            seq: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            rid: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            size: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            addr: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            rkey: u32::from_le_bytes(b[32..36].try_into().unwrap()),
            kind,
            ts: u64::from_le_bytes(b[TS_OFFSET..TS_OFFSET + 8].try_into().unwrap()),
        })
    }
}

/// Producer-side ledger state for one peer direction.
#[derive(Debug)]
pub struct LedgerTx {
    slots: u64,
    produced: u64,
    /// Consumer's consumed count, as last read from the local credit word.
    credits_seen: u64,
}

impl LedgerTx {
    /// Producer over a ledger of `slots` entries.
    pub fn new(slots: usize) -> LedgerTx {
        assert!(slots >= 2, "ledger needs at least 2 slots");
        LedgerTx { slots: slots as u64, produced: 0, credits_seen: 0 }
    }

    /// Refresh flow-control state from the credit word value `consumed`.
    /// Stale (smaller) values are ignored.
    pub fn update_credits(&mut self, consumed: u64) {
        debug_assert!(consumed <= self.produced);
        self.credits_seen = self.credits_seen.max(consumed);
    }

    /// Entries that may be produced before blocking.
    pub fn available(&self) -> u64 {
        self.slots - (self.produced - self.credits_seen)
    }

    /// Reserve the next slot. Returns `(slot_index, seq)` or `None` when out
    /// of credits.
    pub fn try_produce(&mut self) -> Option<(usize, u64)> {
        if self.available() == 0 {
            return None;
        }
        let seq = self.produced + 1;
        let slot = (self.produced % self.slots) as usize;
        self.produced = seq;
        Some((slot, seq))
    }

    /// Byte offset of `slot` within the remote ledger area.
    pub fn slot_offset(&self, slot: usize) -> usize {
        slot * ENTRY_BYTES
    }

    /// Total entries produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

/// Consumer-side ledger state for one peer direction.
#[derive(Debug)]
pub struct LedgerRx {
    slots: u64,
    consumed: u64,
    last_credit_return: u64,
    credit_interval: u64,
}

impl LedgerRx {
    /// Consumer over a ledger of `slots` entries, returning credits every
    /// `credit_interval` consumed entries.
    pub fn new(slots: usize, credit_interval: u64) -> LedgerRx {
        assert!(slots >= 2);
        LedgerRx {
            slots: slots as u64,
            consumed: 0,
            last_credit_return: 0,
            credit_interval: credit_interval.max(1),
        }
    }

    /// Byte offset (within the local ledger area) of the slot the next valid
    /// entry must appear in.
    pub fn head_offset(&self) -> usize {
        ((self.consumed % self.slots) as usize) * ENTRY_BYTES
    }

    /// The sequence number the next valid entry must carry.
    pub fn expected_seq(&self) -> u64 {
        self.consumed + 1
    }

    /// Inspect decoded `entry` bytes from the head slot: if it carries the
    /// expected sequence, consume it and return it.
    pub fn accept(&mut self, bytes: &[u8]) -> Option<Entry> {
        let e = Entry::decode(bytes)?;
        if e.seq != self.expected_seq() {
            return None;
        }
        self.consumed += 1;
        Some(e)
    }

    /// If enough entries have been consumed since the last credit return,
    /// emit the consumed count that should be written to the producer's
    /// credit word.
    pub fn credit_due(&mut self) -> Option<u64> {
        if self.consumed - self.last_credit_return >= self.credit_interval {
            self.last_credit_return = self.consumed;
            Some(self.consumed)
        } else {
            None
        }
    }

    /// Total entries consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(seq: u64, rid: u64) -> Entry {
        Entry { seq, rid, size: 0, addr: 0, rkey: 0, kind: EntryKind::Completion, ts: 0 }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = Entry {
            seq: 42,
            rid: 0xdead_beef_cafe,
            size: 4096,
            addr: 0x1000_0040,
            rkey: 17,
            kind: EntryKind::RdvPost,
            ts: 123_456,
        };
        assert_eq!(Entry::decode(&e.encode()), Some(e));
    }

    #[test]
    fn zeroed_slot_decodes_to_none() {
        assert_eq!(Entry::decode(&[0u8; ENTRY_BYTES]), None);
    }

    #[test]
    fn producer_blocks_without_credits() {
        let mut tx = LedgerTx::new(4);
        for i in 0..4 {
            let (slot, seq) = tx.try_produce().unwrap();
            assert_eq!(slot, i as usize);
            assert_eq!(seq, i + 1);
        }
        assert_eq!(tx.available(), 0);
        assert!(tx.try_produce().is_none());
        tx.update_credits(2);
        assert_eq!(tx.available(), 2);
        let (slot, seq) = tx.try_produce().unwrap();
        assert_eq!((slot, seq), (0, 5), "wraps to slot 0 with fresh seq");
    }

    #[test]
    fn stale_credit_updates_ignored() {
        let mut tx = LedgerTx::new(4);
        tx.try_produce().unwrap();
        tx.try_produce().unwrap();
        tx.update_credits(2);
        tx.update_credits(1); // stale
        assert_eq!(tx.available(), 4);
    }

    #[test]
    fn consumer_accepts_only_expected_seq() {
        let mut rx = LedgerRx::new(4, 2);
        assert_eq!(rx.head_offset(), 0);
        // A stale entry (wrong seq) is not consumed.
        assert!(rx.accept(&entry(5, 1).encode()).is_none());
        assert_eq!(rx.consumed(), 0);
        // The expected sequence is.
        let got = rx.accept(&entry(1, 7).encode()).unwrap();
        assert_eq!(got.rid, 7);
        // Re-reading the same slot does not double-consume.
        assert!(rx.accept(&entry(1, 7).encode()).is_none());
        assert_eq!(rx.consumed(), 1);
        assert_eq!(rx.head_offset(), ENTRY_BYTES);
        assert_eq!(rx.expected_seq(), 2);
    }

    #[test]
    fn credits_emitted_at_interval() {
        let mut rx = LedgerRx::new(8, 3);
        for i in 1..=9u64 {
            rx.accept(&entry(i, 0).encode()).unwrap();
            // Head advances one slot per entry... feed matching slots.
            let due = rx.credit_due();
            if i % 3 == 0 {
                assert_eq!(due, Some(i));
            } else {
                assert_eq!(due, None);
            }
        }
    }

    proptest! {
        /// Ledger ring invariant: under any interleaving of produce /
        /// credit-return operations, the producer never holds more than
        /// `slots` unconsumed entries, sequence numbers are dense, and every
        /// produced entry is eventually consumable in order.
        #[test]
        fn ring_invariants(slots in 2usize..32, script in proptest::collection::vec(0u8..4, 1..200)) {
            let mut tx = LedgerTx::new(slots);
            let mut rx = LedgerRx::new(slots, 1);
            // The simulated ledger memory.
            let mut mem = vec![0u8; slots * ENTRY_BYTES];
            let mut next_rid = 0u64;
            let mut expected_next_consumed_rid = 0u64;
            for step in script {
                match step {
                    // produce
                    0 | 1 => {
                        if let Some((slot, seq)) = tx.try_produce() {
                            let e = entry(seq, next_rid);
                            next_rid += 1;
                            let off = tx.slot_offset(slot);
                            mem[off..off + ENTRY_BYTES].copy_from_slice(&e.encode());
                        }
                    }
                    // consume
                    2 => {
                        let off = rx.head_offset();
                        if let Some(e) = rx.accept(&mem[off..off + ENTRY_BYTES]) {
                            prop_assert_eq!(e.rid, expected_next_consumed_rid);
                            expected_next_consumed_rid += 1;
                        }
                    }
                    // return credits
                    _ => {
                        if let Some(c) = rx.credit_due() {
                            tx.update_credits(c);
                        }
                    }
                }
                prop_assert!(tx.produced() - rx.consumed() <= slots as u64,
                    "producer can never lap the consumer");
                prop_assert!(tx.available() <= slots as u64);
            }
            // Drain: everything produced must be consumable, in order.
            while rx.consumed() < tx.produced() {
                let off = rx.head_offset();
                let e = rx.accept(&mem[off..off + ENTRY_BYTES]).expect("entry must be valid");
                prop_assert_eq!(e.rid, expected_next_consumed_rid);
                expected_next_consumed_rid += 1;
            }
        }
    }

    proptest! {
        #[test]
        fn entry_roundtrip_prop(seq in any::<u64>(), rid in any::<u64>(), size in any::<u64>(),
                                addr in any::<u64>(), rkey in any::<u32>(), k in 1u8..=4) {
            let e = Entry { seq, rid, size, addr, rkey, kind: EntryKind::from_u8(k).unwrap(), ts: seq ^ rid };
            prop_assert_eq!(Entry::decode(&e.encode()), Some(e));
        }
    }
}
