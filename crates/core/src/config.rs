//! Middleware configuration.
//!
//! Construct configs through [`PhotonConfig::builder`], which validates
//! cross-field constraints (eager threshold vs ring capacity, backoff base
//! vs ceiling, …) and reports nonsense values as
//! [`PhotonError::Config`](crate::PhotonError#variant.Config). Direct struct-literal
//! construction still compiles (the fields stay public for ablation
//! experiments and tests) but is deprecated in favor of the builder: a
//! literal can silently encode a config the runtime will normalize or
//! misbehave under, while `build()` rejects it with a named reason.

use crate::{PhotonError, Result};

/// Which fabric backend a [`crate::PhotonCluster`] constructs its ranks
/// over. The middleware itself is backend-agnostic — it posts against the
/// `photon_fabric::api::FabricBackend` trait — so this knob only selects
/// what `PhotonCluster::new` builds underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The simulated RDMA fabric: synchronous effects, LogGP virtual time,
    /// fault injection. The default, and what every deterministic test and
    /// modeled experiment uses.
    #[default]
    Sim,
    /// The real-sockets transport: UDP datagrams over loopback (or any
    /// routable path), a per-process reactor emulating one-sided ops, and
    /// wall-clock timestamps. Completions are asynchronous — use the
    /// blocking `wait_*` APIs, not post-then-poll-once patterns.
    Sock,
}

/// Tunables of a Photon context.
///
/// Defaults follow the original implementation's order of magnitude: a few
/// hundred ledger slots and a few hundred KiB of eager space per peer, with
/// an 8 KiB eager/rendezvous threshold.
///
/// Prefer [`PhotonConfig::builder`] over struct literals — see the module
/// docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhotonConfig {
    /// Payloads at or below this size take the eager (packed) path when a
    /// remote buffer is supplied; larger payloads go direct RDMA + ledger.
    pub eager_threshold: usize,
    /// Bytes of eager ring per peer (per direction).
    pub eager_ring_bytes: usize,
    /// Completion-ledger slots per peer (per direction).
    pub ledger_entries: usize,
    /// Modeled CPU copy throughput for probe-time copy-out, in picoseconds
    /// per byte (25 ps/B = 40 GB/s memcpy).
    pub copy_ps_per_byte: u64,
    /// Return ledger credits after consuming this many entries
    /// (0 = every entry; default = half the ledger).
    pub credit_interval: usize,
    /// Bytes of per-peer collective scratch space.
    pub coll_slot_bytes: usize,
    /// Wall-clock seconds a blocking wait may spin before reporting
    /// [`crate::PhotonError::Timeout`] (deadlock guard for tests).
    pub wait_timeout_secs: u64,
    /// Deliver direct-put remote completions through RDMA-write-with-
    /// immediate CQ events instead of ledger entries (the CQ-notification
    /// design alternative). One wire op instead of two, but **no
    /// credit-based flow control**: a flood can overflow the consumer's
    /// completion queue, surfacing `CqOverflow` at the producer — exactly
    /// the trade the ledger design avoids. Ablated by experiment E13.
    pub imm_completions: bool,
    /// **Test-only seeded bug**: drop every `n`-th credit-return write on
    /// the floor (0 = disabled, the only sane production value). The
    /// consumer believes it returned credits but the producer's credit
    /// words are never updated. Exists so the simulation-test invariant
    /// checkers can prove they detect credit-accounting bugs (the mutation
    /// smoke check in `crates/simtest`).
    pub skip_credit_return_interval: u64,
    /// Virtual nanoseconds a peer may stay unreachable before the first
    /// reconnection probe fires (Healthy → Suspect response deadline of the
    /// per-peer health machine).
    pub suspect_deadline_ns: u64,
    /// Initial reconnection-probe backoff in virtual nanoseconds; doubles
    /// after every failed probe.
    pub backoff_base_ns: u64,
    /// Ceiling for the exponential reconnection backoff.
    pub backoff_max_ns: u64,
    /// Failed reconnection probes before a Suspect peer is declared Dead
    /// and evicted (pending rids flushed as error completions, eager/ledger
    /// credits reclaimed).
    pub suspect_death_probes: u32,
    /// Dedicated progress threads per rank. `0` (the default) keeps the
    /// classic inline model: callers drive completion processing from their
    /// own `wait_*`/`poll_*` calls, which is what the deterministic
    /// simulation-test executor and single-threaded steppers require.
    /// With `N >= 1`, the cluster spawns `N` background threads per rank
    /// that shard the peer set between them (peer → thread by the same
    /// Fibonacci-hash scheme the completion queues use) and own CQE harvest
    /// plus event fan-out for their peers; caller paths become consumers of
    /// the sharded queues and only help-pump when they would otherwise
    /// block (so a thread-starved host cannot livelock). Capped at 64.
    pub progress_threads: usize,
    /// Maximum live connections a rank keeps in its lazy connection cache
    /// (`0` = unbounded, the default). When a connect would exceed the cap,
    /// the least-recently-used idle connection is evicted: its pending work
    /// requests flush as `FlushErr` completions exactly like a peer death,
    /// but the peer stays *healthy* and reconnects on the next op. Must be
    /// at least 2 when bounded — an initiator and an acceptor half can
    /// coexist during a single transfer.
    pub conn_cache_cap: usize,
    /// Modeled virtual-nanosecond cost of establishing one connection
    /// (QP bring-up + service-region key exchange), charged to the
    /// initiating rank's clock. `0` (the default) keeps first-contact
    /// setup free so steady-state experiments measure the data path only;
    /// E22 sets it explicitly to measure reconnect latency under churn.
    pub connect_cost_ns: u64,
    /// Fabric backend [`crate::PhotonCluster::new`] constructs: the
    /// simulated NIC (default) or the real-sockets transport.
    pub backend: BackendKind,
}

impl PhotonConfig {
    /// Start building a validated configuration from the defaults.
    ///
    /// ```
    /// use photon_core::PhotonConfig;
    /// let cfg = PhotonConfig::builder()
    ///     .eager_threshold(1024)
    ///     .ledger_entries(64)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.eager_threshold, 1024);
    /// assert!(PhotonConfig::builder().backoff_base_ns(10).backoff_max_ns(5).build().is_err());
    /// ```
    pub fn builder() -> PhotonConfigBuilder {
        PhotonConfigBuilder { cfg: PhotonConfig::default() }
    }

    /// Re-open this config for modification through the validating builder.
    pub fn to_builder(self) -> PhotonConfigBuilder {
        PhotonConfigBuilder { cfg: self }
    }

    /// Validate cross-field constraints; `Err(PhotonError::Config)` names
    /// every violated rule. Called by [`PhotonConfigBuilder::build`].
    pub fn validate(&self) -> Result<()> {
        let mut faults: Vec<String> = Vec::new();
        let min_ring = 4 * crate::eager::FRAME_HDR;
        if self.eager_ring_bytes < min_ring {
            faults.push(format!(
                "eager_ring_bytes {} below minimum {min_ring} (4 frame headers)",
                self.eager_ring_bytes
            ));
        } else if self.eager_threshold > self.max_eager_payload() {
            faults.push(format!(
                "eager_threshold {} exceeds max eager payload {} of a {}-byte ring \
                 (a frame may span at most half the ring)",
                self.eager_threshold,
                self.max_eager_payload(),
                self.eager_ring_bytes
            ));
        }
        if self.ledger_entries < 2 {
            faults.push(format!(
                "ledger_entries {} below minimum 2 (credit return needs headroom)",
                self.ledger_entries
            ));
        }
        if self.backoff_base_ns == 0 {
            faults.push("backoff_base_ns must be nonzero".to_string());
        }
        if self.backoff_base_ns > self.backoff_max_ns {
            faults.push(format!(
                "backoff_base_ns {} exceeds backoff_max_ns {}",
                self.backoff_base_ns, self.backoff_max_ns
            ));
        }
        if self.suspect_death_probes == 0 {
            faults.push("suspect_death_probes must be nonzero".to_string());
        }
        if self.coll_slot_bytes == 0 {
            faults.push("coll_slot_bytes must be nonzero".to_string());
        }
        if self.wait_timeout_secs == 0 {
            faults.push("wait_timeout_secs must be nonzero (it is the deadlock guard)".to_string());
        }
        if self.progress_threads > 64 {
            faults.push(format!(
                "progress_threads {} exceeds the cap of 64 (threads shard peers; \
                 more threads than cores is never useful)",
                self.progress_threads
            ));
        }
        if self.conn_cache_cap == 1 {
            faults.push(
                "conn_cache_cap 1 cannot hold both halves of a transfer \
                 (use 0 for unbounded, or at least 2)"
                    .to_string(),
            );
        }
        if faults.is_empty() {
            Ok(())
        } else {
            Err(PhotonError::Config(faults.join("; ")))
        }
    }

    /// Configuration with a tiny ledger/ring, for exercising backpressure in
    /// tests.
    pub fn tiny() -> Self {
        PhotonConfig {
            eager_threshold: 64,
            eager_ring_bytes: 512,
            ledger_entries: 8,
            ..PhotonConfig::default()
        }
    }

    /// Effective credit-return interval in entries.
    pub fn credit_interval_entries(&self) -> u64 {
        if self.credit_interval == 0 {
            1
        } else {
            (self.credit_interval as u64).min(self.ledger_entries as u64 / 2).max(1)
        }
    }

    /// Largest payload a single eager frame can carry.
    pub fn max_eager_payload(&self) -> usize {
        self.eager_ring_bytes / 2 - crate::eager::FRAME_HDR
    }
}

impl Default for PhotonConfig {
    fn default() -> Self {
        PhotonConfig {
            eager_threshold: 8192,
            eager_ring_bytes: 256 * 1024,
            ledger_entries: 256,
            copy_ps_per_byte: 25,
            credit_interval: 128,
            coll_slot_bytes: 64 * 1024,
            wait_timeout_secs: 30,
            imm_completions: false,
            skip_credit_return_interval: 0,
            suspect_deadline_ns: 50_000,
            backoff_base_ns: 20_000,
            backoff_max_ns: 1_000_000,
            suspect_death_probes: 12,
            progress_threads: 0,
            conn_cache_cap: 0,
            connect_cost_ns: 0,
            backend: BackendKind::Sim,
        }
    }
}

/// Validating builder for [`PhotonConfig`]; obtain one through
/// [`PhotonConfig::builder`] or [`PhotonConfig::to_builder`].
///
/// Every setter is infallible; [`PhotonConfigBuilder::build`] checks the
/// cross-field constraints once, over the final value set, and returns
/// [`PhotonError::Config`](crate::PhotonError#variant.Config) naming each violated
/// rule.
#[derive(Debug, Clone, Copy)]
pub struct PhotonConfigBuilder {
    cfg: PhotonConfig,
}

macro_rules! builder_setters {
    ( $( $(#[doc = $doc:literal])+ $field:ident: $ty:ty, )+ ) => {
        $(
            $(#[doc = $doc])+
            pub fn $field(mut self, v: $ty) -> Self {
                self.cfg.$field = v;
                self
            }
        )+
    };
}

impl PhotonConfigBuilder {
    builder_setters! {
        /// See [`PhotonConfig::eager_threshold`].
        eager_threshold: usize,
        /// See [`PhotonConfig::eager_ring_bytes`].
        eager_ring_bytes: usize,
        /// See [`PhotonConfig::ledger_entries`].
        ledger_entries: usize,
        /// See [`PhotonConfig::copy_ps_per_byte`].
        copy_ps_per_byte: u64,
        /// See [`PhotonConfig::credit_interval`].
        credit_interval: usize,
        /// See [`PhotonConfig::coll_slot_bytes`].
        coll_slot_bytes: usize,
        /// See [`PhotonConfig::wait_timeout_secs`].
        wait_timeout_secs: u64,
        /// See [`PhotonConfig::imm_completions`].
        imm_completions: bool,
        /// See [`PhotonConfig::suspect_deadline_ns`].
        suspect_deadline_ns: u64,
        /// See [`PhotonConfig::backoff_base_ns`].
        backoff_base_ns: u64,
        /// See [`PhotonConfig::backoff_max_ns`].
        backoff_max_ns: u64,
        /// See [`PhotonConfig::suspect_death_probes`].
        suspect_death_probes: u32,
        /// See [`PhotonConfig::progress_threads`].
        progress_threads: usize,
        /// See [`PhotonConfig::conn_cache_cap`].
        conn_cache_cap: usize,
        /// See [`PhotonConfig::connect_cost_ns`].
        connect_cost_ns: u64,
        /// See [`PhotonConfig::backend`].
        backend: BackendKind,
    }

    /// Validate and produce the final configuration.
    pub fn build(self) -> Result<PhotonConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = PhotonConfig::default();
        assert!(c.eager_threshold <= c.max_eager_payload());
        assert!(c.credit_interval_entries() >= 1);
        assert!(c.credit_interval_entries() <= c.ledger_entries as u64 / 2);
    }

    #[test]
    fn tiny_config_still_valid() {
        let c = PhotonConfig::tiny();
        assert!(c.eager_threshold <= c.max_eager_payload());
        assert!(c.credit_interval_entries() >= 1);
    }

    #[test]
    fn zero_credit_interval_means_every_entry() {
        let c = PhotonConfig { credit_interval: 0, ..PhotonConfig::default() };
        assert_eq!(c.credit_interval_entries(), 1);
    }

    #[test]
    fn builder_roundtrips_and_validates() {
        let cfg = PhotonConfig::builder()
            .eager_threshold(64)
            .eager_ring_bytes(512)
            .ledger_entries(8)
            .build()
            .unwrap();
        assert_eq!(cfg, PhotonConfig::tiny());
        let again = cfg.to_builder().imm_completions(true).build().unwrap();
        assert!(again.imm_completions);
    }

    #[test]
    fn builder_rejects_threshold_beyond_ring_capacity() {
        let err = PhotonConfig::builder()
            .eager_ring_bytes(512)
            .eager_threshold(4096)
            .build()
            .unwrap_err();
        let crate::PhotonError::Config(msg) = err else { panic!("want Config, got {err:?}") };
        assert!(msg.contains("eager_threshold"), "{msg}");
    }

    #[test]
    fn builder_rejects_inverted_backoff_and_tiny_ring() {
        let err = PhotonConfig::builder()
            .backoff_base_ns(1_000_000)
            .backoff_max_ns(10)
            .eager_ring_bytes(1)
            .suspect_death_probes(0)
            .build()
            .unwrap_err();
        let crate::PhotonError::Config(msg) = err else { panic!("want Config, got {err:?}") };
        // Every violated rule is named, joined in one message.
        assert!(msg.contains("backoff_base_ns"), "{msg}");
        assert!(msg.contains("eager_ring_bytes"), "{msg}");
        assert!(msg.contains("suspect_death_probes"), "{msg}");
    }

    #[test]
    fn progress_threads_knob_validates() {
        let cfg = PhotonConfig::builder().progress_threads(4).build().unwrap();
        assert_eq!(cfg.progress_threads, 4);
        assert_eq!(PhotonConfig::default().progress_threads, 0, "inline mode is the default");
        let err = PhotonConfig::builder().progress_threads(65).build().unwrap_err();
        let crate::PhotonError::Config(msg) = err else { panic!("want Config, got {err:?}") };
        assert!(msg.contains("progress_threads"), "{msg}");
    }

    #[test]
    fn backend_knob_defaults_to_sim() {
        assert_eq!(PhotonConfig::default().backend, BackendKind::Sim);
        let cfg = PhotonConfig::builder().backend(BackendKind::Sock).build().unwrap();
        assert_eq!(cfg.backend, BackendKind::Sock);
    }

    #[test]
    fn conn_cache_cap_rejects_one() {
        assert_eq!(PhotonConfig::default().conn_cache_cap, 0, "unbounded is the default");
        let err = PhotonConfig::builder().conn_cache_cap(1).build().unwrap_err();
        let crate::PhotonError::Config(msg) = err else { panic!("want Config, got {err:?}") };
        assert!(msg.contains("conn_cache_cap"), "{msg}");
        assert!(PhotonConfig::builder().conn_cache_cap(2).build().is_ok());
    }

    #[test]
    fn builder_rejects_zero_guards() {
        for (i, b) in [
            PhotonConfig::builder().backoff_base_ns(0),
            PhotonConfig::builder().ledger_entries(1),
            PhotonConfig::builder().coll_slot_bytes(0),
            PhotonConfig::builder().wait_timeout_secs(0),
        ]
        .into_iter()
        .enumerate()
        {
            assert!(matches!(b.build(), Err(crate::PhotonError::Config(_))), "case {i}");
        }
    }
}
