//! Middleware configuration.

/// Tunables of a Photon context.
///
/// Defaults follow the original implementation's order of magnitude: a few
/// hundred ledger slots and a few hundred KiB of eager space per peer, with
/// an 8 KiB eager/rendezvous threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhotonConfig {
    /// Payloads at or below this size take the eager (packed) path when a
    /// remote buffer is supplied; larger payloads go direct RDMA + ledger.
    pub eager_threshold: usize,
    /// Bytes of eager ring per peer (per direction).
    pub eager_ring_bytes: usize,
    /// Completion-ledger slots per peer (per direction).
    pub ledger_entries: usize,
    /// Modeled CPU copy throughput for probe-time copy-out, in picoseconds
    /// per byte (25 ps/B = 40 GB/s memcpy).
    pub copy_ps_per_byte: u64,
    /// Return ledger credits after consuming this many entries
    /// (0 = every entry; default = half the ledger).
    pub credit_interval: usize,
    /// Bytes of per-peer collective scratch space.
    pub coll_slot_bytes: usize,
    /// Wall-clock seconds a blocking wait may spin before reporting
    /// [`crate::PhotonError::Timeout`] (deadlock guard for tests).
    pub wait_timeout_secs: u64,
    /// Deliver direct-put remote completions through RDMA-write-with-
    /// immediate CQ events instead of ledger entries (the CQ-notification
    /// design alternative). One wire op instead of two, but **no
    /// credit-based flow control**: a flood can overflow the consumer's
    /// completion queue, surfacing `CqOverflow` at the producer — exactly
    /// the trade the ledger design avoids. Ablated by experiment E13.
    pub imm_completions: bool,
    /// **Test-only seeded bug**: drop every `n`-th credit-return write on
    /// the floor (0 = disabled, the only sane production value). The
    /// consumer believes it returned credits but the producer's credit
    /// words are never updated. Exists so the simulation-test invariant
    /// checkers can prove they detect credit-accounting bugs (the mutation
    /// smoke check in `crates/simtest`).
    pub skip_credit_return_interval: u64,
    /// Virtual nanoseconds a peer may stay unreachable before the first
    /// reconnection probe fires (Healthy → Suspect response deadline of the
    /// per-peer health machine).
    pub suspect_deadline_ns: u64,
    /// Initial reconnection-probe backoff in virtual nanoseconds; doubles
    /// after every failed probe.
    pub backoff_base_ns: u64,
    /// Ceiling for the exponential reconnection backoff.
    pub backoff_max_ns: u64,
    /// Failed reconnection probes before a Suspect peer is declared Dead
    /// and evicted (pending rids flushed as error completions, eager/ledger
    /// credits reclaimed).
    pub suspect_death_probes: u32,
}

impl PhotonConfig {
    /// Configuration with a tiny ledger/ring, for exercising backpressure in
    /// tests.
    pub fn tiny() -> Self {
        PhotonConfig {
            eager_threshold: 64,
            eager_ring_bytes: 512,
            ledger_entries: 8,
            ..PhotonConfig::default()
        }
    }

    /// Effective credit-return interval in entries.
    pub fn credit_interval_entries(&self) -> u64 {
        if self.credit_interval == 0 {
            1
        } else {
            (self.credit_interval as u64).min(self.ledger_entries as u64 / 2).max(1)
        }
    }

    /// Largest payload a single eager frame can carry.
    pub fn max_eager_payload(&self) -> usize {
        self.eager_ring_bytes / 2 - crate::eager::FRAME_HDR
    }
}

impl Default for PhotonConfig {
    fn default() -> Self {
        PhotonConfig {
            eager_threshold: 8192,
            eager_ring_bytes: 256 * 1024,
            ledger_entries: 256,
            copy_ps_per_byte: 25,
            credit_interval: 128,
            coll_slot_bytes: 64 * 1024,
            wait_timeout_secs: 30,
            imm_completions: false,
            skip_credit_return_interval: 0,
            suspect_deadline_ns: 50_000,
            backoff_base_ns: 20_000,
            backoff_max_ns: 1_000_000,
            suspect_death_probes: 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = PhotonConfig::default();
        assert!(c.eager_threshold <= c.max_eager_payload());
        assert!(c.credit_interval_entries() >= 1);
        assert!(c.credit_interval_entries() <= c.ledger_entries as u64 / 2);
    }

    #[test]
    fn tiny_config_still_valid() {
        let c = PhotonConfig::tiny();
        assert!(c.eager_threshold <= c.max_eager_payload());
        assert!(c.credit_interval_entries() >= 1);
    }

    #[test]
    fn zero_credit_interval_means_every_entry() {
        let c = PhotonConfig { credit_interval: 0, ..PhotonConfig::default() };
        assert_eq!(c.credit_interval_entries(), 1);
    }
}
