//! The Photon context: the engine tying ledgers, eager rings, and the fabric
//! together behind the public PWC API.
//!
//! ## Memory layout
//!
//! Per-peer protocol memory is allocated **per connection, on first
//! contact**, not all-to-all at init. Each established connection
//! (`Conn`) registers two single-block regions on its owner:
//!
//! * the **service block** — written *only by the connected peer* and
//!   holding: the receive ledger from that peer, the eager ring from that
//!   peer, and the credit words for this rank's transmissions *to* that
//!   peer (returned by the peer's consumer);
//! * the **staging block** — a local mirror with identical structure, used
//!   as the registered source of protocol writes (frames, ledger entries,
//!   credit words are composed here and RDMA-written to the same
//!   sub-offset in the peer's service block).
//!
//! Connections are established lazily through an out-of-band connection
//! manager ([`ConnDirectory`], the PMI/CM stand-in; see `DESIGN.md`
//! "Membership and connection lifecycle") and live in a bounded LRU cache:
//! past [`PhotonConfig::conn_cache_cap`] the least-recently-used pair is
//! torn down, flushing its pending work requests exactly like peer death
//! does, and re-established on demand. Per-rank middleware memory is
//! therefore O(active peers), not O(N).
//!
//! ## Virtual time
//!
//! Each context owns a [`VClock`].  Posts depart at the clock's current
//! reading; completion events advance it (Lamport-style), and protocol
//! writes carry fabric-stamped delivery timestamps so remote completions
//! advance the consumer's clock correctly.  Probe costs are *not* charged to
//! virtual time (they are measured in wall time by the criterion benches).

use crate::buffers::{BufferDescriptor, PhotonBuffer};
use crate::completion::{LocalQueue, RemoteQueue, RidMap, TakeOutcome, WrTable};
use crate::config::PhotonConfig;
use crate::eager::{self, EagerFrame, EagerRx, EagerTx, FrameHeader, FrameKind};
use crate::ledger::{self, Entry, EntryKind, LedgerRx, LedgerTx, ENTRY_BYTES};
use crate::obs::{Metrics, Obs, OpKind, SpanTrace, Stats, StatsSnapshot, TraceOp, Tracer};
use crate::probe::{rid_space, Completion, CompletionClass, ProbeFlags, RemoteEvent};
use crate::{PhotonError, Rank, Result};
use parking_lot::{Mutex, RwLock};
use photon_fabric::api::{
    Access, Completion as Cqe, FabricBackend, FabricError, MemoryRegion, MrSlice, Qp, RemoteKey,
    RemoteSlice, SendWr, VClock, VTime, WcStatus, WrOp,
};
use photon_fabric::sock::SockCluster;
use photon_fabric::{Cluster, NetworkModel};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Bytes of credit words per peer block: ledger consumed count, ring
/// cursor, and the fabric-stamped virtual delivery time of the credit write
/// (so a producer that was *blocked* on credits advances its clock to the
/// moment the credits causally arrived).
const CREDIT_BYTES: usize = 24;

/// Internal-rid namespace for middleware-generated local completions.
const INTERNAL_RID_BASE: u64 = 0xFF10_0000_0000_0000;

/// Sentinel rid marking a doorbell-batched work request: the CQE's real
/// local rids live in [`Photon::batch_rids`], keyed by `wr_id`. Sits in the
/// reserved namespace so user rids can never alias it.
const BATCH_RID: u64 = 0xFF20_0000_0000_0000;

/// Consecutive `try_lock` skips of one peer's receive lock before a probe
/// blocks on it (see [`Photon::poll_peer`]).
const RX_SKIP_LIMIT: u32 = 16;

/// One-entry destination-resolve memo for a receive pass: `(rkey, MR-table
/// generation, region)`. See [`Photon::resolve_write_cached`].
type MrCache = Option<(u32, u64, MemoryRegion)>;

/// Retention cap of the per-context scratch-vector recycler caches: enough
/// for every plausible in-flight batch, small enough that an adversarial
/// burst cannot pin unbounded memory.
const VEC_POOL_CAP: usize = 64;

/// CQEs drained per harvest pass.
const CQ_HARVEST_BATCH: usize = 256;

/// Queue of collective-namespace arrivals: `(src, payload, arrival time)`.
pub(crate) type CollQueue = VecDeque<(Rank, Vec<u8>, VTime)>;

#[derive(Debug)]
struct PeerTx {
    ledger: LedgerTx,
    ring: EagerTx,
    /// Recycled scratch for composing doorbell runs: lives with the TX
    /// state its runs are built under, so steady-state batching allocates
    /// nothing (the run/span lists reach capacity once and stay).
    run: Vec<RunFrame>,
    lens: Vec<usize>,
}

#[derive(Debug)]
struct PeerRx {
    ledger: LedgerRx,
    ring: EagerRx,
    /// Recycled staging for remote events routed during a drain pass: all
    /// events of one pass share `src`, so they are published to the
    /// per-peer event queue in one locked append instead of one lock per
    /// event. Lives with the rx state (whose mutex serializes drainers of
    /// this peer), so steady-state batching allocates nothing.
    ev_scratch: Vec<RemoteEvent>,
}

/// Externally visible classification of a peer by the health machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealthState {
    /// Reachable; operations post normally.
    Healthy,
    /// Missed its response deadline; reconnection probes are running under
    /// exponential backoff. Posts report "would block" until it recovers.
    Suspect,
    /// Declared dead and evicted: pending rids were flushed as error
    /// completions and new operations fail fast with
    /// [`PhotonError::PeerDead`].
    Dead,
}

const PEER_HEALTHY: u8 = 0;
const PEER_SUSPECT: u8 = 1;
const PEER_DEAD: u8 = 2;

/// Per-peer health machine: `Healthy → Suspect` on an unreachable path
/// (response deadline), `Suspect → Healthy` when a backoff-gated
/// reconnection probe finds the path restored, `Suspect → Dead` after
/// [`PhotonConfig::suspect_death_probes`] failed probes or on fabric
/// evidence the node itself is gone. `state` is the lock-free fast path;
/// the mutex guards the probe bookkeeping.
#[derive(Debug)]
struct PeerHealth {
    state: AtomicU8,
    inner: Mutex<HealthInner>,
}

#[derive(Debug)]
struct HealthInner {
    /// Consecutive failed reconnection probes since entering Suspect.
    fails: u32,
    /// Virtual time before which no further probe may run.
    next_retry: VTime,
}

impl PeerHealth {
    fn new() -> PeerHealth {
        PeerHealth {
            state: AtomicU8::new(PEER_HEALTHY),
            inner: Mutex::new(HealthInner { fails: 0, next_retry: VTime::ZERO }),
        }
    }
}

/// One established connection to a peer: the QP, the per-connection
/// service/staging blocks, the producer/consumer protocol state, and the
/// peer's health machine. Everything per-peer lives here and is allocated
/// on first contact, so an idle pair of ranks costs nothing.
#[derive(Debug)]
pub(crate) struct Conn {
    /// The connected peer's rank.
    peer: Rank,
    /// QP to the peer.
    qp: Qp,
    /// Service block the peer writes into (ledger + ring + credit words).
    svc: MemoryRegion,
    /// Staging block for outbound protocol writes toward the peer.
    stage: MemoryRegion,
    /// The peer's service block dedicated to this rank.
    remote_key: RemoteKey,
    /// Peer incarnation this connection was established against. A stale
    /// value (the peer died and rejoined) invalidates the connection at
    /// the post/probe gates — a rejoined peer can never resurrect a
    /// flushed generation.
    peer_inc: u64,
    /// This rank's own incarnation at establishment (a revived rank must
    /// not reuse its crashed generation's connections either).
    local_inc: u64,
    tx: Mutex<PeerTx>,
    rx: Mutex<PeerRx>,
    health: PeerHealth,
    /// Bounded-skip counter for the receive lock (see [`Photon::poll_peer`]).
    rx_skips: AtomicU32,
    /// LRU stamp: bumped on every use, read by cache eviction.
    touch: AtomicU64,
}

impl Conn {
    /// Approximate heap + registered bytes of this connection's state (for
    /// the membership/connection memory accounting).
    fn state_bytes(&self) -> usize {
        self.svc.len() + self.stage.len() + std::mem::size_of::<Conn>()
    }
}

/// The out-of-band connection manager: a directory of every context in the
/// job, standing in for the PMI/CM service of a real launcher (the same
/// role the init-time descriptor exchange played before connections became
/// lazy). Connection setup and teardown run under one directory-wide lock
/// — establishment is rare (cache misses only), and serializing it makes
/// the pairwise handshake trivially deadlock-free.
#[derive(Debug, Default)]
pub struct ConnDirectory {
    slots: RwLock<Vec<Weak<Photon>>>,
    cm_lock: Mutex<()>,
}

impl ConnDirectory {
    fn photon(&self, rank: Rank) -> Option<Arc<Photon>> {
        self.slots.read().get(rank).and_then(Weak::upgrade)
    }
}

/// Where an eager frame's payload comes from. `Mr` is the zero-alloc put
/// fast path: the registered source region is read directly into the stage,
/// with no intermediate `Vec` (the staging copy the paper's o-overhead
/// charges is the *only* copy).
enum FrameSrc<'a> {
    /// Borrowed bytes (runtime messages, control payloads).
    Bytes(&'a [u8]),
    /// `len` bytes starting at an offset of a registered region.
    Mr(&'a MemoryRegion, usize),
}

impl FrameSrc<'_> {
    /// Copy `len` payload bytes into the stage at `off`.
    fn write_to(&self, stage: &MemoryRegion, off: usize, len: usize) {
        match self {
            FrameSrc::Bytes(b) => stage.write_at(off, &b[..len]),
            // Distinct regions, read → write: never the same lock (the
            // stage is middleware-internal and never a user buffer).
            FrameSrc::Mr(region, src_off) => {
                region.with_bytes(|s| stage.write_at(off, &s[*src_off..*src_off + len]))
            }
        }
    }
}

/// Payload source of one frame in a doorbell run. Holds indices, not
/// borrows, so run scratch can be kept in [`PeerTx`] and recycled across
/// batches; the compose step resolves them against the run's shared context
/// (one source region and/or one payload slice per run).
#[derive(Debug, Clone, Copy)]
enum RunSrc {
    /// Byte offset into the run's shared source region.
    Region(usize),
    /// Index into the run's payload slice.
    Payload(usize),
}

/// One frame of a doorbell batch (see [`Photon::try_put_many`]).
#[derive(Debug, Clone, Copy)]
struct RunFrame {
    kind: FrameKind,
    rid: u64,
    dst: Option<(u64, u32)>,
    src: RunSrc,
    len: usize,
    local_rid: Option<u64>,
}

/// One ledger entry of a coalesced control run (see
/// [`Photon::try_post_entry_run`]): the rendezvous batch APIs build these
/// and the posting layer packs contiguous ledger slots into single
/// doorbell writes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EntrySpec {
    /// Control-entry kind (RdvPost, Fin, ...).
    pub(crate) kind: EntryKind,
    /// Request / tag id carried by the entry.
    pub(crate) rid: u64,
    /// Size field (protocol-specific).
    pub(crate) size: u64,
    /// Remote address field (protocol-specific).
    pub(crate) addr: u64,
    /// Remote rkey field (protocol-specific).
    pub(crate) rkey: u32,
}

/// One element of a [`Photon::get_many`] doorbell batch: a read of
/// `src[soff..soff+len]` on the peer into `local[loff..]`, surfacing
/// `local_rid` when the whole batch's data has landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetManyItem {
    /// Destination offset within the local buffer.
    pub loff: usize,
    /// Bytes to fetch.
    pub len: usize,
    /// Source offset within the remote buffer.
    pub soff: usize,
    /// Local completion id (data landed).
    pub local_rid: u64,
}

/// One element of a [`Photon::put_many`] doorbell batch: a put of
/// `local[loff..loff+len]` to `dst[doff..]`, surfacing `local_rid` here and
/// `remote_rid` at the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutManyItem {
    /// Source offset within the local buffer.
    pub loff: usize,
    /// Bytes to put.
    pub len: usize,
    /// Destination offset within the remote buffer.
    pub doff: usize,
    /// Local completion id (source reusable).
    pub local_rid: u64,
    /// Remote completion id (data visible at the peer).
    pub remote_rid: u64,
}

/// Snapshot of the credit/flow-control state between one rank and one peer,
/// taken by [`Photon::credit_state`] for invariant checking.
///
/// `tx_*` fields describe this rank's *production* toward the peer;
/// `rx_*` fields describe this rank's *consumption* of the peer's traffic;
/// `credit_word_*` are the raw credit words in this rank's service region
/// (written by the peer when it returns credits for this rank's production).
///
/// At quiescence, for ranks `a` and `b`:
/// `a.credit_state(b).tx_ledger_produced == b.credit_state(a).rx_ledger_consumed`
/// and the credit words lag consumption by less than one credit interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditState {
    /// Ledger entries this rank has produced toward the peer.
    pub tx_ledger_produced: u64,
    /// Eager-ring bytes this rank has reserved toward the peer (cursor).
    pub tx_ring_cursor: u64,
    /// Ledger entries this rank has consumed from the peer.
    pub rx_ledger_consumed: u64,
    /// Eager-ring bytes this rank has consumed from the peer (cursor).
    pub rx_ring_cursor: u64,
    /// Peer-written credit word: entries of ours the peer says it consumed.
    pub credit_word_ledger: u64,
    /// Peer-written credit word: ring bytes of ours the peer says it freed.
    pub credit_word_ring: u64,
}

/// A Photon middleware context: one per rank.
///
/// All methods take `&self` and the context is `Send + Sync`: a runtime may
/// drive it from multiple threads (e.g. workers posting while a progress
/// thread probes).
#[derive(Debug)]
pub struct Photon {
    rank: Rank,
    n: usize,
    cfg: PhotonConfig,
    nic: Arc<dyn FabricBackend>,
    clock: VClock,
    /// Established connections, keyed by peer rank. O(active peers): a
    /// never-contacted peer has no entry and costs nothing.
    conns: RwLock<HashMap<Rank, Arc<Conn>>>,
    /// LRU clock feeding [`Conn::touch`].
    conn_stamp: AtomicU64,
    /// Peers declared dead, with the incarnation that died. Reconnection
    /// is allowed only against a *newer* incarnation, so a flushed
    /// generation can never be resurrected.
    dead: Mutex<HashMap<Rank, u64>>,
    /// The out-of-band connection manager (set at cluster construction).
    directory: OnceLock<Arc<ConnDirectory>>,
    /// Collective scratch buffers, allocated on first collective use
    /// (`n * coll_slot_bytes` each — O(N), so lazy matters at scale).
    coll_recv: OnceLock<PhotonBuffer>,
    coll_send: OnceLock<PhotonBuffer>,
    /// Collective-window descriptors for every rank, pre-exchanged at
    /// multi-process join ([`crate::process::PhotonProcess`]). Absent
    /// in-process, where the connection directory serves the lookup.
    coll_keys: OnceLock<Vec<RemoteKey>>,
    wr_table: WrTable,
    local_events: LocalQueue,
    remote_events: RemoteQueue,
    /// Which class an `Any` probe tries first; flipped per take for fair
    /// local/remote interleaving.
    any_toggle: AtomicU64,
    /// Held (true) while one thread runs a [`Photon::progress`] pass;
    /// concurrent passes no-op instead of convoying on the CQ locks and
    /// per-peer region reads.
    progress_gate: AtomicBool,
    /// Probe counter driving the amortized progress schedule (see
    /// [`Photon::progress_for_probe`]).
    probe_ticks: AtomicU64,
    /// Set while dedicated progress threads are running for this context:
    /// probe paths then consume queued events without pumping (the threads
    /// pump), falling back to an inline pass only on an empty queue.
    threads_active: AtomicBool,
    /// Recycled snapshot of the connection table for progress passes:
    /// sorted by peer rank so pass order (and thus virtual-time evolution)
    /// is deterministic regardless of hash-map iteration order.
    conn_scratch: Mutex<Vec<Arc<Conn>>>,
    /// Local rids carried by in-flight doorbell-batched work requests,
    /// keyed by `wr_id` (the wr itself carries [`BATCH_RID`]). One lock op
    /// per *batch*, not per frame; rid-hashed and free-listed so the
    /// steady-state batch path allocates nothing.
    batch_rids: Mutex<RidMap<Vec<u64>>>,
    /// Recycler cache of rid-list vectors cycling through `batch_rids`.
    rid_vec_pool: Mutex<Vec<Vec<u64>>>,
    /// Recycler cache of delivery-stamp offset vectors cycling through
    /// doorbell-batched work requests.
    stamp_vec_pool: Mutex<Vec<Vec<usize>>>,
    /// Recycled CQE harvest buffer (the allocation-free twin of polling
    /// into a fresh `Vec` per pass). Progress threads carry their own.
    cq_scratch: Mutex<Vec<Cqe>>,
    /// Peers declared dead by [`Photon::mark_dead`] and not yet collected
    /// via [`Photon::take_dead_peers`]. Runtime layers drain this to tear
    /// down per-peer state of their own (e.g. RPC dedup windows).
    dead_notify: Mutex<Vec<Rank>>,
    /// Lock-free fast path for [`Photon::take_dead_peers`]: number of
    /// uncollected entries in `dead_notify`.
    dead_pending: AtomicU64,
    pub(crate) coll_inbox: Mutex<HashMap<u64, CollQueue>>,
    pub(crate) rdv_announces: Mutex<HashMap<(Rank, u64), (RemoteKey, VTime)>>,
    pub(crate) rdv_fins: Mutex<HashMap<(Rank, u64), VTime>>,
    pub(crate) coll_seq: AtomicU32,
    next_internal: AtomicU64,
    credit_return_seq: AtomicU64,
    stats: Stats,
    tracer: Tracer,
    obs: Obs,
    ledger_bytes: usize,
    ring_bytes: usize,
    block: usize,
}

/// The fabric a [`PhotonCluster`] was constructed over: the simulated
/// switch or an in-process sockets cluster. Backend-specific escape
/// hatches (fault plans, socket addresses) hang off the respective arm.
#[derive(Debug)]
pub enum FabricHandle {
    /// Simulated RDMA fabric (LogGP model, fault injection).
    Sim(Cluster),
    /// In-process sockets cluster: one UDP endpoint + reactor per rank,
    /// data crossing the loopback interface for real.
    Sock(Arc<SockCluster>),
}

/// A whole Photon job: `n` contexts over one fabric (simulated by
/// default; see [`crate::config::BackendKind`]).
#[derive(Debug)]
pub struct PhotonCluster {
    fabric: FabricHandle,
    ranks: Vec<Arc<Photon>>,
    /// Dedicated progress threads (see [`crate::progress`]); `None` in
    /// inline mode (`PhotonConfig::progress_threads == 0`).
    progress: Option<crate::progress::ProgressEngine>,
}

impl PhotonCluster {
    /// Build an `n`-rank job over the backend `cfg.backend` selects. The
    /// sim backend models the network with `model`; the sockets backend
    /// moves real datagrams and ignores it.
    pub fn new(n: usize, model: NetworkModel, cfg: PhotonConfig) -> PhotonCluster {
        match cfg.backend {
            crate::config::BackendKind::Sim => Self::with_fabric(Cluster::new(n, model), cfg),
            crate::config::BackendKind::Sock => Self::new_sock(n, cfg),
        }
    }

    /// Build over a pre-constructed simulated fabric (custom registration
    /// limits, fault plans).
    pub fn with_fabric(fabric: Cluster, cfg: PhotonConfig) -> PhotonCluster {
        let n = fabric.len();
        let ranks: Vec<Arc<Photon>> =
            (0..n).map(|i| Arc::new(Photon::init(i, &fabric, cfg).expect("photon init"))).collect();
        Self::assemble(FabricHandle::Sim(fabric), ranks, cfg)
    }

    /// Build an `n`-rank job over an in-process sockets cluster: every
    /// rank's protocol writes cross real UDP sockets on loopback, served
    /// by per-rank reactor threads. The multi-process twin is
    /// `photon-launch` + [`crate::process::PhotonProcess`].
    pub fn new_sock(n: usize, cfg: PhotonConfig) -> PhotonCluster {
        let sock = Arc::new(SockCluster::new(n).expect("sockets cluster"));
        let ranks: Vec<Arc<Photon>> = (0..n)
            .map(|i| {
                let nic: Arc<dyn FabricBackend> = Arc::clone(sock.nic(i)) as _;
                Arc::new(Photon::init_backend(i, n, nic, cfg).expect("photon init"))
            })
            .collect();
        Self::assemble(FabricHandle::Sock(sock), ranks, cfg)
    }

    /// Shared tail of every constructor: out-of-band connection-manager
    /// wiring (PMI stand-in — no descriptors are exchanged here;
    /// connections and their service blocks are established lazily on
    /// first contact) plus the progress engine.
    fn assemble(fabric: FabricHandle, ranks: Vec<Arc<Photon>>, cfg: PhotonConfig) -> PhotonCluster {
        let directory = Arc::new(ConnDirectory::default());
        *directory.slots.write() = ranks.iter().map(Arc::downgrade).collect();
        for p in &ranks {
            p.directory.set(Arc::clone(&directory)).expect("init once");
        }
        let progress = crate::progress::ProgressEngine::spawn(&ranks, cfg.progress_threads);
        PhotonCluster { fabric, ranks, progress }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True for an empty job.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The context for `rank`.
    pub fn rank(&self, rank: Rank) -> &Arc<Photon> {
        &self.ranks[rank]
    }

    /// All contexts.
    pub fn ranks(&self) -> &[Arc<Photon>] {
        &self.ranks
    }

    /// The backend this cluster was constructed over.
    pub fn fabric_handle(&self) -> &FabricHandle {
        &self.fabric
    }

    /// The underlying *simulated* fabric (model, faults, diagnostics).
    ///
    /// # Panics
    ///
    /// On a sockets-backed cluster — fault plans and the LogGP switch are
    /// sim-only concepts. Match on [`PhotonCluster::fabric_handle`] when
    /// the backend is not statically known.
    pub fn fabric(&self) -> &Cluster {
        match &self.fabric {
            FabricHandle::Sim(c) => c,
            FabricHandle::Sock(_) => {
                panic!("fabric(): sockets-backed cluster has no simulated switch")
            }
        }
    }

    /// Reset all virtual clocks (and, on the sim backend, the switch's
    /// port reservations) to the origin. Benchmark harness hook: lets
    /// repetitions start from t=0. On the sockets backend only the rank
    /// clocks reset — wall-clock timestamps keep flowing from the job
    /// epoch, and the [`photon_fabric::VTime`] monotonicity contract makes
    /// that safe.
    pub fn reset_time(&self) {
        if let FabricHandle::Sim(c) = &self.fabric {
            c.switch().reset_time();
        }
        for p in &self.ranks {
            p.clock.reset();
        }
    }
}

impl Drop for PhotonCluster {
    fn drop(&mut self) {
        // Stop and join the progress threads before any context state is
        // torn down; each thread holds an `Arc<Photon>`, so joining here
        // (not just dropping handles) is what bounds their lifetime.
        if let Some(mut engine) = self.progress.take() {
            engine.stop();
        }
    }
}

impl Photon {
    fn init(rank: Rank, fabric: &Cluster, cfg: PhotonConfig) -> Result<Photon> {
        let nic: Arc<dyn FabricBackend> = Arc::clone(fabric.nic(rank)) as _;
        Self::init_backend(rank, fabric.len(), nic, cfg)
    }

    /// Build one context over any backend endpoint. The backbone of every
    /// construction path: the sim cluster, the in-process sockets cluster,
    /// and the multi-process join ([`crate::process::PhotonProcess`]).
    pub(crate) fn init_backend(
        rank: Rank,
        n: usize,
        nic: Arc<dyn FabricBackend>,
        mut cfg: PhotonConfig,
    ) -> Result<Photon> {
        // Normalize the ring size to the frame alignment.
        cfg.eager_ring_bytes = (cfg.eager_ring_bytes / eager::FRAME_ALIGN) * eager::FRAME_ALIGN;
        cfg.eager_ring_bytes = cfg.eager_ring_bytes.max(4 * eager::FRAME_HDR);
        let ledger_bytes = cfg.ledger_entries * ENTRY_BYTES;
        let ring_bytes = cfg.eager_ring_bytes;
        let block = ledger_bytes + ring_bytes + CREDIT_BYTES;

        Ok(Photon {
            rank,
            n,
            cfg,
            nic,
            clock: VClock::new(),
            conns: RwLock::new(HashMap::new()),
            conn_stamp: AtomicU64::new(0),
            dead: Mutex::new(HashMap::new()),
            directory: OnceLock::new(),
            coll_recv: OnceLock::new(),
            coll_send: OnceLock::new(),
            coll_keys: OnceLock::new(),
            wr_table: WrTable::new(),
            local_events: LocalQueue::new(),
            remote_events: RemoteQueue::new(),
            any_toggle: AtomicU64::new(0),
            progress_gate: AtomicBool::new(false),
            probe_ticks: AtomicU64::new(0),
            threads_active: AtomicBool::new(false),
            conn_scratch: Mutex::new(Vec::new()),
            batch_rids: Mutex::new(RidMap::default()),
            rid_vec_pool: Mutex::new(Vec::new()),
            stamp_vec_pool: Mutex::new(Vec::new()),
            cq_scratch: Mutex::new(Vec::new()),
            dead_notify: Mutex::new(Vec::new()),
            dead_pending: AtomicU64::new(0),
            coll_inbox: Mutex::new(HashMap::new()),
            rdv_announces: Mutex::new(HashMap::new()),
            rdv_fins: Mutex::new(HashMap::new()),
            coll_seq: AtomicU32::new(0),
            next_internal: AtomicU64::new(0),
            credit_return_seq: AtomicU64::new(0),
            stats: Stats::default(),
            tracer: Tracer::default(),
            obs: Obs::new(rank, n),
            ledger_bytes,
            ring_bytes,
            block,
        })
    }

    // ----------------------------------------------------- connection cache

    fn dir(&self) -> Result<&Arc<ConnDirectory>> {
        self.directory
            .get()
            .ok_or_else(|| PhotonError::Config("no connection directory (cluster required)".into()))
    }

    /// Stamp `conn` as recently used (LRU bookkeeping).
    fn touch_conn(&self, conn: &Conn) {
        conn.touch.store(self.conn_stamp.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// The established connection to `peer`, if any.
    fn conn_opt(&self, peer: Rank) -> Option<Arc<Conn>> {
        let c = self.conns.read().get(&peer).cloned()?;
        self.touch_conn(&c);
        Some(c)
    }

    /// True while `conn` still targets the generations it was established
    /// against — of the peer *and* of this rank. One relaxed load when no
    /// fault has ever been injected.
    fn conn_is_current(&self, conn: &Conn) -> bool {
        let now = self.clock.now();
        self.nic.node_incarnation(conn.peer, now) == conn.peer_inc
            && self.nic.node_incarnation(self.rank, now) == conn.local_inc
    }

    /// The connection to `peer`, establishing it on first contact and
    /// re-establishing it after an eviction or a peer rejoin. Fails fast
    /// with [`PhotonError::PeerDead`] while the peer's *current* incarnation
    /// is the one that died.
    pub(crate) fn conn(&self, peer: Rank) -> Result<Arc<Conn>> {
        self.check_rank(peer)?;
        if let Some(c) = self.conn_opt(peer) {
            if self.conn_is_current(&c) {
                return Ok(c);
            }
            // Stale generation (the peer — or this rank — died and came
            // back): flush it like a death and reconnect fresh below.
            self.retire_stale(&c);
        }
        self.establish(peer)
    }

    /// Establish the connection pair `(self, peer)` through the out-of-band
    /// connection manager. Both halves are created under the directory's CM
    /// lock — establishment never nests, so the global lock is trivially
    /// deadlock-free and models a serialized CM service.
    fn establish(&self, peer: Rank) -> Result<Arc<Conn>> {
        let dir = Arc::clone(self.dir()?);
        let _cm = dir.cm_lock.lock();
        // Double-check under the CM lock (another thread may have won).
        if let Some(c) = self.conn_opt(peer) {
            return Ok(c);
        }
        let now = self.clock.now();
        let peer_inc = self.nic.node_incarnation(peer, now);
        if let Some(&dead_inc) = self.dead.lock().get(&peer) {
            if peer_inc <= dead_inc {
                // The incarnation that died is still the current one: a
                // reconnect could resurrect the flushed generation.
                return Err(PhotonError::PeerDead(peer));
            }
        }
        let other = dir.photon(peer).ok_or(PhotonError::PeerDead(peer))?;
        // The CM control plane is reliable and can tell a crashed peer
        // from a live one: connecting to a dead peer fails fast (and is
        // recorded, so later attempts skip the CM round-trip).
        if other.nic.node_status(peer, now).is_some_and(|s| s == WcStatus::RemoteDead) {
            self.dead.lock().insert(peer, peer_inc);
            self.note_dead(peer);
            return Err(PhotonError::PeerDead(peer));
        }
        let local_inc = self.nic.node_incarnation(self.rank, now);
        let my_qp = self.nic.create_qp(peer)?;
        let my_svc = self.nic.register(self.block, Access::ALL)?;
        let my_stage = self.nic.register(self.block, Access::LOCAL)?;
        let mine = if peer == self.rank {
            let key = my_svc.remote_key();
            let c = self.build_conn(peer, my_qp, my_svc, my_stage, key, peer_inc, local_inc);
            self.conns.write().insert(peer, Arc::clone(&c));
            c
        } else {
            let peer_qp = other.nic.create_qp(self.rank)?;
            let peer_svc = other.nic.register(other.block, Access::ALL)?;
            let peer_stage = other.nic.register(other.block, Access::LOCAL)?;
            let my_key = my_svc.remote_key();
            let peer_key = peer_svc.remote_key();
            let c = self.build_conn(peer, my_qp, my_svc, my_stage, peer_key, peer_inc, local_inc);
            let theirs = other
                .build_conn(self.rank, peer_qp, peer_svc, peer_stage, my_key, local_inc, peer_inc);
            // The acceptor may still hold a half from a previous generation
            // of this rank (we died and rejoined before it ever spoke to
            // us again): retire it so its pending wrs flush and the
            // acceptor's upper layers hear about the old generation's death
            // before the fresh half appears.
            let stale = other.conns.read().get(&self.rank).cloned();
            if let Some(stale) = stale {
                other.retire_stale(&stale);
            }
            self.conns.write().insert(peer, Arc::clone(&c));
            other.conns.write().insert(self.rank, theirs);
            Stats::bump(&other.stats.conns_opened);
            c
        };
        Stats::bump(&self.stats.conns_opened);
        // Charge the modeled CM round-trip to the initiating rank only
        // (the accept side does no blocking work of its own).
        self.clock.advance(self.cfg.connect_cost_ns);
        self.enforce_cache_cap_locked(&dir);
        if peer != self.rank {
            other.enforce_cache_cap_locked(&dir);
        }
        Ok(mine)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_conn(
        &self,
        peer: Rank,
        qp: Qp,
        svc: MemoryRegion,
        stage: MemoryRegion,
        remote_key: RemoteKey,
        peer_inc: u64,
        local_inc: u64,
    ) -> Arc<Conn> {
        Arc::new(Conn {
            peer,
            qp,
            svc,
            stage,
            remote_key,
            peer_inc,
            local_inc,
            tx: Mutex::new(PeerTx {
                ledger: LedgerTx::new(self.cfg.ledger_entries),
                ring: EagerTx::new(self.ring_bytes),
                run: Vec::new(),
                lens: Vec::new(),
            }),
            rx: Mutex::new(PeerRx {
                ledger: LedgerRx::new(self.cfg.ledger_entries, self.cfg.credit_interval_entries()),
                ring: EagerRx::new(self.ring_bytes, (self.ring_bytes / 4) as u64),
                ev_scratch: Vec::new(),
            }),
            health: PeerHealth::new(),
            rx_skips: AtomicU32::new(0),
            touch: AtomicU64::new(self.conn_stamp.fetch_add(1, Ordering::Relaxed) + 1),
        })
    }

    // ------------------------------------------------- multi-process join
    //
    // The eager twin of `establish` for jobs whose peers live in *other
    // OS processes* (no directory, no CM lock): service blocks are
    // registered up front, their descriptors allgathered through the
    // bootstrap rendezvous, and every connection installed fully formed.

    /// Register one service block this rank dedicates to a future peer
    /// (multi-process join, step 1: keys must exist before the exchange).
    pub(crate) fn preregister_svc(&self) -> Result<MemoryRegion> {
        Ok(self.nic.register(self.block, Access::ALL)?)
    }

    /// Install a fully specified connection to `peer` from pre-exchanged
    /// descriptors (multi-process join, step 2). Incarnations start at 0 on
    /// both sides — the sockets backend never revives a rank in place.
    pub(crate) fn install_conn(&self, peer: Rank, svc: MemoryRegion, key: RemoteKey) -> Result<()> {
        let qp = self.nic.create_qp(peer)?;
        let stage = self.nic.register(self.block, Access::LOCAL)?;
        let conn = self.build_conn(peer, qp, svc, stage, key, 0, 0);
        self.conns.write().insert(peer, conn);
        Stats::bump(&self.stats.conns_opened);
        Ok(())
    }

    /// Install the pre-exchanged collective-window key table (one
    /// descriptor per rank, this rank's own included).
    pub(crate) fn set_coll_keys(&self, keys: Vec<RemoteKey>) {
        self.coll_keys.set(keys).expect("coll keys set once");
    }

    /// Evict least-recently-used connections until the cache respects
    /// [`PhotonConfig::conn_cache_cap`]. Caller holds the CM lock. Victims
    /// with no in-flight work requests are preferred (their flush is a
    /// no-op); a busy victim's pending rids flush exactly like peer death.
    fn enforce_cache_cap_locked(&self, dir: &ConnDirectory) {
        let cap = self.cfg.conn_cache_cap;
        if cap == 0 {
            return;
        }
        loop {
            let victim = {
                let conns = self.conns.read();
                if conns.len() <= cap {
                    return;
                }
                let mut idle_best: Option<&Arc<Conn>> = None;
                let mut any_best: Option<&Arc<Conn>> = None;
                for c in conns.values() {
                    let stamp = c.touch.load(Ordering::Relaxed);
                    if any_best.is_none_or(|b| stamp < b.touch.load(Ordering::Relaxed)) {
                        any_best = Some(c);
                    }
                    if !self.wr_table.has_peer(c.peer)
                        && idle_best.is_none_or(|b| stamp < b.touch.load(Ordering::Relaxed))
                    {
                        idle_best = Some(c);
                    }
                }
                idle_best.or(any_best).cloned()
            };
            let Some(v) = victim else { return };
            self.disconnect_locked(dir, &v);
        }
    }

    /// Tear down the connection pair behind `conn` (eviction path): drain
    /// each side's inbound frames (explicit teardown is lossless — nothing
    /// already delivered to a service region may vanish), remove both
    /// halves, flush each side's pending work requests exactly like
    /// [`Photon::mark_dead`] does, and release the QPs and the registered
    /// blocks. The peers stay *healthy* — traffic after an eviction
    /// reconnects on demand. Caller holds the CM lock.
    fn disconnect_locked(&self, dir: &ConnDirectory, conn: &Arc<Conn>) {
        let _ = self.poll_peer(conn);
        self.drop_half(conn);
        Stats::bump(&self.stats.conns_evicted);
        if conn.peer != self.rank {
            if let Some(other) = dir.photon(conn.peer) {
                let theirs = other.conns.read().get(&self.rank).cloned();
                if let Some(theirs) = theirs {
                    let _ = other.poll_peer(&theirs);
                    other.drop_half(&theirs);
                    Stats::bump(&other.stats.conns_evicted);
                }
            }
        }
    }

    /// Remove this side's half of a connection and flush everything that
    /// was riding it: harvest the send CQ, error-complete every in-flight
    /// wr bound for the peer (with doorbell-batch fan-out), tear down the
    /// QP and deregister the blocks.
    fn drop_half(&self, conn: &Arc<Conn>) {
        {
            let mut conns = self.conns.write();
            match conns.get(&conn.peer) {
                Some(c) if Arc::ptr_eq(c, conn) => {
                    conns.remove(&conn.peer);
                }
                _ => return, // already replaced or gone
            }
        }
        self.flush_peer_wrs(conn.peer);
        let _ = self.nic.destroy_qp(conn.qp);
        let _ = self.nic.mrs().deregister(&conn.svc);
        let _ = self.nic.mrs().deregister(&conn.stage);
    }

    /// Error-complete every in-flight work request bound for `peer`,
    /// fanning doorbell-batch sentinels out to their member rids — the
    /// shared flush step of death, eviction, and stale-generation
    /// retirement.
    fn flush_peer_wrs(&self, peer: Rank) {
        self.harvest_send_cq();
        let now = self.clock.now();
        for (wr_id, rid) in self.wr_table.drain_peer(peer) {
            if rid == BATCH_RID {
                if let Some(rids) = self.batch_rids.lock().remove(&wr_id) {
                    for &r in &rids {
                        self.local_events.push(r, peer, now, WcStatus::FlushErr);
                        Stats::bump(&self.stats.rids_flushed);
                    }
                    self.give_rid_vec(rids);
                }
            } else {
                self.local_events.push(rid, peer, now, WcStatus::FlushErr);
                Stats::bump(&self.stats.rids_flushed);
            }
        }
    }

    /// Retire a connection whose generation is stale (the peer died and
    /// rejoined, or this rank itself did). When the *peer's* generation
    /// changed, its old incarnation died — run the full death bookkeeping
    /// (flush, credit reclaim, dead-map record, upper-layer notification)
    /// unless the health machine already did; then drop the half for real,
    /// releasing the QP and the registered blocks.
    fn retire_stale(&self, conn: &Arc<Conn>) {
        let now = self.clock.now();
        if self.nic.node_incarnation(conn.peer, now) != conn.peer_inc {
            self.mark_dead_conn(conn);
        }
        self.drop_half(conn);
    }

    /// Queue a dead-peer notification for [`Photon::take_dead_peers`].
    fn note_dead(&self, peer: Rank) {
        self.dead_notify.lock().push(peer);
        self.dead_pending.fetch_add(1, Ordering::Release);
    }

    /// Number of live connections in the cache.
    pub fn conn_count(&self) -> usize {
        self.conns.read().len()
    }

    /// Approximate bytes of per-rank membership/connection state: the
    /// registered service/staging blocks plus the heap structures of every
    /// live connection, the dead map, and the collective buffers if they
    /// were ever allocated. The churn memory-bound test asserts this grows
    /// sublinearly in cluster size.
    pub fn conn_state_bytes(&self) -> usize {
        let conns = self.conns.read();
        let mut bytes: usize = conns.values().map(|c| c.state_bytes()).sum();
        bytes += self.dead.lock().len() * (std::mem::size_of::<Rank>() + 8);
        bytes += self.remote_events.state_bytes();
        for buf in [self.coll_recv.get(), self.coll_send.get()].into_iter().flatten() {
            bytes += buf.len();
        }
        bytes
    }

    /// How many per-peer remote-event FIFOs this rank has allocated — the
    /// lazy-allocation witness for the memory-bound tests.
    pub fn remote_fifos_allocated(&self) -> usize {
        self.remote_events.peers_allocated()
    }

    /// This rank's own incarnation number: how many times the fabric has
    /// revived it. Gossip alive-claims carry it so a rejoined rank's
    /// announcements supersede the Dead rumors of its previous life.
    pub fn self_incarnation(&self) -> u64 {
        self.nic.node_incarnation(self.rank, self.clock.now())
    }

    /// The incarnation of `peer` that this rank recorded as dead, if any.
    /// Gossip sources its Dead rumors from here so a rumor always names the
    /// generation that actually died.
    pub fn dead_incarnation(&self, peer: Rank) -> Option<u64> {
        self.dead.lock().get(&peer).copied()
    }

    /// Drain pending gossip frames: `(source, payload, delivery time)` in
    /// arrival order. Gossip rides a reserved rid, so frames land in the
    /// internal inbox (like collective traffic) instead of the user event
    /// queues.
    pub(crate) fn gossip_inbox(&self) -> Vec<(Rank, Vec<u8>, VTime)> {
        match self.coll_inbox.lock().remove(&rid_space::GOSSIP) {
            Some(q) => q.into(),
            None => Vec::new(),
        }
    }

    /// Send one gossip frame on the eager path under the reserved gossip
    /// rid. Fire-and-forget locally: no local completion is tracked.
    pub(crate) fn send_gossip_frame(&self, peer: Rank, payload: &[u8]) -> Result<()> {
        self.send_internal(peer, payload, rid_space::GOSSIP, None)
    }

    /// Snapshot `(peer, incarnation, health)` for every live connection,
    /// sorted by peer, *without* touching the LRU stamps (observation must
    /// not distort eviction). Gossip samples this to originate Suspect
    /// rumors and direct-evidence Alive refutations.
    pub fn peer_states(&self) -> Vec<(Rank, u64, PeerHealthState)> {
        let conns = self.conns.read();
        let mut out: Vec<(Rank, u64, PeerHealthState)> = conns
            .values()
            .map(|c| {
                let health = match c.health.state.load(Ordering::Acquire) {
                    PEER_HEALTHY => PeerHealthState::Healthy,
                    PEER_SUSPECT => PeerHealthState::Suspect,
                    _ => PeerHealthState::Dead,
                };
                (c.peer, c.peer_inc, health)
            })
            .collect();
        out.sort_unstable_by_key(|&(peer, _, _)| peer);
        out
    }

    // ---------------------------------------------------------------- basic

    /// This context's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The active configuration.
    pub fn config(&self) -> &PhotonConfig {
        &self.cfg
    }

    /// The underlying fabric endpoint (escape hatch for verbs-level use),
    /// behind the backend seam.
    pub fn nic(&self) -> &Arc<dyn FabricBackend> {
        &self.nic
    }

    /// Current virtual time at this rank.
    pub fn now(&self) -> VTime {
        self.clock.now()
    }

    /// Model `ns` nanoseconds of local computation (overlap experiments).
    pub fn elapse(&self, ns: u64) -> VTime {
        self.clock.advance(ns)
    }

    /// Operation statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The operation tracer (disabled by default; see [`Tracer::enable`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The observability switchboard for latency histograms and lifecycle
    /// spans (disabled by default; see [`Obs::enable`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// One-call metrics export: the counter snapshot plus per-(op, peer)
    /// latency summaries (empty unless [`Obs::enable`] ran).
    pub fn metrics(&self) -> Metrics {
        Metrics { counters: self.stats.snapshot(), latencies: self.obs.latency_summaries() }
    }

    /// This rank's op-lifecycle span timeline (empty unless [`Obs::enable`]
    /// ran). Render with [`SpanTrace::to_chrome_json`] /
    /// [`SpanTrace::to_flamegraph`].
    pub fn span_trace(&self) -> SpanTrace {
        self.obs.span_trace()
    }

    /// Register a remotely accessible buffer of `len` bytes, charging the
    /// modeled registration (pinning) cost to this rank's virtual clock.
    pub fn register_buffer(&self, len: usize) -> Result<PhotonBuffer> {
        let buf = PhotonBuffer::register(self.nic.as_ref(), len)?;
        self.clock.advance(self.nic.registration_cost_ns(len));
        Ok(buf)
    }

    /// Deregister a buffer, releasing its pinning budget.
    pub fn release_buffer(&self, buf: &PhotonBuffer) -> Result<()> {
        self.nic.mrs().deregister(buf.region())?;
        Ok(())
    }

    /// Allocate a middleware-internal completion identifier (reserved
    /// namespace, never collides with user rids).
    pub fn internal_rid(&self) -> u64 {
        INTERNAL_RID_BASE | self.next_internal.fetch_add(1, Ordering::Relaxed)
    }

    // ------------------------------------------------------ observer hooks
    //
    // Read-only snapshots for test harnesses and invariant checkers. None
    // of these drive progress or mutate protocol state.

    /// Work requests posted but not yet surfaced as local completions.
    /// A quiesced context has zero in flight. O(1) (atomic counter).
    pub fn in_flight(&self) -> usize {
        self.wr_table.len()
    }

    /// Depths of the `(local, remote)` completion-event queues: events
    /// delivered by progress but not yet consumed by probes/waits.
    /// O(1) (atomic counters).
    pub fn queued_events(&self) -> (usize, usize) {
        (self.local_events.len(), self.remote_events.len())
    }

    /// Undelivered rendezvous state: `(buffer announces, FINs)` parked for
    /// tags nobody has waited on yet.
    pub fn queued_rendezvous(&self) -> (usize, usize) {
        (self.rdv_announces.lock().len(), self.rdv_fins.lock().len())
    }

    /// Snapshot of the credit/flow-control state for the link between this
    /// rank and `peer` (both directions as seen from this side).
    pub fn credit_state(&self, peer: Rank) -> Result<CreditState> {
        self.check_rank(peer)?;
        // No connection yet (or already torn down): all counters are zero.
        let Some(conn) = self.conn_opt(peer) else {
            return Ok(CreditState {
                tx_ledger_produced: 0,
                tx_ring_cursor: 0,
                rx_ledger_consumed: 0,
                rx_ring_cursor: 0,
                credit_word_ledger: 0,
                credit_word_ring: 0,
            });
        };
        let (tx_ledger_produced, tx_ring_cursor) = {
            let tx = conn.tx.lock();
            (tx.ledger.produced(), tx.ring.cursor())
        };
        let (rx_ledger_consumed, rx_ring_cursor) = {
            let rx = conn.rx.lock();
            (rx.ledger.consumed(), rx.ring.cursor())
        };
        let off = self.sub_credit();
        Ok(CreditState {
            tx_ledger_produced,
            tx_ring_cursor,
            rx_ledger_consumed,
            rx_ring_cursor,
            credit_word_ledger: conn.svc.read_u64(off),
            credit_word_ring: conn.svc.read_u64(off + 8),
        })
    }

    fn check_rank(&self, peer: Rank) -> Result<()> {
        if peer >= self.n {
            return Err(PhotonError::InvalidRank(peer));
        }
        Ok(())
    }

    // Crate-internal accessors for the sibling protocol modules
    // (rendezvous, collectives).

    pub(crate) fn check_rank_pub(&self, peer: Rank) -> Result<()> {
        self.check_rank(peer)
    }

    pub(crate) fn stats_ref(&self) -> &Stats {
        &self.stats
    }

    pub(crate) fn clock_ref(&self) -> &VClock {
        &self.clock
    }

    pub(crate) fn copy_ns_pub(&self, bytes: usize) -> u64 {
        self.copy_ns(bytes)
    }

    /// Post an arbitrary tracked work request on the QP to `peer`:
    /// `local_rid` surfaces as a local completion when its CQE drains.
    pub(crate) fn post_tracked(
        &self,
        peer: Rank,
        op: photon_fabric::verbs::WrOp,
        local_rid: u64,
    ) -> Result<()> {
        let conn = self.gate_blocking(peer)?;
        let wr_id = self.wr_table.insert(local_rid, peer);
        let wr = SendWr::new(wr_id, op);
        if let Err(e) = self.nic.post_send(conn.qp, wr, self.clock.now()) {
            self.wr_table.remove(wr_id);
            return self.fail_post(&conn, Err(e.into()));
        }
        Ok(())
    }

    /// Ledger-entry post without paired data (rendezvous control traffic).
    pub(crate) fn try_post_entry_pub(
        &self,
        peer: Rank,
        kind: EntryKind,
        rid: u64,
        size: u64,
        addr: u64,
        rkey: u32,
    ) -> Result<bool> {
        self.check_rank(peer)?;
        self.try_post_entry(peer, kind, rid, size, addr, rkey, None)
    }

    fn copy_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.cfg.copy_ps_per_byte).div_ceil(1000)
    }

    // ------------------------------------------------------ layout helpers
    //
    // Each connection owns one dedicated service block (and its staging
    // mirror), so all offsets are block-relative: there is no per-peer
    // stride any more.

    fn sub_ledger(&self, slot: usize) -> usize {
        slot * ENTRY_BYTES
    }

    fn sub_ring(&self, ring_off: usize) -> usize {
        self.ledger_bytes + ring_off
    }

    fn sub_credit(&self) -> usize {
        self.ledger_bytes + self.ring_bytes
    }

    fn remote_slice(&self, conn: &Conn, sub: usize, len: usize) -> RemoteSlice {
        RemoteSlice { addr: conn.remote_key.addr + sub as u64, rkey: conn.remote_key.rkey, len }
    }

    pub(crate) fn coll_slot_bytes(&self) -> usize {
        self.cfg.coll_slot_bytes
    }

    /// The collective receive window, allocated lazily on first collective
    /// (its footprint is O(N), which a churn simulation never pays).
    pub(crate) fn coll_recv_buf(&self) -> &PhotonBuffer {
        self.coll_recv.get_or_init(|| {
            PhotonBuffer::register(self.nic.as_ref(), self.n * self.cfg.coll_slot_bytes)
                .expect("collective recv window registration")
        })
    }

    /// The collective send window, allocated lazily on first collective.
    pub(crate) fn coll_send_buf(&self) -> &PhotonBuffer {
        self.coll_send.get_or_init(|| {
            PhotonBuffer::register(self.nic.as_ref(), self.n * self.cfg.coll_slot_bytes)
                .expect("collective send window registration")
        })
    }

    /// Descriptor of `peer`'s collective receive window: the key table a
    /// multi-process join pre-exchanged, or a lookup through the connection
    /// directory (out-of-band either way, like a PMI key lookup).
    pub(crate) fn coll_key(&self, peer: Rank) -> RemoteKey {
        if peer == self.rank {
            return self.coll_recv_buf().region().remote_key();
        }
        if let Some(keys) = self.coll_keys.get() {
            return keys[peer];
        }
        let dir = self.directory.get().expect("cluster initialized");
        let p = dir.photon(peer).expect("peer context alive");
        p.coll_recv_buf().region().remote_key()
    }

    // ------------------------------------------------------- posting layer

    /// Write `len` staged bytes at `sub` to the peer's mirror slot.
    fn post_stage_write(
        &self,
        conn: &Conn,
        sub: usize,
        len: usize,
        local_rid: Option<u64>,
        stamp: Option<usize>,
    ) -> Result<()> {
        let peer = conn.peer;
        let local = MrSlice::new(&conn.stage, sub, len);
        let remote = self.remote_slice(conn, sub, len);
        let tracked = local_rid.map(|rid| self.wr_table.insert(rid, peer));
        let mut wr = match tracked {
            Some(wr_id) => SendWr::new(wr_id, WrOp::Write { local, remote, imm: None }),
            None => SendWr::unsignaled(WrOp::Write { local, remote, imm: None }),
        };
        wr.stamp_deliver_at = stamp;
        let res = self.nic.post_send(conn.qp, wr, self.clock.now());
        if res.is_err() {
            if let Some(wr_id) = tracked {
                self.wr_table.remove(wr_id);
            }
        }
        res.map_err(Into::into)
    }

    // ------------------------------------------------- scratch recyclers
    //
    // Free lists for the vectors that cycle through the doorbell-batch
    // machinery (rid fan-out lists, delivery-stamp offset lists, CQE
    // harvest buffers). Each vector reaches its working capacity once and
    // is then recycled forever, so the steady-state batch path performs
    // zero heap allocations (pinned by `obs_overhead`'s counting test).

    /// Take a rid-list vector from the recycler cache (empty, capacity
    /// retained from earlier batches).
    fn take_rid_vec(&self) -> Vec<u64> {
        self.rid_vec_pool.lock().pop().unwrap_or_default()
    }

    /// Return a rid-list vector to the recycler cache (dropped past the
    /// retention cap).
    fn give_rid_vec(&self, mut v: Vec<u64>) {
        let mut pool = self.rid_vec_pool.lock();
        if pool.len() < VEC_POOL_CAP {
            v.clear();
            pool.push(v);
        }
    }

    /// Take a delivery-stamp offset vector from the recycler cache.
    fn take_stamp_vec(&self) -> Vec<usize> {
        self.stamp_vec_pool.lock().pop().unwrap_or_default()
    }

    /// Return a delivery-stamp offset vector to the recycler cache.
    fn give_stamp_vec(&self, mut v: Vec<usize>) {
        let mut pool = self.stamp_vec_pool.lock();
        if pool.len() < VEC_POOL_CAP {
            v.clear();
            pool.push(v);
        }
    }

    /// [`Photon::post_stage_write`] for a doorbell-batched run: one wire
    /// write covering `len` staged bytes, every offset in
    /// `{first_stamp} ∪ more_stamps` (relative to the staged slice) gets the
    /// delivery stamp, and all of `local_rids` surface as local completions
    /// when the single CQE drains. Both vectors come from (and return to)
    /// the recycler caches.
    fn post_stage_write_run(
        &self,
        conn: &Conn,
        sub: usize,
        len: usize,
        local_rids: Vec<u64>,
        first_stamp: usize,
        more_stamps: Vec<usize>,
    ) -> Result<()> {
        let peer = conn.peer;
        let local = MrSlice::new(&conn.stage, sub, len);
        let remote = self.remote_slice(conn, sub, len);
        let tracked = match local_rids.len() {
            0 | 1 => {
                let t = local_rids.first().map(|&rid| self.wr_table.insert(rid, peer));
                self.give_rid_vec(local_rids);
                t
            }
            _ => {
                let wr_id = self.wr_table.insert(BATCH_RID, peer);
                self.batch_rids.lock().insert(wr_id, local_rids);
                Some(wr_id)
            }
        };
        let op = WrOp::Write { local, remote, imm: None };
        let mut wr = match tracked {
            Some(wr_id) => SendWr::new(wr_id, op),
            None => SendWr::unsignaled(op),
        };
        wr.stamp_deliver_at = Some(first_stamp);
        wr.stamp_deliver_also = more_stamps;
        // Post by reference (the one-element doorbell run) so the recycled
        // stamp list can be reclaimed after the fabric consumes it.
        let res = self.nic.post_send_many(conn.qp, std::slice::from_ref(&wr), self.clock.now());
        self.give_stamp_vec(std::mem::take(&mut wr.stamp_deliver_also));
        if res.is_err() {
            if let Some(wr_id) = tracked {
                self.wr_table.remove(wr_id);
                if let Some(rids) = self.batch_rids.lock().remove(&wr_id) {
                    self.give_rid_vec(rids);
                }
            }
        }
        res.map_err(Into::into)
    }

    /// Write and post an explicit `Skip` frame covering a dead ring tail,
    /// when a reservation requires one.
    fn post_skip(&self, conn: &Conn, skip: Option<(usize, u32, u64)>) -> Result<()> {
        let Some((off, dead, seq)) = skip else { return Ok(()) };
        let h = FrameHeader {
            seq,
            rid: 0,
            dst_addr: 0,
            dst_rkey: 0,
            size: dead,
            kind: FrameKind::Skip,
            ts: 0,
        };
        conn.stage.write_at(self.sub_ring(off), &h.encode());
        self.post_stage_write(
            conn,
            self.sub_ring(off),
            eager::FRAME_HDR,
            None,
            Some(eager::TS_OFFSET),
        )
    }

    /// Try to deliver an eager frame to `peer`. Returns `Ok(false)` when the
    /// ring is out of credits.
    #[allow(clippy::too_many_arguments)]
    fn try_send_frame(
        &self,
        peer: Rank,
        kind: FrameKind,
        rid: u64,
        src: FrameSrc<'_>,
        len: usize,
        dst: Option<(u64, u32)>,
        local_rid: Option<u64>,
    ) -> Result<bool> {
        let Some(conn) = self.gated_conn(peer)? else {
            return Ok(false);
        };
        let r = {
            let mut tx = conn.tx.lock();
            self.try_send_frame_locked(&conn, &mut tx, kind, rid, src, len, dst, local_rid)
        };
        self.fail_post(&conn, r)
    }

    /// [`Photon::try_send_frame`] with the per-peer TX lock already held, so
    /// a doorbell batch can mix frames and ledger entries under one
    /// acquisition.
    #[allow(clippy::too_many_arguments)]
    fn try_send_frame_locked(
        &self,
        conn: &Conn,
        tx: &mut PeerTx,
        kind: FrameKind,
        rid: u64,
        src: FrameSrc<'_>,
        len: usize,
        dst: Option<(u64, u32)>,
        local_rid: Option<u64>,
    ) -> Result<bool> {
        let r = match tx.ring.try_reserve(len) {
            Some(r) => r,
            None => {
                // Out of credits: read the credit words; if that unblocks
                // us, our progress causally depends on the credit write, so
                // the clock advances to its delivery time.
                let credit_ts = self.refresh_tx_credits(conn, tx);
                match tx.ring.try_reserve(len) {
                    Some(r) => {
                        self.clock.advance_to(credit_ts);
                        r
                    }
                    None => {
                        Stats::bump(&self.stats.credit_stalls);
                        return Ok(false);
                    }
                }
            }
        };
        self.post_skip(conn, r.skip)?;
        let (dst_addr, dst_rkey) = dst.unwrap_or((0, 0));
        let h = FrameHeader { seq: r.seq, rid, dst_addr, dst_rkey, size: len as u32, kind, ts: 0 };
        let so = self.sub_ring(r.offset);
        conn.stage.write_at(so, &h.encode());
        if len > 0 {
            src.write_to(&conn.stage, so + eager::FRAME_HDR, len);
            // Staging memcpy is real middleware work: charge it.
            self.clock.advance(self.copy_ns(len));
            if matches!(src, FrameSrc::Mr(..)) {
                Stats::bump(&self.stats.stage_copies_avoided);
            }
        }
        if let Some(rid) = local_rid {
            self.obs.op_stage(rid, self.clock.now());
        }
        self.post_stage_write(
            conn,
            self.sub_ring(r.offset),
            eager::frame_span(len),
            local_rid,
            Some(eager::TS_OFFSET),
        )?;
        Ok(true)
    }

    /// Post a contiguous run of eager frames to `peer` as **one** wire write
    /// (the doorbell batch). Returns how many of `frames` were posted: the
    /// longest prefix the ring could hold (halving on credit exhaustion),
    /// `0` on a full stall. The caller holds the TX lock across the whole
    /// batch, so the run is atomic in the peer's delivery order.
    /// `src_region`, when set, is the registered region every `Mr` frame in
    /// the run reads from: the whole run is then composed under **one**
    /// source read lock and one stage write lock (taken in the same
    /// region → stage order as the single-frame path), instead of paying
    /// three lock acquisitions per frame.
    fn post_frame_run_locked(
        &self,
        conn: &Conn,
        tx: &mut PeerTx,
        frames: &[RunFrame],
        src_region: Option<&MemoryRegion>,
        payloads: &[Vec<u8>],
    ) -> Result<usize> {
        debug_assert!(!frames.is_empty());
        // The span list lives in the TX state's scratch vector, so the
        // steady-state batch path performs no heap allocation at all.
        let mut lens = std::mem::take(&mut tx.lens);
        lens.clear();
        lens.extend(frames.iter().map(|f| f.len));
        let mut k = frames.len();
        let mut refreshed = None;
        let r = loop {
            if let Some(r) = tx.ring.try_reserve_run(&lens[..k]) {
                if let Some(t) = refreshed {
                    if k == frames.len() {
                        // Unblocked by the credit read: causally ordered after it.
                        self.clock.advance_to(t);
                    }
                }
                break r;
            }
            if refreshed.is_none() {
                refreshed = Some(self.refresh_tx_credits(conn, tx));
                continue;
            }
            k /= 2;
            if k == 0 {
                Stats::bump(&self.stats.credit_stalls);
                tx.lens = lens;
                return Ok(0);
            }
        };
        tx.lens = lens;
        self.post_skip(conn, r.skip)?;
        let base_sub = self.sub_ring(r.offset);
        let base_so = base_sub;
        let mut run_span = 0usize;
        let mut more_stamps = self.take_stamp_vec();
        let mut local_rids = self.take_rid_vec();
        let mut payload_bytes = 0usize;
        let mut compose = |sb: &mut [u8], shared: Option<&[u8]>| {
            let mut rel = 0usize;
            for (i, f) in frames[..k].iter().enumerate() {
                let (dst_addr, dst_rkey) = f.dst.unwrap_or((0, 0));
                let h = FrameHeader {
                    seq: r.first_seq + i as u64,
                    rid: f.rid,
                    dst_addr,
                    dst_rkey,
                    size: f.len as u32,
                    kind: f.kind,
                    ts: 0,
                };
                let fo = base_so + rel;
                sb[fo..fo + eager::FRAME_HDR].copy_from_slice(&h.encode());
                if f.len > 0 {
                    let dst = &mut sb[fo + eager::FRAME_HDR..fo + eager::FRAME_HDR + f.len];
                    match f.src {
                        RunSrc::Payload(p) => dst.copy_from_slice(&payloads[p][..f.len]),
                        RunSrc::Region(off) => {
                            let s =
                                shared.expect("Region run frames carry the shared source region");
                            dst.copy_from_slice(&s[off..off + f.len]);
                            Stats::bump(&self.stats.stage_copies_avoided);
                        }
                    }
                    payload_bytes += f.len;
                }
                if i > 0 {
                    more_stamps.push(rel + eager::TS_OFFSET);
                }
                if let Some(rid) = f.local_rid {
                    local_rids.push(rid);
                }
                rel += eager::frame_span(f.len);
            }
            run_span = rel;
        };
        match src_region {
            Some(region) => {
                region.with_bytes(|s| conn.stage.with_bytes_mut(|sb| compose(sb, Some(s))))
            }
            None => conn.stage.with_bytes_mut(|sb| compose(sb, None)),
        }
        if payload_bytes > 0 {
            self.clock.advance(self.copy_ns(payload_bytes));
        }
        for rid in &local_rids {
            self.obs.op_stage(*rid, self.clock.now());
        }
        self.post_stage_write_run(
            conn,
            base_sub,
            run_span,
            local_rids,
            eager::TS_OFFSET,
            more_stamps,
        )?;
        self.stats.record_batch(k);
        Ok(k)
    }

    /// Try to append a ledger entry at `peer`. Returns `Ok(false)` when the
    /// ledger is out of credits. When `paired_data` is set, the data write
    /// it describes is posted first, under the same reservation, so data and
    /// completion arrive in order.
    #[allow(clippy::too_many_arguments)]
    fn try_post_entry(
        &self,
        peer: Rank,
        kind: EntryKind,
        rid: u64,
        size: u64,
        addr: u64,
        rkey: u32,
        paired_data: Option<(MrSlice, RemoteSlice, u64)>,
    ) -> Result<bool> {
        let Some(conn) = self.gated_conn(peer)? else {
            return Ok(false);
        };
        let r = {
            let mut tx = conn.tx.lock();
            self.try_post_entry_locked(&conn, &mut tx, kind, rid, size, addr, rkey, paired_data)
        };
        self.fail_post(&conn, r)
    }

    /// [`Photon::try_post_entry`] with the per-peer TX lock already held.
    #[allow(clippy::too_many_arguments)]
    fn try_post_entry_locked(
        &self,
        conn: &Conn,
        tx: &mut PeerTx,
        kind: EntryKind,
        rid: u64,
        size: u64,
        addr: u64,
        rkey: u32,
        paired_data: Option<(MrSlice, RemoteSlice, u64)>,
    ) -> Result<bool> {
        let (slot, seq) = match tx.ledger.try_produce() {
            Some(v) => v,
            None => {
                let credit_ts = self.refresh_tx_credits(conn, tx);
                match tx.ledger.try_produce() {
                    Some(v) => {
                        self.clock.advance_to(credit_ts);
                        v
                    }
                    None => {
                        Stats::bump(&self.stats.credit_stalls);
                        return Ok(false);
                    }
                }
            }
        };
        if let Some((local, remote, local_rid)) = paired_data {
            let wr_id = self.wr_table.insert(local_rid, conn.peer);
            let wr = SendWr::new(wr_id, WrOp::Write { local, remote, imm: None });
            if let Err(e) = self.nic.post_send(conn.qp, wr, self.clock.now()) {
                self.wr_table.remove(wr_id);
                return Err(e.into());
            }
        }
        let e = Entry { seq, rid, size, addr, rkey, kind, ts: 0 };
        conn.stage.write_at(self.sub_ledger(slot), &e.encode());
        self.post_stage_write(
            conn,
            self.sub_ledger(slot),
            ENTRY_BYTES,
            None,
            Some(ledger::TS_OFFSET),
        )?;
        Ok(true)
    }

    /// Post a run of control-ledger entries toward `peer` with coalesced
    /// doorbells: contiguous ledger slots are staged together and pushed as
    /// **one** wire write (one doorbell, one delivery-stamp run) instead of
    /// one write per entry. The ring of ledger slots wraps, so a run may
    /// split into several contiguous segments — still at most two writes
    /// per wrap instead of one per entry. Returns how many of `specs` were
    /// posted: the longest prefix the ledger credits allow (`0` on a full
    /// stall or a gated peer).
    pub(crate) fn try_post_entry_run(&self, peer: Rank, specs: &[EntrySpec]) -> Result<usize> {
        if specs.is_empty() {
            return Ok(0);
        }
        let Some(conn) = self.gated_conn(peer)? else {
            return Ok(0);
        };
        let r = (|| {
            let mut tx = conn.tx.lock();
            // Claim as many ledger slots as credits allow (refreshing the
            // credit words once on exhaustion, like the single-entry path).
            let mut slots: Vec<(usize, u64)> = Vec::with_capacity(specs.len());
            let mut refreshed = None;
            let mut unblocked = false;
            while slots.len() < specs.len() {
                match tx.ledger.try_produce() {
                    Some(v) => {
                        if refreshed.is_some() {
                            unblocked = true;
                        }
                        slots.push(v);
                    }
                    None if refreshed.is_none() => {
                        refreshed = Some(self.refresh_tx_credits(&conn, &mut tx));
                    }
                    None => break,
                }
            }
            if slots.is_empty() {
                Stats::bump(&self.stats.credit_stalls);
                return Ok(0);
            }
            if unblocked {
                // Unblocked by the credit read: causally ordered after it.
                self.clock.advance_to(refreshed.expect("unblocked implies refreshed"));
            }
            drop(tx);
            // Stage and post each contiguous slot segment as one write.
            let mut i = 0usize;
            while i < slots.len() {
                let mut seg = 1usize;
                while i + seg < slots.len() && slots[i + seg].0 == slots[i].0 + seg {
                    seg += 1;
                }
                for j in 0..seg {
                    let sp = &specs[i + j];
                    let (slot, seq) = slots[i + j];
                    let e = Entry {
                        seq,
                        rid: sp.rid,
                        size: sp.size,
                        addr: sp.addr,
                        rkey: sp.rkey,
                        kind: sp.kind,
                        ts: 0,
                    };
                    conn.stage.write_at(self.sub_ledger(slot), &e.encode());
                }
                let mut stamps = self.take_stamp_vec();
                stamps.extend((1..seg).map(|j| j * ENTRY_BYTES + ledger::TS_OFFSET));
                self.post_stage_write_run(
                    &conn,
                    self.sub_ledger(slots[i].0),
                    seg * ENTRY_BYTES,
                    self.take_rid_vec(),
                    ledger::TS_OFFSET,
                    stamps,
                )?;
                i += seg;
            }
            Ok(slots.len())
        })();
        self.fail_post(&conn, r)
    }

    /// Read the local credit words for production over `conn`; returns the
    /// virtual delivery time of the last credit write.
    fn refresh_tx_credits(&self, conn: &Conn, tx: &mut PeerTx) -> VTime {
        let off = self.sub_credit();
        tx.ledger.update_credits(conn.svc.read_u64(off));
        tx.ring.update_credits(conn.svc.read_u64(off + 8));
        VTime(conn.svc.read_u64(off + 16))
    }

    fn return_credits(
        &self,
        conn: &Arc<Conn>,
        ledger_consumed: u64,
        ring_cursor: u64,
    ) -> Result<()> {
        let skip = self.cfg.skip_credit_return_interval;
        if skip > 0 && self.credit_return_seq.fetch_add(1, Ordering::Relaxed) % skip == skip - 1 {
            // Seeded credit-accounting bug (see PhotonConfig): the consumer
            // has advanced its counters but the producer is never told.
            return Ok(());
        }
        if conn.health.state.load(Ordering::Acquire) == PEER_DEAD {
            // No point writing credit words into a dead peer's memory.
            return Ok(());
        }
        let sub = self.sub_credit();
        conn.stage.write_u64(sub, ledger_consumed);
        conn.stage.write_u64(sub + 8, ring_cursor);
        match self.post_stage_write(conn, sub, CREDIT_BYTES, None, Some(16)) {
            Err(PhotonError::Fabric(FabricError::PeerUnreachable { .. })) => {
                // Swallow: a failed credit write must not poison this rank's
                // progress loop (other peers still need service), and credit
                // words are absolute counters, so dropping one write is
                // harmless — the next return re-publishes the same state.
                // The health machine is told so the path gets probed.
                self.note_unreachable(conn);
                return Ok(());
            }
            r => r?,
        }
        Stats::bump(&self.stats.credit_returns);
        self.tracer.record(self.clock.now(), TraceOp::CreditReturn, conn.peer, 0, CREDIT_BYTES);
        Ok(())
    }

    // ------------------------------------------------------ peer health
    //
    // The per-peer failure detector (see DESIGN.md, "Failure model").
    // Every post path calls `peer_gate` *before* consuming any protocol
    // state (ring reservations, ledger slots), so an unreachable peer is
    // detected while the connection state is still consistent and the op
    // can simply be refused. A post that fails *mid-flight* — after the
    // reservation — has already broken the per-peer delivery sequence,
    // which on a reliable-connected QP means the connection is gone: the
    // peer is declared dead and evicted (`fail_post`).

    /// Health check run at the top of every post path. `Ok(true)` — post
    /// may proceed. `Ok(false)` — the peer is Suspect; treat as a credit
    /// stall (non-blocking callers return "would block", blocking callers
    /// spin through here, which paces the reconnection probes).
    /// `Err(PeerDead)` — the peer is gone. Establishes the connection on
    /// first contact (lazy wiring).
    pub(crate) fn peer_gate(&self, peer: Rank) -> Result<bool> {
        let conn = self.conn(peer)?;
        self.gate_conn(&conn)
    }

    /// [`Photon::peer_gate`] that hands back the gated connection: `None`
    /// while the peer is Suspect (would-block).
    fn gated_conn(&self, peer: Rank) -> Result<Option<Arc<Conn>>> {
        let conn = self.conn(peer)?;
        Ok(self.gate_conn(&conn)?.then_some(conn))
    }

    fn gate_conn(&self, conn: &Arc<Conn>) -> Result<bool> {
        match conn.health.state.load(Ordering::Acquire) {
            PEER_HEALTHY => {
                let now = self.clock.now();
                match self.nic.peer_status(conn.qp, now) {
                    None => Ok(true),
                    // `RemoteDead` fires when *either* end of the wire is
                    // down. If it is this rank that crashed (its clock rode
                    // past its own kill time), the peer must not be blamed:
                    // recording a live peer dead at its current incarnation
                    // is unrefutable and the lie would spread via gossip.
                    Some(WcStatus::RemoteDead) if self.nic.self_dead_at(now) => {
                        Err(PhotonError::PeerDead(self.rank))
                    }
                    Some(WcStatus::RemoteDead) => {
                        self.mark_dead_conn(conn);
                        Err(PhotonError::PeerDead(conn.peer))
                    }
                    // Partitioned: might heal — start probing.
                    Some(_) => {
                        self.mark_suspect(conn);
                        Ok(false)
                    }
                }
            }
            PEER_SUSPECT => self.suspect_probe(conn),
            _ => Err(PhotonError::PeerDead(conn.peer)),
        }
    }

    /// Healthy → Suspect: arm the response deadline for the first probe.
    fn mark_suspect(&self, conn: &Conn) {
        let h = &conn.health;
        let mut inner = h.inner.lock();
        if h.state.load(Ordering::Acquire) != PEER_HEALTHY {
            return; // lost the race to another thread
        }
        inner.fails = 0;
        inner.next_retry = VTime(self.clock.now().0 + self.cfg.suspect_deadline_ns);
        h.state.store(PEER_SUSPECT, Ordering::Release);
        Stats::bump(&self.stats.peers_suspected);
    }

    /// One backoff-gated reconnection probe of a Suspect peer.
    ///
    /// The probe *advances this rank's virtual clock* to the retry time:
    /// virtual time only moves when someone moves it, so waiting out a
    /// partition window must be modeled as elapsed local time — otherwise
    /// a blocked producer would re-test the same instant forever and a
    /// windowed partition could never heal (virtual-time livelock).
    fn suspect_probe(&self, conn: &Arc<Conn>) -> Result<bool> {
        let peer = conn.peer;
        let h = &conn.health;
        let mut inner = h.inner.lock();
        match h.state.load(Ordering::Acquire) {
            PEER_SUSPECT => {}
            PEER_HEALTHY => return Ok(true),
            _ => return Err(PhotonError::PeerDead(peer)),
        }
        if self.clock.now() < inner.next_retry {
            self.clock.advance_to(inner.next_retry);
        }
        let now = self.clock.now();
        Stats::bump(&self.stats.reconnect_probes);
        match self.nic.peer_status(conn.qp, now) {
            None => {
                // Path restored: recycle the errored QP and resume.
                self.nic.reset_qp(conn.qp)?;
                inner.fails = 0;
                h.state.store(PEER_HEALTHY, Ordering::Release);
                Stats::bump(&self.stats.peer_recoveries);
                Ok(true)
            }
            // This rank's own crash, not evidence against the peer (the
            // probe ride itself may have carried the clock past the local
            // kill time — see `gate_conn`).
            Some(WcStatus::RemoteDead) if self.nic.self_dead_at(now) => {
                Err(PhotonError::PeerDead(self.rank))
            }
            Some(WcStatus::RemoteDead) => {
                drop(inner);
                self.mark_dead_conn(conn);
                Err(PhotonError::PeerDead(peer))
            }
            Some(_) => {
                inner.fails += 1;
                if inner.fails >= self.cfg.suspect_death_probes {
                    drop(inner);
                    self.mark_dead_conn(conn);
                    return Err(PhotonError::PeerDead(peer));
                }
                let backoff = self
                    .cfg
                    .backoff_base_ns
                    .checked_shl(inner.fails - 1)
                    .unwrap_or(u64::MAX)
                    .min(self.cfg.backoff_max_ns);
                inner.next_retry = VTime(now.0 + backoff);
                Ok(false)
            }
        }
    }

    /// Report an unreachable peer discovered outside a gated post (failed
    /// credit return): classify and move the machine without evicting —
    /// credit writes carry no sequencing, so the connection is intact.
    fn note_unreachable(&self, conn: &Arc<Conn>) {
        if conn.health.state.load(Ordering::Acquire) != PEER_HEALTHY {
            return;
        }
        let now = self.clock.now();
        match self.nic.peer_status(conn.qp, now) {
            // Own crash, not evidence against the peer (see `gate_conn`).
            Some(WcStatus::RemoteDead) if self.nic.self_dead_at(now) => {}
            Some(WcStatus::RemoteDead) => self.mark_dead_conn(conn),
            Some(_) => self.mark_suspect(conn),
            None => {}
        }
    }

    /// Declare the peer behind `conn` dead and evict the connection: flush
    /// every pending rid toward it as an error completion, reclaim its
    /// flow-control credits so no later op can stall on a ghost, drop its
    /// parked rendezvous state, record the incarnation that died (so a
    /// reconnect can never resurrect the flushed generation), and release
    /// the connection's fabric resources. Idempotent per connection.
    fn mark_dead_conn(&self, conn: &Arc<Conn>) {
        {
            let _inner = conn.health.inner.lock();
            if conn.health.state.swap(PEER_DEAD, Ordering::AcqRel) == PEER_DEAD {
                return;
            }
        }
        let peer = conn.peer;
        Stats::bump(&self.stats.peers_dead);
        // The generation guard: remember which incarnation died. A later
        // `conn()` refuses to reconnect until the fault plan shows a newer
        // incarnation for the peer.
        {
            let mut dead = self.dead.lock();
            let e = dead.entry(peer).or_insert(conn.peer_inc);
            *e = (*e).max(conn.peer_inc);
        }
        // Flush its in-flight work requests (CQEs that already exist
        // deliver with their true status first). The connection itself
        // STAYS cached: the dying peer's clock may lag ours, so its last
        // writes must keep landing in a still-registered service region
        // (and keep being polled and routed, exactly like the pre-cache
        // all-to-all design) instead of surfacing as invalid-rkey post
        // errors on a live rank. The half is reaped when the cache cap
        // evicts it or a newer incarnation reconnects.
        self.flush_peer_wrs(peer);
        // Reclaim eager-ring and ledger credits: everything produced counts
        // as consumed, so a caller already holding this connection's Arc
        // can never stall waiting for a dead consumer to return credits.
        {
            let mut tx = conn.tx.lock();
            let cursor = tx.ring.cursor();
            tx.ring.update_credits(cursor);
            let produced = tx.ledger.produced();
            tx.ledger.update_credits(produced);
        }
        // Rendezvous state parked from the dead peer will never FIN/match.
        self.rdv_announces.lock().retain(|(src, _), _| *src != peer);
        self.rdv_fins.lock().retain(|(src, _), _| *src != peer);
        // Publish the eviction for layers above: each death is queued
        // exactly once (the state swap above is the idempotence guard).
        self.note_dead(peer);
    }

    /// Drain the peers declared dead since the last call. Each evicted peer
    /// is reported exactly once per context; layers above poll this from
    /// their progress paths to tear down per-peer state of their own (the
    /// runtime uses it to forget dead clients' RPC dedup windows). The fast
    /// path is one atomic load.
    pub fn take_dead_peers(&self) -> Vec<Rank> {
        if self.dead_pending.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut q = self.dead_notify.lock();
        self.dead_pending.fetch_sub(q.len() as u64, Ordering::AcqRel);
        std::mem::take(&mut *q)
    }

    /// Convert an *actual* post failure into its health consequence: an
    /// unreachable transfer after the gate passed means the per-peer
    /// delivery sequence has a hole (the reservation was consumed), which
    /// on a reliable-connected QP is a broken connection — evict. The
    /// fabric names which end of the wire was down: only the *peer* being
    /// unreachable is evidence against the peer. If the failing end is
    /// this rank itself (its clock has crossed its own scheduled kill
    /// time), blaming the target would record a live node dead at its
    /// current incarnation — unrefutable — so the error is surfaced
    /// against the local rank instead.
    fn fail_post<T>(&self, conn: &Arc<Conn>, r: Result<T>) -> Result<T> {
        match r {
            Err(PhotonError::Fabric(FabricError::PeerUnreachable { node })) => {
                if node == conn.peer || node != self.rank {
                    self.mark_dead_conn(conn);
                    Err(PhotonError::PeerDead(conn.peer))
                } else {
                    Err(PhotonError::PeerDead(self.rank))
                }
            }
            other => other,
        }
    }

    /// Ride the health machine to a verdict: returns once the peer is
    /// Healthy, or [`PhotonError::PeerDead`] once it is declared Dead.
    /// Terminates deterministically — every Suspect probe advances the
    /// virtual clock to its backoff deadline, so the peer either heals
    /// inside the partition window or exhausts its probe budget. Used by
    /// the direct-RDMA paths, which have no credit gate whose retry loop
    /// would otherwise pace the probes.
    fn gate_blocking(&self, peer: Rank) -> Result<Arc<Conn>> {
        loop {
            // Re-fetch per spin: a probe may retire the connection (death)
            // or another thread may replace it (rejoin).
            let conn = self.conn(peer)?;
            if self.gate_conn(&conn)? {
                return Ok(conn);
            }
        }
    }

    /// Actively probe `peer`'s liveness: runs one pass of the health gate
    /// (the same check every post path performs) and reports the resulting
    /// classification. Unlike the passive [`Photon::peer_health`] read,
    /// this *drives* detection — a Suspect peer gets one backoff-paced
    /// reconnection probe (which may advance the virtual clock to its
    /// retry deadline), and a peer found dead is evicted. Runtime layers
    /// use it to classify stalled waits without posting traffic.
    pub fn check_peer(&self, peer: Rank) -> Result<PeerHealthState> {
        self.check_rank(peer)?;
        match self.peer_gate(peer) {
            Ok(_) => self.peer_health(peer),
            Err(PhotonError::PeerDead(_)) => Ok(PeerHealthState::Dead),
            Err(e) => Err(e),
        }
    }

    /// The health machine's classification of `peer`. Passive: never
    /// connects. An unconnected peer reads Healthy unless the generation
    /// recorded in the dead map is still its current incarnation.
    pub fn peer_health(&self, peer: Rank) -> Result<PeerHealthState> {
        self.check_rank(peer)?;
        if let Some(conn) = self.conn_opt(peer) {
            return Ok(match conn.health.state.load(Ordering::Acquire) {
                PEER_HEALTHY => PeerHealthState::Healthy,
                PEER_SUSPECT => PeerHealthState::Suspect,
                _ => PeerHealthState::Dead,
            });
        }
        if let Some(&dead_inc) = self.dead.lock().get(&peer) {
            if self.nic.node_incarnation(peer, self.clock.now()) <= dead_inc {
                return Ok(PeerHealthState::Dead);
            }
        }
        Ok(PeerHealthState::Healthy)
    }

    // ------------------------------------------------------------ user API

    /// One-sided put with local **and** remote completion (the Photon
    /// signature: `photon_put_with_completion`).
    ///
    /// Copies `len` bytes from `local[loff..]` to `dst[doff..]` on `peer`.
    /// `local_rid` is surfaced here when the source buffer is reusable;
    /// `remote_rid` is surfaced at `peer` when the data is visible there.
    /// Small payloads take the packed eager path (one wire op, copy-out at
    /// probe time); large payloads go direct RDMA + ledger entry.
    ///
    /// Blocks only on credit exhaustion; see
    /// [`Photon::try_put_with_completion`].
    #[allow(clippy::too_many_arguments)]
    pub fn put_with_completion(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        loff: usize,
        len: usize,
        dst: &BufferDescriptor,
        doff: usize,
        local_rid: u64,
        remote_rid: u64,
    ) -> Result<()> {
        self.blocking("pwc credits", |s| {
            s.try_put_with_completion(peer, local, loff, len, dst, doff, local_rid, remote_rid)
                .map(|posted| posted.then_some(()))
        })
    }

    /// Non-blocking [`Photon::put_with_completion`]: `Ok(false)` when out of
    /// credits.
    #[allow(clippy::too_many_arguments)]
    pub fn try_put_with_completion(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        loff: usize,
        len: usize,
        dst: &BufferDescriptor,
        doff: usize,
        local_rid: u64,
        remote_rid: u64,
    ) -> Result<bool> {
        self.check_rank(peer)?;
        local.check(loff, len)?;
        if doff + len > dst.len {
            return Err(PhotonError::OutOfRange { offset: doff, len, cap: dst.len });
        }
        let Some(conn) = self.gated_conn(peer)? else {
            return Ok(false);
        };
        if len <= self.cfg.eager_threshold && len <= self.cfg.max_eager_payload() {
            // Zero-alloc fast path: the source region is staged directly,
            // with no intermediate heap buffer.
            self.obs.op_post(local_rid, peer, OpKind::PutEager, len, self.clock.now());
            let posted = self.try_send_frame(
                peer,
                FrameKind::Put,
                remote_rid,
                FrameSrc::Mr(local.region(), loff),
                len,
                Some((dst.addr + doff as u64, dst.rkey)),
                Some(local_rid),
            )?;
            if posted {
                Stats::bump(&self.stats.puts_eager);
                Stats::add(&self.stats.bytes_put, len as u64);
                self.tracer.record(self.clock.now(), TraceOp::PutEager, peer, remote_rid, len);
            }
            Ok(posted)
        } else if self.cfg.imm_completions {
            // CQ-notification mode: one write-with-immediate carries both
            // the data and the remote completion id. No ledger, no credits.
            self.obs.op_post(local_rid, peer, OpKind::PutDirect, len, self.clock.now());
            let wr_id = self.wr_table.insert(local_rid, peer);
            let wr = SendWr::new(
                wr_id,
                WrOp::Write {
                    local: MrSlice::new(local.region(), loff, len),
                    remote: RemoteSlice::from_key(dst, doff, len),
                    imm: Some(remote_rid),
                },
            );
            if let Err(e) = self.nic.post_send(conn.qp, wr, self.clock.now()) {
                self.wr_table.remove(wr_id);
                return self.fail_post(&conn, Err(e.into()));
            }
            Stats::bump(&self.stats.puts_direct);
            Stats::add(&self.stats.bytes_put, len as u64);
            self.tracer.record(self.clock.now(), TraceOp::PutDirect, peer, remote_rid, len);
            Ok(true)
        } else {
            self.obs.op_post(local_rid, peer, OpKind::PutDirect, len, self.clock.now());
            let data_local = MrSlice::new(local.region(), loff, len);
            let data_remote = RemoteSlice::from_key(dst, doff, len);
            let posted = self.try_post_entry(
                peer,
                EntryKind::Completion,
                remote_rid,
                len as u64,
                0,
                0,
                Some((data_local, data_remote, local_rid)),
            )?;
            if posted {
                Stats::bump(&self.stats.puts_direct);
                Stats::add(&self.stats.bytes_put, len as u64);
                self.tracer.record(self.clock.now(), TraceOp::PutDirect, peer, remote_rid, len);
            }
            Ok(posted)
        }
    }

    /// Doorbell-batched [`Photon::put_with_completion`]: post every item in
    /// `items` toward `peer`, coalescing runs of eager-sized items into a
    /// single contiguous ring reservation and **one** wire write (header
    /// run + payloads). The whole batch — including ledger entries for
    /// oversized items — posts under one TX lock acquisition, and the
    /// fabric charges its per-post overhead once per run instead of once
    /// per frame. Blocks on credit exhaustion.
    pub fn put_many(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        dst: &BufferDescriptor,
        items: &[PutManyItem],
    ) -> Result<()> {
        let mut done = 0usize;
        self.blocking("put_many credits", |s| {
            done += s.try_put_many(peer, local, dst, &items[done..])?;
            Ok((done == items.len()).then_some(()))
        })
    }

    /// Non-blocking [`Photon::put_many`]: posts the longest prefix of
    /// `items` the credits allow and returns how many were posted (`0` on a
    /// full stall — retry after probing).
    pub fn try_put_many(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        dst: &BufferDescriptor,
        items: &[PutManyItem],
    ) -> Result<usize> {
        self.check_rank(peer)?;
        for it in items {
            local.check(it.loff, it.len)?;
            if it.doff + it.len > dst.len {
                return Err(PhotonError::OutOfRange { offset: it.doff, len: it.len, cap: dst.len });
            }
        }
        if items.is_empty() {
            return Ok(0);
        }
        let Some(conn) = self.gated_conn(peer)? else {
            return Ok(0);
        };
        let eager_ok =
            |len: usize| len <= self.cfg.eager_threshold && len <= self.cfg.max_eager_payload();
        // The whole batch posts inside the closure so the TX guard is
        // released before `fail_post` (eviction locks the same TX state).
        let res = (|| {
            let mut posted = 0usize;
            let mut tx = conn.tx.lock();
            // Run scratch lives in the TX state and is recycled across
            // batches (RunFrame holds indices, not borrows).
            let mut run = std::mem::take(&mut tx.run);
            while posted < items.len() {
                let it = &items[posted];
                if eager_ok(it.len) {
                    // Longest eager run from here whose combined span fits the
                    // ring (a run never wraps, so it can never exceed it).
                    let mut span = 0usize;
                    run.clear();
                    for it2 in &items[posted..] {
                        if !eager_ok(it2.len) {
                            break;
                        }
                        let s = eager::frame_span(it2.len);
                        if span + s > self.ring_bytes {
                            break;
                        }
                        span += s;
                        run.push(RunFrame {
                            kind: FrameKind::Put,
                            rid: it2.remote_rid,
                            dst: Some((dst.addr + it2.doff as u64, dst.rkey)),
                            src: RunSrc::Region(it2.loff),
                            len: it2.len,
                            local_rid: Some(it2.local_rid),
                        });
                    }
                    let want = run.len();
                    for it2 in &items[posted..posted + want] {
                        self.obs.op_post(
                            it2.local_rid,
                            peer,
                            OpKind::PutEager,
                            it2.len,
                            self.clock.now(),
                        );
                    }
                    let n = self.post_frame_run_locked(
                        &conn,
                        &mut tx,
                        &run,
                        Some(local.region()),
                        &[],
                    )?;
                    for it2 in &items[posted..posted + n] {
                        Stats::bump(&self.stats.puts_eager);
                        Stats::add(&self.stats.bytes_put, it2.len as u64);
                        self.tracer.record(
                            self.clock.now(),
                            TraceOp::PutEager,
                            peer,
                            it2.remote_rid,
                            it2.len,
                        );
                    }
                    posted += n;
                    if n < want {
                        break; // out of ring credits
                    }
                } else if self.cfg.imm_completions {
                    self.obs.op_post(
                        it.local_rid,
                        peer,
                        OpKind::PutDirect,
                        it.len,
                        self.clock.now(),
                    );
                    let wr_id = self.wr_table.insert(it.local_rid, peer);
                    let wr = SendWr::new(
                        wr_id,
                        WrOp::Write {
                            local: MrSlice::new(local.region(), it.loff, it.len),
                            remote: RemoteSlice::from_key(dst, it.doff, it.len),
                            imm: Some(it.remote_rid),
                        },
                    );
                    if let Err(e) = self.nic.post_send(conn.qp, wr, self.clock.now()) {
                        self.wr_table.remove(wr_id);
                        return Err(e.into());
                    }
                    Stats::bump(&self.stats.puts_direct);
                    Stats::add(&self.stats.bytes_put, it.len as u64);
                    self.tracer.record(
                        self.clock.now(),
                        TraceOp::PutDirect,
                        peer,
                        it.remote_rid,
                        it.len,
                    );
                    posted += 1;
                } else {
                    self.obs.op_post(
                        it.local_rid,
                        peer,
                        OpKind::PutDirect,
                        it.len,
                        self.clock.now(),
                    );
                    let ok = self.try_post_entry_locked(
                        &conn,
                        &mut tx,
                        EntryKind::Completion,
                        it.remote_rid,
                        it.len as u64,
                        0,
                        0,
                        Some((
                            MrSlice::new(local.region(), it.loff, it.len),
                            RemoteSlice::from_key(dst, it.doff, it.len),
                            it.local_rid,
                        )),
                    )?;
                    if !ok {
                        break; // out of ledger credits
                    }
                    Stats::bump(&self.stats.puts_direct);
                    Stats::add(&self.stats.bytes_put, it.len as u64);
                    self.tracer.record(
                        self.clock.now(),
                        TraceOp::PutDirect,
                        peer,
                        it.remote_rid,
                        it.len,
                    );
                    posted += 1;
                }
            }
            tx.run = run;
            Ok(posted)
        })();
        self.fail_post(&conn, res)
    }

    /// Doorbell-batched [`Photon::send`]: deliver every payload to `peer` as
    /// its own eager `Msg` frame (each surfacing `remote_rid` with its
    /// payload), coalesced into as few wire writes as the ring allows.
    /// Blocks on credit exhaustion.
    pub fn send_many(&self, peer: Rank, payloads: &[Vec<u8>], remote_rid: u64) -> Result<()> {
        let mut done = 0usize;
        self.blocking("send_many credits", |s| {
            done += s.try_send_many(peer, &payloads[done..], remote_rid)?;
            Ok((done == payloads.len()).then_some(()))
        })
    }

    /// Non-blocking [`Photon::send_many`]: posts the longest prefix the
    /// credits allow, returns how many payloads were posted.
    pub fn try_send_many(
        &self,
        peer: Rank,
        payloads: &[Vec<u8>],
        remote_rid: u64,
    ) -> Result<usize> {
        self.check_rank(peer)?;
        for p in payloads {
            if p.len() > self.cfg.max_eager_payload() {
                return Err(PhotonError::MessageTooLarge {
                    len: p.len(),
                    max: self.cfg.max_eager_payload(),
                });
            }
        }
        if payloads.is_empty() {
            return Ok(0);
        }
        let Some(conn) = self.gated_conn(peer)? else {
            return Ok(0);
        };
        let res = (|| {
            let mut posted = 0usize;
            let mut tx = conn.tx.lock();
            let mut run = std::mem::take(&mut tx.run);
            while posted < payloads.len() {
                let mut span = 0usize;
                run.clear();
                for (i, p) in payloads[posted..].iter().enumerate() {
                    let s = eager::frame_span(p.len());
                    if span + s > self.ring_bytes {
                        break;
                    }
                    span += s;
                    run.push(RunFrame {
                        kind: FrameKind::Msg,
                        rid: remote_rid,
                        dst: None,
                        src: RunSrc::Payload(posted + i),
                        len: p.len(),
                        local_rid: None,
                    });
                }
                let want = run.len();
                let n = self.post_frame_run_locked(&conn, &mut tx, &run, None, payloads)?;
                for p in &payloads[posted..posted + n] {
                    Stats::bump(&self.stats.sends);
                    self.tracer.record(self.clock.now(), TraceOp::Send, peer, remote_rid, p.len());
                }
                posted += n;
                if n < want {
                    break;
                }
            }
            tx.run = run;
            Ok(posted)
        })();
        self.fail_post(&conn, res)
    }

    /// One-sided put with local completion only (`photon_post_os_put`):
    /// the peer is not notified.
    #[allow(clippy::too_many_arguments)]
    pub fn put(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        loff: usize,
        len: usize,
        dst: &BufferDescriptor,
        doff: usize,
        local_rid: u64,
    ) -> Result<()> {
        self.check_rank(peer)?;
        local.check(loff, len)?;
        if doff + len > dst.len {
            return Err(PhotonError::OutOfRange { offset: doff, len, cap: dst.len });
        }
        // Direct RDMA has no credit gate to ride through the health machine:
        // settle it here before consuming a work-request slot.
        let conn = self.gate_blocking(peer)?;
        self.obs.op_post(local_rid, peer, OpKind::Put, len, self.clock.now());
        let wr_id = self.wr_table.insert(local_rid, peer);
        let wr = SendWr::new(
            wr_id,
            WrOp::Write {
                local: MrSlice::new(local.region(), loff, len),
                remote: RemoteSlice::from_key(dst, doff, len),
                imm: None,
            },
        );
        if let Err(e) = self.nic.post_send(conn.qp, wr, self.clock.now()) {
            self.wr_table.remove(wr_id);
            return self.fail_post(&conn, Err(e.into()));
        }
        Stats::bump(&self.stats.puts_direct);
        Stats::add(&self.stats.bytes_put, len as u64);
        self.tracer.record(self.clock.now(), TraceOp::Put, peer, local_rid, len);
        Ok(())
    }

    /// One-sided get with local completion (`photon_get_with_completion`):
    /// fetches `len` bytes from `src[soff..]` on `peer` into
    /// `local[loff..]`; `local_rid` is surfaced when the data has landed.
    #[allow(clippy::too_many_arguments)]
    pub fn get_with_completion(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        loff: usize,
        len: usize,
        src: &BufferDescriptor,
        soff: usize,
        local_rid: u64,
    ) -> Result<()> {
        self.check_rank(peer)?;
        local.check(loff, len)?;
        if soff + len > src.len {
            return Err(PhotonError::OutOfRange { offset: soff, len, cap: src.len });
        }
        let conn = self.gate_blocking(peer)?;
        self.obs.op_post(local_rid, peer, OpKind::Get, len, self.clock.now());
        let wr_id = self.wr_table.insert(local_rid, peer);
        let wr = SendWr::new(
            wr_id,
            WrOp::Read {
                local: MrSlice::new(local.region(), loff, len),
                remote: RemoteSlice::from_key(src, soff, len),
            },
        );
        if let Err(e) = self.nic.post_send(conn.qp, wr, self.clock.now()) {
            self.wr_table.remove(wr_id);
            return self.fail_post(&conn, Err(e.into()));
        }
        Stats::bump(&self.stats.gets);
        Stats::add(&self.stats.bytes_got, len as u64);
        self.tracer.record(self.clock.now(), TraceOp::Get, peer, local_rid, len);
        Ok(())
    }

    /// Doorbell-batched [`Photon::get_with_completion`]: post every read in
    /// `items` toward `peer` with **one** doorbell and one signaled CQE.
    /// On a reliable-connected QP reads retire in posting order, so the
    /// final read's CQE means every earlier read's data has landed too: the
    /// one CQE fans out into `items.len()` local completions through the
    /// same side table the batched put path uses. Each item's `local_rid`
    /// therefore surfaces when the *batch* completes — items that need
    /// independent completion latitude should use single gets.
    pub fn get_many(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        src: &BufferDescriptor,
        items: &[GetManyItem],
    ) -> Result<()> {
        self.check_rank(peer)?;
        for it in items {
            local.check(it.loff, it.len)?;
            if it.soff + it.len > src.len {
                return Err(PhotonError::OutOfRange { offset: it.soff, len: it.len, cap: src.len });
            }
        }
        if items.is_empty() {
            return Ok(());
        }
        let conn = self.gate_blocking(peer)?;
        let now = self.clock.now();
        let mut rids = self.take_rid_vec();
        rids.extend(items.iter().map(|it| it.local_rid));
        // Register the fan-out side table *before* posting: once the
        // doorbell rings, a progress thread may harvest the CQE immediately.
        let wr_id = self.wr_table.insert(BATCH_RID, peer);
        self.batch_rids.lock().insert(wr_id, rids);
        let mut wrs = Vec::with_capacity(items.len());
        for (i, it) in items.iter().enumerate() {
            self.obs.op_post(it.local_rid, peer, OpKind::Get, it.len, now);
            let op = WrOp::Read {
                local: MrSlice::new(local.region(), it.loff, it.len),
                remote: RemoteSlice::from_key(src, it.soff, it.len),
            };
            // Only the run's last read is signaled; it carries the batch id.
            wrs.push(if i + 1 == items.len() {
                SendWr::new(wr_id, op)
            } else {
                SendWr::unsignaled(op)
            });
        }
        if let Err(e) = self.nic.post_send_many(conn.qp, &wrs, now) {
            self.wr_table.remove(wr_id);
            if let Some(rids) = self.batch_rids.lock().remove(&wr_id) {
                self.give_rid_vec(rids);
            }
            return self.fail_post(&conn, Err(e.into()));
        }
        for it in items {
            Stats::bump(&self.stats.gets);
            Stats::add(&self.stats.bytes_got, it.len as u64);
            self.tracer.record(now, TraceOp::Get, peer, it.local_rid, it.len);
        }
        Ok(())
    }

    /// [`Photon::get_with_completion`] plus a remote notification: `peer`
    /// also receives `remote_rid` (so it can, e.g., recycle the source).
    #[allow(clippy::too_many_arguments)]
    pub fn get_with_remote_notify(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        loff: usize,
        len: usize,
        src: &BufferDescriptor,
        soff: usize,
        local_rid: u64,
        remote_rid: u64,
    ) -> Result<()> {
        self.get_with_completion(peer, local, loff, len, src, soff, local_rid)?;
        self.blocking("gwc notify credits", |s| {
            s.try_post_entry(peer, EntryKind::GetNotify, remote_rid, len as u64, 0, 0, None)
                .map(|p| p.then_some(()))
        })
    }

    /// Destination-less message (`photon_send` analogue): the payload is
    /// delivered to `peer` through its probe loop. This is the parcel /
    /// active-message primitive. Blocks on credit exhaustion.
    pub fn send(&self, peer: Rank, payload: &[u8], remote_rid: u64) -> Result<()> {
        debug_assert!(
            !rid_space::is_reserved(remote_rid),
            "user rids must stay below the reserved namespace"
        );
        self.send_internal(peer, payload, remote_rid, None)
    }

    /// [`Photon::send`] that also surfaces `local_rid` when the payload has
    /// been injected (source slice reusable).
    pub fn send_with_local(
        &self,
        peer: Rank,
        payload: &[u8],
        remote_rid: u64,
        local_rid: u64,
    ) -> Result<()> {
        self.send_internal(peer, payload, remote_rid, Some(local_rid))
    }

    /// Non-blocking send: `Ok(false)` when out of ring credits.
    pub fn try_send(&self, peer: Rank, payload: &[u8], remote_rid: u64) -> Result<bool> {
        self.check_rank(peer)?;
        if payload.len() > self.cfg.max_eager_payload() {
            return Err(PhotonError::MessageTooLarge {
                len: payload.len(),
                max: self.cfg.max_eager_payload(),
            });
        }
        let posted = self.try_send_frame(
            peer,
            FrameKind::Msg,
            remote_rid,
            FrameSrc::Bytes(payload),
            payload.len(),
            None,
            None,
        )?;
        if posted {
            Stats::bump(&self.stats.sends);
            self.tracer.record(self.clock.now(), TraceOp::Send, peer, remote_rid, payload.len());
        }
        Ok(posted)
    }

    pub(crate) fn send_internal(
        &self,
        peer: Rank,
        payload: &[u8],
        remote_rid: u64,
        local_rid: Option<u64>,
    ) -> Result<()> {
        self.check_rank(peer)?;
        if payload.len() > self.cfg.max_eager_payload() {
            return Err(PhotonError::MessageTooLarge {
                len: payload.len(),
                max: self.cfg.max_eager_payload(),
            });
        }
        self.blocking("send credits", |s| {
            if let Some(rid) = local_rid {
                s.obs.op_post(rid, peer, OpKind::Send, payload.len(), s.clock.now());
            }
            let posted = s.try_send_frame(
                peer,
                FrameKind::Msg,
                remote_rid,
                FrameSrc::Bytes(payload),
                payload.len(),
                None,
                local_rid,
            )?;
            if posted {
                Stats::bump(&s.stats.sends);
                s.tracer.record(s.clock.now(), TraceOp::Send, peer, remote_rid, payload.len());
            }
            Ok(posted.then_some(()))
        })
    }

    // ------------------------------------------------------------- probing

    /// Advance the engine: harvest fabric completions and scan all peers'
    /// ledgers and eager rings, routing what is found.
    ///
    /// The entire pass is gated on one atomic flag: when another thread is
    /// mid-pass this call is a no-op, because the active pass harvests
    /// everything pending (including this caller's completions) and every
    /// progress caller either spins (blocking loops) or retries by contract
    /// (the polling probe APIs). Convoying all spinning waiters through the
    /// CQ locks and per-peer region reads costs far more than the skipped
    /// pass is worth — a pass over idle queues is pure coherence traffic.
    pub fn progress(&self) -> Result<()> {
        if self
            .progress_gate
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return Ok(());
        }
        let res = self.progress_pass();
        self.progress_gate.store(false, Ordering::Release);
        res.map(|_| ())
    }

    // --------------------------------------------------- progress threads

    /// Mark this context as served by dedicated progress threads; while
    /// set, probe paths with events already queued become pure consumers
    /// (see [`Photon::progress_for_probe`]). Set and cleared by the
    /// [`crate::progress::ProgressEngine`].
    pub(crate) fn set_threads_active(&self, active: bool) {
        self.threads_active.store(active, Ordering::Release);
    }

    /// One sharded progress pass, run by dedicated progress thread `shard`
    /// of `nshards`: thread 0 additionally harvests the completion queues,
    /// and every thread polls the peers hashed to it (Fibonacci multiply,
    /// like the completion engine's rid sharding — so the peer→thread map
    /// is stable and disjoint). Returns the amount of work moved, the
    /// thread's idle-backoff signal. Errors are swallowed into the
    /// `progress_thread_errors` counter: the op that hit the error still
    /// resolves through the health machine and its caller's own wait, and
    /// a progress thread must keep serving the surviving peers.
    pub(crate) fn progress_shard(
        &self,
        shard: usize,
        nshards: usize,
        scratch: &mut Vec<Cqe>,
        conns: &mut Vec<Arc<Conn>>,
    ) -> usize {
        let mut work = 0usize;
        if shard == 0 {
            scratch.clear();
            if self.nic.poll_send_cq_into(CQ_HARVEST_BATCH, scratch) > 0 {
                work += self.retire_send_cqes(scratch);
            }
            if self.cfg.imm_completions {
                scratch.clear();
                if self.nic.poll_recv_cq_into(CQ_HARVEST_BATCH, scratch) > 0 {
                    work += self.retire_recv_cqes(scratch);
                }
            }
        }
        self.snapshot_conns(conns);
        for conn in conns.iter() {
            if Self::peer_shard(conn.peer, nshards) != shard {
                continue;
            }
            match self.poll_peer(conn) {
                Ok(n) => work += n,
                Err(_) => Stats::bump(&self.stats.progress_thread_errors),
            }
        }
        work
    }

    /// Fill `out` with a snapshot of the live connections, sorted by peer
    /// rank: progress passes only touch peers we have actually spoken to
    /// (the lazy cache's whole point), and the stable order keeps the
    /// single-threaded simulator deterministic.
    fn snapshot_conns(&self, out: &mut Vec<Arc<Conn>>) {
        out.clear();
        out.extend(self.conns.read().values().cloned());
        out.sort_unstable_by_key(|c| c.peer);
    }

    /// Peer → progress-thread assignment.
    pub(crate) fn peer_shard(peer: Rank, nshards: usize) -> usize {
        (((peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % nshards
    }

    /// Retire a harvested slice of send CQEs into local events. Retiring a
    /// CQE is one sharded-slab lookup; a stale or unsignaled wr_id simply
    /// misses. Exactly-once is guaranteed by the table's generation check,
    /// not by a global lock pairing, so inline callers and dedicated
    /// progress threads can retire concurrently. Returns how many CQEs
    /// matched a tracked work request.
    fn retire_send_cqes(&self, cqes: &[Cqe]) -> usize {
        let mut retired = 0usize;
        for c in cqes {
            if let Some((rid, peer)) = self.wr_table.remove(c.wr_id) {
                retired += 1;
                if rid == BATCH_RID {
                    // One CQE for a doorbell batch: every frame's source
                    // became reusable when the run was staged, so all
                    // its local rids surface at the batch's delivery.
                    if let Some(rids) = self.batch_rids.lock().remove(&c.wr_id) {
                        if self.obs.is_enabled() {
                            for &r in &rids {
                                self.obs.op_inject(r, c.ts);
                            }
                        }
                        self.local_events.push_many(&rids, peer, c.ts, c.status);
                        Stats::add(&self.stats.local_completions, rids.len() as u64);
                        self.give_rid_vec(rids);
                    }
                } else {
                    self.obs.op_inject(rid, c.ts);
                    self.local_events.push(rid, peer, c.ts, c.status);
                    Stats::bump(&self.stats.local_completions);
                }
            }
        }
        retired
    }

    /// Route a harvested slice of recv CQEs (immediate-data completions)
    /// into remote events. Returns how many were routed.
    fn retire_recv_cqes(&self, cqes: &[Cqe]) -> usize {
        let mut routed = 0usize;
        for c in cqes {
            if let photon_fabric::verbs::CompletionKind::ImmDone { src, len, imm } = c.kind {
                routed += 1;
                Stats::bump(&self.stats.remote_completions);
                if rid_space::is_reserved(imm) {
                    self.coll_inbox.lock().entry(imm).or_default().push_back((
                        src,
                        Vec::new(),
                        c.ts,
                    ));
                } else {
                    self.obs.op_deliver(src, imm, OpKind::PutDirect, len, c.ts);
                    self.remote_events.push(RemoteEvent {
                        src,
                        rid: imm,
                        size: len,
                        payload: None,
                        ts: c.ts,
                        status: WcStatus::Success,
                    });
                }
            }
        }
        routed
    }

    /// Retire every send CQE currently in the queue into local events,
    /// harvesting through the recycled scratch buffer (no per-pass heap
    /// allocation). Returns how many CQEs matched a tracked work request.
    fn harvest_send_cq(&self) -> usize {
        let mut buf = self.cq_scratch.lock();
        buf.clear();
        if self.nic.poll_send_cq_into(CQ_HARVEST_BATCH, &mut buf) == 0 {
            return 0;
        }
        self.retire_send_cqes(&buf)
    }

    fn progress_pass(&self) -> Result<usize> {
        let mut work = self.harvest_send_cq();
        if self.cfg.imm_completions {
            let routed = {
                let mut buf = self.cq_scratch.lock();
                buf.clear();
                if self.nic.poll_recv_cq_into(CQ_HARVEST_BATCH, &mut buf) > 0 {
                    self.retire_recv_cqes(&buf)
                } else {
                    0
                }
            };
            work += routed;
        }
        // The scratch mutex is uncontended here: progress_pass is
        // single-flight behind progress_gate, and the dedicated progress
        // threads carry their own per-thread snapshot buffers.
        let mut conns = self.conn_scratch.lock();
        self.snapshot_conns(&mut conns);
        for conn in conns.iter() {
            work += self.poll_peer(conn)?;
        }
        Ok(work)
    }

    /// Scan one peer's completion ledger and eager ring, routing everything
    /// pending. Returns the number of entries/frames routed (the progress
    /// threads' idle-backoff signal).
    fn poll_peer(&self, conn: &Arc<Conn>) -> Result<usize> {
        let j = conn.peer;
        // If another thread is already polling this peer, usually skip: the
        // holder harvests everything pending, and every caller of progress()
        // either re-polls on its next spin (blocking loops) or is a polling
        // API the caller retries by contract. Waiting here would convoy all
        // progress threads behind one receive lock. The skip is *bounded*,
        // though: under dedicated progress threads a persistently contended
        // lock could otherwise starve the peer's service entirely, so after
        // `RX_SKIP_LIMIT` consecutive skips the caller blocks and takes a
        // turn (pinned by `bounded_rx_skip_forces_a_blocking_lock`).
        let mut rx = match conn.rx.try_lock() {
            Some(g) => {
                conn.rx_skips.store(0, Ordering::Relaxed);
                g
            }
            None => {
                if conn.rx_skips.fetch_add(1, Ordering::Relaxed) + 1 < RX_SKIP_LIMIT {
                    Stats::bump(&self.stats.rx_lock_skips);
                    return Ok(0);
                }
                conn.rx_skips.store(0, Ordering::Relaxed);
                Stats::bump(&self.stats.rx_lock_waits);
                conn.rx.lock()
            }
        };
        let mut routed = 0usize;
        // Credit returns are *coalesced* across the whole pass: every time
        // an interval fires we capture the latest `(consumed, cursor)` pair,
        // but only the final capture is written. The end state the producer
        // sees is identical to writing at every firing (each capture
        // dominates its predecessors), with one RDMA write per peer per
        // pass instead of one per interval.
        let mut credit: Option<(u64, u64)> = None;
        // Completion-ledger entries. Routing happens *under* the per-peer
        // receive lock (held across the whole pass): cursor advance and
        // event delivery must be atomic, or two concurrently probing threads
        // could publish a peer's events out of order (and mis-order
        // eager-put copy-outs).
        loop {
            let n = conn.svc.with_bytes(|b| {
                let rx = &mut *rx;
                let mut n = 0usize;
                loop {
                    let off = rx.ledger.head_offset();
                    let Some(e) = rx.ledger.accept(&b[off..off + ENTRY_BYTES]) else { break };
                    self.route_entry(j, e, &mut rx.ev_scratch);
                    n += 1;
                }
                n
            });
            if n == 0 {
                break;
            }
            routed += n;
            // `credit_due` is a stateful threshold check against the total
            // consumed count, so one check per drained batch fires iff a
            // per-entry check would have fired somewhere inside it — and
            // captures an even fresher cursor.
            if rx.ledger.credit_due().is_some() {
                credit = Some((rx.ledger.consumed(), rx.ring.cursor()));
            }
        }
        // Eager frames, same discipline. Frames are routed *inside* the
        // service-region read closure so put payloads copy straight from
        // the ring to their destination region with no intermediate heap
        // buffer (svc.read → dst.write never nests the same lock: the one
        // degenerate case — a put targeting the service region itself — is
        // deferred and staged through a copy below).
        let svc_rkey = conn.svc.remote_key().rkey;
        let rbase = self.ledger_bytes;
        // One-entry destination-resolve cache for the pass: doorbell-batched
        // puts land as runs of frames aimed at the same rkey, and the MR
        // table lookup (map lock + hash + handle clone + bounds) was the
        // single largest per-frame cost. Generation-checked, so a racing
        // deregistration invalidates it exactly like a fresh resolve would.
        let mut mr_cache: MrCache = None;
        loop {
            let mut deferred: Option<(EagerFrame, usize)> = None;
            let mut err: Option<PhotonError> = None;
            // The service-region read lock is held across the whole drained
            // batch, not re-taken per frame; routing stays inside it so put
            // payloads copy straight from the ring to their destination
            // region with no intermediate heap buffer (svc.read → dst.write
            // never nests the same lock: the one degenerate case — a put
            // targeting the service region itself — is deferred and staged
            // through a copy below).
            let got = conn.svc.with_bytes(|b| {
                let rx = &mut *rx;
                let ring = &b[rbase..rbase + self.ring_bytes];
                let mut n = 0usize;
                while let Some(f) = rx.ring.accept(ring) {
                    n += 1;
                    let take = f.header.size as usize;
                    let pay: &[u8] = if f.header.kind != FrameKind::Skip && take > 0 {
                        &ring[f.payload_offset..f.payload_offset + take]
                    } else {
                        &[]
                    };
                    if f.header.kind == FrameKind::Put && f.header.dst_rkey == svc_rkey {
                        // A put whose destination *is* the service region:
                        // copying out under the read lock would nest it.
                        // Remember the payload's region-absolute offset and
                        // finish after the lock drops — the rx guard (held
                        // until the credit return below) keeps the ring slot
                        // from being overwritten in the meantime.
                        let src_off = rbase + f.payload_offset;
                        deferred = Some((f, src_off));
                        break;
                    }
                    if f.header.kind == FrameKind::Put && !pay.is_empty() {
                        Stats::bump(&self.stats.stage_copies_avoided);
                    }
                    if let Err(e) = self.route_frame(j, f, pay, &mut mr_cache, &mut rx.ev_scratch) {
                        err = Some(e);
                        break;
                    }
                }
                n
            });
            if got == 0 {
                break;
            }
            routed += got;
            if let Some(e) = err {
                // Publish whatever routed cleanly before surfacing the
                // error; staged events must not sit in the scratch while
                // the caller sees the pass as failed.
                self.remote_events.push_drain(j, &mut rx.ev_scratch);
                return Err(e);
            }
            if let Some((f, src_off)) = deferred {
                // In-place ring → destination move inside the one region,
                // no intermediate heap buffer (ranges may overlap).
                let h = f.header;
                let take = h.size as usize;
                let (mr, off) =
                    self.resolve_write_cached(&mut mr_cache, h.dst_addr, h.dst_rkey, take)?;
                mr.with_bytes_mut(|b| b.copy_within(src_off..src_off + take, off));
                self.clock.advance_to(VTime(h.ts));
                let done = self.clock.advance(self.copy_ns(take));
                Stats::bump(&self.stats.remote_completions);
                if take > 0 {
                    Stats::bump(&self.stats.stage_copies_avoided);
                }
                if rid_space::is_reserved(h.rid) {
                    self.coll_inbox.lock().entry(h.rid).or_default().push_back((
                        j,
                        Vec::new(),
                        done,
                    ));
                } else {
                    self.obs.op_deliver(j, h.rid, OpKind::PutEager, take, done);
                    rx.ev_scratch.push(RemoteEvent {
                        src: j,
                        rid: h.rid,
                        size: take,
                        payload: None,
                        ts: done,
                        status: WcStatus::Success,
                    });
                }
            }
            if rx.ring.credit_due().is_some() {
                credit = Some((rx.ledger.consumed(), rx.ring.cursor()));
            }
        }
        // Publish the pass's staged events — ledger entries first, frames
        // after, exactly the order they were routed — in one locked append
        // per peer instead of one lock per event.
        self.remote_events.push_drain(j, &mut rx.ev_scratch);
        // The credit write happens while the receive lock is still held:
        // the words are *absolute* counters, so two writers racing (a
        // progress thread and an inline help-pumper) could publish a stale
        // pair after a newer one, silently re-crediting consumed slots to
        // the producer. Serializing through the rx guard makes each peer's
        // credit stream monotone. Lock order stays acyclic: the write path
        // takes only the stage/MR locks, which are never held around an rx
        // acquisition.
        if let Some((lc, rc)) = credit {
            self.return_credits(conn, lc, rc)?;
        }
        drop(rx);
        Ok(routed)
    }

    /// [`MrTable::resolve`] for `REMOTE_WRITE`, memoized through a one-entry
    /// `(rkey, generation, region)` cache. A hit skips the table's map lock
    /// and hash probe entirely; any deregistration bumps the table
    /// generation and forces a full (re-validating) resolve.
    fn resolve_write_cached<'c>(
        &self,
        cache: &'c mut MrCache,
        addr: u64,
        rkey: u32,
        len: usize,
    ) -> Result<(&'c MemoryRegion, usize)> {
        let mrs = self.nic.mrs();
        let gen = mrs.generation();
        // A hit hands back a borrow of the cached handle — no Arc clone
        // per frame, the region reference lives as long as the pass.
        let hit = match cache {
            Some((ck, cgen, mr)) if *ck == rkey && *cgen == gen => {
                let base = mr.base_addr();
                addr >= base
                    && ((addr - base) as usize).checked_add(len).is_some_and(|end| end <= mr.len())
            }
            _ => false,
        };
        if !hit {
            let (mr, _) = mrs.resolve(addr, rkey, len, Access::REMOTE_WRITE)?;
            *cache = Some((rkey, gen, mr));
        }
        let (_, _, mr) = cache.as_ref().expect("cache filled above");
        Ok((mr, (addr - mr.base_addr()) as usize))
    }

    /// Route one completion-ledger entry. Remote events go to `sink` (the
    /// drain pass's per-peer staging buffer), not straight to the event
    /// queue — the caller publishes the whole run under one peer lock.
    fn route_entry(&self, src: Rank, e: Entry, sink: &mut Vec<RemoteEvent>) {
        let ts = VTime(e.ts);
        match e.kind {
            EntryKind::Completion | EntryKind::GetNotify => {
                Stats::bump(&self.stats.remote_completions);
                if rid_space::is_reserved(e.rid) {
                    self.coll_inbox.lock().entry(e.rid).or_default().push_back((
                        src,
                        Vec::new(),
                        ts,
                    ));
                } else {
                    self.obs.op_deliver(src, e.rid, OpKind::PutDirect, e.size as usize, ts);
                    sink.push(RemoteEvent {
                        src,
                        rid: e.rid,
                        size: e.size as usize,
                        payload: None,
                        ts,
                        status: WcStatus::Success,
                    });
                }
            }
            EntryKind::RdvPost => {
                Stats::bump(&self.stats.rendezvous_ops);
                self.rdv_announces.lock().insert(
                    (src, e.rid),
                    (RemoteKey { addr: e.addr, rkey: e.rkey, len: e.size as usize }, ts),
                );
            }
            EntryKind::Fin => {
                Stats::bump(&self.stats.rendezvous_ops);
                self.rdv_fins.lock().insert((src, e.rid), ts);
            }
        }
    }

    /// Route one eager frame. Remote events go to `sink` (the drain pass's
    /// per-peer staging buffer), not straight to the event queue — the
    /// caller publishes the whole run under one peer lock.
    fn route_frame(
        &self,
        src: Rank,
        f: EagerFrame,
        payload: &[u8],
        mr_cache: &mut MrCache,
        sink: &mut Vec<RemoteEvent>,
    ) -> Result<()> {
        let h = f.header;
        let ts = VTime(h.ts);
        match h.kind {
            FrameKind::Skip => {}
            FrameKind::Msg => {
                // Msg payloads become owned event data (they outlive the
                // ring slot); only Put frames get the in-place copy-out.
                Stats::bump(&self.stats.remote_completions);
                if rid_space::is_reserved(h.rid) {
                    self.coll_inbox.lock().entry(h.rid).or_default().push_back((
                        src,
                        payload.to_vec(),
                        ts,
                    ));
                } else {
                    self.obs.op_deliver(src, h.rid, OpKind::Send, h.size as usize, ts);
                    sink.push(RemoteEvent {
                        src,
                        rid: h.rid,
                        size: h.size as usize,
                        payload: Some(payload.to_vec()),
                        ts,
                        status: WcStatus::Success,
                    });
                }
            }
            FrameKind::Put => {
                // Probe-time copy-out to the final destination.
                let (mr, off) =
                    self.resolve_write_cached(mr_cache, h.dst_addr, h.dst_rkey, h.size as usize)?;
                mr.write_at(off, payload);
                self.clock.advance_to(ts);
                let done = self.clock.advance(self.copy_ns(payload.len()));
                Stats::bump(&self.stats.remote_completions);
                if rid_space::is_reserved(h.rid) {
                    self.coll_inbox.lock().entry(h.rid).or_default().push_back((
                        src,
                        Vec::new(),
                        done,
                    ));
                } else {
                    self.obs.op_deliver(src, h.rid, OpKind::PutEager, h.size as usize, done);
                    sink.push(RemoteEvent {
                        src,
                        rid: h.rid,
                        size: h.size as usize,
                        payload: None,
                        ts: done,
                        status: WcStatus::Success,
                    });
                }
            }
        }
        Ok(())
    }

    /// Dequeue one event honoring `flags`. For `Any`, the starting class
    /// alternates on every take, so sustained traffic of one class can delay
    /// the other by at most one event — the old local-first drain starved
    /// remote delivery indefinitely.
    /// Dequeue one event matching `flags` in the consolidated
    /// [`Completion`] shape; every dequeue path funnels through here, which
    /// is also where the lifecycle spans get their `complete` stamp.
    fn take_one_completion(&self, flags: ProbeFlags) -> Option<Completion> {
        let local = |s: &Self| {
            s.local_events
                .pop_front()
                .map(|(rid, peer, ts, status)| Completion::local(rid, peer, ts, status))
        };
        let remote = |s: &Self| s.remote_events.pop_any().map(Completion::from);
        let got = match flags {
            ProbeFlags::Local => local(self),
            ProbeFlags::Remote => remote(self),
            ProbeFlags::Any => {
                if self.any_toggle.fetch_add(1, Ordering::Relaxed) & 1 == 0 {
                    local(self).or_else(|| remote(self))
                } else {
                    remote(self).or_else(|| local(self))
                }
            }
        };
        if let Some(c) = &got {
            match c.class {
                CompletionClass::Local => self.obs.op_complete_local(c.rid, c.ts, c.status),
                CompletionClass::Remote => {
                    self.obs.op_complete_remote(c.peer, c.rid, c.ts, c.status)
                }
            }
        }
        got
    }

    /// Run progress ahead of a probe, amortized: when events matching
    /// `flags` are already queued, only every 8th probe pays for a full
    /// pass — the probe can be satisfied from the queue, and consecutive
    /// single-event probes draining a backlog would otherwise spend most of
    /// their time re-polling idle fabric queues. An empty queue always
    /// progresses (that is the only way events appear).
    fn progress_for_probe(&self, flags: ProbeFlags) -> Result<()> {
        let queued = match flags {
            ProbeFlags::Local => self.local_events.len() > 0,
            ProbeFlags::Remote => self.remote_events.len() > 0,
            ProbeFlags::Any => self.local_events.len() > 0 || self.remote_events.len() > 0,
        };
        if queued && self.threads_active.load(Ordering::Relaxed) {
            // Dedicated progress threads are pumping: a probe with events
            // already queued is a pure consumer and pays nothing at all.
            return Ok(());
        }
        if !queued || self.probe_ticks.fetch_add(1, Ordering::Relaxed) & 7 == 0 {
            self.progress()?;
        }
        Ok(())
    }

    /// Block until the local completion `rid` arrives; other events stay
    /// queued. Returns the completion's virtual time, or
    /// [`PhotonError::OpFailed`] when the operation completed with an error
    /// status (its peer died or the path to it broke). The lookup is O(1)
    /// per spin (indexed by rid), independent of queue depth.
    pub fn wait_local(&self, rid: u64) -> Result<VTime> {
        self.wait_local_inner(rid, Duration::from_secs(self.cfg.wait_timeout_secs))
    }

    /// [`Photon::wait_local`] with a caller-supplied deadline: reports
    /// [`PhotonError::Timeout`] (carrying `rid`) when the completion does
    /// not arrive in time, leaving the operation pending.
    pub fn wait_local_for(&self, rid: u64, timeout: Duration) -> Result<VTime> {
        self.wait_local_inner(rid, timeout)
    }

    fn wait_local_inner(&self, rid: u64, timeout: Duration) -> Result<VTime> {
        // Consumer-first fast path: a completion already harvested — by a
        // dedicated progress thread or an earlier pass — is taken with no
        // progress work at all.
        if let Some((ts, status)) = self.local_events.take_rid(rid) {
            return self.finish_local(rid, ts, status);
        }
        // Optimistic inline pass: with synchronous fabric effects one pass
        // usually harvests the completion, and a hit skips the claim locks.
        self.progress()?;
        if let Some((ts, status)) = self.local_events.take_rid(rid) {
            return self.finish_local(rid, ts, status);
        }
        // Slow path: claim the rid while blocked so a concurrent
        // `flush_local` leaves its event to us (see `flush_local`).
        self.local_events.claim(rid);
        let res = self.blocking_deadline("local completion", Some(rid), timeout, |s| {
            Ok(s.local_events.take_rid(rid))
        });
        self.local_events.unclaim(rid);
        let (ts, status) = res?;
        self.finish_local(rid, ts, status)
    }

    /// Consume one harvested local completion: advance the clock, trace,
    /// and surface an error status as [`PhotonError::OpFailed`].
    fn finish_local(&self, rid: u64, ts: VTime, status: WcStatus) -> Result<VTime> {
        self.clock.advance_to(ts);
        self.obs.op_complete_local(rid, ts, status);
        self.tracer.record(ts, TraceOp::LocalDone, self.rank, rid, 0);
        if status.is_ok() {
            Ok(ts)
        } else {
            Err(PhotonError::OpFailed { rid, status })
        }
    }

    // ---------------------------------------- consolidated completion view

    /// Probe for the next completion in the consolidated [`Completion`]
    /// shape: one struct carrying rid, peer, timestamp, status, and class
    /// for both local and remote completions. Non-blocking; `Ok(None)` when
    /// nothing is pending (`photon_probe_completion`).
    pub fn poll_completion(&self, flags: ProbeFlags) -> Result<Option<Completion>> {
        Stats::bump(&self.stats.probes);
        self.progress_for_probe(flags)?;
        let c = self.take_one_completion(flags);
        if let Some(c) = &c {
            self.clock.advance_to(c.ts);
            self.trace_completion(c);
        }
        Ok(c)
    }

    /// Batch [`Photon::poll_completion`]: run progress once, then drain up
    /// to `max` completions matching `flags` into `out` (appended; the
    /// caller's buffer is not cleared). Returns how many were delivered.
    ///
    /// One progress pass and a handful of shard-lock acquisitions amortize
    /// across the whole batch, which is what a runtime progress thread
    /// wants under load; `Any` interleaves local and remote events fairly
    /// within the batch.
    pub fn poll_completions(
        &self,
        flags: ProbeFlags,
        out: &mut Vec<Completion>,
        max: usize,
    ) -> Result<usize> {
        Stats::bump(&self.stats.probes);
        Stats::bump(&self.stats.probe_batches);
        self.progress_for_probe(flags)?;
        if matches!(flags, ProbeFlags::Local) {
            // Local-only drains (the runtime's completion-reap shape) take
            // the batched queue path: one shard lock per run instead of one
            // per event, with the clock advanced once to the batch maximum
            // (`advance_to` is a running max, so order is immaterial).
            let mut latest = VTime(0);
            let got = self.local_events.pop_front_batch(max, |rid, peer, ts, status| {
                let c = Completion::local(rid, peer, ts, status);
                self.obs.op_complete_local(rid, ts, status);
                latest = latest.max(ts);
                self.trace_completion(&c);
                out.push(c);
            });
            if got > 0 {
                self.clock.advance_to(latest);
            }
            return Ok(got);
        }
        let mut got = 0;
        while got < max {
            let Some(c) = self.take_one_completion(flags) else { break };
            self.clock.advance_to(c.ts);
            self.trace_completion(&c);
            out.push(c);
            got += 1;
        }
        Ok(got)
    }

    /// Block until any completion arrives, in the consolidated
    /// [`Completion`] shape (fair across classes).
    pub fn wait_completion(&self) -> Result<Completion> {
        self.wait_completion_for(Duration::from_secs(self.cfg.wait_timeout_secs))
    }

    /// [`Photon::wait_completion`] with a caller-supplied deadline: reports
    /// [`PhotonError::Timeout`] when no completion arrives in time.
    pub fn wait_completion_for(&self, timeout: Duration) -> Result<Completion> {
        self.blocking_deadline("completion", None, timeout, |s| {
            Ok(s.take_one_completion(ProbeFlags::Any))
        })
        .inspect(|c| {
            self.clock.advance_to(c.ts);
            self.trace_completion(c);
        })
    }

    /// Block until a completion matching `flags` arrives. The class-aware
    /// sibling of [`Photon::wait_completion`]: [`ProbeFlags::Remote`] is
    /// the historical `wait_remote` (events of the other class stay
    /// queued), [`ProbeFlags::Local`] blocks for the next initiator-side
    /// completion regardless of rid.
    pub fn wait_completion_matching(&self, flags: ProbeFlags) -> Result<Completion> {
        let what = match flags {
            ProbeFlags::Local => "local completion",
            ProbeFlags::Remote => "remote completion",
            ProbeFlags::Any => "completion",
        };
        let c = self.blocking(what, |s| Ok(s.take_one_completion(flags)))?;
        self.clock.advance_to(c.ts);
        self.trace_completion(&c);
        Ok(c)
    }

    /// Block until a remote completion *from `src`* arrives, in the
    /// consolidated [`Completion`] shape; events from other peers stay
    /// queued (the per-proc probe of the original API). O(1) per spin: the
    /// per-peer queue is popped directly, never scanned.
    pub fn wait_completion_from(&self, src: Rank) -> Result<Completion> {
        self.check_rank(src)?;
        let ev =
            self.blocking("remote completion from peer", |s| Ok(s.remote_events.pop_from(src)))?;
        self.clock.advance_to(ev.ts);
        self.obs.op_complete_remote(ev.src, ev.rid, ev.ts, ev.status);
        self.tracer.record(ev.ts, TraceOp::RemoteDone, ev.src, ev.rid, ev.size);
        Ok(Completion::from(ev))
    }

    fn trace_completion(&self, c: &Completion) {
        if self.tracer.is_enabled() {
            match c.class {
                CompletionClass::Local => {
                    self.tracer.record(c.ts, TraceOp::LocalDone, self.rank, c.rid, 0)
                }
                CompletionClass::Remote => {
                    self.tracer.record(c.ts, TraceOp::RemoteDone, c.peer, c.rid, c.size)
                }
            }
        }
    }

    /// Non-blocking check for the local completion `rid` (`photon_test`):
    /// consumes and returns its timestamp when present; an error-status
    /// completion surfaces as [`PhotonError::OpFailed`]. O(1) lookup.
    pub fn test_local(&self, rid: u64) -> Result<Option<VTime>> {
        // Consumer-first, like `wait_local`: an already-harvested
        // completion costs one shard lookup and no progress pass.
        if let Some((ts, status)) = self.local_events.take_rid(rid) {
            return self.finish_local(rid, ts, status).map(Some);
        }
        self.progress()?;
        match self.local_events.take_rid(rid) {
            Some((ts, status)) => self.finish_local(rid, ts, status).map(Some),
            None => Ok(None),
        }
    }

    /// Block until every operation this context had initiated *at the time
    /// of the call* has completed locally, consuming those completions'
    /// events. This is the `photon_flush`-style quiesce used before reusing
    /// or releasing many buffers at once.
    ///
    /// Two snapshots taken at entry bound what the flush touches:
    ///
    /// * **Completion** is tracked by `wr_id`: the flush returns once every
    ///   work request pending at entry has been harvested from the send CQ,
    ///   no matter which thread consumes the resulting events. Waiting on
    ///   event *consumption* instead would deadlock whenever a concurrent
    ///   `wait_local` legitimately eats one of them.
    /// * **Consumption** is by the pending rids, and opportunistic: the
    ///   flush drains their events as they appear, but skips any rid a
    ///   concurrent `wait_local` has claimed — those events belong to their
    ///   waiters (claim check and take share one queue-shard lock, so the
    ///   flush can never win a check-then-take race against a waiter). The
    ///   previous implementation cleared the whole shared queue on every
    ///   spin, silently discarding completions concurrent waiters needed
    ///   and stranding them until timeout.
    pub fn flush_local(&self) -> Result<()> {
        let mut wrs = self.wr_table.pending_wrs();
        let mut owed = self.wr_table.pending_rids();
        let sweep = |s: &Self, owed: &mut HashMap<u64, usize>| {
            owed.retain(|rid, n| {
                while *n > 0 {
                    match s.local_events.take_rid_unclaimed(*rid) {
                        // A flush quiesces: an error completion still means
                        // the source buffer is final (flushed), so it counts.
                        TakeOutcome::Taken(ts, status) => {
                            s.clock.advance_to(ts);
                            s.obs.op_complete_local(*rid, ts, status);
                            *n -= 1;
                        }
                        TakeOutcome::Claimed => return false,
                        TakeOutcome::Empty => break,
                    }
                }
                *n > 0
            });
        };
        self.blocking("local flush", |s| {
            sweep(s, &mut owed);
            wrs.retain(|&w| s.wr_table.contains(w));
            Ok(wrs.is_empty().then_some(()))
        })?;
        // One mop-up pass: a harvester on another thread may have retired
        // the final wr just before pushing its event.
        self.progress()?;
        sweep(self, &mut owed);
        Ok(())
    }

    /// Block until a collective-namespace message with `rid` arrives.
    pub(crate) fn wait_coll(&self, rid: u64) -> Result<(Rank, Vec<u8>, VTime)> {
        let got = self.blocking("collective message", |s| {
            Ok(s.coll_inbox.lock().get_mut(&rid).and_then(|q| q.pop_front()))
        })?;
        self.clock.advance_to(got.2);
        Ok(got)
    }

    /// Spin, making progress, until `f` yields a value or the config-wide
    /// deadline passes.
    pub(crate) fn blocking<T>(
        &self,
        what: &'static str,
        f: impl FnMut(&Self) -> Result<Option<T>>,
    ) -> Result<T> {
        self.blocking_deadline(what, None, Duration::from_secs(self.cfg.wait_timeout_secs), f)
    }

    /// [`Photon::blocking`] with an explicit deadline and optional rid
    /// context for the [`PhotonError::Timeout`] it reports.
    pub(crate) fn blocking_deadline<T>(
        &self,
        what: &'static str,
        rid: Option<u64>,
        timeout: Duration,
        mut f: impl FnMut(&Self) -> Result<Option<T>>,
    ) -> Result<T> {
        let deadline = Instant::now() + timeout;
        let mut spins: u32 = 0;
        loop {
            self.progress()?;
            // The predicate is O(1) on the sharded engine; the progress pass
            // is the expensive half of the spin. Re-check a few times per
            // pass so a harvest by a concurrently progressing thread is
            // picked up without paying for another full pass of our own.
            for _ in 0..4 {
                if let Some(v) = f(self)? {
                    return Ok(v);
                }
                std::hint::spin_loop();
            }
            // A full pass plus rechecks came up empty: whatever this caller
            // is waiting on must be produced by another thread (or will not
            // arrive at all), so hand the core over instead of burning the
            // rest of the quantum re-polling idle queues.
            std::thread::yield_now();
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(16) && Instant::now() > deadline {
                return Err(PhotonError::Timeout { what, rid });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> PhotonCluster {
        PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default())
    }

    #[test]
    fn pwc_eager_roundtrip() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(256).unwrap();
        let dst = p1.register_buffer(256).unwrap();
        src.write_at(0, b"eager path");
        p0.put_with_completion(1, &src, 0, 10, &dst.descriptor(), 16, 7, 99).unwrap();
        assert!(p0.wait_local(7).unwrap() > VTime::ZERO);
        let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        assert_eq!(ev.rid, 99);
        assert_eq!(ev.peer, 0);
        assert_eq!(ev.size, 10);
        assert!(ev.payload.is_none(), "eager put copies out, no payload");
        assert_eq!(dst.to_vec(16, 10), b"eager path");
        assert_eq!(p0.stats().puts_eager, 1);
        // Remote completion happens after wire latency.
        assert!(ev.ts.as_nanos() >= 700);
    }

    #[test]
    fn pwc_direct_roundtrip() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let len = 64 * 1024; // above the eager threshold
        let src = p0.register_buffer(len).unwrap();
        let dst = p1.register_buffer(len).unwrap();
        src.fill(0xAB);
        p0.put_with_completion(1, &src, 0, len, &dst.descriptor(), 0, 1, 2).unwrap();
        p0.wait_local(1).unwrap();
        let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        assert_eq!(ev.rid, 2);
        assert_eq!(ev.size, len);
        assert_eq!(dst.to_vec(0, len), vec![0xAB; len]);
        assert_eq!(p0.stats().puts_direct, 1);
        assert_eq!(p0.stats().puts_eager, 0);
    }

    #[test]
    fn get_with_completion_pulls() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let dst = p0.register_buffer(128).unwrap();
        let src = p1.register_buffer(128).unwrap();
        src.write_at(32, b"pull me");
        p0.get_with_completion(1, &dst, 0, 7, &src.descriptor(), 32, 55).unwrap();
        p0.wait_local(55).unwrap();
        assert_eq!(dst.to_vec(0, 7), b"pull me");
        assert_eq!(p0.stats().gets, 1);
    }

    #[test]
    fn bounded_rx_skip_forces_a_blocking_lock() {
        let c = pair();
        let p0 = c.rank(0).clone();
        // Hold peer 1's receive lock on another thread; every progress pass
        // skips it (bounded), and once the budget runs out the pass blocks
        // until the holder releases — the peer cannot be starved forever.
        let conn = p0.conn(1).unwrap();
        let holder = {
            let conn = Arc::clone(&conn);
            std::thread::spawn(move || {
                let _rx = conn.rx.lock();
                std::thread::sleep(Duration::from_millis(200));
            })
        };
        // Wait until the holder owns the lock.
        while conn.rx.try_lock().is_some() {
            std::thread::yield_now();
        }
        for _ in 0..RX_SKIP_LIMIT - 1 {
            p0.progress().unwrap();
        }
        let s = p0.stats();
        assert_eq!(s.rx_lock_skips, (RX_SKIP_LIMIT - 1) as u64, "skips below the budget");
        assert_eq!(s.rx_lock_waits, 0, "no forced wait yet");
        // The budget is exhausted: the next pass blocks until the holder
        // releases instead of skipping again.
        p0.progress().unwrap();
        holder.join().unwrap();
        let s = p0.stats();
        assert_eq!(s.rx_lock_waits, 1, "the 16th consecutive skip blocks instead");
        assert_eq!(s.rx_lock_skips, (RX_SKIP_LIMIT - 1) as u64, "the wait is not a skip");
        // A successful try_lock resets the budget: later passes skip-count
        // from zero again instead of blocking immediately.
        p0.progress().unwrap();
        assert_eq!(p0.stats().rx_lock_waits, 1);
    }

    #[test]
    fn get_many_batches_reads_behind_one_cqe() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let dst = p0.register_buffer(256).unwrap();
        let src = p1.register_buffer(256).unwrap();
        for i in 0..32u8 {
            src.write_at(i as usize * 8, &[i; 8]);
        }
        let items: Vec<GetManyItem> = (0..32)
            .map(|i| GetManyItem { loff: i * 8, len: 8, soff: i * 8, local_rid: 100 + i as u64 })
            .collect();
        p0.get_many(1, &dst, &src.descriptor(), &items).unwrap();
        // One CQE fans out into every item's local completion, and the
        // first rid's completion already implies all data landed (RC
        // in-order retirement).
        for it in &items {
            p0.wait_local(it.local_rid).unwrap();
        }
        for i in 0..32u8 {
            assert_eq!(dst.to_vec(i as usize * 8, 8), vec![i; 8]);
        }
        assert_eq!(p0.stats().gets, 32);
        assert_eq!(p0.stats().local_completions, 32);
    }

    #[test]
    fn get_many_validates_and_handles_empty() {
        let c = pair();
        let p0 = c.rank(0);
        let dst = p0.register_buffer(16).unwrap();
        let src = c.rank(1).register_buffer(16).unwrap();
        p0.get_many(1, &dst, &src.descriptor(), &[]).unwrap();
        let bad = [GetManyItem { loff: 0, len: 8, soff: 12, local_rid: 1 }];
        assert!(matches!(
            p0.get_many(1, &dst, &src.descriptor(), &bad),
            Err(PhotonError::OutOfRange { .. })
        ));
        assert_eq!(p0.stats().gets, 0, "failed batch posts nothing");
    }

    #[test]
    fn get_with_remote_notify_notifies() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let dst = p0.register_buffer(8).unwrap();
        let src = p1.register_buffer(8).unwrap();
        p0.get_with_remote_notify(1, &dst, 0, 8, &src.descriptor(), 0, 1, 77).unwrap();
        p0.wait_local(1).unwrap();
        let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        assert_eq!(ev.rid, 77);
    }

    #[test]
    fn send_delivers_payload() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        p0.send(1, b"parcel bytes", 11).unwrap();
        let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        assert_eq!(ev.rid, 11);
        assert_eq!(ev.payload.as_deref(), Some(&b"parcel bytes"[..]));
        assert_eq!(p0.stats().sends, 1);
    }

    #[test]
    fn many_sends_wrap_the_ring() {
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::tiny());
        let (p0, p1) = (c.rank(0), c.rank(1));
        // Far more traffic than the 512-byte ring holds: exercises credits,
        // skips and wraparound. Consumer runs concurrently.
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..500u64 {
                    let payload = vec![i as u8; (i % 60) as usize];
                    p0.send(1, &payload, i).unwrap();
                }
            });
            s.spawn(|| {
                for i in 0..500u64 {
                    let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
                    assert_eq!(ev.rid, i, "in-order delivery");
                    assert_eq!(ev.payload.unwrap(), vec![i as u8; (i % 60) as usize]);
                }
            });
        });
        assert!(p0.stats().credit_stalls > 0, "ring pressure was exercised");
        assert!(p1.stats().credit_returns > 0);
    }

    #[test]
    fn ledger_backpressure_direct_puts() {
        let cfg = PhotonConfig { eager_threshold: 0, ..PhotonConfig::tiny() };
        let c = PhotonCluster::new(2, NetworkModel::ideal(), cfg);
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(64).unwrap();
        let dst = p1.register_buffer(64).unwrap();
        // 8-slot ledger: the 9th un-probed direct put must report no space.
        for i in 0..8 {
            assert!(p0.try_put_with_completion(1, &src, 0, 8, &dst.descriptor(), 0, i, i).unwrap());
        }
        assert!(!p0.try_put_with_completion(1, &src, 0, 8, &dst.descriptor(), 0, 9, 9).unwrap());
        assert!(p0.stats().credit_stalls > 0);
        // Once the peer probes, credits come back.
        for _ in 0..8 {
            p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        }
        assert!(p0.try_put_with_completion(1, &src, 0, 8, &dst.descriptor(), 0, 9, 9).unwrap());
    }

    #[test]
    fn plain_put_has_no_remote_event() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(8).unwrap();
        let dst = p1.register_buffer(8).unwrap();
        src.write_u64(0, 31337);
        p0.put(1, &src, 0, 8, &dst.descriptor(), 0, 4).unwrap();
        p0.wait_local(4).unwrap();
        assert_eq!(dst.read_u64(0), 31337);
        assert!(p1.poll_completion(ProbeFlags::Any).unwrap().is_none());
    }

    #[test]
    fn bounds_and_rank_checks() {
        let c = pair();
        let p0 = c.rank(0);
        let src = p0.register_buffer(8).unwrap();
        let d = src.descriptor();
        assert!(matches!(
            p0.put_with_completion(5, &src, 0, 8, &d, 0, 1, 1),
            Err(PhotonError::InvalidRank(5))
        ));
        assert!(matches!(
            p0.put_with_completion(1, &src, 4, 8, &d, 0, 1, 1),
            Err(PhotonError::OutOfRange { .. })
        ));
        assert!(matches!(
            p0.put_with_completion(1, &src, 0, 8, &d, 4, 1, 1),
            Err(PhotonError::OutOfRange { .. })
        ));
        let huge = vec![0u8; 1 << 20];
        assert!(matches!(p0.send(1, &huge, 1), Err(PhotonError::MessageTooLarge { .. })));
    }

    #[test]
    fn probe_flags_separate_queues() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        p0.send(1, b"x", 1).unwrap();
        p1.send(0, b"y", 2).unwrap();
        // p0 has a remote event incoming; probing Local only must not eat it.
        p0.blocking("event arrival", |s| Ok((s.queued_events().1 > 0).then_some(()))).unwrap();
        assert!(p0.poll_completion(ProbeFlags::Local).unwrap().is_none());
        let ev = p0.poll_completion(ProbeFlags::Remote).unwrap().unwrap();
        assert_eq!(ev.rid, 2);
    }

    #[test]
    fn virtual_clock_advances_along_causal_chain() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        assert_eq!(p0.now(), VTime::ZERO);
        p0.send(1, b"ping", 1).unwrap();
        let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        assert!(p1.now() >= ev.ts);
        assert!(ev.ts.as_nanos() >= 700, "at least one wire latency");
        // Local compute advances explicitly.
        let before = p0.now();
        p0.elapse(5_000);
        assert_eq!(p0.now().as_nanos(), before.as_nanos() + 5_000);
    }

    #[test]
    fn wait_completion_from_filters_by_source() {
        let c = PhotonCluster::new(3, NetworkModel::ib_fdr(), PhotonConfig::default());
        let (p0, p1, p2) = (c.rank(0), c.rank(1), c.rank(2));
        p1.send(0, b"from-1", 11).unwrap();
        // Ensure rank 1's message is already queued before rank 2 sends, so
        // the filter (not arrival order) is what's being tested.
        p0.blocking("first arrival", |s| Ok((s.queued_events().1 > 0).then_some(()))).unwrap();
        p2.send(0, b"from-2", 22).unwrap();
        let ev = p0.wait_completion_from(2).unwrap();
        assert_eq!((ev.peer, ev.rid), (2, 22));
        let ev = p0.wait_completion_matching(ProbeFlags::Remote).unwrap();
        assert_eq!((ev.peer, ev.rid), (1, 11), "skipped event still queued");
        assert!(p0.wait_completion_from(9).is_err());
    }

    #[test]
    fn test_local_is_nonblocking() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        assert_eq!(p0.test_local(5).unwrap(), None);
        let src = p0.register_buffer(8).unwrap();
        let dst = p1.register_buffer(8).unwrap();
        p0.put(1, &src, 0, 8, &dst.descriptor(), 0, 5).unwrap();
        let ts = p0.test_local(5).unwrap();
        assert!(ts.is_some());
        assert_eq!(p0.test_local(5).unwrap(), None, "consumed");
    }

    #[test]
    fn flush_local_quiesces() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(8).unwrap();
        let dst = p1.register_buffer(8).unwrap();
        for i in 0..20 {
            p0.put(1, &src, 0, 8, &dst.descriptor(), 0, i).unwrap();
        }
        p0.flush_local().unwrap();
        // All local events consumed; nothing pending.
        assert!(p0.poll_completion(ProbeFlags::Local).unwrap().is_none());
    }

    #[test]
    fn flush_local_spares_already_harvested_events() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(8).unwrap();
        let dst = p1.register_buffer(8).unwrap();
        // A waiter's operation completes and its event is harvested...
        p0.put(1, &src, 0, 8, &dst.descriptor(), 0, 777).unwrap();
        p0.progress().unwrap();
        // ...then another batch is posted and flushed. The flush owns only
        // the completions pending at entry, not the waiter's queued event.
        for i in 0..20 {
            p0.put(1, &src, 0, 8, &dst.descriptor(), 0, i).unwrap();
        }
        p0.flush_local().unwrap();
        assert!(
            p0.test_local(777).unwrap().is_some(),
            "flush discarded a completion it did not own"
        );
        for i in 0..20 {
            assert!(p0.test_local(i).unwrap().is_none(), "flush consumed its own batch");
        }
    }

    #[test]
    fn flush_local_race_with_wait_local() {
        // A waiter blocked in wait_local must never lose its completion to a
        // concurrent flush_local: the old flush cleared the entire shared
        // local-event queue on every spin. The waiter claims each rid before
        // posting (wait_local claims on entry; doing it pre-post closes the
        // post-to-claim window so the flush snapshot provably excludes it),
        // and a dedicated harvester thread keeps queued events exposed to the
        // flusher instead of letting the waiter consume them back-to-back.
        let cfg = PhotonConfig { wait_timeout_secs: 3, ..PhotonConfig::default() };
        let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg);
        let (p0, p1) = (c.rank(0), c.rank(1));
        let dst = p1.register_buffer(8).unwrap();
        let d = dst.descriptor();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            {
                let p0 = p0.clone();
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        p0.progress().unwrap();
                        std::thread::yield_now();
                    }
                });
            }
            let waiter = {
                let p0 = p0.clone();
                let src = p0.register_buffer(8).unwrap();
                s.spawn(move || {
                    for i in 0..200u64 {
                        let rid = 0x7700_0000 + i;
                        p0.local_events.claim(rid);
                        p0.put(1, &src, 0, 8, &d, 0, rid).unwrap();
                        // Simulated work between post and wait: the harvester
                        // queues the completion, which sits exposed to the
                        // concurrent flush until the waiter comes back for it.
                        std::thread::sleep(Duration::from_micros(20));
                        let res = p0.wait_local(rid);
                        p0.local_events.unclaim(rid);
                        res.unwrap();
                    }
                })
            };
            let flusher = {
                let p0 = p0.clone();
                let src = p0.register_buffer(8).unwrap();
                s.spawn(move || {
                    for round in 0..200u64 {
                        for i in 0..10 {
                            p0.put(1, &src, 0, 8, &d, 0, (round << 8) | i).unwrap();
                        }
                        p0.flush_local().unwrap();
                    }
                })
            };
            let w = waiter.join();
            let f = flusher.join();
            stop.store(true, Ordering::Relaxed);
            w.expect("waiter lost a completion to flush_local");
            f.expect("flusher failed");
        });
    }

    #[test]
    fn any_probe_is_fair_under_local_backlog() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        // One remote event queued on p0...
        p1.send(0, b"hi", 42).unwrap();
        p0.blocking("arrival", |s| Ok((s.queued_events().1 > 0).then_some(()))).unwrap();
        // ...behind a deep backlog of local completions.
        let src = p0.register_buffer(8).unwrap();
        let dst = p1.register_buffer(8).unwrap();
        for i in 0..64 {
            p0.put(1, &src, 0, 8, &dst.descriptor(), 0, i).unwrap();
        }
        p0.progress().unwrap();
        // A fair Any drain surfaces the remote event within two probes; the
        // old local-first drain served all 64 locals before it.
        let surfaced = (0..2).any(
            |_| matches!(p0.poll_completion(ProbeFlags::Any).unwrap(), Some(c) if c.is_remote()),
        );
        assert!(surfaced, "remote event starved behind local backlog");
    }

    #[test]
    fn batch_probe_drains_mixed_classes_fairly() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(8).unwrap();
        let dst = p1.register_buffer(8).unwrap();
        for i in 0..8 {
            p0.put(1, &src, 0, 8, &dst.descriptor(), 0, 100 + i).unwrap();
        }
        for i in 0..4 {
            p1.send(0, b"m", 200 + i).unwrap();
        }
        p0.blocking("arrivals", |s| Ok((s.queued_events().1 == 4).then_some(()))).unwrap();
        let mut buf = Vec::new();
        let n = p0.poll_completions(ProbeFlags::Any, &mut buf, 64).unwrap();
        assert_eq!(n, 12);
        let remote_slots: Vec<usize> =
            buf.iter().enumerate().filter(|(_, e)| e.is_remote()).map(|(k, _)| k).collect();
        assert_eq!(remote_slots.len(), 4);
        // Fair interleave inside the batch: remote events alternate with
        // locals instead of bunching at the tail after every local.
        assert!(
            *remote_slots.last().unwrap() <= 8,
            "remote events bunched at batch tail: {remote_slots:?}"
        );
        // A capped drain delivers at most `max` and leaves the rest queued.
        for i in 0..8 {
            p0.put(1, &src, 0, 8, &dst.descriptor(), 0, 300 + i).unwrap();
        }
        p0.progress().unwrap();
        let mut small = Vec::new();
        assert_eq!(p0.poll_completions(ProbeFlags::Local, &mut small, 3).unwrap(), 3);
        assert_eq!(p0.queued_events().0, 5);
        assert_eq!(p0.stats().probe_batches, 2);
    }

    #[test]
    fn tracer_records_operation_timeline() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        p0.tracer().enable();
        p1.tracer().enable();
        let src = p0.register_buffer(64).unwrap();
        let dst = p1.register_buffer(64).unwrap();
        p0.put_with_completion(1, &src, 0, 32, &dst.descriptor(), 0, 1, 2).unwrap();
        p0.wait_local(1).unwrap();
        p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        let tx = p0.tracer().take();
        assert!(tx.iter().any(|r| r.op == crate::obs::TraceOp::PutEager && r.size == 32));
        assert!(tx.iter().any(|r| r.op == crate::obs::TraceOp::LocalDone && r.rid == 1));
        let rx = p1.tracer().take();
        let done = rx
            .iter()
            .find(|r| r.op == crate::obs::TraceOp::RemoteDone)
            .expect("remote completion traced");
        assert_eq!((done.rid, done.peer, done.size), (2, 0, 32));
        // Timeline is causally ordered: remote-done after the local post.
        let posted = tx.iter().find(|r| r.op == crate::obs::TraceOp::PutEager).unwrap();
        assert!(done.ts >= posted.ts);
        let csv = p1.tracer().to_csv();
        assert!(csv.starts_with("ts_ns,op"));
    }

    #[test]
    fn imm_completion_mode_delivers_direct_puts() {
        let cfg = PhotonConfig {
            eager_threshold: 0, // everything direct
            imm_completions: true,
            ..PhotonConfig::default()
        };
        let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg);
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(4096).unwrap();
        let dst = p1.register_buffer(4096).unwrap();
        src.fill(0x42);
        p0.put_with_completion(1, &src, 0, 4096, &dst.descriptor(), 0, 1, 77).unwrap();
        p0.wait_local(1).unwrap();
        let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        assert_eq!((ev.rid, ev.size, ev.peer), (77, 4096, 0));
        assert_eq!(dst.to_vec(0, 8), vec![0x42; 8]);
        // No ledger entries were consumed for this put.
        assert_eq!(p1.stats().credit_returns, 0);
    }

    #[test]
    fn imm_mode_lacks_flow_control_cq_overflow() {
        // The documented trade: with CQ-notification and no credits, an
        // unprobed flood overruns the consumer's CQ and errors the producer.
        let fabric = photon_fabric::Cluster::with_config(
            2,
            NetworkModel::ideal(),
            photon_fabric::NicConfig { cq_depth: 32, ..photon_fabric::NicConfig::default() },
        );
        let cfg =
            PhotonConfig { eager_threshold: 0, imm_completions: true, ..PhotonConfig::default() };
        let c = PhotonCluster::with_fabric(fabric, cfg);
        let p0 = c.rank(0);
        let src = p0.register_buffer(8).unwrap();
        let dst = c.rank(1).register_buffer(8).unwrap();
        let d = dst.descriptor();
        let mut overflowed = false;
        for i in 0..64 {
            match p0.try_put_with_completion(1, &src, 0, 8, &d, 0, i, i) {
                Ok(true) => {}
                Err(PhotonError::Fabric(photon_fabric::FabricError::CqOverflow)) => {
                    overflowed = true;
                    break;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(overflowed, "an unprobed flood must overflow the 32-deep CQ");
        // With the (default) ledger mode the same flood backpressures
        // cleanly instead.
        let fabric = photon_fabric::Cluster::with_config(
            2,
            NetworkModel::ideal(),
            photon_fabric::NicConfig { cq_depth: 32, ..photon_fabric::NicConfig::default() },
        );
        let cfg = PhotonConfig { eager_threshold: 0, ledger_entries: 8, ..PhotonConfig::default() };
        let c = PhotonCluster::with_fabric(fabric, cfg);
        let p0 = c.rank(0);
        let src = p0.register_buffer(8).unwrap();
        let dst = c.rank(1).register_buffer(8).unwrap();
        let d = dst.descriptor();
        let mut posted = 0;
        for i in 0..64 {
            if p0.try_put_with_completion(1, &src, 0, 8, &d, 0, i, i).unwrap() {
                posted += 1;
            } else {
                break;
            }
        }
        assert_eq!(posted, 8, "ledger mode stops cleanly at the credit limit");
    }

    #[test]
    fn eager_fast_path_avoids_staging_copies() {
        // The zero-alloc acceptance check: every eager put performs exactly
        // one direct MR→stage copy at TX and one in-place ring copy-out at
        // RX — no intermediate heap buffer on either side.
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(64).unwrap();
        let dst = p1.register_buffer(64).unwrap();
        let d = dst.descriptor();
        let n = 10u64;
        for i in 0..n {
            p0.put_with_completion(1, &src, 0, 8, &d, 0, i, i).unwrap();
            p0.wait_local(i).unwrap();
            p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        }
        assert_eq!(p0.stats().stage_copies_avoided, n, "one per TX staging");
        assert_eq!(p1.stats().stage_copies_avoided, n, "one per RX copy-out");
    }

    #[test]
    fn put_many_roundtrip_and_batch_stats() {
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(1024).unwrap();
        let dst = p1.register_buffer(1024).unwrap();
        let d = dst.descriptor();
        let items: Vec<PutManyItem> = (0..8usize)
            .map(|i| PutManyItem {
                loff: i * 16,
                len: 16,
                doff: i * 16,
                local_rid: 100 + i as u64,
                remote_rid: i as u64,
            })
            .collect();
        for (i, it) in items.iter().enumerate() {
            src.write_at(it.loff, &[i as u8 + 1; 16]);
        }
        assert_eq!(p0.try_put_many(1, &src, &d, &items).unwrap(), 8);
        // Remote completions surface per frame, in posting order, and the
        // data landed at each sub-put's destination.
        for (i, it) in items.iter().enumerate() {
            let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
            assert_eq!((ev.rid, ev.size), (i as u64, 16));
            assert_eq!(dst.to_vec(it.doff, 16), vec![i as u8 + 1; 16]);
        }
        // Every item's local completion surfaces off the one batched CQE.
        for it in &items {
            p0.wait_local(it.local_rid).unwrap();
        }
        let s = p0.stats();
        assert_eq!(s.puts_eager, 8);
        assert_eq!(s.batch_posts, 1, "one doorbell for the whole run");
        assert_eq!(s.frames_per_batch_5_16, 1);
        assert_eq!(s.stage_copies_avoided, 8);
    }

    #[test]
    fn put_many_mixes_eager_runs_and_ledger_entries() {
        // An oversized item in the middle splits the eager runs; the whole
        // batch still posts in order under one call.
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        let (p0, p1) = (c.rank(0), c.rank(1));
        let big = 16 * 1024; // above the default 8 KiB eager threshold
        let src = p0.register_buffer(big + 64).unwrap();
        let dst = p1.register_buffer(big + 64).unwrap();
        let d = dst.descriptor();
        src.fill(0x5A);
        let items = vec![
            PutManyItem { loff: 0, len: 8, doff: 0, local_rid: 100, remote_rid: 0 },
            PutManyItem { loff: 8, len: 8, doff: 8, local_rid: 101, remote_rid: 1 },
            PutManyItem { loff: 0, len: big, doff: 64, local_rid: 102, remote_rid: 2 },
            PutManyItem { loff: 16, len: 8, doff: 16, local_rid: 103, remote_rid: 3 },
        ];
        assert_eq!(p0.try_put_many(1, &src, &d, &items).unwrap(), 4);
        let mut rids = Vec::new();
        while rids.len() < 4 {
            if let Some(ev) = p1.poll_completion(ProbeFlags::Remote).unwrap() {
                rids.push(ev.rid);
            }
        }
        rids.sort_unstable();
        assert_eq!(rids, vec![0, 1, 2, 3]);
        assert_eq!(dst.to_vec(64, big), vec![0x5A; big]);
        for it in &items {
            p0.wait_local(it.local_rid).unwrap();
        }
        let s = p0.stats();
        assert_eq!((s.puts_eager, s.puts_direct), (3, 1));
        assert_eq!(s.batch_posts, 2, "the oversized item split the run in two");
    }

    #[test]
    fn batched_frames_stay_ordered_against_interleaved_ledger_entry() {
        // A doorbell batch is atomic in the peer's eager delivery order: an
        // interleaved direct put (ledger entry) never splits it, and eager
        // frames across batches surface in exact posting order.
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(64 * 1024).unwrap();
        let dst = p1.register_buffer(64 * 1024).unwrap();
        let d = dst.descriptor();
        let batch1: Vec<PutManyItem> = (0..2u64)
            .map(|i| PutManyItem {
                loff: i as usize * 8,
                len: 8,
                doff: i as usize * 8,
                local_rid: 100 + i,
                remote_rid: 1 + i,
            })
            .collect();
        assert_eq!(p0.try_put_many(1, &src, &d, &batch1).unwrap(), 2);
        // Interleaved ledger-path put (above the eager threshold).
        p0.put_with_completion(1, &src, 0, 16 * 1024, &d, 1024, 150, 50).unwrap();
        let batch2 = vec![PutManyItem { loff: 0, len: 8, doff: 64, local_rid: 103, remote_rid: 3 }];
        assert_eq!(p0.try_put_many(1, &src, &d, &batch2).unwrap(), 1);
        let mut rids = Vec::new();
        while rids.len() < 4 {
            if let Some(ev) = p1.poll_completion(ProbeFlags::Remote).unwrap() {
                rids.push(ev.rid);
            }
        }
        let eager_order: Vec<u64> = rids.iter().copied().filter(|r| *r != 50).collect();
        assert_eq!(eager_order, vec![1, 2, 3], "eager frames keep per-peer posting order");
        assert_eq!(rids.iter().filter(|r| **r == 50).count(), 1);
        let batch1_pos = rids.iter().position(|r| *r == 1).unwrap();
        let ledger_pos = rids.iter().position(|r| *r == 50).unwrap();
        assert!(
            ledger_pos < batch1_pos || ledger_pos > batch1_pos + 1,
            "ledger entry split a doorbell batch: {rids:?}"
        );
        for rid in [100, 101, 150, 103] {
            p0.wait_local(rid).unwrap();
        }
    }

    #[test]
    fn send_many_delivers_each_payload() {
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        let (p0, p1) = (c.rank(0), c.rank(1));
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3 + i as usize]).collect();
        p0.send_many(1, &payloads, 7).unwrap();
        for want in &payloads {
            let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
            assert_eq!(ev.rid, 7);
            assert_eq!(ev.payload.as_deref(), Some(&want[..]));
        }
        let s = p0.stats();
        assert_eq!(s.sends, 5);
        assert_eq!(s.batch_posts, 1);
        assert_eq!(s.frames_per_batch_5_16, 1);
    }

    #[test]
    fn put_many_respects_credit_limits() {
        // A tiny ring takes only part of a large batch; the remainder posts
        // once the consumer probes, and nothing is lost or reordered.
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::tiny());
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(512).unwrap();
        let dst = p1.register_buffer(512).unwrap();
        let d = dst.descriptor();
        let items: Vec<PutManyItem> = (0..32u64)
            .map(|i| PutManyItem {
                loff: (i as usize % 16) * 8,
                len: 8,
                doff: (i as usize % 16) * 8,
                local_rid: 1000 + i,
                remote_rid: i,
            })
            .collect();
        let first = p0.try_put_many(1, &src, &d, &items).unwrap();
        assert!(first > 1 && first < 32, "tiny ring truncates the batch (got {first})");
        std::thread::scope(|s| {
            s.spawn(|| p0.put_many(1, &src, &d, &items[first..]).unwrap());
            s.spawn(|| {
                for i in 0..32u64 {
                    let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
                    assert_eq!(ev.rid, i, "in-order delivery across partial batches");
                }
            });
        });
    }

    #[test]
    fn internal_rids_are_reserved_and_unique() {
        let c = pair();
        let p0 = c.rank(0);
        let a = p0.internal_rid();
        let b = p0.internal_rid();
        assert_ne!(a, b);
        assert!(rid_space::is_reserved(a));
    }

    #[test]
    fn register_buffer_charges_registration_cost() {
        let c = pair();
        let p0 = c.rank(0);
        let before = p0.now();
        let _b = p0.register_buffer(1 << 20).unwrap();
        let m = NetworkModel::ib_fdr();
        assert_eq!(p0.now().as_nanos() - before.as_nanos(), m.registration_ns(1 << 20));
    }

    #[test]
    fn error_status_completion_surfaces_as_op_failed() {
        // The queues carry the status end-to-end: an error completion must
        // reach the caller as OpFailed from every consumption API, never be
        // silently swallowed as a success.
        let c = pair();
        let p0 = c.rank(0);
        p0.local_events.push(7, 1, VTime(10), WcStatus::FlushErr);
        assert_eq!(
            p0.wait_local(7),
            Err(PhotonError::OpFailed { rid: 7, status: WcStatus::FlushErr })
        );
        p0.local_events.push(8, 1, VTime(11), WcStatus::RemoteDead);
        assert_eq!(
            p0.test_local(8),
            Err(PhotonError::OpFailed { rid: 8, status: WcStatus::RemoteDead })
        );
        p0.local_events.push(9, 1, VTime(12), WcStatus::RetryExceeded);
        let ev = p0.wait_completion().unwrap();
        assert!(!ev.is_ok());
        assert_eq!(ev.status, WcStatus::RetryExceeded);
        assert_eq!(ev.rid, 9);
    }

    #[test]
    fn wait_local_for_reports_timeout_with_rid() {
        let c = pair();
        let p0 = c.rank(0);
        let e = p0.wait_local_for(0x2a, Duration::from_millis(20)).unwrap_err();
        assert_eq!(e, PhotonError::Timeout { what: "local completion", rid: Some(0x2a) });
        assert!(e.to_string().contains("0x2a"));
        let e = p0.wait_completion_for(Duration::from_millis(20)).unwrap_err();
        assert_eq!(e, PhotonError::Timeout { what: "completion", rid: None });
    }

    #[test]
    fn deferred_self_target_put_copies_in_place() {
        // A put whose destination is the receiver's own service region takes
        // the deferred RX path; it must land exactly like any other put and
        // count as an avoided staging copy.
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let src = p0.register_buffer(64).unwrap();
        src.write_at(0, b"self-target payload");
        // Rank 1's own service region (its half of the 1↔0 connection) as
        // the destination (the degenerate case: probe-time copy-out source
        // and destination share the region).
        let conn1 = p1.conn(0).unwrap();
        let key = conn1.svc.remote_key();
        let dst = BufferDescriptor { addr: key.addr, rkey: key.rkey, len: 64 };
        let before = p1.stats().stage_copies_avoided;
        p0.put_with_completion(1, &src, 0, 19, &dst, 0, 1, 2).unwrap();
        let ev = p1.wait_completion_matching(ProbeFlags::Remote).unwrap();
        assert_eq!(ev.rid, 2);
        assert_eq!(ev.size, 19);
        assert!(ev.status.is_ok());
        assert_eq!(&conn1.svc.to_vec(0, 19), b"self-target payload");
        assert!(
            p1.stats().stage_copies_avoided > before,
            "deferred path must count its avoided staging copy"
        );
    }
}
