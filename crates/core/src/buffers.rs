//! Registered application buffers.
//!
//! Photon requires that all memory touched by one-sided operations be
//! registered.  [`PhotonBuffer`] wraps a fabric memory region registered with
//! full access, and [`PhotonBuffer::descriptor`] produces the `(addr, rkey,
//! len)` descriptor a peer needs to target it — the metadata the original
//! implementation exchanges through its buffer table.  Descriptor exchange
//! itself is the application's business (in-band via
//! [`crate::Photon::send`], or out-of-band at init, standing in for the PMI
//! exchange a launcher performs).

use crate::{PhotonError, Result};
use photon_fabric::api::{Access, FabricBackend, MemoryRegion, RemoteKey};

/// A peer-targetable buffer descriptor (re-exported fabric type).
pub type BufferDescriptor = RemoteKey;

/// A registered, remotely accessible buffer.
#[derive(Debug, Clone)]
pub struct PhotonBuffer {
    mr: MemoryRegion,
}

impl PhotonBuffer {
    /// Register a fresh zeroed buffer of `len` bytes on `nic` (any
    /// backend behind the [`FabricBackend`] seam).
    pub(crate) fn register(nic: &dyn FabricBackend, len: usize) -> Result<PhotonBuffer> {
        let mr = nic.register(len, Access::ALL)?;
        Ok(PhotonBuffer { mr })
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.mr.len()
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.mr.is_empty()
    }

    /// Descriptor covering the whole buffer; hand this to peers.
    pub fn descriptor(&self) -> BufferDescriptor {
        self.mr.remote_key()
    }

    /// Descriptor covering `[offset, offset+len)`.
    pub fn descriptor_at(&self, offset: usize, len: usize) -> Result<BufferDescriptor> {
        self.check(offset, len)?;
        Ok(self.mr.remote_key().slice(offset, len))
    }

    /// Write `src` at `offset` (local CPU store).
    pub fn write_at(&self, offset: usize, src: &[u8]) {
        self.mr.write_at(offset, src);
    }

    /// Read into `dst` from `offset` (local CPU load).
    pub fn read_at(&self, offset: usize, dst: &mut [u8]) {
        self.mr.read_at(offset, dst);
    }

    /// Read a little-endian u64 at `offset`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        self.mr.read_u64(offset)
    }

    /// Write a little-endian u64 at `offset`.
    pub fn write_u64(&self, offset: usize, v: u64) {
        self.mr.write_u64(offset, v);
    }

    /// Fill with `byte`.
    pub fn fill(&self, byte: u8) {
        self.mr.fill(byte);
    }

    /// Snapshot `len` bytes from `offset`.
    pub fn to_vec(&self, offset: usize, len: usize) -> Vec<u8> {
        self.mr.to_vec(offset, len)
    }

    /// The underlying fabric region (for direct verbs-level use).
    pub fn region(&self) -> &MemoryRegion {
        &self.mr
    }

    /// Bounds check against this buffer.
    pub fn check(&self, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len()) {
            return Err(PhotonError::OutOfRange { offset, len, cap: self.len() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_fabric::{Cluster, NetworkModel};

    #[test]
    fn buffer_rw_and_descriptor() {
        let c = Cluster::new(1, NetworkModel::ideal());
        let b = PhotonBuffer::register(c.nic(0).as_ref(), 128).unwrap();
        assert_eq!(b.len(), 128);
        b.write_at(8, b"abc");
        assert_eq!(b.to_vec(8, 3), b"abc");
        let d = b.descriptor();
        assert_eq!(d.len, 128);
        let d2 = b.descriptor_at(64, 32).unwrap();
        assert_eq!(d2.addr, d.addr + 64);
        assert_eq!(d2.len, 32);
        assert!(b.descriptor_at(120, 16).is_err());
    }

    #[test]
    fn bounds_check() {
        let c = Cluster::new(1, NetworkModel::ideal());
        let b = PhotonBuffer::register(c.nic(0).as_ref(), 16).unwrap();
        assert!(b.check(0, 16).is_ok());
        assert!(matches!(b.check(8, 16), Err(PhotonError::OutOfRange { cap: 16, .. })));
        assert!(b.check(usize::MAX, 2).is_err(), "overflow-safe");
    }
}
