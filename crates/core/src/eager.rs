//! Eager rings: packed small-message delivery.
//!
//! For payloads at or below the eager threshold, Photon packs the payload
//! *and* its completion metadata into a single self-describing frame and
//! delivers it with **one** RDMA write into a per-peer ring in the
//! consumer's memory.  Compared with the large-message path (data write +
//! ledger write) this halves the wire operations, which is what produces the
//! small-message latency and message-rate advantage the paper's evaluation
//! highlights.
//!
//! Frame layout (48-byte header, 8-byte-aligned frames):
//!
//! ```text
//! [ seq u64 | rid u64 | dst_addr u64 | dst_rkey u32 | size u32 | kind u8 | pad | ts u64 ]
//! [ payload (size bytes) ] [ pad to 8 ]
//! ```
//!
//! A frame is valid when its `seq` equals the consumer's expected production
//! count for that position (sequence numbers never repeat at a given ring
//! byte offset within a u64's range).  When a frame would straddle the ring
//! end, the producer emits a `Skip` frame whose `size` covers the dead tail
//! so the consumer's cursor arithmetic stays in lockstep.
//!
//! Flow control mirrors the ledger: the producer tracks the consumer's ring
//! cursor, returned through a credit word.
//!
//! Like [`crate::ledger`], this module holds only the pure state machines
//! and wire encoding; the engine performs the RDMA.

/// Frame header size.
pub const FRAME_HDR: usize = 48;

/// Byte offset of the delivery-timestamp field within a frame header
/// (stamped by the fabric; see `photon_fabric::SendWr::with_stamp`).
pub const TS_OFFSET: usize = 40;

/// Frame alignment within the ring.
pub const FRAME_ALIGN: usize = 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A message with no remote destination: the payload is handed to the
    /// consumer (runtime parcels, collective payloads).
    Msg,
    /// An eager put-with-completion: the consumer copies the payload to
    /// `(dst_addr, dst_rkey)` at probe time, then surfaces the completion.
    Put,
    /// Dead space up to the ring end; consume and skip.
    Skip,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Msg => 1,
            FrameKind::Put => 2,
            FrameKind::Skip => 3,
        }
    }

    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            1 => Some(FrameKind::Msg),
            2 => Some(FrameKind::Put),
            3 => Some(FrameKind::Skip),
            _ => None,
        }
    }
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Validity sequence (1-based production count).
    pub seq: u64,
    /// Remote completion identifier.
    pub rid: u64,
    /// Destination address for `Put` frames.
    pub dst_addr: u64,
    /// Destination rkey for `Put` frames.
    pub dst_rkey: u32,
    /// Payload bytes (for `Skip`: dead bytes after the header).
    pub size: u32,
    /// Frame classification.
    pub kind: FrameKind,
    /// Virtual delivery time in nanoseconds (stamped by the fabric).
    pub ts: u64,
}

impl FrameHeader {
    /// Encode to the fixed wire format.
    pub fn encode(&self) -> [u8; FRAME_HDR] {
        let mut b = [0u8; FRAME_HDR];
        b[0..8].copy_from_slice(&self.seq.to_le_bytes());
        b[8..16].copy_from_slice(&self.rid.to_le_bytes());
        b[16..24].copy_from_slice(&self.dst_addr.to_le_bytes());
        b[24..28].copy_from_slice(&self.dst_rkey.to_le_bytes());
        b[28..32].copy_from_slice(&self.size.to_le_bytes());
        b[32] = self.kind.to_u8();
        b[TS_OFFSET..TS_OFFSET + 8].copy_from_slice(&self.ts.to_le_bytes());
        b
    }

    /// Decode; `None` for an invalid kind byte (unwritten memory).
    pub fn decode(b: &[u8]) -> Option<FrameHeader> {
        debug_assert!(b.len() >= FRAME_HDR);
        let kind = FrameKind::from_u8(b[32])?;
        Some(FrameHeader {
            seq: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            rid: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            dst_addr: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            dst_rkey: u32::from_le_bytes(b[24..28].try_into().unwrap()),
            size: u32::from_le_bytes(b[28..32].try_into().unwrap()),
            kind,
            ts: u64::from_le_bytes(b[TS_OFFSET..TS_OFFSET + 8].try_into().unwrap()),
        })
    }

    /// Total ring bytes this frame occupies (header + payload, aligned).
    pub fn span(&self) -> usize {
        frame_span(self.size as usize)
    }
}

/// Ring bytes occupied by a frame with `payload` bytes.
pub fn frame_span(payload: usize) -> usize {
    (FRAME_HDR + payload).div_ceil(FRAME_ALIGN) * FRAME_ALIGN
}

/// A producer-side reservation: where to place a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Byte offset within the ring for the frame.
    pub offset: usize,
    /// Sequence number the frame must carry.
    pub seq: u64,
    /// If set, a `Skip` frame must first be written at `.0` with dead size
    /// `.1` and sequence `.2`.
    pub skip: Option<(usize, u32, u64)>,
}

/// A producer-side reservation for a contiguous *run* of frames (a doorbell
/// batch): frame `i` starts at `offset` plus the spans of frames `0..i`, and
/// carries sequence `first_seq + i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReservation {
    /// Byte offset within the ring for the first frame.
    pub offset: usize,
    /// Sequence number the first frame must carry.
    pub first_seq: u64,
    /// If set, a `Skip` frame must first be written at `.0` with dead size
    /// `.1` and sequence `.2`.
    pub skip: Option<(usize, u32, u64)>,
}

/// Producer-side eager ring state for one peer direction.
#[derive(Debug)]
pub struct EagerTx {
    ring: u64,
    /// Ring cursor in total bytes produced (monotonic).
    cursor: u64,
    /// Consumer cursor last seen via the credit word.
    credits_seen: u64,
    /// Frames produced (drives seq).
    frames: u64,
}

impl EagerTx {
    /// Producer over a ring of `ring_bytes`.
    pub fn new(ring_bytes: usize) -> EagerTx {
        assert!(ring_bytes >= 4 * FRAME_HDR && ring_bytes.is_multiple_of(FRAME_ALIGN));
        EagerTx { ring: ring_bytes as u64, cursor: 0, credits_seen: 0, frames: 0 }
    }

    /// Refresh flow control from the credit word (a ring-cursor value).
    pub fn update_credits(&mut self, consumer_cursor: u64) {
        debug_assert!(consumer_cursor <= self.cursor);
        self.credits_seen = self.credits_seen.max(consumer_cursor);
    }

    /// Bytes available before blocking.
    pub fn available(&self) -> u64 {
        self.ring - (self.cursor - self.credits_seen)
    }

    /// Reserve space for a frame carrying `payload` bytes; `None` when out
    /// of credits.
    ///
    /// Frames never wrap. A tail too short for even a header is skipped
    /// *implicitly* (the consumer applies the same rule); a longer-but-
    /// insufficient tail is covered by an explicit `Skip` frame recorded in
    /// the reservation.
    pub fn try_reserve(&mut self, payload: usize) -> Option<Reservation> {
        let r = self.try_reserve_run(std::slice::from_ref(&payload))?;
        Some(Reservation { offset: r.offset, seq: r.first_seq, skip: r.skip })
    }

    /// Reserve space for a contiguous run of frames carrying `lens` payload
    /// bytes each; `None` when out of credits (the state is untouched on
    /// failure, so the caller can retry with a shorter run).
    ///
    /// The run never wraps: when it would straddle the ring end, the whole
    /// run moves past the wrap (with the same implicit/explicit skip rules as
    /// single frames), so one RDMA write can carry every frame. The combined
    /// span must not exceed the ring size.
    pub fn try_reserve_run(&mut self, lens: &[usize]) -> Option<RunReservation> {
        assert!(!lens.is_empty(), "empty frame run");
        let span: u64 = lens.iter().map(|&p| frame_span(p) as u64).sum();
        assert!(span <= self.ring, "frame run larger than the ring");
        let pos = self.cursor % self.ring;
        let tail = self.ring - pos;
        let mut skip = None;
        let start = if tail < FRAME_HDR as u64 {
            // Implicit skip: no frame can start here; both sides advance.
            self.cursor + tail
        } else if span > tail {
            // Explicit skip frame covering the dead tail.
            skip = Some((pos as usize, (tail - FRAME_HDR as u64) as u32, self.frames + 1));
            self.cursor + tail
        } else {
            self.cursor
        };
        let total = (start - self.cursor) + span;
        if total > self.available() {
            return None;
        }
        let skip_frames = if skip.is_some() { 1 } else { 0 };
        let first_seq = self.frames + 1 + skip_frames;
        self.frames += lens.len() as u64 + skip_frames;
        self.cursor = start + span;
        Some(RunReservation { offset: (start % self.ring) as usize, first_seq, skip })
    }

    /// Total bytes produced (diagnostic).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

/// What the consumer found at its cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EagerFrame {
    /// The header.
    pub header: FrameHeader,
    /// Ring offset of the payload.
    pub payload_offset: usize,
}

/// Consumer-side eager ring state for one peer direction.
#[derive(Debug)]
pub struct EagerRx {
    ring: u64,
    cursor: u64,
    frames: u64,
    last_credit_return: u64,
    credit_interval_bytes: u64,
}

impl EagerRx {
    /// Consumer over a ring of `ring_bytes`, returning its cursor whenever
    /// it has advanced `credit_interval_bytes` since the last return.
    pub fn new(ring_bytes: usize, credit_interval_bytes: u64) -> EagerRx {
        EagerRx {
            ring: ring_bytes as u64,
            cursor: 0,
            frames: 0,
            last_credit_return: 0,
            credit_interval_bytes: credit_interval_bytes.max(FRAME_ALIGN as u64),
        }
    }

    /// Ring offset where the next frame header must appear.
    pub fn head_offset(&self) -> usize {
        (self.cursor % self.ring) as usize
    }

    /// The sequence the next frame must carry.
    pub fn expected_seq(&self) -> u64 {
        self.frames + 1
    }

    /// Inspect the ring at the cursor: if a valid frame is present, consume
    /// it and describe where its payload lives.  A tail too short for a
    /// header is skipped implicitly (mirroring the producer); explicit
    /// `Skip` frames are returned so the caller can poll again.
    ///
    /// The implicit-skip advance is committed only together with the frame
    /// that follows it. The producer accounts the dead tail lazily, when it
    /// reserves the frame after the wrap — if the consumer committed it on
    /// a speculative (empty) poll, its cursor would run ahead of the
    /// producer's, breaking cursor conservation and the credit-word
    /// invariant `consumer_cursor <= producer_cursor`.
    pub fn accept(&mut self, ring: &[u8]) -> Option<EagerFrame> {
        debug_assert_eq!(ring.len() as u64, self.ring);
        let mut pos = (self.cursor % self.ring) as usize;
        let tail = self.ring as usize - pos;
        let mut skipped = 0u64;
        if tail < FRAME_HDR {
            skipped = tail as u64;
            pos = 0;
        }
        let h = FrameHeader::decode(&ring[pos..pos + FRAME_HDR])?;
        if h.seq != self.expected_seq() {
            return None;
        }
        let payload_offset = pos + FRAME_HDR;
        self.frames += 1;
        self.cursor += skipped + h.span() as u64;
        Some(EagerFrame { header: h, payload_offset })
    }

    /// If the cursor advanced far enough, emit its value for the credit
    /// word.
    pub fn credit_due(&mut self) -> Option<u64> {
        if self.cursor - self.last_credit_return >= self.credit_interval_bytes {
            self.last_credit_return = self.cursor;
            Some(self.cursor)
        } else {
            None
        }
    }

    /// Total bytes consumed (diagnostic).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn header_roundtrip() {
        let h = FrameHeader {
            seq: 9,
            rid: 1234,
            dst_addr: 0xfeed,
            dst_rkey: 3,
            size: 100,
            kind: FrameKind::Put,
            ts: 987,
        };
        assert_eq!(FrameHeader::decode(&h.encode()), Some(h));
        assert_eq!(FrameHeader::decode(&[0u8; FRAME_HDR]), None);
    }

    #[test]
    fn spans_are_aligned() {
        assert_eq!(frame_span(0), FRAME_HDR);
        assert_eq!(frame_span(1), FRAME_HDR + 8);
        assert_eq!(frame_span(8), FRAME_HDR + 8);
        assert_eq!(frame_span(9), FRAME_HDR + 16);
        assert_eq!(FRAME_HDR % FRAME_ALIGN, 0);
        for p in 0..100 {
            assert_eq!(frame_span(p) % FRAME_ALIGN, 0);
            assert!(frame_span(p) >= FRAME_HDR + p);
        }
    }

    #[test]
    fn producer_reserves_sequentially() {
        let mut tx = EagerTx::new(1024);
        let r1 = tx.try_reserve(10).unwrap();
        assert_eq!((r1.offset, r1.seq), (0, 1));
        assert!(r1.skip.is_none());
        let r2 = tx.try_reserve(0).unwrap();
        assert_eq!((r2.offset, r2.seq), (frame_span(10), 2));
    }

    #[test]
    fn producer_blocks_without_credits() {
        let mut tx = EagerTx::new(256);
        // 256 / span(8)=56 -> 4 frames fit (224 bytes); the 5th fails.
        let mut n = 0;
        while tx.try_reserve(8).is_some() {
            n += 1;
            assert!(n < 100);
        }
        assert_eq!(n, 4);
        tx.update_credits(frame_span(8) as u64);
        assert!(tx.try_reserve(8).is_some());
        assert!(tx.try_reserve(8).is_none());
    }

    #[test]
    fn wraparound_emits_skip() {
        let mut tx = EagerTx::new(256);
        // Fill 208 of 256 bytes: the 48-byte tail can't hold span(64) = 112.
        let a = tx.try_reserve(160).unwrap(); // span 208
        assert!(a.skip.is_none());
        tx.update_credits(208); // consumer caught up fully
        let b = tx.try_reserve(64).unwrap();
        let (skip_off, dead, skip_seq) = b.skip.expect("skip frame required");
        assert_eq!(skip_off, 208);
        assert_eq!(dead as usize, 256 - 208 - FRAME_HDR);
        assert_eq!(skip_seq, 2);
        assert_eq!(b.offset, 0, "payload frame wrapped to ring start");
        assert_eq!(b.seq, 3);
    }

    #[test]
    fn consumer_walks_frames_and_skips() {
        let ring_bytes = 256;
        let mut tx = EagerTx::new(ring_bytes);
        let mut rx = EagerRx::new(ring_bytes, 64);
        let mut ring = vec![0u8; ring_bytes];

        let write_frame = |ring: &mut Vec<u8>, r: &Reservation, payload: &[u8], rid: u64| {
            if let Some((off, dead, seq)) = r.skip {
                let h = FrameHeader {
                    seq,
                    rid: 0,
                    dst_addr: 0,
                    dst_rkey: 0,
                    size: dead,
                    kind: FrameKind::Skip,
                    ts: 0,
                };
                ring[off..off + FRAME_HDR].copy_from_slice(&h.encode());
            }
            let h = FrameHeader {
                seq: r.seq,
                rid,
                dst_addr: 0,
                dst_rkey: 0,
                size: payload.len() as u32,
                kind: FrameKind::Msg,
                ts: 0,
            };
            ring[r.offset..r.offset + FRAME_HDR].copy_from_slice(&h.encode());
            ring[r.offset + FRAME_HDR..r.offset + FRAME_HDR + payload.len()]
                .copy_from_slice(payload);
        };

        // Two frames, then one that wraps.
        let r = tx.try_reserve(100).unwrap();
        write_frame(&mut ring, &r, &[1u8; 100], 11);
        let r = tx.try_reserve(40).unwrap();
        write_frame(&mut ring, &r, &[2u8; 40], 22);

        // Consume both, returning credits.
        let f = rx.accept(&ring).unwrap();
        assert_eq!(f.header.rid, 11);
        assert_eq!(&ring[f.payload_offset..f.payload_offset + 100], &[1u8; 100]);
        let f = rx.accept(&ring).unwrap();
        assert_eq!(f.header.rid, 22);
        tx.update_credits(rx.credit_due().unwrap());

        // This one needs the wrap path: the 16-byte tail is too small even
        // for a header, so both sides skip it *implicitly*.
        let r = tx.try_reserve(60).unwrap();
        assert!(r.skip.is_none());
        assert_eq!(r.offset, 0, "wrapped to ring start");
        write_frame(&mut ring, &r, &[3u8; 60], 33);
        let f = rx.accept(&ring).unwrap();
        assert_eq!(f.header.rid, 33);
        assert_eq!(&ring[f.payload_offset..f.payload_offset + 60], &[3u8; 60]);
        // Cursors agree.
        assert_eq!(tx.cursor(), rx.cursor());
    }

    #[test]
    fn run_reservation_is_contiguous() {
        let mut tx = EagerTx::new(1024);
        let r = tx.try_reserve_run(&[10, 0, 100]).unwrap();
        assert_eq!((r.offset, r.first_seq), (0, 1));
        assert!(r.skip.is_none());
        // Frames occupy back-to-back spans; the next single reservation lands
        // right after the run with the next sequence number.
        let next = tx.try_reserve(8).unwrap();
        assert_eq!(next.offset, frame_span(10) + frame_span(0) + frame_span(100));
        assert_eq!(next.seq, 4);
    }

    #[test]
    fn run_wraps_whole_with_skip() {
        let mut tx = EagerTx::new(256);
        let a = tx.try_reserve(160).unwrap(); // span 208, tail 48 left
        assert!(a.skip.is_none());
        tx.update_credits(208);
        // span(8)=56 per frame: a 2-frame run (112 bytes) can't use the
        // 48-byte tail, so the whole run moves past the wrap.
        let r = tx.try_reserve_run(&[8, 8]).unwrap();
        let (skip_off, dead, skip_seq) = r.skip.expect("skip frame required");
        assert_eq!((skip_off, dead as usize, skip_seq), (208, 0, 2));
        assert_eq!((r.offset, r.first_seq), (0, 3));
    }

    #[test]
    fn run_fails_pure_without_credits() {
        let mut tx = EagerTx::new(256);
        // One frame (56 bytes) leaves 200 bytes of credit: a 4-frame run
        // (224 bytes) must fail without moving any state, and a shorter
        // retry then succeeds right behind the first frame.
        tx.try_reserve(8).unwrap();
        let cursor = tx.cursor();
        assert!(tx.try_reserve_run(&[8, 8, 8, 8]).is_none());
        assert_eq!(tx.cursor(), cursor);
        let r = tx.try_reserve_run(&[8, 8, 8]).unwrap();
        assert_eq!((r.offset, r.first_seq), (frame_span(8), 2));
        assert!(tx.try_reserve(8).is_none());
    }

    #[test]
    fn consumer_walks_a_run() {
        let ring_bytes = 512;
        let mut tx = EagerTx::new(ring_bytes);
        let mut rx = EagerRx::new(ring_bytes, 64);
        let mut ring = vec![0u8; ring_bytes];
        let lens = [16usize, 0, 32];
        let r = tx.try_reserve_run(&lens).unwrap();
        let mut off = r.offset;
        for (i, &len) in lens.iter().enumerate() {
            let h = FrameHeader {
                seq: r.first_seq + i as u64,
                rid: 100 + i as u64,
                dst_addr: 0,
                dst_rkey: 0,
                size: len as u32,
                kind: FrameKind::Msg,
                ts: 0,
            };
            ring[off..off + FRAME_HDR].copy_from_slice(&h.encode());
            for b in &mut ring[off + FRAME_HDR..off + FRAME_HDR + len] {
                *b = i as u8 + 1;
            }
            off += frame_span(len);
        }
        for (i, &len) in lens.iter().enumerate() {
            let f = rx.accept(&ring).unwrap();
            assert_eq!(f.header.rid, 100 + i as u64);
            assert_eq!(f.header.size as usize, len);
            assert!(ring[f.payload_offset..f.payload_offset + len]
                .iter()
                .all(|&b| b == i as u8 + 1));
        }
        assert_eq!(tx.cursor(), rx.cursor());
    }

    #[test]
    fn stale_frame_not_accepted() {
        let mut rx = EagerRx::new(256, 64);
        let mut ring = vec![0u8; 256];
        let h = FrameHeader {
            seq: 99,
            rid: 0,
            dst_addr: 0,
            dst_rkey: 0,
            size: 0,
            kind: FrameKind::Msg,
            ts: 0,
        };
        ring[..FRAME_HDR].copy_from_slice(&h.encode());
        assert!(rx.accept(&ring).is_none());
        assert_eq!(rx.cursor(), 0);
    }

    proptest! {
        /// Producer/consumer lockstep: any sequence of random-size messages,
        /// interleaved with random credit returns, is delivered exactly once
        /// and in order, and cursors never diverge.
        #[test]
        fn ring_lockstep(payloads in proptest::collection::vec(0usize..120, 1..100)) {
            let ring_bytes = 512;
            let mut tx = EagerTx::new(ring_bytes);
            let mut rx = EagerRx::new(ring_bytes, 64);
            let mut ring = vec![0u8; ring_bytes];
            let mut sent: std::collections::VecDeque<(u64, Vec<u8>)> = Default::default();
            let mut next_rid = 1u64;

            for p in payloads {
                // Produce (retrying after consuming when out of credits).
                loop {
                    if let Some(r) = tx.try_reserve(p) {
                        if let Some((off, dead, seq)) = r.skip {
                            let h = FrameHeader { seq, rid: 0, dst_addr: 0, dst_rkey: 0,
                                                  size: dead, kind: FrameKind::Skip, ts: 0 };
                            ring[off..off + FRAME_HDR].copy_from_slice(&h.encode());
                        }
                        let payload: Vec<u8> = (0..p).map(|i| (i as u8).wrapping_mul(31).wrapping_add(next_rid as u8)).collect();
                        let h = FrameHeader { seq: r.seq, rid: next_rid, dst_addr: 0, dst_rkey: 0,
                                              size: p as u32, kind: FrameKind::Msg, ts: 0 };
                        ring[r.offset..r.offset + FRAME_HDR].copy_from_slice(&h.encode());
                        ring[r.offset + FRAME_HDR..r.offset + FRAME_HDR + p].copy_from_slice(&payload);
                        sent.push_back((next_rid, payload));
                        next_rid += 1;
                        break;
                    }
                    // Out of credits: consume one frame.
                    let f = rx.accept(&ring).expect("must drain");
                    if f.header.kind == FrameKind::Msg {
                        let (rid, data) = sent.pop_front().unwrap();
                        prop_assert_eq!(f.header.rid, rid);
                        let got = &ring[f.payload_offset..f.payload_offset + data.len()];
                        prop_assert_eq!(got, &data[..]);
                    }
                    if let Some(c) = rx.credit_due() {
                        tx.update_credits(c);
                    }
                }
            }
            // Drain the rest.
            while !sent.is_empty() {
                let f = rx.accept(&ring).expect("must drain");
                if f.header.kind == FrameKind::Msg {
                    let (rid, data) = sent.pop_front().unwrap();
                    prop_assert_eq!(f.header.rid, rid);
                    let got = &ring[f.payload_offset..f.payload_offset + data.len()];
                    prop_assert_eq!(got, &data[..]);
                }
            }
            prop_assert_eq!(tx.cursor(), rx.cursor());
        }
    }
}
