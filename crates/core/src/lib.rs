//! # photon-core — the Photon RMA middleware
//!
//! A Rust reproduction of *Photon: Remote Memory Access Middleware for
//! High-Performance Runtime Systems* (Kissel & Swany, IPDRM 2016): the
//! network layer of the HPX-5 runtime stack.
//!
//! Photon's central abstraction is **put/get-with-completion (PWC)**: a
//! one-sided RDMA operation that carries *two* completion identifiers —
//! a `local` id returned to the initiator when its buffer is reusable, and a
//! `remote` id delivered to the *target*, which discovers it by probing.
//! This gives runtime systems (parcel/active-message layers) one-sided data
//! movement *with* remote progress notification, without tag matching,
//! unexpected-message queues, or receiver-side posting.
//!
//! Delivery machinery, as in the original implementation:
//!
//! * **Completion ledgers** ([`ledger`]) — per-peer circular buffers in the
//!   target's registered memory; producers append entries with plain RDMA
//!   writes, consumers poll local memory. Flow control is credit-based, with
//!   consumed-counts returned by RDMA writes to the producer's credit words.
//! * **Eager rings** ([`eager`]) — for small payloads, the data and its
//!   completion ride in a *single* RDMA write of a self-describing frame
//!   into a per-peer ring; the consumer copies the payload to its final
//!   destination at probe time.
//! * **Rendezvous** ([`Photon::post_recv_buffer`] & friends) — the legacy
//!   Photon buffer-exchange protocol: the receiver announces a registered
//!   buffer, the sender RDMA-writes into it and posts a FIN.
//! * **Collectives** ([`collectives`]) — barrier, broadcast, reduce,
//!   allreduce and all-to-all built purely from PWC operations.
//!
//! The protocol state machines are independent of the wire: they speak to
//! a [`photon_fabric::FabricBackend`] trait object, which is either the
//! simulated RDMA fabric from [`photon_fabric`] (deterministic LogGP
//! timing, fault injection — the default, see `DESIGN.md`) or the real
//! sockets transport in [`photon_fabric::sock`] selected via
//! [`PhotonConfig::builder`]'s `backend` knob. Multi-process jobs over the
//! sockets backend join through [`process::PhotonProcess`].
//!
//! ## Quickstart
//!
//! ```
//! use photon_core::{PhotonCluster, PhotonConfig};
//! use photon_fabric::NetworkModel;
//!
//! // Two "nodes" over a modeled FDR InfiniBand fabric.
//! let cluster = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
//! let p0 = cluster.rank(0);
//! let p1 = cluster.rank(1);
//!
//! // Rank 1 exposes a buffer; descriptors are exchanged out-of-band here.
//! let dst = p1.register_buffer(64).unwrap();
//! let src = p0.register_buffer(64).unwrap();
//! src.write_at(0, b"hello photon");
//!
//! // Rank 0: put-with-completion, local id 7, remote id 99.
//! p0.put_with_completion(1, &src, 0, 12, &dst.descriptor(), 0, 7, 99).unwrap();
//!
//! // Rank 0 sees its local completion...
//! let c = p0.wait_completion().unwrap();
//! assert!(c.is_local() && c.rid == 7);
//! // ...and rank 1 discovers the remote completion by probing.
//! let c = p1.wait_completion().unwrap();
//! assert!(c.is_remote());
//! assert_eq!((c.rid, c.peer), (99, 0));
//! assert_eq!(dst.to_vec(0, 12), b"hello photon");
//! ```

#![warn(missing_docs)]

pub mod atomics;
pub mod buffers;
pub mod collectives;
pub(crate) mod completion;
pub mod config;
pub mod eager;
pub mod layout;
pub mod ledger;
pub mod membership;
pub mod obs;
pub mod photon;
pub mod pool;
pub mod probe;
pub mod process;
pub(crate) mod progress;
pub mod rendezvous;

pub use buffers::PhotonBuffer;
pub use collectives::ReduceOp;
pub use config::{BackendKind, PhotonConfig, PhotonConfigBuilder};
pub use membership::{GossipStats, MemberEntry, MemberStatus, Membership, MembershipConfig};
pub use obs::{
    KeyedLatency, KeyedSummary, LatencySummary, Metrics, Obs, OpKind, SpanTrace, StatsSnapshot,
    TraceExport, TraceOp, TraceRecord, Tracer,
};
pub use photon::{CreditState, GetManyItem, PeerHealthState, Photon, PhotonCluster, PutManyItem};
pub use pool::{BufferPool, Recycler};
pub use probe::{Completion, CompletionClass, ProbeFlags, RemoteEvent};
pub use process::PhotonProcess;

pub use photon_fabric::WcStatus;

use photon_fabric::FabricError;
use std::fmt;

/// A rank in the Photon job (dense, 0-based).
pub type Rank = usize;

/// Errors surfaced by the middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhotonError {
    /// An underlying fabric error (protection, resource, connectivity).
    Fabric(FabricError),
    /// The per-peer ledger or eager ring is out of credits; retry after the
    /// peer probes (the blocking wrappers do this automatically).
    WouldBlock,
    /// Rank out of range for this job.
    InvalidRank(Rank),
    /// The payload cannot ever fit the eager ring and no remote buffer was
    /// supplied (use the rendezvous API instead).
    MessageTooLarge {
        /// Requested payload length.
        len: usize,
        /// Maximum a single eager frame can carry under this config.
        max: usize,
    },
    /// Access outside a buffer's bounds.
    OutOfRange {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Buffer capacity.
        cap: usize,
    },
    /// A blocking wait exceeded its deadline (the config-wide wall-clock
    /// deadlock guard, or a per-call `wait_*_for` deadline).
    Timeout {
        /// What the wait was blocked on.
        what: &'static str,
        /// The request id being waited for, when the wait was rid-specific.
        rid: Option<u64>,
    },
    /// The peer has been declared dead by the health machine: it was
    /// evicted and new operations toward it fail fast until a reconnection
    /// probe succeeds.
    PeerDead(Rank),
    /// An operation completed with an error status (its work request was
    /// flushed because the peer died or the path to it broke).
    OpFailed {
        /// The local completion id of the failed operation.
        rid: u64,
        /// The error status carried by its completion.
        status: WcStatus,
    },
    /// An RPC invocation got no reply inside its retry/deadline budget while
    /// the server was still believed reachable (Healthy or Suspect): the
    /// outcome is *unknown* — the request may or may not have executed.
    /// At-most-once callers may safely re-issue with the same sequence
    /// number; the server-side dedup window guarantees single execution.
    RpcTimeout {
        /// The invoked method's registered name.
        method: String,
        /// Send attempts made before giving up (1 = no retries).
        attempts: u32,
    },
    /// An RPC invocation definitively failed: the server was declared dead
    /// by the health machine, the handler returned an application error, or
    /// the reply was unserviceable (unknown method, stale sequence number).
    /// Unlike [`PhotonError::RpcTimeout`] this is a *verdict*, not an
    /// unknown — retrying with the same arguments cannot succeed.
    RpcFailed {
        /// The invoked method's registered name.
        method: String,
        /// Human-readable failure classification.
        reason: String,
    },
    /// Collective participants disagree about parameters.
    Protocol(&'static str),
    /// A [`PhotonConfig`] failed validation (see
    /// [`PhotonConfig::builder`]); the message names the offending knobs.
    Config(String),
}

impl fmt::Display for PhotonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhotonError::Fabric(e) => write!(f, "fabric: {e}"),
            PhotonError::WouldBlock => write!(f, "out of credits (would block)"),
            PhotonError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            PhotonError::MessageTooLarge { len, max } => {
                write!(f, "message of {len} bytes exceeds eager capacity {max}")
            }
            PhotonError::OutOfRange { offset, len, cap } => {
                write!(f, "range [{offset}, +{len}) outside buffer of {cap} bytes")
            }
            PhotonError::Timeout { what, rid } => {
                write!(f, "timed out waiting for {what}")?;
                if let Some(rid) = rid {
                    write!(f, " (rid {rid:#x})")?;
                }
                Ok(())
            }
            PhotonError::PeerDead(r) => write!(f, "peer rank {r} is dead"),
            PhotonError::RpcTimeout { method, attempts } => {
                write!(f, "rpc {method} timed out after {attempts} attempt(s)")
            }
            PhotonError::RpcFailed { method, reason } => {
                write!(f, "rpc {method} failed: {reason}")
            }
            PhotonError::OpFailed { rid, status } => {
                write!(f, "operation rid {rid:#x} failed: {status}")
            }
            PhotonError::Protocol(what) => write!(f, "protocol violation: {what}"),
            PhotonError::Config(what) => write!(f, "invalid config: {what}"),
        }
    }
}

impl std::error::Error for PhotonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhotonError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for PhotonError {
    fn from(e: FabricError) -> Self {
        PhotonError::Fabric(e)
    }
}

/// Convenience alias used throughout the middleware.
pub type Result<T> = std::result::Result<T, PhotonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = PhotonError::from(FabricError::CqOverflow);
        assert!(e.to_string().contains("completion queue"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&PhotonError::WouldBlock).is_none());
        assert_eq!(
            PhotonError::MessageTooLarge { len: 10, max: 5 }.to_string(),
            "message of 10 bytes exceeds eager capacity 5"
        );
        assert_eq!(
            PhotonError::Timeout { what: "local completion", rid: None }.to_string(),
            "timed out waiting for local completion"
        );
        assert_eq!(
            PhotonError::Timeout { what: "local completion", rid: Some(0x2a) }.to_string(),
            "timed out waiting for local completion (rid 0x2a)"
        );
        assert_eq!(PhotonError::PeerDead(3).to_string(), "peer rank 3 is dead");
        assert_eq!(
            PhotonError::RpcTimeout { method: "kv.get".into(), attempts: 3 }.to_string(),
            "rpc kv.get timed out after 3 attempt(s)"
        );
        assert_eq!(
            PhotonError::RpcFailed { method: "kv.put".into(), reason: "peer dead".into() }
                .to_string(),
            "rpc kv.put failed: peer dead"
        );
        let e = PhotonError::OpFailed { rid: 0x10, status: WcStatus::RemoteDead };
        assert_eq!(e.to_string(), "operation rid 0x10 failed: remote peer dead");
    }
}
