//! The legacy Photon rendezvous protocol.
//!
//! Before PWC, Photon's API revolved around explicit buffer exchange: the
//! receiver *posts* a registered buffer toward a sender
//! ([`Photon::post_recv_buffer`]), the sender waits for the descriptor
//! ([`Photon::wait_send_buffer`]), RDMA-writes the payload straight into it,
//! and posts a FIN ([`Photon::send_fin`]) which the receiver waits on
//! ([`Photon::wait_fin`]).  This is the zero-copy large-message path: no
//! intermediate buffers, one descriptor exchange, one data write, one FIN.
//!
//! Descriptors and FINs travel through the completion ledgers as `RdvPost`
//! and `Fin` entries keyed by a user-chosen `tag`.  One (peer, tag) pair may
//! be in flight at a time in each direction — the same discipline the
//! original API imposes.
//!
//! ```
//! use photon_core::{PhotonCluster, PhotonConfig};
//! use photon_fabric::NetworkModel;
//!
//! let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
//! let (p0, p1) = (c.rank(0).clone(), c.rank(1).clone());
//! let len = 256 * 1024;
//! let sbuf = p0.register_buffer(len).unwrap();
//! sbuf.fill(0x7E);
//! let t = std::thread::spawn(move || {
//!     let rbuf = p1.register_buffer(len).unwrap();
//!     p1.recv_rendezvous(0, &rbuf, 0, len, /*tag=*/ 1).unwrap();
//!     assert_eq!(rbuf.to_vec(0, 4), vec![0x7E; 4]);
//! });
//! p0.send_rendezvous(1, &sbuf, 0, len, 1).unwrap();
//! t.join().unwrap();
//! ```

use crate::buffers::{BufferDescriptor, PhotonBuffer};
use crate::ledger::EntryKind;
use crate::obs::Stats;
use crate::{Photon, PhotonError, Rank, Result};
use photon_fabric::VTime;

impl Photon {
    /// Announce `buf[off..off+len]` to `peer` as the landing zone for the
    /// transfer tagged `tag`. Blocks only on ledger credits.
    pub fn post_recv_buffer(
        &self,
        peer: Rank,
        buf: &PhotonBuffer,
        off: usize,
        len: usize,
        tag: u64,
    ) -> Result<()> {
        buf.check(off, len)?;
        let d = buf.descriptor_at(off, len)?;
        Stats::bump(&self.stats_ref().rendezvous_ops);
        self.blocking("rendezvous post credits", |s| {
            s.try_post_entry_pub(peer, EntryKind::RdvPost, tag, len as u64, d.addr, d.rkey)
                .map(|p| p.then_some(()))
        })
    }

    /// Non-blocking [`Photon::post_recv_buffer`]: `Ok(false)` when the
    /// control ledger toward `peer` is out of credits (retry after the peer
    /// probes). Single-threaded steppers use this to announce buffers
    /// without spinning.
    pub fn try_post_recv_buffer(
        &self,
        peer: Rank,
        buf: &PhotonBuffer,
        off: usize,
        len: usize,
        tag: u64,
    ) -> Result<bool> {
        buf.check(off, len)?;
        let d = buf.descriptor_at(off, len)?;
        let posted =
            self.try_post_entry_pub(peer, EntryKind::RdvPost, tag, len as u64, d.addr, d.rkey)?;
        if posted {
            Stats::bump(&self.stats_ref().rendezvous_ops);
        }
        Ok(posted)
    }

    /// Wait for `peer` to announce a receive buffer for `tag`; returns its
    /// descriptor. Fails with [`PhotonError::PeerDead`] instead of hanging
    /// if `peer` crashes or is evicted while the wait is pending (each spin
    /// runs the health gate, so a partitioned peer is probed with backoff
    /// and either heals or exhausts its probe budget).
    pub fn wait_send_buffer(&self, peer: Rank, tag: u64) -> Result<BufferDescriptor> {
        self.check_rank_pub(peer)?;
        let (desc, ts) = self.blocking("rendezvous buffer announce", |s| {
            if let Some(got) = s.rdv_announces.lock().remove(&(peer, tag)) {
                return Ok(Some(got));
            }
            s.peer_gate(peer)?;
            Ok(None)
        })?;
        self.clock_ref().advance_to(ts);
        Ok(desc)
    }

    /// Non-blocking [`Photon::wait_send_buffer`]: drives progress once and
    /// returns `Ok(None)` when `peer` has not yet announced a buffer for
    /// `tag`. Single-threaded steppers (the simulation-test executor) use
    /// this instead of the spinning wait.
    pub fn try_wait_send_buffer(&self, peer: Rank, tag: u64) -> Result<Option<BufferDescriptor>> {
        self.check_rank_pub(peer)?;
        self.progress()?;
        let got = self.rdv_announces.lock().remove(&(peer, tag));
        Ok(got.map(|(desc, ts)| {
            self.clock_ref().advance_to(ts);
            desc
        }))
    }

    /// Doorbell-batched [`Photon::post_recv_buffer`]: announce every
    /// `(tag, descriptor)` pair to `peer` in one call, coalescing the
    /// control entries of contiguous ledger slots into single wire writes
    /// (runtimes pre-posting a window of landing zones pay one doorbell
    /// for the window instead of one per buffer). Blocks on ledger credits.
    pub fn post_recv_buffers(&self, peer: Rank, posts: &[(u64, BufferDescriptor)]) -> Result<()> {
        self.check_rank_pub(peer)?;
        let specs: Vec<crate::photon::EntrySpec> = posts
            .iter()
            .map(|(tag, d)| crate::photon::EntrySpec {
                kind: EntryKind::RdvPost,
                rid: *tag,
                size: d.len as u64,
                addr: d.addr,
                rkey: d.rkey,
            })
            .collect();
        let mut done = 0usize;
        self.blocking("rendezvous batch post credits", |s| {
            done += s.try_post_entry_run(peer, &specs[done..])?;
            Ok((done == specs.len()).then_some(()))
        })?;
        Stats::add(&self.stats_ref().rendezvous_ops, posts.len() as u64);
        Ok(())
    }

    /// Doorbell-batched [`Photon::send_fin`]: post a FIN for every tag in
    /// `tags` toward `peer`, coalescing contiguous control entries into
    /// single wire writes. Blocks on ledger credits.
    pub fn send_fins(&self, peer: Rank, tags: &[u64]) -> Result<()> {
        self.check_rank_pub(peer)?;
        let specs: Vec<crate::photon::EntrySpec> = tags
            .iter()
            .map(|&tag| crate::photon::EntrySpec {
                kind: EntryKind::Fin,
                rid: tag,
                size: 0,
                addr: 0,
                rkey: 0,
            })
            .collect();
        let mut done = 0usize;
        self.blocking("fin batch credits", |s| {
            done += s.try_post_entry_run(peer, &specs[done..])?;
            Ok((done == specs.len()).then_some(()))
        })?;
        Stats::add(&self.stats_ref().rendezvous_ops, tags.len() as u64);
        Ok(())
    }

    /// Tell `peer` the put into its announced buffer for `tag` is complete.
    pub fn send_fin(&self, peer: Rank, tag: u64) -> Result<()> {
        Stats::bump(&self.stats_ref().rendezvous_ops);
        self.blocking("fin credits", |s| {
            s.try_post_entry_pub(peer, EntryKind::Fin, tag, 0, 0, 0).map(|p| p.then_some(()))
        })
    }

    /// Non-blocking [`Photon::send_fin`]: `Ok(false)` when the control
    /// ledger toward `peer` is out of credits.
    pub fn try_send_fin(&self, peer: Rank, tag: u64) -> Result<bool> {
        let posted = self.try_post_entry_pub(peer, EntryKind::Fin, tag, 0, 0, 0)?;
        if posted {
            Stats::bump(&self.stats_ref().rendezvous_ops);
        }
        Ok(posted)
    }

    /// Wait for `peer`'s FIN for `tag`; returns its virtual arrival time.
    /// Fails with [`PhotonError::PeerDead`] instead of hanging if `peer`
    /// crashes or is evicted mid-transfer.
    pub fn wait_fin(&self, peer: Rank, tag: u64) -> Result<VTime> {
        self.check_rank_pub(peer)?;
        let ts = self.blocking("fin", |s| {
            if let Some(ts) = s.rdv_fins.lock().remove(&(peer, tag)) {
                return Ok(Some(ts));
            }
            s.peer_gate(peer)?;
            Ok(None)
        })?;
        self.clock_ref().advance_to(ts);
        Ok(ts)
    }

    /// Non-blocking [`Photon::wait_fin`]: drives progress once and returns
    /// `Ok(None)` when `peer`'s FIN for `tag` has not yet arrived.
    pub fn try_wait_fin(&self, peer: Rank, tag: u64) -> Result<Option<VTime>> {
        self.check_rank_pub(peer)?;
        self.progress()?;
        let got = self.rdv_fins.lock().remove(&(peer, tag));
        Ok(got.inspect(|&ts| {
            self.clock_ref().advance_to(ts);
        }))
    }

    /// Full sender side of a rendezvous transfer: wait for the buffer
    /// announce, RDMA-write `buf[off..off+len]` into it, wait for local
    /// injection, and post the FIN.
    pub fn send_rendezvous(
        &self,
        peer: Rank,
        buf: &PhotonBuffer,
        off: usize,
        len: usize,
        tag: u64,
    ) -> Result<()> {
        let d = self.wait_send_buffer(peer, tag)?;
        if len > d.len {
            return Err(PhotonError::OutOfRange { offset: 0, len, cap: d.len });
        }
        let lrid = self.internal_rid();
        self.put(peer, buf, off, len, &d, 0, lrid)?;
        self.wait_local(lrid)?;
        self.send_fin(peer, tag)
    }

    /// Full receiver side: announce `buf[off..off+len]` and wait for the
    /// FIN. On return the payload is in place.
    pub fn recv_rendezvous(
        &self,
        peer: Rank,
        buf: &PhotonBuffer,
        off: usize,
        len: usize,
        tag: u64,
    ) -> Result<()> {
        self.post_recv_buffer(peer, buf, off, len, tag)?;
        self.wait_fin(peer, tag)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhotonCluster, PhotonConfig};
    use photon_fabric::NetworkModel;

    fn pair() -> PhotonCluster {
        PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default())
    }

    #[test]
    fn rendezvous_transfer_end_to_end() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let len = 1 << 20;
        let sbuf = p0.register_buffer(len).unwrap();
        let rbuf = p1.register_buffer(len).unwrap();
        sbuf.fill(0x5A);
        std::thread::scope(|s| {
            s.spawn(|| p0.send_rendezvous(1, &sbuf, 0, len, 42).unwrap());
            s.spawn(|| p1.recv_rendezvous(0, &rbuf, 0, len, 42).unwrap());
        });
        assert_eq!(rbuf.to_vec(0, len), vec![0x5A; len]);
        assert!(p0.stats().rendezvous_ops > 0);
        // The receiver's clock reflects the large transfer: at least the
        // serialization time of 1 MiB at 7 GB/s.
        assert!(p1.now().as_nanos() > 140_000);
    }

    #[test]
    fn rendezvous_steps_explicit() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let rbuf = p1.register_buffer(64).unwrap();
        p1.post_recv_buffer(0, &rbuf, 16, 32, 7).unwrap();
        let d = p0.wait_send_buffer(1, 7).unwrap();
        assert_eq!(d.len, 32);
        assert_eq!(d.addr, rbuf.descriptor().addr + 16);
        let sbuf = p0.register_buffer(32).unwrap();
        sbuf.write_at(0, b"explicit rendezvous steps work!!");
        let rid = p0.internal_rid();
        p0.put(1, &sbuf, 0, 32, &d, 0, rid).unwrap();
        p0.wait_local(rid).unwrap();
        p0.send_fin(1, 7).unwrap();
        p1.wait_fin(0, 7).unwrap();
        assert_eq!(rbuf.to_vec(16, 32), b"explicit rendezvous steps work!!");
    }

    #[test]
    fn distinct_tags_do_not_cross() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let r1 = p1.register_buffer(8).unwrap();
        let r2 = p1.register_buffer(8).unwrap();
        p1.post_recv_buffer(0, &r1, 0, 8, 1).unwrap();
        p1.post_recv_buffer(0, &r2, 0, 8, 2).unwrap();
        // Sender asks for tag 2 first; must get r2, not r1.
        let d2 = p0.wait_send_buffer(1, 2).unwrap();
        let d1 = p0.wait_send_buffer(1, 1).unwrap();
        assert_eq!(d2.addr, r2.descriptor().addr);
        assert_eq!(d1.addr, r1.descriptor().addr);
    }

    #[test]
    fn batched_posts_and_fins_coalesce_doorbells() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let n = 8usize;
        let bufs: Vec<_> = (0..n).map(|_| p1.register_buffer(32).unwrap()).collect();
        let posts: Vec<(u64, crate::buffers::BufferDescriptor)> =
            bufs.iter().enumerate().map(|(i, b)| (i as u64, b.descriptor())).collect();
        // One call announces the whole window; contiguous ledger slots ride
        // single wire writes instead of one per entry.
        p1.post_recv_buffers(0, &posts).unwrap();
        assert_eq!(p1.stats().rendezvous_ops, n as u64);
        let sbuf = p0.register_buffer(32).unwrap();
        for tag in 0..n as u64 {
            let d = p0.wait_send_buffer(1, tag).unwrap();
            assert_eq!(d.addr, bufs[tag as usize].descriptor().addr);
            sbuf.write_at(0, &[tag as u8; 32]);
            let rid = p0.internal_rid();
            p0.put(1, &sbuf, 0, 32, &d, 0, rid).unwrap();
            p0.wait_local(rid).unwrap();
        }
        // One call FINs the whole window.
        let tags: Vec<u64> = (0..n as u64).collect();
        p0.send_fins(1, &tags).unwrap();
        for tag in 0..n as u64 {
            p1.wait_fin(0, tag).unwrap();
            assert_eq!(bufs[tag as usize].to_vec(0, 32), vec![tag as u8; 32]);
        }
    }

    #[test]
    fn batched_posts_survive_credit_exhaustion() {
        // More entries than the control ledger has slots: the batch must
        // ride through credit stalls (progress on the consumer side frees
        // slots) and still deliver every announcement exactly once.
        let c = pair();
        let (p0, p1) = (c.rank(0).clone(), c.rank(1).clone());
        let slots = PhotonConfig::default().ledger_entries;
        let n = slots * 3;
        let buf = p1.register_buffer(8).unwrap();
        let posts: Vec<(u64, crate::buffers::BufferDescriptor)> =
            (0..n as u64).map(|tag| (tag, buf.descriptor())).collect();
        let t = std::thread::spawn(move || {
            for tag in 0..n as u64 {
                p0.wait_send_buffer(1, tag).unwrap();
            }
        });
        p1.post_recv_buffers(0, &posts).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn oversized_send_rejected() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let rbuf = p1.register_buffer(16).unwrap();
        p1.post_recv_buffer(0, &rbuf, 0, 16, 9).unwrap();
        let sbuf = p0.register_buffer(64).unwrap();
        let err = p0.send_rendezvous(1, &sbuf, 0, 64, 9);
        assert!(matches!(err, Err(PhotonError::OutOfRange { .. })));
    }
}
