//! Remote atomic operations (extension).
//!
//! Photon-class middleware on verbs exposes the NIC's 64-bit remote atomics
//! (fetch-and-add, compare-and-swap) for lock-free counters, queues and
//! random-access updates without owner involvement. This module surfaces
//! them with the same completion-id discipline as PWC: the fetched old
//! value lands in a local buffer and `local_rid` is surfaced when it is
//! readable.
//!
//! Targets must be 8-byte aligned u64 slots inside a peer's registered
//! buffer — the same constraint real NIC atomics impose.
//!
//! ```
//! use photon_core::{PhotonCluster, PhotonConfig};
//! use photon_fabric::NetworkModel;
//!
//! let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
//! let counter = c.rank(1).register_buffer(8).unwrap();
//! let d = counter.descriptor();
//! assert_eq!(c.rank(0).fetch_add(1, &d, 0, 5).unwrap(), 0);
//! assert_eq!(c.rank(0).compare_swap(1, &d, 0, 5, 99).unwrap(), 5);
//! assert_eq!(counter.read_u64(0), 99);
//! ```

use crate::buffers::{BufferDescriptor, PhotonBuffer};
use crate::obs::Stats;
use crate::{Photon, PhotonError, Rank, Result};
use photon_fabric::verbs::{MrSlice, RemoteSlice, WrOp};

impl Photon {
    /// Remote fetch-and-add: atomically add `add` to the u64 at
    /// `dst[doff..doff+8]` on `peer`; the previous value lands in
    /// `local[loff..loff+8]` and `local_rid` completes when it is readable.
    #[allow(clippy::too_many_arguments)]
    pub fn atomic_fetch_add(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        loff: usize,
        dst: &BufferDescriptor,
        doff: usize,
        add: u64,
        local_rid: u64,
    ) -> Result<()> {
        self.post_atomic(peer, local, loff, dst, doff, local_rid, |l, r| WrOp::FetchAdd {
            local: l,
            remote: r,
            add,
        })
    }

    /// Remote compare-and-swap: if the u64 at `dst[doff..]` equals
    /// `compare`, replace it with `swap`; either way the previous value
    /// lands in `local[loff..]`.
    #[allow(clippy::too_many_arguments)]
    pub fn atomic_compare_swap(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        loff: usize,
        dst: &BufferDescriptor,
        doff: usize,
        compare: u64,
        swap: u64,
        local_rid: u64,
    ) -> Result<()> {
        self.post_atomic(peer, local, loff, dst, doff, local_rid, |l, r| WrOp::CompareSwap {
            local: l,
            remote: r,
            compare,
            swap,
        })
    }

    /// Blocking convenience: fetch-and-add returning the old value.
    pub fn fetch_add(
        &self,
        peer: Rank,
        dst: &BufferDescriptor,
        doff: usize,
        add: u64,
    ) -> Result<u64> {
        let tmp = self.register_buffer(8)?;
        let rid = self.internal_rid();
        self.atomic_fetch_add(peer, &tmp, 0, dst, doff, add, rid)?;
        self.wait_local(rid)?;
        let old = tmp.read_u64(0);
        self.release_buffer(&tmp)?;
        Ok(old)
    }

    /// Blocking convenience: compare-and-swap returning the old value
    /// (success iff the return equals `compare`).
    pub fn compare_swap(
        &self,
        peer: Rank,
        dst: &BufferDescriptor,
        doff: usize,
        compare: u64,
        swap: u64,
    ) -> Result<u64> {
        let tmp = self.register_buffer(8)?;
        let rid = self.internal_rid();
        self.atomic_compare_swap(peer, &tmp, 0, dst, doff, compare, swap, rid)?;
        self.wait_local(rid)?;
        let old = tmp.read_u64(0);
        self.release_buffer(&tmp)?;
        Ok(old)
    }

    #[allow(clippy::too_many_arguments)]
    fn post_atomic(
        &self,
        peer: Rank,
        local: &PhotonBuffer,
        loff: usize,
        dst: &BufferDescriptor,
        doff: usize,
        local_rid: u64,
        mk: impl FnOnce(MrSlice, RemoteSlice) -> WrOp,
    ) -> Result<()> {
        self.check_rank_pub(peer)?;
        local.check(loff, 8)?;
        if doff + 8 > dst.len {
            return Err(PhotonError::OutOfRange { offset: doff, len: 8, cap: dst.len });
        }
        let l = MrSlice::new(local.region(), loff, 8);
        let r = RemoteSlice::from_key(dst, doff, 8);
        self.post_tracked(peer, mk(l, r), local_rid)?;
        Stats::bump(&self.stats_ref().gets); // accounted with one-sided reads
        Ok(())
    }
}

#[cfg(test)]
mod tests {

    use crate::{PhotonCluster, PhotonConfig};
    use photon_fabric::{FabricError, NetworkModel};

    fn pair() -> PhotonCluster {
        PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default())
    }

    #[test]
    fn fetch_add_roundtrip() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let counter = p1.register_buffer(64).unwrap();
        counter.write_u64(8, 100);
        let d = counter.descriptor();
        assert_eq!(p0.fetch_add(1, &d, 8, 5).unwrap(), 100);
        assert_eq!(p0.fetch_add(1, &d, 8, 5).unwrap(), 105);
        assert_eq!(counter.read_u64(8), 110);
        // An atomic is a round trip: the clock reflects ~2 wire latencies.
        assert!(p0.now().as_nanos() >= 2 * 700);
    }

    #[test]
    fn compare_swap_semantics() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let slot = p1.register_buffer(8).unwrap();
        let d = slot.descriptor();
        assert_eq!(p0.compare_swap(1, &d, 0, 0, 42).unwrap(), 0, "won the race");
        assert_eq!(p0.compare_swap(1, &d, 0, 0, 77).unwrap(), 42, "lost: value unchanged");
        assert_eq!(slot.read_u64(0), 42);
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        let c = PhotonCluster::new(3, NetworkModel::ideal(), PhotonConfig::default());
        let owner = c.rank(0);
        let counter = owner.register_buffer(8).unwrap();
        let d = counter.descriptor();
        std::thread::scope(|s| {
            for i in 1..3 {
                let c = &c;
                let d = &d;
                s.spawn(move || {
                    let p = c.rank(i);
                    for _ in 0..500 {
                        p.fetch_add(0, d, 0, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(counter.read_u64(0), 1000, "no lost updates");
    }

    #[test]
    fn misaligned_target_rejected() {
        let c = pair();
        let (p0, p1) = (c.rank(0), c.rank(1));
        let slot = p1.register_buffer(16).unwrap();
        let d = slot.descriptor();
        let err = p0.fetch_add(1, &d, 4, 1);
        assert!(matches!(
            err,
            Err(crate::PhotonError::Fabric(FabricError::BadAtomicTarget { .. }))
        ));
        // Out-of-range is caught before the fabric.
        let err = p0.fetch_add(1, &d, 12, 1);
        assert!(matches!(err, Err(crate::PhotonError::OutOfRange { .. })));
    }
}
