//! Multi-process job membership: one Photon rank per OS process.
//!
//! An in-process [`crate::PhotonCluster`] holds every rank in one address
//! space and wires connections lazily through its [`crate::photon::ConnDirectory`].
//! A *multi-process* job has no shared address space, so this module joins
//! through the out-of-band bootstrap rendezvous instead (the PMI role of a
//! real launcher): each rank process connects to the `photon-launch`
//! rendezvous socket, allgathers its UDP endpoint, its per-peer
//! service-block descriptors, and its collective-window descriptor, and
//! installs every connection *eagerly* and fully formed. After
//! [`PhotonProcess::join`] returns, all PWC/ledger/eager/rendezvous/
//! collective traffic flows over real sockets with no further control-plane
//! round-trips.
//!
//! The launcher contract is three environment variables, consumed by
//! [`PhotonProcess::from_env`]:
//!
//! | variable | meaning |
//! |---|---|
//! | `PHOTON_RANK` | this process's rank, `0..n` |
//! | `PHOTON_NRANKS` | job size (cross-checked against the server's) |
//! | `PHOTON_BOOTSTRAP` | `host:port` of the rendezvous service |

use crate::photon::Photon;
use crate::{PhotonConfig, PhotonError, Rank, Result};
use photon_fabric::api::{FabricBackend, RemoteKey};
use photon_fabric::sock::join_job;
use std::sync::Arc;

/// Environment variable naming this process's rank.
pub const ENV_RANK: &str = "PHOTON_RANK";
/// Environment variable naming the job size.
pub const ENV_NRANKS: &str = "PHOTON_NRANKS";
/// Environment variable naming the bootstrap rendezvous address.
pub const ENV_BOOTSTRAP: &str = "PHOTON_BOOTSTRAP";

/// Wire size of a serialized [`RemoteKey`] ([`RemoteKey::to_bytes`]).
const KEY_BYTES: usize = 20;

fn decode_key(b: &[u8]) -> Result<RemoteKey> {
    if b.len() != KEY_BYTES {
        return Err(PhotonError::Protocol("bootstrap: malformed remote-key descriptor"));
    }
    Ok(RemoteKey::from_bytes(b))
}

/// One rank of a multi-process Photon job, joined over the sockets
/// backend. Owns this process's context plus its progress engine; dropping
/// it stops the engine (the underlying reactor stops when the last
/// [`Arc<Photon>`] goes away).
#[derive(Debug)]
pub struct PhotonProcess {
    photon: Arc<Photon>,
    progress: Option<crate::progress::ProgressEngine>,
}

impl PhotonProcess {
    /// Join the job rendezvousing at `bootstrap_addr` as `rank`.
    ///
    /// Every rank process must call this concurrently (the rendezvous is
    /// round-synchronous); the call returns once *all* ranks have
    /// exchanged endpoints and descriptors and every connection is live.
    /// `cfg.backend` is ignored — a multi-process join is the sockets
    /// backend by construction.
    pub fn join(bootstrap_addr: &str, rank: Rank, cfg: PhotonConfig) -> Result<PhotonProcess> {
        let (nic, mut bs) = join_job(bootstrap_addr, rank)?;
        let n = bs.n;
        if rank >= n {
            return Err(PhotonError::InvalidRank(rank));
        }
        let nic: Arc<dyn FabricBackend> = nic as _;
        let photon = Arc::new(Photon::init_backend(rank, n, nic, cfg)?);

        // Round 2: per-peer service blocks. Entry j of this rank's payload
        // is the descriptor of the block peer j will write into here; our
        // connection to peer p targets entry `rank` of p's payload.
        let svcs: Vec<_> = (0..n).map(|_| photon.preregister_svc()).collect::<Result<_>>()?;
        let mut payload = Vec::with_capacity(n * KEY_BYTES);
        for svc in &svcs {
            payload.extend_from_slice(&svc.remote_key().to_bytes());
        }
        let matrix = bs.allgather(&payload)?;
        for (p, svc) in svcs.into_iter().enumerate() {
            let row = &matrix[p];
            if row.len() != n * KEY_BYTES {
                return Err(PhotonError::Protocol("bootstrap: short service-key row"));
            }
            let key = decode_key(&row[rank * KEY_BYTES..(rank + 1) * KEY_BYTES])?;
            photon.install_conn(p, svc, key)?;
        }

        // Round 3: collective receive windows (forced into existence now —
        // lazily allocating them would need another exchange later).
        let mine = photon.coll_recv_buf().region().remote_key().to_bytes();
        let coll =
            bs.allgather(&mine)?.iter().map(|b| decode_key(b)).collect::<Result<Vec<_>>>()?;
        photon.set_coll_keys(coll);

        let progress = crate::progress::ProgressEngine::spawn(
            std::slice::from_ref(&photon),
            cfg.progress_threads,
        );
        Ok(PhotonProcess { photon, progress })
    }

    /// [`PhotonProcess::join`] with rank and rendezvous address taken from
    /// the `photon-launch` environment ([`ENV_RANK`], [`ENV_BOOTSTRAP`];
    /// [`ENV_NRANKS`], when set, is cross-checked against the server).
    pub fn from_env(cfg: PhotonConfig) -> Result<PhotonProcess> {
        let var = |name: &'static str| {
            std::env::var(name).map_err(|_| PhotonError::Config(format!("{name} not set")))
        };
        let rank: Rank = var(ENV_RANK)?
            .parse()
            .map_err(|_| PhotonError::Config(format!("{ENV_RANK} is not a rank")))?;
        let addr = var(ENV_BOOTSTRAP)?;
        let me = Self::join(&addr, rank, cfg)?;
        if let Ok(ns) = std::env::var(ENV_NRANKS) {
            if ns.parse::<usize>() != Ok(me.n()) {
                return Err(PhotonError::Config(format!(
                    "{ENV_NRANKS}={ns} disagrees with the {}-rank bootstrap server",
                    me.n()
                )));
            }
        }
        Ok(me)
    }

    /// This process's Photon context.
    pub fn photon(&self) -> &Arc<Photon> {
        &self.photon
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.photon.rank()
    }

    /// Job size.
    pub fn n(&self) -> usize {
        self.photon.size()
    }
}

impl Drop for PhotonProcess {
    fn drop(&mut self) {
        if let Some(engine) = self.progress.as_mut() {
            engine.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_fabric::sock::BootstrapServer;

    /// The full multi-process join protocol, with ranks on threads instead
    /// of processes (same code path end to end: TCP rendezvous, three
    /// allgather rounds, eager connections, real UDP data plane).
    /// `photon-launch` + separate binaries exercise the genuine article.
    #[test]
    fn threaded_join_runs_pwc_and_barrier() {
        let server = BootstrapServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let n = 3;
        let srv = std::thread::spawn(move || server.run(n));
        let ranks: Vec<_> = (0..n)
            .map(|rank| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let me = PhotonProcess::join(&addr, rank, PhotonConfig::default()).unwrap();
                    assert_eq!((me.rank(), me.n()), (rank, n));
                    let p = me.photon();
                    // Descriptor exchange rides the eager send path; the
                    // put lands over a pre-installed connection.
                    let buf = p.register_buffer(256).unwrap();
                    if rank == 1 {
                        p.send(0, &buf.descriptor().to_bytes(), 7).unwrap();
                        let c = p.wait_completion_matching(crate::ProbeFlags::Remote).unwrap();
                        assert_eq!((c.rid, c.peer), (99, 0));
                        assert_eq!(buf.to_vec(0, 5), b"hello");
                    } else if rank == 0 {
                        let c = p.wait_completion_from(1).unwrap();
                        let dst = crate::buffers::BufferDescriptor::from_bytes(&c.payload.unwrap());
                        buf.write_at(0, b"hello");
                        p.put_with_completion(1, &buf, 0, 5, &dst, 0, 7, 99).unwrap();
                        p.wait_local(7).unwrap();
                    }
                    p.barrier().unwrap();
                })
            })
            .collect();
        for r in ranks {
            r.join().unwrap();
        }
        srv.join().unwrap().unwrap();
    }
}
