//! Operation tracing.
//!
//! A lightweight, opt-in event log: when enabled on a context, every
//! initiated operation and every surfaced completion appends a record with
//! its virtual timestamp. Useful for debugging protocol schedules and for
//! producing per-operation timelines from the experiment harness.
//!
//! Disabled contexts pay a single relaxed atomic load per would-be record.

use crate::Rank;
use parking_lot::Mutex;
use photon_fabric::VTime;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// What kind of operation a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Eager put-with-completion posted.
    PutEager,
    /// Direct (RDMA + ledger) put-with-completion posted.
    PutDirect,
    /// Plain one-sided put posted.
    Put,
    /// Get posted.
    Get,
    /// Destination-less send posted.
    Send,
    /// Local completion surfaced.
    LocalDone,
    /// Remote completion surfaced.
    RemoteDone,
    /// Credit-return write posted.
    CreditReturn,
    /// Rendezvous control step.
    Rendezvous,
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceOp::PutEager => "put-eager",
            TraceOp::PutDirect => "put-direct",
            TraceOp::Put => "put",
            TraceOp::Get => "get",
            TraceOp::Send => "send",
            TraceOp::LocalDone => "local-done",
            TraceOp::RemoteDone => "remote-done",
            TraceOp::CreditReturn => "credit-return",
            TraceOp::Rendezvous => "rendezvous",
        };
        f.write_str(s)
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time the record was taken at.
    pub ts: VTime,
    /// Operation class.
    pub op: TraceOp,
    /// Peer rank involved (self for local-only records).
    pub peer: Rank,
    /// Completion identifier, when the op carries one.
    pub rid: u64,
    /// Payload size in bytes, when applicable.
    pub size: usize,
}

/// The per-context trace buffer.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: AtomicBool,
    records: Mutex<Vec<TraceRecord>>,
}

impl Tracer {
    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (records are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Append a record if enabled.
    #[inline]
    pub(crate) fn record(&self, ts: VTime, op: TraceOp, peer: Rank, rid: u64, size: usize) {
        if self.is_enabled() {
            self.records.lock().push(TraceRecord { ts, op, peer, rid, size });
        }
    }

    /// Drain the recorded events (oldest first).
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Render the buffered records as CSV (`ts_ns,op,peer,rid,size`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ts_ns,op,peer,rid,size\n");
        for r in self.records.lock().iter() {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                r.ts.as_nanos(),
                r.op,
                r.peer,
                r.rid,
                r.size
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        t.record(VTime(1), TraceOp::Put, 0, 1, 8);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_accumulates_and_drains() {
        let t = Tracer::default();
        t.enable();
        t.record(VTime(10), TraceOp::Send, 1, 7, 64);
        t.record(VTime(20), TraceOp::RemoteDone, 1, 7, 64);
        assert_eq!(t.len(), 2);
        let recs = t.take();
        assert_eq!(recs[0].op, TraceOp::Send);
        assert_eq!(recs[1].ts, VTime(20));
        assert!(t.is_empty());
        t.disable();
        t.record(VTime(30), TraceOp::Put, 0, 0, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn csv_rendering() {
        let t = Tracer::default();
        t.enable();
        t.record(VTime(5), TraceOp::PutEager, 2, 99, 128);
        let csv = t.to_csv();
        assert!(csv.starts_with("ts_ns,op,peer,rid,size\n"));
        assert!(csv.contains("5,put-eager,2,99,128"));
    }
}
