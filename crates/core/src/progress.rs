//! Dedicated progress threads (see DESIGN.md, "Progress engine").
//!
//! When [`PhotonConfig::progress_threads`](crate::PhotonConfig) is non-zero,
//! a [`PhotonCluster`](crate::PhotonCluster) spawns that many threads that
//! continuously run the completion engine on behalf of every rank: shard 0
//! also harvests the fabric completion queues, and each thread polls the
//! peers hashed to it ([`Photon::peer_shard`]). Callers' `wait_*` / `poll_*`
//! paths then become *consumers* of the sharded completion queues — a probe
//! that finds its event already harvested pays one shard lookup and no
//! progress work at all.
//!
//! Inline progress is the default (`progress_threads = 0`) and always stays
//! *possible*: callers keep help-pumping through [`Photon::progress`] even
//! in threaded mode, so the engine can never be slower than the inline
//! build, only less contended. Determinism-sensitive users (simtest's
//! schedule replay) simply leave the knob at zero. Correctness under the
//! extra concurrency rests on the per-peer receive locks (one poller per
//! peer at a time, bounded-skip arbitration), the completion table's
//! generation check (exactly-once CQE retirement), and credit returns
//! serialized under the receive lock (absolute counters stay monotone).

use crate::photon::{Conn, Photon};
use crate::Rank;
use photon_fabric::verbs::Completion as Cqe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Consecutive idle passes before a thread starts yielding.
const IDLE_YIELD_AFTER: u32 = 64;
/// Consecutive idle passes before a thread parks between passes. Parking
/// matters on small hosts: an idle progress thread must not steal cycles
/// from the application thread it is trying to serve.
const IDLE_PARK_AFTER: u32 = 256;
/// How long an idle thread parks per pass once fully backed off.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Handle owning a cluster's progress threads. Dropping a
/// [`PhotonCluster`](crate::PhotonCluster) stops and joins them before any
/// rank's state is torn down.
#[derive(Debug)]
pub(crate) struct ProgressEngine {
    shutdown: Arc<AtomicBool>,
    ranks: Vec<Arc<Photon>>,
    handles: Vec<JoinHandle<()>>,
}

impl ProgressEngine {
    /// Spawn `threads` progress threads serving every rank in `ranks`.
    /// Returns `None` when `threads == 0` (inline progress).
    pub(crate) fn spawn(ranks: &[Arc<Photon>], threads: usize) -> Option<ProgressEngine> {
        if threads == 0 {
            return None;
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        for p in ranks {
            p.set_threads_active(true);
        }
        let handles = (0..threads)
            .map(|shard| {
                let shutdown = Arc::clone(&shutdown);
                let ranks: Vec<Arc<Photon>> = ranks.to_vec();
                std::thread::Builder::new()
                    .name(format!("photon-progress-{shard}"))
                    .spawn(move || run(&ranks, shard, threads, &shutdown))
                    .expect("spawn progress thread")
            })
            .collect();
        Some(ProgressEngine { shutdown, ranks: ranks.to_vec(), handles })
    }

    /// Stop and join every thread; idempotent. Probe paths fall back to
    /// inline progress the moment the active flags clear.
    pub(crate) fn stop(&mut self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            for p in &self.ranks {
                p.set_threads_active(false);
            }
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ProgressEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One progress thread's main loop: sweep every rank's shard, backing off
/// (yield, then park) across consecutive all-idle sweeps so an idle engine
/// costs (almost) nothing.
fn run(ranks: &[Arc<Photon>], shard: usize, nshards: usize, shutdown: &AtomicBool) {
    let mut scratch: Vec<Cqe> = Vec::new();
    let mut conns: Vec<Arc<Conn>> = Vec::new();
    let mut idle: u32 = 0;
    while !shutdown.load(Ordering::Acquire) {
        let mut work = 0usize;
        for p in ranks {
            work += p.progress_shard(shard, nshards, &mut scratch, &mut conns);
        }
        if work > 0 {
            idle = 0;
            continue;
        }
        idle = idle.saturating_add(1);
        if idle >= IDLE_PARK_AFTER {
            std::thread::park_timeout(IDLE_PARK);
        } else if idle >= IDLE_YIELD_AFTER {
            std::thread::yield_now();
        }
    }
}

/// The peer→shard map is total: every peer is owned by exactly one shard.
#[allow(dead_code)]
fn shards_cover_all_peers(n: Rank, nshards: usize) -> bool {
    (0..n).all(|j| Photon::peer_shard(j, nshards) < nshards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhotonCluster, PhotonConfig};
    use photon_fabric::NetworkModel;

    #[test]
    fn peer_shard_is_total_and_stable() {
        for nshards in 1..=8 {
            assert!(shards_cover_all_peers(64, nshards));
            for j in 0..64 {
                assert_eq!(
                    Photon::peer_shard(j, nshards),
                    Photon::peer_shard(j, nshards),
                    "assignment must be deterministic"
                );
            }
        }
        // With one shard everything maps to it (the single-thread engine
        // serves every peer).
        assert!((0..64).all(|j| Photon::peer_shard(j, 1) == 0));
    }

    #[test]
    fn engine_spawns_and_stops_cleanly() {
        let cfg = PhotonConfig::builder().progress_threads(2).build().unwrap();
        let cluster = PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg);
        let p0 = cluster.rank(0);
        let p1 = cluster.rank(1);
        let dst = p1.register_buffer(64).unwrap();
        let src = p0.register_buffer(64).unwrap();
        src.write_at(0, b"threaded");
        p0.put_with_completion(1, &src, 0, 8, &dst.descriptor(), 0, 7, 99).unwrap();
        p0.wait_local(7).unwrap();
        let c = p1.wait_completion().unwrap();
        assert!(c.is_remote(), "expected remote completion, got {c:?}");
        assert_eq!(c.rid, 99);
        assert_eq!(dst.to_vec(0, 8), b"threaded");
        drop(cluster); // joins the threads; must not hang or panic
    }

    #[test]
    fn zero_threads_means_no_engine() {
        assert!(ProgressEngine::spawn(&[], 0).is_none());
    }
}
