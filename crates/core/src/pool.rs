//! A registered-buffer pool.
//!
//! One-sided operations require registered memory; transient operations
//! (8-byte atomics, small GAS transfers, staging) would otherwise pay a
//! registration round trip each time. [`BufferPool`] keeps released buffers
//! keyed by size for reuse — the middleware-side analogue of the baseline's
//! registration cache, here an *explicit* tool rather than hidden magic.

use crate::buffers::PhotonBuffer;
use crate::{Photon, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A size-keyed pool of registered buffers over one Photon context.
#[derive(Debug)]
pub struct BufferPool {
    photon: Arc<Photon>,
    free: Mutex<HashMap<usize, Vec<PhotonBuffer>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// A pool allocating through `photon`.
    pub fn new(photon: Arc<Photon>) -> BufferPool {
        BufferPool {
            photon,
            free: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Take a buffer of exactly `len` bytes: pooled when available
    /// (zeroed for reuse), freshly registered otherwise (registration cost
    /// charged once, at first allocation).
    pub fn take(&self, len: usize) -> Result<PhotonBuffer> {
        if let Some(b) = self.free.lock().get_mut(&len).and_then(Vec::pop) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            b.fill(0);
            return Ok(b);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.photon.register_buffer(len)
    }

    /// Return a buffer for reuse.
    pub fn give(&self, buf: PhotonBuffer) {
        self.free.lock().entry(buf.len()).or_default().push(buf);
    }

    /// Deregister everything currently pooled (releases pinning budget).
    pub fn drain(&self) -> Result<()> {
        let all: Vec<PhotonBuffer> = self.free.lock().drain().flat_map(|(_, v)| v).collect();
        for b in all {
            self.photon.release_buffer(&b)?;
        }
        Ok(())
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhotonCluster, PhotonConfig};
    use photon_fabric::NetworkModel;

    #[test]
    fn pool_reuses_and_zeroes() {
        let c = PhotonCluster::new(1, NetworkModel::ib_fdr(), PhotonConfig::default());
        let pool = BufferPool::new(c.rank(0).clone());
        let before = c.rank(0).now();
        let a = pool.take(64).unwrap();
        a.write_u64(0, 7);
        let a_key = a.descriptor();
        pool.give(a);
        let after_first = c.rank(0).now();
        assert!(after_first > before, "first take pays registration");
        let b = pool.take(64).unwrap();
        assert_eq!(b.descriptor().rkey, a_key.rkey, "same region reused");
        assert_eq!(b.read_u64(0), 0, "reused buffer is zeroed");
        assert_eq!(c.rank(0).now(), after_first, "hit is free in virtual time");
        assert_eq!(pool.stats(), (1, 1));
        pool.give(b);
    }

    #[test]
    fn different_sizes_do_not_mix() {
        let c = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
        let pool = BufferPool::new(c.rank(0).clone());
        let a = pool.take(32).unwrap();
        pool.give(a);
        let b = pool.take(64).unwrap();
        assert_eq!(b.len(), 64);
        assert_eq!(pool.stats(), (0, 2));
    }

    #[test]
    fn drain_releases_pinning() {
        let c = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
        let p = c.rank(0);
        let pool = BufferPool::new(p.clone());
        let before = p.nic().mrs().registered_bytes();
        let a = pool.take(4096).unwrap();
        pool.give(a);
        assert_eq!(p.nic().mrs().registered_bytes(), before + 4096);
        pool.drain().unwrap();
        assert_eq!(p.nic().mrs().registered_bytes(), before);
    }
}
