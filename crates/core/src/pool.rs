//! A registered-buffer pool.
//!
//! One-sided operations require registered memory; transient operations
//! (8-byte atomics, small GAS transfers, staging) would otherwise pay a
//! registration round trip each time. [`BufferPool`] keeps released buffers
//! keyed by *size class* for reuse — the middleware-side analogue of the
//! baseline's registration cache, here an *explicit* tool rather than
//! hidden magic.
//!
//! ## Size classes
//!
//! Buffers are bucketed by power-of-two size class rather than exact
//! length, so a request for 1023 bytes is served by a pooled 1024-byte
//! buffer instead of registering a fresh region. Fresh allocations are
//! rounded **up** to the class size (so they re-pool cleanly); foreign
//! buffers handed to [`give`](BufferPool::give) are bucketed by the largest
//! class they can fully back, which keeps every pooled buffer at least as
//! large as any request its bucket serves.
//!
//! ## Capacity
//!
//! Pooled-but-idle buffers still count against the NIC's pinning budget, so
//! the pool caps the bytes it retains (an eighth of the registration limit
//! by default, tunable via [`with_capacity`](BufferPool::with_capacity));
//! overflow buffers are deregistered on `give` instead of hoarded.

use crate::buffers::PhotonBuffer;
use crate::{Photon, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Round `len` up to its power-of-two size class (0 stays 0).
fn class_of(len: usize) -> usize {
    len.next_power_of_two()
}

/// The largest class a buffer of `len` bytes can fully back.
fn class_backed_by(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - len.leading_zeros())
    }
}

/// A size-class-keyed pool of registered buffers over one Photon context.
#[derive(Debug)]
pub struct BufferPool {
    photon: Arc<Photon>,
    free: Mutex<HashMap<usize, Vec<PhotonBuffer>>>,
    /// Bytes currently held in `free` (pinned but idle).
    pooled_bytes: AtomicU64,
    /// Retention cap: `give` deregisters instead of pooling past this.
    max_pooled_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// A pool allocating through `photon`, retaining at most an eighth of
    /// the node's pinning limit.
    pub fn new(photon: Arc<Photon>) -> BufferPool {
        let cap = photon.nic().mrs().limit_bytes() / 8;
        BufferPool::with_capacity(photon, cap)
    }

    /// A pool retaining at most `max_pooled_bytes` of idle registered
    /// memory; buffers given back past the cap are deregistered.
    pub fn with_capacity(photon: Arc<Photon>, max_pooled_bytes: usize) -> BufferPool {
        BufferPool {
            photon,
            free: Mutex::new(HashMap::new()),
            pooled_bytes: AtomicU64::new(0),
            max_pooled_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Take a buffer of *at least* `len` bytes: pooled when the size class
    /// has one (zeroed for reuse), freshly registered at the class size
    /// otherwise (registration cost charged once, at first allocation).
    pub fn take(&self, len: usize) -> Result<PhotonBuffer> {
        let class = class_of(len);
        if let Some(b) = self.free.lock().get_mut(&class).and_then(Vec::pop) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.pooled_bytes.fetch_sub(b.len() as u64, Ordering::Relaxed);
            b.fill(0);
            return Ok(b);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.photon.register_buffer(class)
    }

    /// Return a buffer for reuse. Past the retention cap the buffer is
    /// deregistered instead, releasing its pinning budget.
    pub fn give(&self, buf: PhotonBuffer) {
        let len = buf.len() as u64;
        if self.pooled_bytes.load(Ordering::Relaxed) + len > self.max_pooled_bytes as u64 {
            let _ = self.photon.release_buffer(&buf);
            return;
        }
        self.pooled_bytes.fetch_add(len, Ordering::Relaxed);
        self.free.lock().entry(class_backed_by(buf.len())).or_default().push(buf);
    }

    /// Deregister everything currently pooled (releases pinning budget).
    pub fn drain(&self) -> Result<()> {
        let all: Vec<PhotonBuffer> = self.free.lock().drain().flat_map(|(_, v)| v).collect();
        for b in all {
            self.pooled_bytes.fetch_sub(b.len() as u64, Ordering::Relaxed);
            self.photon.release_buffer(&b)?;
        }
        Ok(())
    }

    /// Bytes currently retained (pinned but idle).
    pub fn pooled_bytes(&self) -> usize {
        self.pooled_bytes.load(Ordering::Relaxed) as usize
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

// --------------------------------------------------------------- Recycler

/// Per-class retention cap of the thread-local [`Recycler`] cache.
const RECYCLER_PER_CLASS: usize = 16;
/// Largest class the recycler retains (1 MiB); bigger buffers are rare and
/// not worth hoarding per-thread.
const RECYCLER_MAX_CLASS: usize = 1 << 20;

std::thread_local! {
    static RECYCLER: std::cell::RefCell<HashMap<usize, Vec<Vec<u8>>>> =
        std::cell::RefCell::new(HashMap::new());
}

/// A thread-local recycler cache for plain heap buffers (`Vec<u8>`),
/// bucketed by the same power-of-two size classes as [`BufferPool`].
///
/// Where [`BufferPool`] recycles *registered* regions (saving the
/// registration round trip), `Recycler` recycles ordinary staging vectors —
/// parcel encodings, coalescer batches, bounce buffers — saving the
/// allocator round trip on hot paths. Being thread-local it takes no lock
/// and needs no ownership protocol: `take` hands out a cleared vector with
/// at least the class capacity, `give` returns it to the caller's own
/// cache (dropped past a per-class cap, so idle threads cannot hoard).
///
/// Ownership rule (see DESIGN.md, "Progress engine"): a recycled vector
/// belongs to exactly one thread's cache at a time; giving a vector back
/// on a different thread than took it is fine (caches are independent),
/// but the *same* vector must not be given twice.
#[derive(Debug, Default, Clone, Copy)]
pub struct Recycler;

impl Recycler {
    /// Take a cleared `Vec<u8>` with capacity for at least `len` bytes,
    /// reusing a cached one of the same size class when available.
    pub fn take(len: usize) -> Vec<u8> {
        let class = class_of(len);
        if class > RECYCLER_MAX_CLASS {
            return Vec::with_capacity(len);
        }
        RECYCLER.with(|c| {
            if let Some(mut v) = c.borrow_mut().get_mut(&class).and_then(Vec::pop) {
                v.clear();
                v
            } else {
                Vec::with_capacity(class)
            }
        })
    }

    /// Return a vector to this thread's cache. Vectors past the per-class
    /// retention cap, above the size ceiling, or with no capacity are
    /// simply dropped.
    pub fn give(v: Vec<u8>) {
        let class = class_backed_by(v.capacity());
        if class == 0 || class > RECYCLER_MAX_CLASS {
            return;
        }
        RECYCLER.with(|c| {
            let mut cache = c.borrow_mut();
            let bucket = cache.entry(class).or_default();
            if bucket.len() < RECYCLER_PER_CLASS {
                bucket.push(v);
            }
        });
    }

    /// Number of vectors currently cached on this thread (all classes).
    pub fn cached() -> usize {
        RECYCLER.with(|c| c.borrow().values().map(Vec::len).sum())
    }

    /// Drop everything cached on this thread.
    pub fn clear() {
        RECYCLER.with(|c| c.borrow_mut().clear());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhotonCluster, PhotonConfig};
    use photon_fabric::NetworkModel;

    #[test]
    fn pool_reuses_and_zeroes() {
        let c = PhotonCluster::new(1, NetworkModel::ib_fdr(), PhotonConfig::default());
        let pool = BufferPool::new(c.rank(0).clone());
        let before = c.rank(0).now();
        let a = pool.take(64).unwrap();
        a.write_u64(0, 7);
        let a_key = a.descriptor();
        pool.give(a);
        let after_first = c.rank(0).now();
        assert!(after_first > before, "first take pays registration");
        let b = pool.take(64).unwrap();
        assert_eq!(b.descriptor().rkey, a_key.rkey, "same region reused");
        assert_eq!(b.read_u64(0), 0, "reused buffer is zeroed");
        assert_eq!(c.rank(0).now(), after_first, "hit is free in virtual time");
        assert_eq!(pool.stats(), (1, 1));
        pool.give(b);
    }

    #[test]
    fn different_sizes_do_not_mix() {
        let c = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
        let pool = BufferPool::new(c.rank(0).clone());
        let a = pool.take(32).unwrap();
        pool.give(a);
        let b = pool.take(64).unwrap();
        assert_eq!(b.len(), 64);
        assert_eq!(pool.stats(), (0, 2));
    }

    #[test]
    fn size_class_serves_near_sizes() {
        let c = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
        let pool = BufferPool::new(c.rank(0).clone());
        let a = pool.take(1024).unwrap();
        pool.give(a);
        // 1023 rounds up to the 1024 class: the pooled buffer is reused.
        let b = pool.take(1023).unwrap();
        assert_eq!(b.len(), 1024, "class-size buffer serves the request");
        assert_eq!(pool.stats(), (1, 1));
        // Odd sizes round up on registration too, so they re-pool cleanly.
        let d = pool.take(700).unwrap();
        assert_eq!(d.len(), 1024);
        pool.give(d);
        let e = pool.take(513).unwrap();
        assert_eq!(pool.stats(), (2, 2));
        pool.give(e);
        pool.give(b);
    }

    #[test]
    fn foreign_odd_buffer_backs_smaller_class_only() {
        let c = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
        let p = c.rank(0);
        let pool = BufferPool::new(p.clone());
        // A 1000-byte buffer registered outside the pool can only fully
        // back 512-byte-class requests.
        let odd = p.register_buffer(1000).unwrap();
        pool.give(odd);
        let b = pool.take(600).unwrap();
        assert!(b.len() >= 600, "freshly registered, not the short pooled one");
        assert_eq!(pool.stats(), (0, 1));
        let s = pool.take(512).unwrap();
        assert_eq!(s.len(), 1000, "pooled odd buffer serves its class");
        assert_eq!(pool.stats(), (1, 1));
        pool.give(s);
        pool.give(b);
    }

    #[test]
    fn capacity_cap_deregisters_overflow() {
        let c = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
        let p = c.rank(0);
        let pool = BufferPool::with_capacity(p.clone(), 1024);
        let before = p.nic().mrs().registered_bytes();
        let a = pool.take(1024).unwrap();
        let b = pool.take(1024).unwrap();
        assert_eq!(p.nic().mrs().registered_bytes(), before + 2048);
        pool.give(a); // fits the cap: retained
        assert_eq!(pool.pooled_bytes(), 1024);
        pool.give(b); // would exceed the cap: deregistered
        assert_eq!(pool.pooled_bytes(), 1024);
        assert_eq!(p.nic().mrs().registered_bytes(), before + 1024);
    }

    #[test]
    fn recycler_reuses_capacity_per_class() {
        Recycler::clear();
        let mut a = Recycler::take(100);
        assert!(a.capacity() >= 128, "rounded up to the class size");
        a.extend_from_slice(&[7u8; 100]);
        let ptr = a.as_ptr();
        Recycler::give(a);
        assert_eq!(Recycler::cached(), 1);
        let b = Recycler::take(128);
        assert_eq!(b.as_ptr(), ptr, "same allocation reused");
        assert!(b.is_empty(), "handed out cleared");
        assert_eq!(Recycler::cached(), 0);
        Recycler::give(b);
        Recycler::clear();
    }

    #[test]
    fn recycler_caps_retention_per_class() {
        Recycler::clear();
        for _ in 0..(RECYCLER_PER_CLASS + 5) {
            Recycler::give(Vec::with_capacity(64));
        }
        assert_eq!(Recycler::cached(), RECYCLER_PER_CLASS, "overflow dropped");
        // Zero-capacity and oversized vectors are never cached.
        Recycler::give(Vec::new());
        Recycler::give(Vec::with_capacity(RECYCLER_MAX_CLASS * 2));
        assert_eq!(Recycler::cached(), RECYCLER_PER_CLASS);
        Recycler::clear();
        assert_eq!(Recycler::cached(), 0);
    }

    #[test]
    fn drain_releases_pinning() {
        let c = PhotonCluster::new(1, NetworkModel::ideal(), PhotonConfig::default());
        let p = c.rank(0);
        let pool = BufferPool::new(p.clone());
        let before = p.nic().mrs().registered_bytes();
        let a = pool.take(4096).unwrap();
        pool.give(a);
        assert_eq!(p.nic().mrs().registered_bytes(), before + 4096);
        pool.drain().unwrap();
        assert_eq!(p.nic().mrs().registered_bytes(), before);
        assert_eq!(pool.pooled_bytes(), 0);
    }
}
