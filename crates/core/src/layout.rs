//! Region layout helpers for fixed-slot data planes.
//!
//! Data-structure layers (the DHT buckets and queue rings in `photon-ds`)
//! carve a registered region into fixed-size slots whose fields are
//! accessed remotely — seqlock words via remote atomics, payloads via
//! one-sided put/get. Remote atomics require 8-byte-aligned u64 targets,
//! so every field offset and every slot stride must stay 8-aligned. These
//! helpers centralize that arithmetic (with overflow checking, since slot
//! counts come from configuration) instead of scattering `(x + 7) & !7`
//! across call sites.

use crate::{PhotonError, Result};

/// Round `n` up to the next multiple of 8 (the alignment remote u64
/// atomics require).
pub fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Sequential field allocator for one slot's interior: each [`Layout::field`]
/// call reserves an 8-aligned run of bytes and returns its offset from the
/// slot base.
///
/// ```
/// use photon_core::layout::Layout;
/// let mut l = Layout::new();
/// let version = l.field(8);
/// let hdr = l.field(12); // padded to 16
/// let payload = l.field(32);
/// assert_eq!((version, hdr, payload), (0, 8, 24));
/// assert_eq!(l.size(), 56);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Layout {
    off: usize,
}

impl Layout {
    /// An empty layout (next field at offset 0).
    pub fn new() -> Layout {
        Layout::default()
    }

    /// Reserve `len` bytes (padded to 8), returning the field's offset.
    pub fn field(&mut self, len: usize) -> usize {
        let at = self.off;
        self.off += align8(len);
        at
    }

    /// Total bytes reserved so far (always 8-aligned).
    pub fn size(&self) -> usize {
        self.off
    }
}

/// A region carved into `count` slots of `slot_bytes` each (8-aligned
/// stride), with checked offset arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRegion {
    slot_bytes: usize,
    count: usize,
    total: usize,
}

impl SlotRegion {
    /// Lay out `count` slots of `slot_bytes` (rounded up to 8). Fails with
    /// [`PhotonError::Config`] when the total size overflows `usize` or
    /// either dimension is zero.
    pub fn new(slot_bytes: usize, count: usize) -> Result<SlotRegion> {
        if slot_bytes == 0 || count == 0 {
            return Err(PhotonError::Config(format!(
                "slot region needs non-zero dimensions (slot_bytes={slot_bytes}, count={count})"
            )));
        }
        let stride = align8(slot_bytes);
        let total = stride.checked_mul(count).ok_or_else(|| {
            PhotonError::Config(format!("slot region overflows: {stride} bytes x {count} slots"))
        })?;
        Ok(SlotRegion { slot_bytes: stride, count, total })
    }

    /// The 8-aligned per-slot stride.
    pub fn slot_bytes(&self) -> usize {
        self.slot_bytes
    }

    /// Number of slots.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Bytes the backing region must provide.
    pub fn total_bytes(&self) -> usize {
        self.total
    }

    /// Byte offset of slot `i` (panics on out-of-range, like slice
    /// indexing — slot indices are internal, not wire input).
    pub fn offset(&self, i: usize) -> usize {
        assert!(i < self.count, "slot {i} out of {} slots", self.count);
        i * self.slot_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align8_rounds_up() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
        assert_eq!(align8(4096), 4096);
    }

    #[test]
    fn layout_allocates_aligned_fields() {
        let mut l = Layout::new();
        assert_eq!(l.field(8), 0);
        assert_eq!(l.field(1), 8); // padded to 8
        assert_eq!(l.field(17), 16); // padded to 24
        assert_eq!(l.size(), 40);
    }

    #[test]
    fn slot_region_strides_and_bounds() {
        let r = SlotRegion::new(20, 4).unwrap();
        assert_eq!(r.slot_bytes(), 24);
        assert_eq!(r.count(), 4);
        assert_eq!(r.total_bytes(), 96);
        assert_eq!(r.offset(0), 0);
        assert_eq!(r.offset(3), 72);
    }

    #[test]
    fn slot_region_rejects_degenerate_and_overflowing_shapes() {
        assert!(matches!(SlotRegion::new(0, 4), Err(PhotonError::Config(_))));
        assert!(matches!(SlotRegion::new(8, 0), Err(PhotonError::Config(_))));
        assert!(matches!(SlotRegion::new(usize::MAX / 2, 3), Err(PhotonError::Config(_))));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn slot_region_offset_panics_past_the_end() {
        let r = SlotRegion::new(8, 2).unwrap();
        let _ = r.offset(2);
    }
}
