//! The sharded completion engine: lock-striped bookkeeping for the hot
//! post → CQE → probe path.
//!
//! The original engine funneled every post and every completion through
//! three global mutexes (a `HashMap<wr_id, rid>` of in-flight work, plus one
//! `VecDeque` per event class), and looked events up by rid with a linear
//! scan *per blocking spin*. This module replaces all three:
//!
//! * [`WrTable`] — a sharded slab with generation tags. Posting is a
//!   free-list pop under one shard lock; harvesting a CQE is an index load
//!   plus generation check. The slot/generation/shard triple *is* the
//!   `wr_id`, so no hash is ever computed.
//! * [`LocalQueue`] — local completion events in rid-sharded slabs. Each
//!   shard keeps an intrusive doubly-linked FIFO (for ordered `pop_front`)
//!   plus a per-rid index (for O(1) `take_rid`, the `wait_local` /
//!   `test_local` fast path). A round-robin cursor makes cross-shard
//!   draining fair.
//! * [`RemoteQueue`] — remote completion events in per-peer FIFOs with a
//!   round-robin drain cursor. Per-peer order (the wire guarantee) is
//!   preserved exactly; cross-peer draining is fair instead of
//!   arrival-ordered, so one chatty peer cannot starve the rest. `pop_from`
//!   (the `photon_wait_recv_request(proc)` analogue) is O(1) instead of a
//!   scan.
//!
//! All three keep an atomic element count so the observer hooks
//! (`in_flight`, `queued_events`) and empty-queue probes are O(1) and
//! lock-free. Shard counts are compile-time powers of two; see DESIGN.md
//! ("Sharded completion engine") for the sizing rationale.

use crate::probe::RemoteEvent;
use crate::Rank;
use parking_lot::{Mutex, RwLock};
use photon_fabric::{VTime, WcStatus};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shards in the work-request table. Posts pick shards round-robin, so this
/// bounds post-side lock contention at ~`threads / WR_SHARDS`.
pub(crate) const WR_SHARDS: usize = 16;
const WR_SHARD_BITS: u32 = WR_SHARDS.trailing_zeros();
/// Slot index width inside a `wr_id` (per-shard capacity 2^28 live wrs).
const WR_SLOT_BITS: u32 = 28;

/// Shards in the local event queue; rids hash across them.
pub(crate) const LOCAL_SHARDS: usize = 8;

/// Null link in the intrusive lists.
const NIL: u32 = u32::MAX;

// ------------------------------------------------------------------ WrTable

#[derive(Debug, Clone, Copy)]
struct WrSlot {
    gen: u32,
    rid: u64,
    /// Destination rank of the work request, so peer eviction
    /// ([`WrTable::drain_peer`]) can find every wr bound for a dead peer.
    peer: Rank,
    live: bool,
}

#[derive(Debug, Default)]
struct WrShard {
    slots: Vec<WrSlot>,
    free: Vec<u32>,
}

/// Sharded slab of in-flight work requests: `wr_id` → local rid.
///
/// `wr_id` layout: `gen:32 | slot:28 | shard:4`. Generations start at 1 and
/// skip 0 on wrap, so a generated `wr_id` is never 0 — the id unsignaled
/// work requests carry — and a stale CQE for a recycled slot can never
/// match.
#[derive(Debug)]
pub(crate) struct WrTable {
    shards: Vec<Mutex<WrShard>>,
    cursor: AtomicUsize,
    count: AtomicUsize,
}

impl WrTable {
    pub(crate) fn new() -> WrTable {
        WrTable {
            shards: (0..WR_SHARDS).map(|_| Mutex::new(WrShard::default())).collect(),
            cursor: AtomicUsize::new(0),
            count: AtomicUsize::new(0),
        }
    }

    /// Register an in-flight work request carrying `rid`, bound for `peer`;
    /// returns its `wr_id`.
    pub(crate) fn insert(&self, rid: u64, peer: Rank) -> u64 {
        let si = self.cursor.fetch_add(1, Ordering::Relaxed) & (WR_SHARDS - 1);
        let mut shard = self.shards[si].lock();
        let slot = match shard.free.pop() {
            Some(s) => s,
            None => {
                let s = shard.slots.len() as u32;
                assert!(s < (1 << WR_SLOT_BITS), "wr table shard overflow");
                shard.slots.push(WrSlot { gen: 0, rid: 0, peer: 0, live: false });
                s
            }
        };
        let e = &mut shard.slots[slot as usize];
        e.gen = e.gen.wrapping_add(1);
        if e.gen == 0 {
            e.gen = 1;
        }
        e.rid = rid;
        e.peer = peer;
        e.live = true;
        self.count.fetch_add(1, Ordering::Relaxed);
        ((e.gen as u64) << 32) | ((slot as u64) << WR_SHARD_BITS) | si as u64
    }

    /// Evict every in-flight work request bound for `peer`, returning
    /// `(wr_id, rid)` pairs (with multiplicity). The slots are freed: a
    /// late CQE for a drained wr misses the generation check and is
    /// harmlessly dropped, so an eviction plus a straggling flush can never
    /// double-complete a rid.
    pub(crate) fn drain_peer(&self, peer: Rank) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock();
            for slot in 0..shard.slots.len() {
                let e = &mut shard.slots[slot];
                if e.live && e.peer == peer {
                    e.live = false;
                    let wr_id =
                        ((e.gen as u64) << 32) | ((slot as u64) << WR_SHARD_BITS) | si as u64;
                    out.push((wr_id, e.rid));
                    shard.free.push(slot as u32);
                }
            }
        }
        self.count.fetch_sub(out.len(), Ordering::Relaxed);
        out
    }

    /// Retire `wr_id`, returning its `(rid, peer)`. `None` for ids this
    /// table never issued (unsignaled wrs, stale generations) or
    /// already-retired ones.
    pub(crate) fn remove(&self, wr_id: u64) -> Option<(u64, Rank)> {
        let gen = (wr_id >> 32) as u32;
        if gen == 0 {
            return None;
        }
        let si = (wr_id as usize) & (WR_SHARDS - 1);
        let slot = ((wr_id >> WR_SHARD_BITS) & ((1u64 << WR_SLOT_BITS) - 1)) as usize;
        let mut shard = self.shards[si].lock();
        let e = shard.slots.get_mut(slot)?;
        if !e.live || e.gen != gen {
            return None;
        }
        e.live = false;
        let rid = e.rid;
        let peer = e.peer;
        shard.free.push(slot as u32);
        drop(shard);
        self.count.fetch_sub(1, Ordering::Relaxed);
        Some((rid, peer))
    }

    /// Number of in-flight work requests.
    pub(crate) fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot of the rids currently in flight, with multiplicity — the
    /// ownership set a `flush_local` is allowed to consume.
    pub(crate) fn pending_rids(&self) -> HashMap<u64, usize> {
        let mut out = HashMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for e in &shard.slots {
                if e.live {
                    *out.entry(e.rid).or_insert(0) += 1;
                }
            }
        }
        out
    }

    /// Snapshot of the `wr_id`s currently in flight — the completion set a
    /// `flush_local` waits on (a wr leaves the table when its CQE is
    /// harvested, regardless of who later consumes the event).
    pub(crate) fn pending_wrs(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock();
            for (slot, e) in shard.slots.iter().enumerate() {
                if e.live {
                    out.push(((e.gen as u64) << 32) | ((slot as u64) << WR_SHARD_BITS) | si as u64);
                }
            }
        }
        out
    }

    /// Does any in-flight work request target `peer`? Used by the
    /// connection cache's eviction policy to prefer idle victims. O(total
    /// slots) scan, but only runs when the cache is over capacity.
    pub(crate) fn has_peer(&self, peer: Rank) -> bool {
        if self.count.load(Ordering::Relaxed) == 0 {
            return false;
        }
        for shard in &self.shards {
            let shard = shard.lock();
            if shard.slots.iter().any(|e| e.live && e.peer == peer) {
                return true;
            }
        }
        false
    }

    /// Is `wr_id` still in flight? O(1): shard + slot decode, generation
    /// compare.
    pub(crate) fn contains(&self, wr_id: u64) -> bool {
        let gen = (wr_id >> 32) as u32;
        if gen == 0 {
            return false;
        }
        let si = (wr_id as usize) & (WR_SHARDS - 1);
        let slot = ((wr_id >> WR_SHARD_BITS) & ((1u64 << WR_SLOT_BITS) - 1)) as usize;
        let shard = self.shards[si].lock();
        shard.slots.get(slot).is_some_and(|e| e.live && e.gen == gen)
    }
}

// --------------------------------------------------------------- LocalQueue

#[derive(Debug, Clone, Copy)]
struct LocalNode {
    rid: u64,
    /// Destination rank of the completed operation, carried through so the
    /// consolidated `Completion` view can surface it.
    peer: Rank,
    ts: VTime,
    status: WcStatus,
    prev: u32,
    next: u32,
}

/// Trivial hasher for u64 rid keys: one Fibonacci multiply + xor-fold.
/// SipHash (the `HashMap` default) costs more than the rest of a push/take
/// combined on the drain hot path, and rids need no DoS hardening — they
/// are caller-chosen request ids, not attacker-controlled input.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RidHasher(u64);

impl std::hash::Hasher for RidHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Cold fallback for non-u64 keys (unused today).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RidBuildHasher;

impl std::hash::BuildHasher for RidBuildHasher {
    type Hasher = RidHasher;

    #[inline]
    fn build_hasher(&self) -> RidHasher {
        RidHasher(0)
    }
}

/// A `u64`-keyed map using the cheap rid hasher; shared with the engine's
/// other rid- and wr_id-keyed side tables (e.g. the doorbell-batch rid
/// lists), which sit on the same harvest hot path.
pub(crate) type RidMap<V> = HashMap<u64, V, RidBuildHasher>;

/// Per-rid slot index. Rids are almost always unique among queued events,
/// so the common case is a bare slot number — no allocation per event.
#[derive(Debug)]
enum RidIndex {
    /// Exactly one queued event carries this rid.
    One(u32),
    /// Duplicate rids in flight, oldest first.
    Many(VecDeque<u32>),
}

/// Outcome of a claims-respecting take (see [`LocalQueue::take_rid_unclaimed`]).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TakeOutcome {
    /// An event was consumed.
    Taken(VTime, WcStatus),
    /// The rid is claimed by a `wait_local` waiter; not touched.
    Claimed,
    /// No event with this rid is queued.
    Empty,
}

#[derive(Debug, Default)]
struct LocalShard {
    nodes: Vec<LocalNode>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    /// rid → slot(s) holding it (rids may legally repeat).
    by_rid: RidMap<RidIndex>,
    /// rid → number of `wait_local` waiters currently claiming it. Kept in
    /// the shard so claim/take share one striped lock instead of adding a
    /// global mutex to the wait hot path.
    claims: RidMap<usize>,
}

impl LocalShard {
    fn new() -> LocalShard {
        LocalShard { head: NIL, tail: NIL, ..LocalShard::default() }
    }

    fn unlink(&mut self, slot: u32) -> (u64, Rank, VTime, WcStatus) {
        let (rid, peer, ts, status, prev, next) = {
            let n = &self.nodes[slot as usize];
            (n.rid, n.peer, n.ts, n.status, n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            x => self.nodes[x as usize].prev = prev,
        }
        self.free.push(slot);
        (rid, peer, ts, status)
    }

    fn index_push(&mut self, rid: u64, slot: u32) {
        match self.by_rid.entry(rid) {
            Entry::Vacant(v) => {
                v.insert(RidIndex::One(slot));
            }
            Entry::Occupied(mut o) => {
                let was_one = match o.get_mut() {
                    RidIndex::Many(q) => {
                        q.push_back(slot);
                        None
                    }
                    RidIndex::One(first) => Some(*first),
                };
                if let Some(first) = was_one {
                    o.insert(RidIndex::Many(VecDeque::from([first, slot])));
                }
            }
        }
    }

    /// Append one event at the FIFO tail (caller holds the shard lock).
    fn push_node(&mut self, rid: u64, peer: Rank, ts: VTime, status: WcStatus) {
        let node = LocalNode { rid, peer, ts, status, prev: self.tail, next: NIL };
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize] = node;
                s
            }
            None => {
                let s = self.nodes.len() as u32;
                assert!(s < NIL, "local event queue shard overflow");
                self.nodes.push(node);
                s
            }
        };
        match self.tail {
            NIL => self.head = slot,
            t => self.nodes[t as usize].next = slot,
        }
        self.tail = slot;
        self.index_push(rid, slot);
    }

    /// Remove and return the oldest indexed slot for `rid`.
    fn index_take(&mut self, rid: u64) -> Option<u32> {
        let Entry::Occupied(mut o) = self.by_rid.entry(rid) else {
            return None;
        };
        let (slot, now_empty) = match o.get_mut() {
            RidIndex::One(s) => (*s, true),
            RidIndex::Many(q) => {
                let s = q.pop_front().expect("rid index never holds empty queues");
                (s, q.is_empty())
            }
        };
        if now_empty {
            o.remove();
        }
        Some(slot)
    }
}

/// Local completion events, sharded by rid hash.
///
/// `push`/`take_rid` touch exactly one shard lock and are O(1);
/// `pop_front` drains shards round-robin from a shared cursor, which keeps
/// mixed `probe(Local)` + `wait_local(rid)` workloads fair and is FIFO
/// within each shard.
#[derive(Debug)]
pub(crate) struct LocalQueue {
    shards: Vec<Mutex<LocalShard>>,
    cursor: AtomicUsize,
    /// Pop counter driving the periodic cursor rotation (see `pop_front`).
    ticks: AtomicUsize,
    count: AtomicUsize,
}

#[inline]
fn rid_shard(rid: u64) -> usize {
    // Fibonacci multiply-shift: adjacent rids (the common pattern) spread
    // across shards instead of clustering.
    (rid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (LOCAL_SHARDS - 1)
}

impl LocalQueue {
    pub(crate) fn new() -> LocalQueue {
        LocalQueue {
            shards: (0..LOCAL_SHARDS).map(|_| Mutex::new(LocalShard::new())).collect(),
            cursor: AtomicUsize::new(0),
            ticks: AtomicUsize::new(0),
            count: AtomicUsize::new(0),
        }
    }

    pub(crate) fn push(&self, rid: u64, peer: Rank, ts: VTime, status: WcStatus) {
        self.shards[rid_shard(rid)].lock().push_node(rid, peer, ts, status);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Push a run of rids sharing one (peer, ts, status) — the shape a
    /// doorbell batch retires in. Groups rids by shard so each touched
    /// shard lock is taken once instead of once per event; FIFO order
    /// within a shard matches the slice order, which is all `pop_front`
    /// guarantees across shards anyway.
    pub(crate) fn push_many(&self, rids: &[u64], peer: Rank, ts: VTime, status: WcStatus) {
        for si in 0..LOCAL_SHARDS {
            let mut shard = None;
            for &rid in rids.iter().filter(|&&r| rid_shard(r) == si) {
                shard
                    .get_or_insert_with(|| self.shards[si].lock())
                    .push_node(rid, peer, ts, status);
            }
        }
        self.count.fetch_add(rids.len(), Ordering::Relaxed);
    }

    /// Pop the oldest event of some shard. The drain cursor is *sticky with
    /// periodic rotation*: consecutive pops keep draining the same shard
    /// (one warm lock + node slab instead of touching all eight in turn),
    /// and every 32nd pop forces the start shard forward so a continuously
    /// refilled shard cannot starve the others.
    pub(crate) fn pop_front(&self) -> Option<(u64, Rank, VTime, WcStatus)> {
        if self.count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        let start = if tick & 31 == 0 {
            self.cursor.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.cursor.load(Ordering::Relaxed)
        };
        for k in 0..LOCAL_SHARDS {
            let si = (start + k) & (LOCAL_SHARDS - 1);
            let mut shard = self.shards[si].lock();
            let slot = shard.head;
            if slot == NIL {
                continue;
            }
            let (rid, peer, ts, status) = shard.unlink(slot);
            let front = shard.index_take(rid);
            debug_assert_eq!(front, Some(slot), "per-rid index tracks shard FIFO");
            drop(shard);
            if k != 0 {
                // Stick to the shard that had events.
                self.cursor.store(si, Ordering::Relaxed);
            }
            self.count.fetch_sub(1, Ordering::Relaxed);
            return Some((rid, peer, ts, status));
        }
        None
    }

    /// Drain up to `max` events, invoking `f` on each while the shard lock
    /// is held (so `f` must not call back into this queue). Same rotation
    /// policy as [`LocalQueue::pop_front`], but a full run off one shard
    /// costs a single lock acquisition and one `count` update — the shape
    /// `poll_completions` wants when a doorbell batch just landed. Returns
    /// how many events were delivered.
    pub(crate) fn pop_front_batch(
        &self,
        max: usize,
        mut f: impl FnMut(u64, Rank, VTime, WcStatus),
    ) -> usize {
        if max == 0 || self.count.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        let start = if tick & 31 == 0 {
            self.cursor.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.cursor.load(Ordering::Relaxed)
        };
        let mut got = 0usize;
        for k in 0..LOCAL_SHARDS {
            if got == max {
                break;
            }
            let si = (start + k) & (LOCAL_SHARDS - 1);
            let mut shard = self.shards[si].lock();
            let before = got;
            while got < max {
                let slot = shard.head;
                if slot == NIL {
                    break;
                }
                let (rid, peer, ts, status) = shard.unlink(slot);
                let front = shard.index_take(rid);
                debug_assert_eq!(front, Some(slot), "per-rid index tracks shard FIFO");
                got += 1;
                f(rid, peer, ts, status);
            }
            if got > before && k != 0 {
                // Stick to the shard that had events.
                self.cursor.store(si, Ordering::Relaxed);
            }
        }
        if got > 0 {
            self.count.fetch_sub(got, Ordering::Relaxed);
        }
        got
    }

    /// Consume the oldest queued event carrying `rid`, if any. O(1).
    pub(crate) fn take_rid(&self, rid: u64) -> Option<(VTime, WcStatus)> {
        if self.count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut shard = self.shards[rid_shard(rid)].lock();
        let slot = shard.index_take(rid)?;
        let (_, _, ts, status) = shard.unlink(slot);
        drop(shard);
        self.count.fetch_sub(1, Ordering::Relaxed);
        Some((ts, status))
    }

    /// Declare a `wait_local(rid)` in progress: `flush_local` must leave
    /// this rid's events to the waiter. Claims nest (two waiters on the same
    /// rid hold two claims).
    pub(crate) fn claim(&self, rid: u64) {
        let mut shard = self.shards[rid_shard(rid)].lock();
        *shard.claims.entry(rid).or_insert(0) += 1;
    }

    /// Release one claim on `rid` (the waiter got its event or gave up).
    pub(crate) fn unclaim(&self, rid: u64) {
        let mut shard = self.shards[rid_shard(rid)].lock();
        if let Entry::Occupied(mut o) = shard.claims.entry(rid) {
            *o.get_mut() -= 1;
            if *o.get() == 0 {
                o.remove();
            }
        } else {
            debug_assert!(false, "unclaim without matching claim");
        }
    }

    /// `take_rid`, unless a waiter has claimed `rid`. The claim check and
    /// the take happen under the same shard lock, so a flush can never steal
    /// an event from a waiter that claimed first.
    pub(crate) fn take_rid_unclaimed(&self, rid: u64) -> TakeOutcome {
        let mut shard = self.shards[rid_shard(rid)].lock();
        if shard.claims.contains_key(&rid) {
            return TakeOutcome::Claimed;
        }
        let Some(slot) = shard.index_take(rid) else {
            return TakeOutcome::Empty;
        };
        let (_, _, ts, status) = shard.unlink(slot);
        drop(shard);
        self.count.fetch_sub(1, Ordering::Relaxed);
        TakeOutcome::Taken(ts, status)
    }

    pub(crate) fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

// -------------------------------------------------------------- RemoteQueue

/// Remote completion events, one FIFO per source peer with a fair
/// round-robin drain cursor.
///
/// Peer FIFOs are allocated *lazily*, on the first event a peer ever
/// delivers: the queue holds a sorted `(rank, FIFO)` vector instead of an
/// O(N) dense array, so a rank's footprint scales with the peers it has
/// actually heard from, not the cluster size. The sorted order also keeps
/// `pop_any`'s rotation deterministic in single-threaded simulations.
type PeerFifo = Arc<Mutex<VecDeque<RemoteEvent>>>;

#[derive(Debug)]
pub(crate) struct RemoteQueue {
    slots: RwLock<Vec<(Rank, PeerFifo)>>,
    cursor: AtomicUsize,
    count: AtomicUsize,
}

impl RemoteQueue {
    pub(crate) fn new() -> RemoteQueue {
        RemoteQueue {
            slots: RwLock::new(Vec::new()),
            cursor: AtomicUsize::new(0),
            count: AtomicUsize::new(0),
        }
    }

    /// `src`'s FIFO, allocating it on first contact.
    fn fifo(&self, src: Rank) -> PeerFifo {
        {
            let slots = self.slots.read();
            if let Ok(i) = slots.binary_search_by_key(&src, |s| s.0) {
                return slots[i].1.clone();
            }
        }
        let mut slots = self.slots.write();
        match slots.binary_search_by_key(&src, |s| s.0) {
            Ok(i) => slots[i].1.clone(),
            Err(i) => {
                let q = Arc::new(Mutex::new(VecDeque::new()));
                slots.insert(i, (src, q.clone()));
                q
            }
        }
    }

    pub(crate) fn push(&self, ev: RemoteEvent) {
        self.fifo(ev.src).lock().push_back(ev);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Append a drained run of events — all from `src` — under a single
    /// peer-lock acquisition, emptying `buf` (its capacity stays with the
    /// caller's scratch). FIFO order within the run is preserved.
    pub(crate) fn push_drain(&self, src: Rank, buf: &mut Vec<RemoteEvent>) {
        let n = buf.len();
        if n == 0 {
            return;
        }
        debug_assert!(buf.iter().all(|ev| ev.src == src), "push_drain runs share one source");
        self.fifo(src).lock().extend(buf.drain(..));
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Pop the next event, rotating the starting peer so no single producer
    /// monopolizes the probe stream.
    pub(crate) fn pop_any(&self) -> Option<RemoteEvent> {
        if self.count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let slots = self.slots.read();
        let n = slots.len();
        if n == 0 {
            return None;
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            if let Some(ev) = slots[(start + k) % n].1.lock().pop_front() {
                self.count.fetch_sub(1, Ordering::Relaxed);
                return Some(ev);
            }
        }
        None
    }

    /// Pop the next event from `src` only. O(log peers-heard-from): no scan
    /// past other peers' traffic, and no FIFO allocated just to find it
    /// empty.
    pub(crate) fn pop_from(&self, src: Rank) -> Option<RemoteEvent> {
        let q = {
            let slots = self.slots.read();
            let i = slots.binary_search_by_key(&src, |s| s.0).ok()?;
            slots[i].1.clone()
        };
        let ev = q.lock().pop_front()?;
        self.count.fetch_sub(1, Ordering::Relaxed);
        Some(ev)
    }

    pub(crate) fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// How many peer FIFOs have been allocated — the memory-bound tests'
    /// witness that construction is lazy.
    pub(crate) fn peers_allocated(&self) -> usize {
        self.slots.read().len()
    }

    /// Approximate heap footprint of the queue's per-peer structures.
    pub(crate) fn state_bytes(&self) -> usize {
        let slots = self.slots.read();
        slots.len()
            * (std::mem::size_of::<(Rank, PeerFifo)>()
                + std::mem::size_of::<Mutex<VecDeque<RemoteEvent>>>())
            + slots
                .iter()
                .map(|s| s.1.lock().capacity() * std::mem::size_of::<RemoteEvent>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wr_table_roundtrip_and_stale_ids() {
        let t = WrTable::new();
        let a = t.insert(100, 1);
        let b = t.insert(200, 1);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(a), Some((100, 1)));
        assert_eq!(t.remove(a), None, "double retire must miss");
        assert_eq!(t.remove(0), None, "unsignaled wr_id 0 never matches");
        assert_eq!(t.remove(b), Some((200, 1)));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn wr_table_generation_guards_recycled_slots() {
        let t = WrTable::new();
        // Drain shards until a slot is provably recycled.
        let ids: Vec<u64> = (0..64).map(|i| t.insert(i, 0)).collect();
        for id in &ids {
            t.remove(*id).unwrap();
        }
        let fresh = t.insert(999, 0);
        for id in &ids {
            assert_eq!(t.remove(*id), None, "stale id must not hit the recycled slot");
        }
        assert_eq!(t.remove(fresh), Some((999, 0)));
    }

    #[test]
    fn wr_table_pending_snapshot_counts_duplicates() {
        let t = WrTable::new();
        t.insert(5, 2);
        t.insert(5, 2);
        let keep = t.insert(7, 3);
        let m = t.pending_rids();
        assert_eq!(m.get(&5), Some(&2));
        assert_eq!(m.get(&7), Some(&1));
        t.remove(keep);
        assert_eq!(t.pending_rids().get(&7), None);
    }

    #[test]
    fn wr_table_drain_peer_evicts_only_that_peer() {
        let t = WrTable::new();
        let keep = t.insert(10, 0);
        let doomed_a = t.insert(20, 1);
        t.insert(20, 1); // duplicate rid toward the dead peer
        t.insert(30, 1);
        let mut rids: Vec<u64> = t.drain_peer(1).into_iter().map(|(_, rid)| rid).collect();
        rids.sort_unstable();
        assert_eq!(rids, vec![20, 20, 30]);
        assert_eq!(t.len(), 1, "other peers' wrs survive");
        assert_eq!(t.remove(doomed_a), None, "drained slots reject late CQEs");
        assert_eq!(t.remove(keep), Some((10, 0)));
        assert!(t.drain_peer(1).is_empty(), "drain is idempotent");
        let again = t.insert(40, 1);
        assert_eq!(t.drain_peer(1), vec![(again, 40)], "drained pairs carry live wr_ids");
    }

    const OK: WcStatus = WcStatus::Success;

    #[test]
    fn local_queue_take_rid_is_order_independent() {
        let q = LocalQueue::new();
        for rid in 0..100u64 {
            q.push(rid, 1, VTime(rid + 1), OK);
        }
        assert_eq!(q.len(), 100);
        // Worst case for a scan: consume in reverse arrival order.
        for rid in (0..100u64).rev() {
            assert_eq!(q.take_rid(rid), Some((VTime(rid + 1), OK)));
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.take_rid(5), None);
    }

    #[test]
    fn local_queue_duplicate_rids_fifo() {
        let q = LocalQueue::new();
        q.push(9, 1, VTime(1), OK);
        q.push(9, 2, VTime(2), WcStatus::FlushErr);
        assert_eq!(q.take_rid(9), Some((VTime(1), OK)), "oldest instance first");
        assert_eq!(q.take_rid(9), Some((VTime(2), WcStatus::FlushErr)), "status rides along");
        assert_eq!(q.take_rid(9), None);
    }

    #[test]
    fn local_queue_pop_front_drains_everything() {
        let q = LocalQueue::new();
        for rid in 0..50u64 {
            q.push(rid, 0, VTime(rid), OK);
        }
        let mut seen: Vec<u64> =
            std::iter::from_fn(|| q.pop_front()).map(|(r, _, _, _)| r).collect();
        assert_eq!(q.pop_front(), None);
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn local_queue_mixed_pop_and_take() {
        let q = LocalQueue::new();
        for rid in 0..20u64 {
            q.push(rid, 0, VTime(rid), OK);
        }
        // Interleave targeted takes with FIFO pops; nothing lost or doubled.
        let mut got = Vec::new();
        for rid in (0..20u64).step_by(2) {
            got.push(q.take_rid(rid).map(|_| rid).expect("even rid present"));
        }
        while let Some((rid, _, _, _)) = q.pop_front() {
            got.push(rid);
        }
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn claims_shield_rids_from_unclaimed_takes() {
        let q = LocalQueue::new();
        q.push(7, 3, VTime(1), OK);
        q.claim(7);
        assert_eq!(q.take_rid_unclaimed(7), TakeOutcome::Claimed);
        assert_eq!(q.take_rid_unclaimed(8), TakeOutcome::Empty);
        assert_eq!(q.take_rid(7), Some((VTime(1), OK)), "the claiming waiter itself still takes");
        q.unclaim(7);
        q.push(7, 3, VTime(2), OK);
        assert_eq!(q.take_rid_unclaimed(7), TakeOutcome::Taken(VTime(2), OK));
        assert_eq!(q.len(), 0);
    }

    fn rev(src: Rank, rid: u64) -> RemoteEvent {
        RemoteEvent { src, rid, size: 0, payload: None, ts: VTime(rid), status: OK }
    }

    #[test]
    fn remote_queue_per_peer_fifo_and_fair_any() {
        let q = RemoteQueue::new();
        for i in 0..6u64 {
            q.push(rev(1, i));
        }
        q.push(rev(2, 100));
        assert_eq!(q.peers_allocated(), 2, "only contacted peers get a FIFO");
        // Per-peer order always holds…
        assert_eq!(q.pop_from(1).unwrap().rid, 0);
        // …and pop_any must reach peer 2 without draining all of peer 1
        // first.
        let mut until_peer2 = 0;
        loop {
            let ev = q.pop_any().expect("events remain");
            if ev.src == 2 {
                break;
            }
            until_peer2 += 1;
        }
        assert!(until_peer2 < 3, "fair rotation starved peer 2 for {until_peer2} pops");
    }

    #[test]
    fn remote_queue_pop_from_skips_others() {
        let q = RemoteQueue::new();
        q.push(rev(0, 1));
        q.push(rev(3, 2));
        assert_eq!(q.pop_from(3).unwrap().rid, 2);
        assert_eq!(q.pop_from(3), None);
        assert_eq!(q.pop_from(2), None, "unheard-from peer allocates nothing");
        assert_eq!(q.peers_allocated(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_any().unwrap().rid, 1);
    }
}
