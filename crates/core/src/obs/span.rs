//! Op-lifecycle spans.
//!
//! Every tracked rid accumulates a timeline as it moves through the stack:
//!
//! ```text
//! initiator:  post → stage → inject → complete
//! target:              deliver → complete
//! ```
//!
//! * `post`    — the API call entered the data path (caller's virtual clock)
//! * `stage`   — the payload was composed into the staging ring / ledger
//! * `inject`  — the simulated NIC finished injection (the CQE timestamp)
//! * `deliver` — the frame/entry became visible at the target (the delivery
//!   stamp the NIC wrote into the payload)
//! * `complete`— the completion was surfaced to the application (probe/wait)
//!
//! Spans export as Chrome/Perfetto `trace_event` JSON (load the file in
//! <https://ui.perfetto.dev> or `chrome://tracing`) and as a compact text
//! flamegraph that attributes total virtual time per stage per op kind.
//! All timestamps are **virtual** nanoseconds from the deterministic fabric
//! clock, so a span trace of a simtest failure replays byte-identically.

use crate::obs::OpKind;
use crate::Rank;
use parking_lot::Mutex;
use photon_fabric::WcStatus;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which side of the wire a span was recorded on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanDir {
    /// The rank that posted the operation.
    Initiator,
    /// The rank the operation landed on.
    Target,
}

/// One operation's lifecycle timeline. Absent stamps mean the op never
/// reached (or has not yet reached) that stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// Completion identifier the span is keyed by (local rid on the
    /// initiator, the wire rid on the target).
    pub rid: u64,
    /// Peer rank: destination on the initiator side, source on the target.
    pub peer: Rank,
    /// Operation class.
    pub kind: OpKind,
    /// Recording side.
    pub dir: SpanDir,
    /// Payload bytes.
    pub size: usize,
    /// Virtual ns the op entered the data path.
    pub post_ns: Option<u64>,
    /// Virtual ns the payload was staged.
    pub stage_ns: Option<u64>,
    /// Virtual ns the NIC finished injection (CQE timestamp).
    pub inject_ns: Option<u64>,
    /// Virtual ns the op became visible at the target.
    pub deliver_ns: Option<u64>,
    /// Virtual ns the completion was surfaced to the application.
    pub complete_ns: Option<u64>,
    /// Final completion status (`Success` while still in flight).
    pub status: WcStatus,
}

impl OpSpan {
    fn new(rid: u64, peer: Rank, kind: OpKind, dir: SpanDir, size: usize) -> OpSpan {
        OpSpan {
            rid,
            peer,
            kind,
            dir,
            size,
            post_ns: None,
            stage_ns: None,
            inject_ns: None,
            deliver_ns: None,
            complete_ns: None,
            status: WcStatus::Success,
        }
    }

    /// Earliest recorded stamp.
    pub fn begin_ns(&self) -> Option<u64> {
        [self.post_ns, self.stage_ns, self.inject_ns, self.deliver_ns, self.complete_ns]
            .into_iter()
            .flatten()
            .min()
    }

    /// Latest recorded stamp.
    pub fn end_ns(&self) -> Option<u64> {
        [self.post_ns, self.stage_ns, self.inject_ns, self.deliver_ns, self.complete_ns]
            .into_iter()
            .flatten()
            .max()
    }

    /// The recorded `(stage-name, at_ns)` stamps in lifecycle order.
    pub fn stamps(&self) -> Vec<(&'static str, u64)> {
        let all = [
            ("post", self.post_ns),
            ("stage", self.stage_ns),
            ("inject", self.inject_ns),
            ("deliver", self.deliver_ns),
            ("complete", self.complete_ns),
        ];
        all.into_iter().filter_map(|(n, v)| v.map(|v| (n, v))).collect()
    }
}

const SPAN_SHARDS: usize = 8;

/// How many finished spans are retained; beyond this they are counted in
/// `dropped` instead of buffered, so a long bench run cannot grow without
/// bound.
const DONE_CAP: usize = 1 << 16;

#[inline]
fn shard_of(rid: u64) -> usize {
    (rid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (SPAN_SHARDS - 1)
}

/// The per-context span store: open spans sharded by rid, finished spans in
/// a bounded buffer.
#[derive(Debug)]
pub(crate) struct SpanStore {
    open_init: Vec<Mutex<HashMap<u64, OpSpan>>>,
    /// Target-side spans keyed by (source rank, wire rid): rids are only
    /// unique per initiator, so the source disambiguates.
    open_tgt: Vec<Mutex<HashMap<(Rank, u64), OpSpan>>>,
    done: Mutex<Vec<OpSpan>>,
    dropped: AtomicU64,
}

impl SpanStore {
    pub(crate) fn new() -> SpanStore {
        SpanStore {
            open_init: (0..SPAN_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            open_tgt: (0..SPAN_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            done: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn begin_initiator(&self, rid: u64, peer: Rank, kind: OpKind, size: usize, ns: u64) {
        let mut span = OpSpan::new(rid, peer, kind, SpanDir::Initiator, size);
        span.post_ns = Some(ns);
        self.open_init[shard_of(rid)].lock().insert(rid, span);
    }

    pub(crate) fn stamp_stage(&self, rid: u64, ns: u64) {
        if let Some(s) = self.open_init[shard_of(rid)].lock().get_mut(&rid) {
            s.stage_ns.get_or_insert(ns);
        }
    }

    pub(crate) fn stamp_inject(&self, rid: u64, ns: u64) {
        if let Some(s) = self.open_init[shard_of(rid)].lock().get_mut(&rid) {
            s.inject_ns.get_or_insert(ns);
        }
    }

    /// Close an initiator span: stamp completion, move it to the done
    /// buffer, and return a copy (for histogram recording).
    pub(crate) fn finish_initiator(&self, rid: u64, ns: u64, status: WcStatus) -> Option<OpSpan> {
        let mut span = self.open_init[shard_of(rid)].lock().remove(&rid)?;
        span.complete_ns = Some(ns);
        span.status = status;
        self.retire(span);
        Some(span)
    }

    pub(crate) fn begin_target(&self, src: Rank, rid: u64, kind: OpKind, size: usize, ns: u64) {
        let mut span = OpSpan::new(rid, src, kind, SpanDir::Target, size);
        span.deliver_ns = Some(ns);
        self.open_tgt[shard_of(rid)].lock().insert((src, rid), span);
    }

    /// Close a target span; see [`SpanStore::finish_initiator`].
    pub(crate) fn finish_target(
        &self,
        src: Rank,
        rid: u64,
        ns: u64,
        status: WcStatus,
    ) -> Option<OpSpan> {
        let mut span = self.open_tgt[shard_of(rid)].lock().remove(&(src, rid))?;
        span.complete_ns = Some(ns);
        span.status = status;
        self.retire(span);
        Some(span)
    }

    fn retire(&self, span: OpSpan) {
        let mut done = self.done.lock();
        if done.len() < DONE_CAP {
            done.push(span);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Every span recorded so far — finished first, then still-open ones —
    /// sorted by earliest stamp.
    pub(crate) fn collect(&self) -> (Vec<OpSpan>, u64) {
        let mut out = self.done.lock().clone();
        for shard in &self.open_init {
            out.extend(shard.lock().values().copied());
        }
        for shard in &self.open_tgt {
            out.extend(shard.lock().values().copied());
        }
        out.sort_by_key(|s| (s.begin_ns().unwrap_or(0), s.rid));
        (out, self.dropped.load(Ordering::Relaxed))
    }
}

/// One rank's exported span timeline.
#[derive(Debug, Clone)]
pub struct SpanTrace {
    /// The recording rank (becomes the `pid` in Chrome trace output).
    pub rank: Rank,
    /// All recorded spans, earliest first.
    pub spans: Vec<OpSpan>,
    /// Finished spans discarded after the retention cap was hit.
    pub dropped: u64,
}

impl SpanTrace {
    /// Render this rank's spans as a Chrome/Perfetto `trace_event` JSON
    /// document. See [`chrome_trace_json`] to merge several ranks.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(std::slice::from_ref(self))
    }

    /// Render a compact text flamegraph: total virtual time per lifecycle
    /// stage, aggregated per op kind.
    pub fn to_flamegraph(&self) -> String {
        #[derive(Default)]
        struct Agg {
            count: u64,
            total_ns: u64,
            stages: Vec<(String, u64)>,
        }
        let mut by_kind: Vec<(OpKind, Agg)> = Vec::new();
        for span in &self.spans {
            let stamps = span.stamps();
            if stamps.len() < 2 {
                continue;
            }
            let agg = match by_kind.iter_mut().find(|(k, _)| *k == span.kind) {
                Some((_, a)) => a,
                None => {
                    by_kind.push((span.kind, Agg::default()));
                    &mut by_kind.last_mut().unwrap().1
                }
            };
            agg.count += 1;
            agg.total_ns += stamps.last().unwrap().1 - stamps[0].1;
            for w in stamps.windows(2) {
                let name = format!("{}->{}", w[0].0, w[1].0);
                let dt = w[1].1 - w[0].1;
                match agg.stages.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, t)) => *t += dt,
                    None => agg.stages.push((name, dt)),
                }
            }
        }
        let mut out = String::from("op-lifecycle stage attribution (virtual ns)\n");
        for (kind, agg) in &by_kind {
            let _ =
                writeln!(out, "{:<14} count={} total={}ns", kind.as_str(), agg.count, agg.total_ns);
            for (stage, ns) in &agg.stages {
                let pct =
                    if agg.total_ns == 0 { 0.0 } else { *ns as f64 * 100.0 / agg.total_ns as f64 };
                let _ = writeln!(out, "  {stage:<18} {ns:>10}ns {pct:>5.1}%");
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} finished spans dropped past retention cap)", self.dropped);
        }
        out
    }
}

fn status_str(s: WcStatus) -> &'static str {
    match s {
        WcStatus::Success => "Success",
        WcStatus::FlushErr => "FlushErr",
        WcStatus::RetryExceeded => "RetryExceeded",
        WcStatus::RemoteDead => "RemoteDead",
    }
}

/// Microseconds with ns precision, as Chrome's `ts`/`dur` expect.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Placement of one `X` slice: lane plus time extent.
struct SliceAt {
    pid: Rank,
    tid: usize,
    ts_ns: u64,
    dur_ns: u64,
}

fn push_event(out: &mut String, first: &mut bool, name: &str, at: &SliceAt, args: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"photon\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{args}}}",
        us(at.ts_ns),
        us(at.dur_ns.max(1)),
        at.pid,
        at.tid,
    );
}

/// Merge several ranks' span traces into one Chrome/Perfetto `trace_event`
/// JSON document (`pid` = rank, `tid` 0 = initiator ops, `tid` 1 = target
/// ops). The output loads directly in <https://ui.perfetto.dev> or
/// `chrome://tracing`.
pub fn chrome_trace_json(traces: &[SpanTrace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    for t in traces {
        // Metadata: name the process after the rank and the two thread
        // lanes after the span direction.
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{0},\"tid\":0,\"args\":{{\"name\":\"rank {0}\"}}}}",
            t.rank
        );
        for (tid, lane) in [(0usize, "initiator"), (1, "target")] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\"args\":{{\"name\":\"{lane}\"}}}}",
                t.rank
            );
        }
        for span in &t.spans {
            let stamps = span.stamps();
            let Some(&(_, begin)) = stamps.first() else { continue };
            let end = stamps.last().unwrap().1;
            let tid = match span.dir {
                SpanDir::Initiator => 0,
                SpanDir::Target => 1,
            };
            let args = format!(
                "{{\"rid\":{},\"peer\":{},\"size\":{},\"status\":\"{}\"}}",
                span.rid,
                span.peer,
                span.size,
                status_str(span.status)
            );
            let at = SliceAt { pid: t.rank, tid, ts_ns: begin, dur_ns: end - begin };
            push_event(&mut out, &mut first, span.kind.as_str(), &at, &args);
            for w in stamps.windows(2) {
                let name = format!("{}->{}", w[0].0, w[1].0);
                let at = SliceAt { pid: t.rank, tid, ts_ns: w[0].1, dur_ns: w[1].1 - w[0].1 };
                push_event(&mut out, &mut first, &name, &at, "{}");
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_span(store: &SpanStore) {
        store.begin_initiator(7, 1, OpKind::PutEager, 8, 100);
        store.stamp_stage(7, 120);
        store.stamp_inject(7, 180);
        store.finish_initiator(7, 400, WcStatus::Success);
    }

    #[test]
    fn lifecycle_stamps_accumulate() {
        let store = SpanStore::new();
        full_span(&store);
        store.begin_target(0, 7, OpKind::PutEager, 8, 300);
        let (spans, dropped) = store.collect();
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 2);
        let init = &spans[0];
        assert_eq!(init.dir, SpanDir::Initiator);
        assert_eq!(
            init.stamps(),
            vec![("post", 100), ("stage", 120), ("inject", 180), ("complete", 400)]
        );
        let tgt = &spans[1];
        assert_eq!(tgt.dir, SpanDir::Target);
        assert_eq!(tgt.deliver_ns, Some(300));
        assert_eq!(tgt.complete_ns, None, "still open");
    }

    #[test]
    fn duplicate_stamps_keep_the_first() {
        let store = SpanStore::new();
        store.begin_initiator(1, 0, OpKind::Send, 8, 10);
        store.stamp_inject(1, 50);
        store.stamp_inject(1, 99);
        let span = store.finish_initiator(1, 120, WcStatus::FlushErr).unwrap();
        assert_eq!(span.inject_ns, Some(50));
        assert_eq!(span.status, WcStatus::FlushErr);
        // Unknown rids are ignored, not a panic.
        store.stamp_stage(999, 1);
        assert!(store.finish_initiator(999, 1, WcStatus::Success).is_none());
    }

    #[test]
    fn target_spans_disambiguate_by_source() {
        let store = SpanStore::new();
        store.begin_target(1, 42, OpKind::Send, 4, 10);
        store.begin_target(2, 42, OpKind::Send, 4, 20);
        let a = store.finish_target(1, 42, 30, WcStatus::Success).unwrap();
        let b = store.finish_target(2, 42, 40, WcStatus::Success).unwrap();
        assert_eq!((a.peer, a.deliver_ns), (1, Some(10)));
        assert_eq!((b.peer, b.deliver_ns), (2, Some(20)));
    }

    #[test]
    fn chrome_json_is_loadable() {
        let store = SpanStore::new();
        full_span(&store);
        let (spans, dropped) = store.collect();
        let trace = SpanTrace { rank: 0, spans, dropped };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"put-eager\""));
        assert!(json.contains("\"name\":\"post->stage\""));
        assert!(json.contains("\"ph\":\"M\""));
        // Structural sanity: balanced braces/brackets, no trailing comma
        // before a closer (the classic trace_event loader rejection).
        let mut depth = 0i64;
        let mut prev = ' ';
        for ch in json.chars() {
            match ch {
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev, ',', "trailing comma before closer");
                    depth -= 1;
                }
                _ => {}
            }
            if !ch.is_whitespace() {
                prev = ch;
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "unbalanced JSON");
    }

    #[test]
    fn flamegraph_attributes_stage_time() {
        let store = SpanStore::new();
        full_span(&store);
        let (spans, dropped) = store.collect();
        let fg = SpanTrace { rank: 0, spans, dropped }.to_flamegraph();
        assert!(fg.contains("put-eager"), "{fg}");
        assert!(fg.contains("post->stage"), "{fg}");
        assert!(fg.contains("inject->complete"), "{fg}");
        assert!(fg.contains("count=1"), "{fg}");
    }
}
