//! Trace record export.
//!
//! [`TraceExport`] renders a batch of [`TraceRecord`]s in either of two
//! formats:
//!
//! * **CSV** — the historical `ts_ns,op,peer,rid,size` table. Byte-stable:
//!   simtest case digests hash this text, so its format is pinned.
//! * **JSON** — an array of record objects, consumed by the bench crate
//!   when emitting trace artifacts. Hand-rolled (the workspace carries no
//!   serde); field names mirror the CSV header.
//!
//! Both render in virtual-time order: records are buffered in call order,
//! which can disagree with their timestamps (a probe surfaces a completion
//! whose delivery time precedes the prober's current clock), and the
//! export is the canonical timeline, so records sort by timestamp, stably,
//! before rendering.

use crate::obs::TraceRecord;
use std::fmt::Write as _;

/// Renderers for [`TraceRecord`] batches. See the module docs.
pub struct TraceExport;

impl TraceExport {
    /// Sorted copy of `records`, stable by virtual timestamp.
    fn ordered(records: &[TraceRecord]) -> Vec<TraceRecord> {
        let mut out = records.to_vec();
        out.sort_by_key(|r| r.ts);
        out
    }

    /// Render as CSV (`ts_ns,op,peer,rid,size`), in virtual-time order.
    pub fn csv(records: &[TraceRecord]) -> String {
        let mut out = String::from("ts_ns,op,peer,rid,size\n");
        for r in &Self::ordered(records) {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                r.ts.as_nanos(),
                r.op,
                r.peer,
                r.rid,
                r.size
            ));
        }
        out
    }

    /// Render as a JSON array of record objects, in virtual-time order:
    /// `[{"ts_ns":…,"op":"…","peer":…,"rid":…,"size":…},…]`.
    pub fn json(records: &[TraceRecord]) -> String {
        let mut out = String::from("[");
        for (i, r) in Self::ordered(records).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"ts_ns\":{},\"op\":\"{}\",\"peer\":{},\"rid\":{},\"size\":{}}}",
                r.ts.as_nanos(),
                r.op,
                r.peer,
                r.rid,
                r.size
            );
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::TraceOp;
    use photon_fabric::VTime;

    fn recs() -> Vec<TraceRecord> {
        vec![
            TraceRecord { ts: VTime(20), op: TraceOp::RemoteDone, peer: 1, rid: 7, size: 64 },
            TraceRecord { ts: VTime(5), op: TraceOp::PutEager, peer: 2, rid: 99, size: 128 },
        ]
    }

    #[test]
    fn csv_sorts_by_virtual_time() {
        let csv = TraceExport::csv(&recs());
        assert_eq!(csv, "ts_ns,op,peer,rid,size\n5,put-eager,2,99,128\n20,remote-done,1,7,64\n");
    }

    #[test]
    fn json_mirrors_csv_fields_in_order() {
        let json = TraceExport::json(&recs());
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        let first = json.find("put-eager").unwrap();
        let second = json.find("remote-done").unwrap();
        assert!(first < second, "time-ordered");
        assert!(
            json.contains("{\"ts_ns\":5,\"op\":\"put-eager\",\"peer\":2,\"rid\":99,\"size\":128}")
        );
        assert_eq!(TraceExport::json(&[]), "[\n]\n");
    }
}
