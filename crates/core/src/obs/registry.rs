//! The typed metrics registry.
//!
//! Counters are declared exactly once, through [`counter_registry!`](crate::counter_registry): each
//! declaration carries its field name and help text (the doc comment), and
//! the macro expands to the atomic registry struct, the plain-`u64` snapshot
//! struct, and a [`CounterDef`](crate::obs::CounterDef) metadata table — all
//! guaranteed to agree on field set and order. This replaces the
//! hand-maintained `Stats`/`StatsSnapshot` pair, whose 25 fields had to be
//! kept in sync across four places by review alone.
//!
//! The generated snapshot type additionally supports name-based lookup
//! ([`StatsSnapshot::get`]), iteration in declaration order
//! ([`StatsSnapshot::iter`]), counter-wise differencing
//! ([`StatsSnapshot::delta`]) and self-describing export
//! ([`StatsSnapshot::export_json`] / [`StatsSnapshot::export_text`]).
//!
//! The `msg` and `runtime` crates instantiate the same macro for their own
//! counter sets, so every layer's statistics share one declaration idiom and
//! one export format.

/// Declare a counter registry: an atomic counter struct, a `Copy` snapshot
/// struct, and a metadata table, generated from one field list.
///
/// ```ignore
/// photon_core::counter_registry! {
///     /// Internal counters for one widget.
///     registry WidgetStats;
///     /// A point-in-time copy of a widget's statistics.
///     snapshot WidgetSnapshot;
///     table WIDGET_COUNTERS;
///     counters {
///         /// Frobnications performed.
///         frobs,
///         /// Bytes frobnicated.
///         bytes_frobbed,
///     }
/// }
/// ```
///
/// The doc comment on each counter doubles as its help text in the
/// generated table and in `export_text` output. Snapshot structs derive
/// `Debug, Clone, Copy, PartialEq, Eq, Default` with fields in declaration
/// order, so existing `{:?}` output (and anything hashing it) is preserved
/// when a hand-written pair is migrated field-for-field.
#[macro_export]
macro_rules! counter_registry {
    (
        $(#[doc = $rdoc:literal])+
        registry $reg:ident;
        $(#[doc = $sdoc:literal])+
        snapshot $snap:ident;
        table $table:ident;
        counters {
            $( $(#[doc = $help:literal])+ $field:ident, )+
        }
    ) => {
        $(#[doc = $rdoc])+
        #[derive(Debug, Default)]
        pub struct $reg {
            $( pub(crate) $field: ::std::sync::atomic::AtomicU64, )+
        }

        impl $reg {
            /// Increment `counter` by one (relaxed).
            #[inline]
            #[allow(dead_code)]
            pub(crate) fn bump(counter: &::std::sync::atomic::AtomicU64) {
                counter.fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
            }

            /// Add `v` to `counter` (relaxed).
            #[inline]
            #[allow(dead_code)]
            pub(crate) fn add(counter: &::std::sync::atomic::AtomicU64, v: u64) {
                counter.fetch_add(v, ::std::sync::atomic::Ordering::Relaxed);
            }

            /// Add `v` to the counter named `name` (as listed in the
            #[doc = concat!("[`", stringify!($table), "`] table); returns `false` for unknown names.")]
            #[allow(dead_code)]
            pub fn add_named(&self, name: &str, v: u64) -> bool {
                match name {
                    $(
                        stringify!($field) => {
                            self.$field.fetch_add(v, ::std::sync::atomic::Ordering::Relaxed);
                            true
                        }
                    )+
                    _ => false,
                }
            }

            /// Snapshot the counters.
            pub fn snapshot(&self) -> $snap {
                $snap {
                    $( $field: self.$field.load(::std::sync::atomic::Ordering::Relaxed), )+
                }
            }
        }

        $(#[doc = $sdoc])+
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $snap {
            $( $(#[doc = $help])+ pub $field: u64, )+
        }

        #[doc = concat!(
            "Declared counter metadata for [`", stringify!($snap),
            "`], in field-declaration order."
        )]
        pub const $table: &[$crate::obs::CounterDef] = &[
            $(
                $crate::obs::CounterDef {
                    name: stringify!($field),
                    help: concat!($($help),+),
                },
            )+
        ];

        impl $snap {
            /// Iterate `(name, value)` pairs in declaration order.
            pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
                [$( (stringify!($field), self.$field) ),+].into_iter()
            }

            /// Value of the counter named `name`; `None` for unknown names.
            pub fn get(&self, name: &str) -> Option<u64> {
                match name {
                    $( stringify!($field) => Some(self.$field), )+
                    _ => None,
                }
            }

            /// Counter-wise difference `self - earlier` (saturating, so a
            /// stale "earlier" snapshot cannot wrap).
            pub fn delta(&self, earlier: &$snap) -> $snap {
                $snap {
                    $( $field: self.$field.saturating_sub(earlier.$field), )+
                }
            }

            /// Render as a single-line JSON object, counters in declaration
            /// order. Hand-rolled: the workspace carries no serde.
            pub fn export_json(&self) -> String {
                let mut out = String::from("{");
                let mut first = true;
                for (name, v) in self.iter() {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push('"');
                    out.push_str(name);
                    out.push_str("\":");
                    out.push_str(&v.to_string());
                }
                out.push('}');
                out
            }

            /// Render as text exposition: a `# HELP` line (from the
            /// declaration's doc comment) followed by `name value`, per
            /// counter, in declaration order.
            pub fn export_text(&self) -> String {
                let mut out = String::new();
                for (def, (name, v)) in $table.iter().zip(self.iter()) {
                    out.push_str("# HELP ");
                    out.push_str(def.name);
                    out.push(' ');
                    out.push_str(def.help.trim());
                    out.push('\n');
                    out.push_str(name);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                out
            }
        }
    };
}

crate::counter_registry! {
    /// Internal counters for one Photon context.
    registry Stats;
    /// A point-in-time copy of a context's statistics.
    snapshot StatsSnapshot;
    table STATS_COUNTERS;
    counters {
        /// Put-with-completion operations that took the eager (packed) path.
        puts_eager,
        /// Put-with-completion operations that took the direct RDMA path.
        puts_direct,
        /// Get(-with-completion) operations.
        gets,
        /// Destination-less sends (parcel path).
        sends,
        /// Local completions surfaced.
        local_completions,
        /// Remote completions surfaced.
        remote_completions,
        /// Times a producer found a ledger/ring out of credits.
        credit_stalls,
        /// Credit-return writes issued.
        credit_returns,
        /// Payload bytes put.
        bytes_put,
        /// Payload bytes fetched by gets.
        bytes_got,
        /// Rendezvous protocol steps executed.
        rendezvous_ops,
        /// Probe calls.
        probes,
        /// Batch probe calls (`probe_completions`), also counted in `probes`.
        probe_batches,
        /// Doorbell-batched eager posts (`put_many` / batch flushes): one wire
        /// write carrying a run of frames.
        batch_posts,
        /// Batches that carried exactly 1 frame.
        frames_per_batch_1,
        /// Batches that carried 2–4 frames.
        frames_per_batch_2_4,
        /// Batches that carried 5–16 frames.
        frames_per_batch_5_16,
        /// Batches that carried 17 or more frames.
        frames_per_batch_17plus,
        /// Per-op heap copies eliminated on the eager fast path: one per
        /// MR→stage direct staging on TX, one per in-place ring copy-out on RX.
        stage_copies_avoided,
        /// Healthy → Suspect transitions of the per-peer health machine.
        peers_suspected,
        /// Peers declared dead (evicted).
        peers_dead,
        /// Reconnection probes issued while a peer was Suspect.
        reconnect_probes,
        /// Suspect → Healthy recoveries (a reconnection probe succeeded).
        peer_recoveries,
        /// Pending rids drained as error completions by peer eviction.
        rids_flushed,
        /// Probe passes that skipped a peer because another thread held its
        /// receive lock (the holder harvests everything pending).
        rx_lock_skips,
        /// Times the bounded skip budget ran out and a probe blocked on a
        /// contended receive lock to guarantee the peer gets service.
        rx_lock_waits,
        /// Errors swallowed by dedicated progress threads (the op that hit
        /// the error still resolves via timeout or peer eviction).
        progress_thread_errors,
        /// Connections established (lazily, on first traffic toward a peer —
        /// includes reconnects after eviction or peer rejoin).
        conns_opened,
        /// Connections evicted by the LRU cache cap (peer stayed healthy;
        /// distinct from `peers_dead`).
        conns_evicted,
    }
}

impl Stats {
    /// Record one doorbell-batched post of `frames` eager frames.
    pub(crate) fn record_batch(&self, frames: usize) {
        Stats::bump(&self.batch_posts);
        Stats::bump(match frames {
            0..=1 => &self.frames_per_batch_1,
            2..=4 => &self.frames_per_batch_2_4,
            5..=16 => &self.frames_per_batch_5_16,
            _ => &self.frames_per_batch_17plus,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        Stats::bump(&s.puts_eager);
        Stats::bump(&s.puts_eager);
        Stats::add(&s.bytes_put, 100);
        let snap = s.snapshot();
        assert_eq!(snap.puts_eager, 2);
        assert_eq!(snap.bytes_put, 100);
        assert_eq!(snap.gets, 0);
    }

    #[test]
    fn table_matches_snapshot_fields() {
        let s = Stats::default();
        let snap = s.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        let table: Vec<&str> = STATS_COUNTERS.iter().map(|d| d.name).collect();
        assert_eq!(names, table, "table and snapshot must agree on order");
        assert_eq!(names.len(), 29, "field count pinned (bump when adding counters)");
        for def in STATS_COUNTERS {
            assert!(!def.help.trim().is_empty(), "{} has empty help", def.name);
        }
    }

    #[test]
    fn add_named_and_get_roundtrip() {
        let s = Stats::default();
        assert!(s.add_named("probes", 7));
        assert!(!s.add_named("no_such_counter", 1));
        let snap = s.snapshot();
        assert_eq!(snap.get("probes"), Some(7));
        assert_eq!(snap.get("no_such_counter"), None);
    }

    #[test]
    fn delta_is_counterwise_and_saturating() {
        let a = Stats::default();
        Stats::add(&a.sends, 10);
        Stats::add(&a.gets, 3);
        let early = a.snapshot();
        Stats::add(&a.sends, 5);
        let late = a.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.sends, 5);
        assert_eq!(d.gets, 0);
        // Reversed operands saturate instead of wrapping.
        let r = early.delta(&late);
        assert_eq!(r.sends, 0);
    }

    #[test]
    fn exports_cover_every_counter() {
        let s = Stats::default();
        Stats::add(&s.bytes_got, 42);
        let snap = s.snapshot();
        let json = snap.export_json();
        let text = snap.export_text();
        for def in STATS_COUNTERS {
            assert!(json.contains(&format!("\"{}\":", def.name)), "json missing {}", def.name);
            assert!(
                text.contains(&format!("\n{} ", def.name))
                    || text.starts_with(&format!("{} ", def.name)),
                "text missing {}",
                def.name
            );
        }
        assert!(json.contains("\"bytes_got\":42"));
    }

    #[test]
    fn debug_format_is_stable_for_digests() {
        // simtest case digests hash `format!("{snapshot:?}")`; the field
        // order and derive set must not drift when the registry is edited.
        let snap = StatsSnapshot::default();
        let dbg = format!("{snap:?}");
        assert!(dbg.starts_with("StatsSnapshot { puts_eager: 0, puts_direct: 0, gets: 0,"));
        assert!(dbg.ends_with("conns_opened: 0, conns_evicted: 0 }"));
    }
}
