//! Observability: typed metrics registry, latency histograms, op-lifecycle
//! spans, and trace export.
//!
//! This module replaces the old `stats`/`trace` pair with four cooperating
//! layers:
//!
//! * [`registry`] — counters declared once (name + help) through
//!   [`counter_registry!`](crate::counter_registry), generating the atomic
//!   [`Stats`] registry, the [`StatsSnapshot`] view (with `get`/`iter`/
//!   [`delta`](StatsSnapshot::delta)/export), and the [`STATS_COUNTERS`]
//!   metadata table in one stroke.
//! * [`hist`] — sharded lock-free log2-bucket latency histograms keyed by
//!   op-kind × size-class per peer; p50/p99/max come from the virtual-clock
//!   stamps already flowing through the fabric.
//! * [`span`] — per-rid lifecycle spans (post → stage → inject → deliver →
//!   complete), exported as Chrome/Perfetto `trace_event` JSON and a text
//!   flamegraph.
//! * [`export`] — [`TraceExport`] CSV/JSON rendering of [`Tracer`] records.
//!
//! Histogram + span recording is **off by default** and costs one relaxed
//! atomic load per hook when disabled; [`Obs::enable`] allocates the
//! recording structures on first use. Counters are always live (they are
//! part of the protocol's accounting and the simtest invariants).

pub mod export;
pub mod hist;
pub mod registry;
pub mod span;
pub mod trace;

pub use export::TraceExport;
pub use hist::{
    size_class, size_class_label, KeyedLatency, KeyedSummary, LatencyHistograms, LatencySummary,
    SIZE_CLASSES,
};
pub use registry::{Stats, StatsSnapshot, STATS_COUNTERS};
pub use span::{chrome_trace_json, OpSpan, SpanDir, SpanTrace};
pub use trace::{TraceOp, TraceRecord, Tracer};

use crate::Rank;
use photon_fabric::{VTime, WcStatus};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Metadata for one declared counter: its registry name and help text.
/// Generated tables (e.g. [`STATS_COUNTERS`]) hold one entry per field, in
/// declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterDef {
    /// Field/registry name, e.g. `puts_eager`.
    pub name: &'static str,
    /// Help text (the declaration's doc comment).
    pub help: &'static str,
}

/// The operation classes latency is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Eager (packed, staged-ring) put-with-completion.
    PutEager,
    /// Direct (RDMA + ledger) put-with-completion.
    PutDirect,
    /// Plain one-sided put.
    Put,
    /// Get(-with-completion).
    Get,
    /// Destination-less send (parcel path).
    Send,
    /// Rendezvous transfer.
    Rendezvous,
}

/// Number of [`OpKind`] variants (histogram bank dimension).
pub(crate) const OP_KINDS: usize = 6;

impl OpKind {
    /// Every kind, in declaration order.
    pub const ALL: [OpKind; OP_KINDS] = [
        OpKind::PutEager,
        OpKind::PutDirect,
        OpKind::Put,
        OpKind::Get,
        OpKind::Send,
        OpKind::Rendezvous,
    ];

    /// Stable label, matching the [`TraceOp`] vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::PutEager => "put-eager",
            OpKind::PutDirect => "put-direct",
            OpKind::Put => "put",
            OpKind::Get => "get",
            OpKind::Send => "send",
            OpKind::Rendezvous => "rendezvous",
        }
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            OpKind::PutEager => 0,
            OpKind::PutDirect => 1,
            OpKind::Put => 2,
            OpKind::Get => 3,
            OpKind::Send => 4,
            OpKind::Rendezvous => 5,
        }
    }
}

/// One-call observability snapshot: the counter registry plus latency
/// summaries for every (op-kind, peer) pair that completed work. Returned
/// by `Photon::metrics()`.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Counter snapshot (always live).
    pub counters: StatsSnapshot,
    /// Latency summaries; empty unless recording was enabled.
    pub latencies: Vec<LatencySummary>,
}

#[derive(Debug)]
pub(crate) struct ObsCore {
    pub(crate) hist: LatencyHistograms,
    pub(crate) spans: span::SpanStore,
}

/// The per-context recording switchboard for histograms and spans.
///
/// Disabled (the default), every hook is a single relaxed atomic load; the
/// recording structures are not even allocated. [`Obs::enable`] allocates
/// them on first call and turns the hooks live.
#[derive(Debug)]
pub struct Obs {
    enabled: AtomicBool,
    rank: Rank,
    peers: usize,
    core: OnceLock<ObsCore>,
}

impl Obs {
    pub(crate) fn new(rank: Rank, peers: usize) -> Obs {
        Obs { enabled: AtomicBool::new(false), rank, peers, core: OnceLock::new() }
    }

    /// Start recording histograms and spans (idempotent; allocates the
    /// recording structures on first call).
    pub fn enable(&self) {
        self.core.get_or_init(|| ObsCore {
            hist: LatencyHistograms::new(self.peers),
            spans: span::SpanStore::new(),
        });
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (already-recorded data is kept and still exportable).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    #[inline]
    fn live(&self) -> Option<&ObsCore> {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.get()
        } else {
            None
        }
    }

    /// Recorded-data view regardless of the current enable state (so a
    /// disabled-after-the-fact context can still export).
    fn recorded(&self) -> Option<&ObsCore> {
        self.core.get()
    }

    // ---- lifecycle hooks (called from the data path; inlined no-ops when
    // ---- recording is disabled)

    #[inline]
    pub(crate) fn op_post(&self, rid: u64, peer: Rank, kind: OpKind, size: usize, ts: VTime) {
        if let Some(c) = self.live() {
            c.spans.begin_initiator(rid, peer, kind, size, ts.as_nanos());
        }
    }

    #[inline]
    pub(crate) fn op_stage(&self, rid: u64, ts: VTime) {
        if let Some(c) = self.live() {
            c.spans.stamp_stage(rid, ts.as_nanos());
        }
    }

    #[inline]
    pub(crate) fn op_inject(&self, rid: u64, ts: VTime) {
        if let Some(c) = self.live() {
            c.spans.stamp_inject(rid, ts.as_nanos());
        }
    }

    /// A local completion surfaced: close the initiator span and record its
    /// post→complete latency.
    #[inline]
    pub(crate) fn op_complete_local(&self, rid: u64, ts: VTime, status: WcStatus) {
        if let Some(c) = self.live() {
            let ns = ts.as_nanos();
            if let Some(span) = c.spans.finish_initiator(rid, ns, status) {
                if let Some(begin) = span.begin_ns() {
                    c.hist.record(rid, span.peer, span.kind, span.size, ns.saturating_sub(begin));
                }
            }
        }
    }

    /// An op became visible on this (target) rank.
    #[inline]
    pub(crate) fn op_deliver(&self, src: Rank, rid: u64, kind: OpKind, size: usize, ts: VTime) {
        if let Some(c) = self.live() {
            c.spans.begin_target(src, rid, kind, size, ts.as_nanos());
        }
    }

    /// A remote completion surfaced: close the target span and record its
    /// deliver→complete latency.
    #[inline]
    pub(crate) fn op_complete_remote(&self, src: Rank, rid: u64, ts: VTime, status: WcStatus) {
        if let Some(c) = self.live() {
            let ns = ts.as_nanos();
            if let Some(span) = c.spans.finish_target(src, rid, ns, status) {
                if let Some(begin) = span.begin_ns() {
                    c.hist.record(rid, span.peer, span.kind, span.size, ns.saturating_sub(begin));
                }
            }
        }
    }

    // ---- export

    /// Latency summaries for every (op-kind, peer) pair with recorded
    /// completions; empty when recording never ran.
    pub fn latency_summaries(&self) -> Vec<LatencySummary> {
        self.recorded().map(|c| c.hist.summaries()).unwrap_or_default()
    }

    /// This rank's span timeline (finished and still-open spans, earliest
    /// first); empty when recording never ran.
    pub fn span_trace(&self) -> SpanTrace {
        let (spans, dropped) =
            self.recorded().map(|c| c.spans.collect()).unwrap_or((Vec::new(), 0));
        SpanTrace { rank: self.rank, spans, dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_nothing_and_allocates_nothing() {
        let o = Obs::new(0, 2);
        o.op_post(1, 1, OpKind::Send, 8, VTime(10));
        o.op_complete_local(1, VTime(20), WcStatus::Success);
        assert!(!o.is_enabled());
        assert!(o.latency_summaries().is_empty());
        assert!(o.span_trace().spans.is_empty());
        assert!(o.core.get().is_none(), "no recording structures allocated");
    }

    #[test]
    fn enabled_obs_builds_spans_and_histograms() {
        let o = Obs::new(0, 2);
        o.enable();
        o.op_post(5, 1, OpKind::PutEager, 8, VTime(100));
        o.op_stage(5, VTime(110));
        o.op_inject(5, VTime(150));
        o.op_complete_local(5, VTime(400), WcStatus::Success);
        o.op_deliver(1, 6, OpKind::PutEager, 8, VTime(300));
        o.op_complete_remote(1, 6, VTime(350), WcStatus::Success);
        let trace = o.span_trace();
        assert_eq!(trace.spans.len(), 2);
        let lats = o.latency_summaries();
        assert_eq!(lats.len(), 1, "both spans land in (PutEager, peer 1)");
        assert_eq!(lats[0].count, 2);
        assert_eq!(lats[0].max_ns, 300);
        // Disabling stops recording but keeps the data exportable.
        o.disable();
        o.op_post(7, 1, OpKind::Send, 8, VTime(500));
        assert_eq!(o.span_trace().spans.len(), 2);
    }
}
