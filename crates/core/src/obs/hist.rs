//! Sharded lock-free log2-bucket latency histograms.
//!
//! One histogram cell per (peer, op-kind, size-class); each cell is 32
//! power-of-two buckets of `AtomicU64` plus a `fetch_max` maximum. Recording
//! is wait-free: two relaxed atomic RMWs into a shard picked by the op's
//! rid, so concurrent completions for different rids almost never contend on
//! a cache line. Quantiles are computed at snapshot time by merging the
//! shards and walking the cumulative bucket counts; a log2 bucket bounds the
//! reported p50/p99 to within 2× of the true value, which is the right
//! fidelity for "where did the microsecond go" questions against a
//! virtual-clock fabric.
//!
//! The whole structure is only allocated when observability recording is
//! enabled ([`Obs::enable`](crate::obs::Obs::enable)), so disabled contexts
//! pay neither the ~200KiB of buckets nor any cache traffic.

use crate::obs::{OpKind, OP_KINDS};
use crate::Rank;
use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram shards; recording picks one by rid so concurrent completions
/// spread across distinct bucket arrays.
const HIST_SHARDS: usize = 4;

/// Log2 buckets per cell: bucket `i` counts latencies in `[2^i, 2^(i+1))`
/// ns, so 32 buckets span 1ns..~4.3s of virtual time.
const BUCKETS: usize = 32;

/// Payload size classes latency is keyed by.
pub const SIZE_CLASSES: usize = 4;

/// Map a payload size to its class: ≤64B, ≤4KiB, ≤64KiB, larger.
pub fn size_class(len: usize) -> usize {
    match len {
        0..=64 => 0,
        65..=4096 => 1,
        4097..=65_536 => 2,
        _ => 3,
    }
}

/// Human-readable label for a size class index.
pub fn size_class_label(class: usize) -> &'static str {
    match class {
        0 => "<=64B",
        1 => "<=4KiB",
        2 => "<=64KiB",
        _ => ">64KiB",
    }
}

#[inline]
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

#[derive(Debug)]
struct HistShard {
    /// `[(peer × kind × class) × BUCKETS]` counters.
    buckets: Vec<AtomicU64>,
    /// One maximum per (peer × kind × class) cell.
    max: Vec<AtomicU64>,
}

/// Latency summary for one (op-kind, peer) pair, aggregated over size
/// classes and shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Operation class the latencies belong to.
    pub kind: OpKind,
    /// Peer the operations targeted (initiator side) or arrived from
    /// (target side).
    pub peer: Rank,
    /// Completions recorded.
    pub count: u64,
    /// Median latency in virtual ns (log2-bucket upper bound).
    pub p50_ns: u64,
    /// 99th-percentile latency in virtual ns (log2-bucket upper bound).
    pub p99_ns: u64,
    /// Maximum latency in virtual ns (exact).
    pub max_ns: u64,
}

/// The per-context histogram bank: `peers × OP_KINDS × SIZE_CLASSES` cells
/// replicated over `HIST_SHARDS` shards.
#[derive(Debug)]
pub struct LatencyHistograms {
    peers: usize,
    shards: Vec<HistShard>,
}

impl LatencyHistograms {
    pub(crate) fn new(peers: usize) -> LatencyHistograms {
        let peers = peers.max(1);
        let cells = peers * OP_KINDS * SIZE_CLASSES;
        let shards = (0..HIST_SHARDS)
            .map(|_| HistShard {
                buckets: (0..cells * BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                max: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        LatencyHistograms { peers, shards }
    }

    #[inline]
    fn cell(&self, peer: Rank, kind: OpKind, class: usize) -> usize {
        debug_assert!(peer < self.peers && class < SIZE_CLASSES);
        (peer * OP_KINDS + kind.index()) * SIZE_CLASSES + class
    }

    /// Record one completion latency. `shard_key` (typically the rid)
    /// selects the shard; everything is relaxed atomics.
    #[inline]
    pub(crate) fn record(&self, shard_key: u64, peer: Rank, kind: OpKind, size: usize, ns: u64) {
        if peer >= self.peers {
            return; // defensive: never index out of the bank
        }
        let shard = &self.shards[(shard_key as usize) & (HIST_SHARDS - 1)];
        let cell = self.cell(peer, kind, size_class(size));
        shard.buckets[cell * BUCKETS + bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        shard.max[cell].fetch_max(ns, Ordering::Relaxed);
    }

    /// Merge one (peer, kind) pair across shards and size classes.
    fn merged(&self, peer: Rank, kind: OpKind) -> ([u64; BUCKETS], u64, u64) {
        let mut buckets = [0u64; BUCKETS];
        let mut max = 0u64;
        let mut count = 0u64;
        for class in 0..SIZE_CLASSES {
            let cell = self.cell(peer, kind, class);
            for shard in &self.shards {
                for (b, out) in buckets.iter_mut().enumerate() {
                    let v = shard.buckets[cell * BUCKETS + b].load(Ordering::Relaxed);
                    *out += v;
                    count += v;
                }
                max = max.max(shard.max[cell].load(Ordering::Relaxed));
            }
        }
        (buckets, count, max)
    }

    /// Summaries for every (kind, peer) pair that recorded at least one
    /// completion, kinds in declaration order, peers ascending.
    pub fn summaries(&self) -> Vec<LatencySummary> {
        let mut out = Vec::new();
        for kind in OpKind::ALL {
            for peer in 0..self.peers {
                if let Some(s) = self.summary(kind, peer) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Summary for one (kind, peer) pair; `None` when nothing was recorded.
    pub fn summary(&self, kind: OpKind, peer: Rank) -> Option<LatencySummary> {
        if peer >= self.peers {
            return None;
        }
        let (buckets, count, max) = self.merged(peer, kind);
        if count == 0 {
            return None;
        }
        Some(LatencySummary {
            kind,
            peer,
            count,
            p50_ns: quantile(&buckets, count, 1, 2, max),
            p99_ns: quantile(&buckets, count, 99, 100, max),
            max_ns: max,
        })
    }
}

/// One row of a [`KeyedLatency`] bank: same log2-bucket geometry as the
/// per-peer histograms, but owned by a single dynamically registered key.
#[derive(Debug)]
struct KeyRow {
    name: String,
    buckets: Vec<AtomicU64>,
    max: AtomicU64,
}

/// Latency summary for one registered key of a [`KeyedLatency`] bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedSummary {
    /// The registered key (an RPC method name, a protocol stage, …).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Median latency in ns (log2-bucket upper bound, clamped by max).
    pub p50_ns: u64,
    /// 99th-percentile latency in ns (log2-bucket upper bound, clamped).
    pub p99_ns: u64,
    /// Maximum latency in ns (exact).
    pub max_ns: u64,
}

/// A latency histogram bank keyed by *registered names* instead of the
/// fixed (peer, op-kind, size-class) grid — the shape request/reply layers
/// need, where the interesting axis is the RPC method, not the peer.
///
/// Keys are interned once (registration returns a dense index; re-registering
/// a name returns the same index), after which recording is two relaxed
/// atomic RMWs under a read lock that is never write-contended on the hot
/// path. Quantile fidelity matches [`LatencyHistograms`]: log2 buckets bound
/// p50/p99 to within 2× of the true value.
#[derive(Debug, Default)]
pub struct KeyedLatency {
    rows: parking_lot::RwLock<Vec<KeyRow>>,
}

impl KeyedLatency {
    /// An empty bank.
    pub fn new() -> KeyedLatency {
        KeyedLatency::default()
    }

    /// Intern `name`, returning its dense key index. Idempotent: the same
    /// name always maps to the same index.
    pub fn register(&self, name: &str) -> usize {
        if let Some(i) = self.rows.read().iter().position(|r| r.name == name) {
            return i;
        }
        let mut rows = self.rows.write();
        // Re-check under the write lock (two registrants may race).
        if let Some(i) = rows.iter().position(|r| r.name == name) {
            return i;
        }
        rows.push(KeyRow {
            name: name.to_string(),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max: AtomicU64::new(0),
        });
        rows.len() - 1
    }

    /// Record one sample against key index `key` (from
    /// [`KeyedLatency::register`]); out-of-range keys are ignored.
    pub fn record(&self, key: usize, ns: u64) {
        let rows = self.rows.read();
        let Some(row) = rows.get(key) else { return };
        row.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        row.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Summary for one key index; `None` when unregistered or empty.
    pub fn summary(&self, key: usize) -> Option<KeyedSummary> {
        let rows = self.rows.read();
        let row = rows.get(key)?;
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (b, out) in buckets.iter_mut().enumerate() {
            let v = row.buckets[b].load(Ordering::Relaxed);
            *out = v;
            count += v;
        }
        if count == 0 {
            return None;
        }
        let max = row.max.load(Ordering::Relaxed);
        Some(KeyedSummary {
            name: row.name.clone(),
            count,
            p50_ns: quantile(&buckets, count, 1, 2, max),
            p99_ns: quantile(&buckets, count, 99, 100, max),
            max_ns: max,
        })
    }

    /// Summary by registered name.
    pub fn summary_of(&self, name: &str) -> Option<KeyedSummary> {
        let key = self.rows.read().iter().position(|r| r.name == name)?;
        self.summary(key)
    }

    /// Summaries for every key that recorded at least one sample, in
    /// registration order.
    pub fn summaries(&self) -> Vec<KeyedSummary> {
        let n = self.rows.read().len();
        (0..n).filter_map(|k| self.summary(k)).collect()
    }
}

/// Value at rank `ceil(count × q_num / q_den)` from cumulative bucket
/// counts; reported as the bucket's inclusive upper bound, clamped by the
/// exact recorded maximum.
fn quantile(buckets: &[u64; BUCKETS], count: u64, q_num: u64, q_den: u64, max: u64) -> u64 {
    let target = (count * q_num).div_ceil(q_den).max(1);
    let mut cum = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        cum += b;
        if cum >= target {
            return bucket_bound(i).min(max);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_partition_sizes() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(64), 0);
        assert_eq!(size_class(65), 1);
        assert_eq!(size_class(4096), 1);
        assert_eq!(size_class(65_536), 2);
        assert_eq!(size_class(1 << 20), 3);
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(10), 2047);
    }

    #[test]
    fn summary_quantiles_bound_the_data() {
        let h = LatencyHistograms::new(2);
        // 99 fast ops at ~100ns, one slow outlier at 1ms, spread over rids
        // (and therefore shards).
        for rid in 0..99u64 {
            h.record(rid, 1, OpKind::PutEager, 8, 100);
        }
        h.record(7, 1, OpKind::PutEager, 8, 1_000_000);
        let s = h.summary(OpKind::PutEager, 1).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_ns, 1_000_000);
        // p50 falls in the [64,128) bucket → bound 127.
        assert_eq!(s.p50_ns, 127);
        // p99 target is the 99th value, still in the fast bucket.
        assert_eq!(s.p99_ns, 127);
        assert!(h.summary(OpKind::PutEager, 0).is_none());
        assert!(h.summary(OpKind::Get, 1).is_none());
    }

    #[test]
    fn keyed_latency_interns_and_summarizes() {
        let k = KeyedLatency::new();
        let get = k.register("kv.get");
        let put = k.register("kv.put");
        assert_ne!(get, put);
        assert_eq!(k.register("kv.get"), get, "re-registration is idempotent");
        for _ in 0..99 {
            k.record(get, 100);
        }
        k.record(get, 1_000_000);
        let s = k.summary(get).unwrap();
        assert_eq!(s.name, "kv.get");
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 127);
        assert_eq!(s.max_ns, 1_000_000);
        assert_eq!(k.summary_of("kv.get"), Some(s));
        // Unrecorded and unregistered keys are absent, not a panic.
        assert!(k.summary(put).is_none());
        assert!(k.summary(99).is_none());
        k.record(99, 5); // ignored
        assert_eq!(k.summaries().len(), 1);
        k.record(put, 42);
        assert_eq!(k.summaries().len(), 2);
    }

    #[test]
    fn summaries_split_by_kind_and_peer() {
        let h = LatencyHistograms::new(3);
        h.record(1, 0, OpKind::Send, 8, 50);
        h.record(2, 2, OpKind::Get, 9000, 700);
        let all = h.summaries();
        assert_eq!(all.len(), 2);
        assert_eq!((all[0].kind, all[0].peer), (OpKind::Get, 2));
        assert_eq!((all[1].kind, all[1].peer), (OpKind::Send, 0));
        // Out-of-range peers are ignored, not a panic.
        h.record(3, 99, OpKind::Send, 8, 50);
        assert_eq!(h.summaries().len(), 2);
    }
}
