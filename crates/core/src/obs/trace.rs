//! Operation tracing.
//!
//! A lightweight, opt-in event log: when enabled on a context, every
//! initiated operation and every surfaced completion appends a record with
//! its virtual timestamp. Useful for debugging protocol schedules and for
//! producing per-operation timelines from the experiment harness.
//!
//! Disabled contexts pay a single relaxed atomic load per would-be record.
//!
//! Rendering lives in [`TraceExport`], which
//! offers both the historical CSV table and a JSON form.

use crate::obs::TraceExport;
use crate::Rank;
use parking_lot::Mutex;
use photon_fabric::VTime;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// What kind of operation a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Eager put-with-completion posted.
    PutEager,
    /// Direct (RDMA + ledger) put-with-completion posted.
    PutDirect,
    /// Plain one-sided put posted.
    Put,
    /// Get posted.
    Get,
    /// Destination-less send posted.
    Send,
    /// Local completion surfaced.
    LocalDone,
    /// Remote completion surfaced.
    RemoteDone,
    /// Credit-return write posted.
    CreditReturn,
    /// Rendezvous control step.
    Rendezvous,
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceOp::PutEager => "put-eager",
            TraceOp::PutDirect => "put-direct",
            TraceOp::Put => "put",
            TraceOp::Get => "get",
            TraceOp::Send => "send",
            TraceOp::LocalDone => "local-done",
            TraceOp::RemoteDone => "remote-done",
            TraceOp::CreditReturn => "credit-return",
            TraceOp::Rendezvous => "rendezvous",
        };
        f.write_str(s)
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time the record was taken at.
    pub ts: VTime,
    /// Operation class.
    pub op: TraceOp,
    /// Peer rank involved (self for local-only records).
    pub peer: Rank,
    /// Completion identifier, when the op carries one.
    pub rid: u64,
    /// Payload size in bytes, when applicable.
    pub size: usize,
}

/// The per-context trace buffer.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: AtomicBool,
    records: Mutex<Vec<TraceRecord>>,
}

impl Tracer {
    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (records are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Append a record if enabled. Public so test harnesses can interleave
    /// their own marks with the middleware's records; safe to call from any
    /// thread.
    #[inline]
    pub fn record(&self, ts: VTime, op: TraceOp, peer: Rank, rid: u64, size: usize) {
        if self.is_enabled() {
            self.records.lock().push(TraceRecord { ts, op, peer, rid, size });
        }
    }

    /// Drain the recorded events (oldest first).
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Copy of the buffered records in append order, without draining.
    /// Feed these to [`TraceExport`] for rendering.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().clone()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Render the buffered records as CSV (`ts_ns,op,peer,rid,size`), in
    /// virtual-time order.
    ///
    /// Deprecated-by-doc alias: prefer `TraceExport::csv(&tracer.records())`,
    /// which also offers a JSON form. Kept because simtest case digests and
    /// external tooling consume this exact byte format.
    pub fn to_csv(&self) -> String {
        TraceExport::csv(&self.records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        t.record(VTime(1), TraceOp::Put, 0, 1, 8);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_accumulates_and_drains() {
        let t = Tracer::default();
        t.enable();
        t.record(VTime(10), TraceOp::Send, 1, 7, 64);
        t.record(VTime(20), TraceOp::RemoteDone, 1, 7, 64);
        assert_eq!(t.len(), 2);
        let recs = t.take();
        assert_eq!(recs[0].op, TraceOp::Send);
        assert_eq!(recs[1].ts, VTime(20));
        assert!(t.is_empty());
        t.disable();
        t.record(VTime(30), TraceOp::Put, 0, 0, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn csv_rendering() {
        let t = Tracer::default();
        t.enable();
        t.record(VTime(5), TraceOp::PutEager, 2, 99, 128);
        let csv = t.to_csv();
        assert!(csv.starts_with("ts_ns,op,peer,rid,size\n"));
        assert!(csv.contains("5,put-eager,2,99,128"));
    }

    #[test]
    fn concurrent_record_and_take_conserve_records() {
        // 8 writers race with a drainer; no record may be lost or
        // duplicated, and every drained batch must be internally ordered
        // the way its writer appended (rid encodes writer * sequence).
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 500;
        let t = Tracer::default();
        t.enable();
        let drained = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let t = &t;
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        t.record(VTime(i), TraceOp::Send, w as Rank, w << 32 | i, 8);
                    }
                });
            }
            let (t, drained) = (&t, &drained);
            s.spawn(move || {
                for _ in 0..200 {
                    drained.lock().extend(t.take());
                    std::thread::yield_now();
                }
            });
        });
        let mut all = drained.into_inner();
        all.extend(t.take());
        assert_eq!(all.len() as u64, WRITERS * PER_WRITER);
        // Per-writer sequence numbers must appear in append order even
        // across drain batches.
        for w in 0..WRITERS {
            let seqs: Vec<u64> =
                all.iter().filter(|r| r.rid >> 32 == w).map(|r| r.rid & 0xFFFF_FFFF).collect();
            assert_eq!(seqs.len() as u64, PER_WRITER, "writer {w} lost records");
            assert!(seqs.windows(2).all(|p| p[0] < p[1]), "writer {w} reordered");
        }
    }

    #[test]
    fn csv_is_virtual_time_ordered_for_real_pwc_exchange() {
        // Drive an actual eager PWC exchange and check the rendered CSV is
        // the canonical timeline: timestamps non-decreasing even though the
        // initiator's local-done record is appended after it probes, at a
        // clock later than the remote delivery it races with.
        use crate::{PhotonCluster, PhotonConfig};
        use photon_fabric::NetworkModel;

        let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), PhotonConfig::default());
        let (p0, p1) = (c.rank(0), c.rank(1));
        p0.tracer().enable();
        p1.tracer().enable();
        let b0 = p0.register_buffer(64).unwrap();
        let b1 = p1.register_buffer(64).unwrap();
        for i in 0..4u64 {
            // Cross traffic: each side posts, then surfaces the *remote*
            // event (whose delivery time is a full network latency out)
            // before its own local completion (timestamped a few ns after
            // the post). The local-done record is therefore appended after
            // a record with a much later timestamp.
            p0.put_with_completion(1, &b0, 0, 64, &b1.descriptor(), 0, 4 * i, 4 * i + 1).unwrap();
            p1.put_with_completion(0, &b1, 0, 64, &b0.descriptor(), 0, 4 * i + 2, 4 * i + 3)
                .unwrap();
            p0.wait_completion_matching(crate::ProbeFlags::Remote).unwrap();
            p0.wait_local(4 * i).unwrap();
            p1.wait_completion_matching(crate::ProbeFlags::Remote).unwrap();
            p1.wait_local(4 * i + 2).unwrap();
        }
        for p in [p0, p1] {
            let csv = p.tracer().to_csv();
            let ts: Vec<u64> = csv
                .lines()
                .skip(1)
                .map(|l| l.split(',').next().unwrap().parse().unwrap())
                .collect();
            assert!(!ts.is_empty());
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "CSV out of time order: {csv}");
        }
        // And the buffer (append) order genuinely differed from time order
        // on the initiator, so the sort above was load-bearing.
        let raw = p0.tracer().take();
        assert!(
            raw.windows(2).any(|w| w[0].ts > w[1].ts),
            "expected at least one append-order/time-order inversion"
        );
    }
}
