//! Collective operations built purely from put-with-completion.
//!
//! Photon exposes collectives so runtimes need not layer MPI alongside it:
//! a dissemination **barrier**, binomial-tree **broadcast**, binomial
//! **reduce** + broadcast forming **allreduce**, and a direct-put
//! **all-to-all** ("exchange").  Every primitive is implemented with the
//! same ledgers and eager rings as user traffic, in a reserved completion-id
//! namespace, so collective scaling measurements reflect the middleware's
//! real delivery costs.
//!
//! All ranks must invoke collectives in the same order (the usual
//! communicator discipline); each invocation takes a fresh generation number
//! so back-to-back collectives cannot cross.
//!
//! ```
//! use photon_core::{PhotonCluster, PhotonConfig, ReduceOp};
//! use photon_fabric::NetworkModel;
//!
//! let c = PhotonCluster::new(3, NetworkModel::ib_fdr(), PhotonConfig::default());
//! std::thread::scope(|s| {
//!     for p in c.ranks() {
//!         s.spawn(move || {
//!             let mut v = vec![p.rank() as u64];
//!             p.allreduce_u64(&mut v, ReduceOp::Sum).unwrap();
//!             assert_eq!(v[0], 3); // 0 + 1 + 2
//!             p.barrier().unwrap();
//!         });
//!     }
//! });
//! ```

use crate::obs::Stats;
use crate::probe::rid_space;
use crate::{Photon, PhotonError, Rank, Result};
use std::sync::atomic::Ordering;

const KIND_BARRIER: u8 = 1;
const KIND_BCAST: u8 = 2;
const KIND_REDUCE: u8 = 3;
const KIND_ALLREDUCE_BCAST: u8 = 4;
const KIND_A2A: u8 = 5;
const KIND_A2A_LOCAL: u8 = 6;
const KIND_GATHER: u8 = 7;
const KIND_SCATTER: u8 = 8;

/// Reduction operators over `u64` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise xor.
    Xor,
}

impl ReduceOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Xor => a ^ b,
        }
    }
}

impl Photon {
    fn next_gen(&self) -> u32 {
        self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Dissemination barrier: `ceil(log2(n))` rounds of empty PWC messages.
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let gen = self.next_gen();
        let mut dist = 1usize;
        let mut round = 0u8;
        while dist < n {
            let dst = (self.rank() + dist) % n;
            let rid = rid_space::collective(KIND_BARRIER, gen, round);
            self.send_internal(dst, &[], rid, None)?;
            self.wait_coll(rid)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast of `data` from `root`. Non-roots overwrite
    /// `data` with the received payload (it must have the right length).
    pub fn bcast(&self, root: Rank, data: &mut Vec<u8>) -> Result<()> {
        self.check_rank_pub(root)?;
        let gen = self.next_gen();
        self.bcast_internal(root, data, KIND_BCAST, gen)
    }

    fn bcast_internal(&self, root: Rank, data: &mut Vec<u8>, kind: u8, gen: u32) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let rid = rid_space::collective(kind, gen, 0);
        let vr = (self.rank() + n - root) % n;
        // Receive from the parent (strip the lowest set bit of vr).
        let mut recv_mask = 1usize;
        if vr != 0 {
            while vr & recv_mask == 0 {
                recv_mask <<= 1;
            }
            let (_src, payload, _ts) = self.wait_coll(rid)?;
            *data = payload;
        } else {
            recv_mask = n.next_power_of_two();
        }
        // Forward to children: masks below our receive bit.
        let mut m = recv_mask >> 1;
        while m >= 1 {
            if vr + m < n {
                let child = (vr + m + root) % n;
                self.send_internal(child, data, rid, None)?;
            }
            if m == 1 {
                break;
            }
            m >>= 1;
        }
        Ok(())
    }

    /// Binomial-tree reduction of `data` (element-wise `op`) to rank 0 of
    /// the virtual tree rooted at `root`; only `root` holds the full result
    /// on return.
    pub fn reduce_u64(&self, root: Rank, data: &mut [u64], op: ReduceOp) -> Result<()> {
        self.check_rank_pub(root)?;
        let gen = self.next_gen();
        self.reduce_internal(root, data, op, gen)
    }

    fn reduce_internal(&self, root: Rank, data: &mut [u64], op: ReduceOp, gen: u32) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let vr = (self.rank() + n - root) % n;
        let mut mask = 1usize;
        let mut round = 0u8;
        while mask < n {
            if vr & mask != 0 {
                // Send our partial to the parent and leave the tree.
                let parent = (vr - mask + root) % n;
                let rid = rid_space::collective(KIND_REDUCE, gen, round);
                let bytes = encode_u64s(data);
                self.send_internal(parent, &bytes, rid, None)?;
                return Ok(());
            } else if vr + mask < n {
                let rid = rid_space::collective(KIND_REDUCE, gen, round);
                let (_src, payload, _ts) = self.wait_coll(rid)?;
                let incoming = decode_u64s(&payload);
                if incoming.len() != data.len() {
                    return Err(PhotonError::Protocol("reduce length mismatch"));
                }
                for (d, v) in data.iter_mut().zip(incoming) {
                    *d = op.apply(*d, v);
                }
            }
            mask <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Allreduce: binomial reduce to `root = 0`, then broadcast. All ranks
    /// hold the reduced result on return.
    pub fn allreduce_u64(&self, data: &mut [u64], op: ReduceOp) -> Result<()> {
        let gen = self.next_gen();
        self.reduce_internal(0, data, op, gen)?;
        let mut bytes = encode_u64s(data);
        self.bcast_internal(0, &mut bytes, KIND_ALLREDUCE_BCAST, gen)?;
        let out = decode_u64s(&bytes);
        if out.len() != data.len() {
            return Err(PhotonError::Protocol("allreduce length mismatch"));
        }
        data.copy_from_slice(&out);
        Ok(())
    }

    /// Allreduce over `f64` (element-wise sum only; bit-exact trees).
    pub fn allreduce_f64_sum(&self, data: &mut [f64]) -> Result<()> {
        // Reduce in u64 bit-space is wrong for floats; go via a bytes tree
        // with an f64 combine. Reuse the u64 machinery with transmuted
        // payloads and a dedicated combine pass.
        let gen = self.next_gen();
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let vr = self.rank();
        let mut mask = 1usize;
        let mut round = 0u8;
        let mut done_sending = false;
        while mask < n {
            if vr & mask != 0 {
                let parent = vr - mask;
                let rid = rid_space::collective(KIND_REDUCE, gen, round);
                self.send_internal(parent, &encode_f64s(data), rid, None)?;
                done_sending = true;
                break;
            } else if vr + mask < n {
                let rid = rid_space::collective(KIND_REDUCE, gen, round);
                let (_src, payload, _ts) = self.wait_coll(rid)?;
                let incoming = decode_f64s(&payload);
                if incoming.len() != data.len() {
                    return Err(PhotonError::Protocol("allreduce length mismatch"));
                }
                for (d, v) in data.iter_mut().zip(incoming) {
                    *d += v;
                }
            }
            mask <<= 1;
            round += 1;
        }
        let _ = done_sending;
        let mut bytes = encode_f64s(data);
        self.bcast_internal(0, &mut bytes, KIND_ALLREDUCE_BCAST, gen)?;
        let out = decode_f64s(&bytes);
        data.copy_from_slice(&out);
        Ok(())
    }

    /// All-to-all exchange (`photon exchange`): rank `i`'s `send` block `j`
    /// lands in rank `j`'s `recv` block `i`.  Blocks are `send.len() / n`
    /// bytes and must fit the per-peer collective slot.
    ///
    /// Implemented with direct PWC puts into pre-registered collective
    /// scratch buffers — no barrier; completion counting synchronizes.
    pub fn alltoall(&self, send: &[u8], recv: &mut [u8]) -> Result<()> {
        let n = self.size();
        if send.len() != recv.len() || !send.len().is_multiple_of(n) {
            return Err(PhotonError::Protocol("alltoall buffer sizes must be n * block"));
        }
        let block = send.len() / n;
        if block > self.coll_slot_bytes() {
            return Err(PhotonError::Protocol("alltoall block exceeds collective slot"));
        }
        if n > 255 {
            return Err(PhotonError::Protocol("alltoall supports up to 255 ranks"));
        }
        let me = self.rank();
        if n == 1 {
            recv.copy_from_slice(send);
            return Ok(());
        }
        let gen = self.next_gen();
        let rid = rid_space::collective(KIND_A2A, gen, 0);
        // Stage the send blocks into registered memory.
        self.coll_send_buf().write_at(0, send);
        self.clock_ref().advance(self.copy_ns_pub(send.len()));
        let slot = self.coll_slot_bytes();
        for j in 0..n {
            if j == me {
                continue;
            }
            let dst = self.coll_key(j);
            let local_rid = rid_space::collective(KIND_A2A_LOCAL, gen, j as u8);
            self.put_with_completion(
                j,
                self.coll_send_buf(),
                j * block,
                block,
                &dst,
                me * slot,
                local_rid,
                rid,
            )?;
        }
        // Our own block short-circuits.
        recv[me * block..(me + 1) * block].copy_from_slice(&send[me * block..(me + 1) * block]);
        // Wait for everyone's block to land here, then for our injections.
        for _ in 0..n - 1 {
            self.wait_coll(rid)?;
        }
        for j in 0..n {
            if j != me {
                self.wait_local(rid_space::collective(KIND_A2A_LOCAL, gen, j as u8))?;
            }
        }
        // Copy out of the collective landing slots.
        for j in 0..n {
            if j == me {
                continue;
            }
            let data = self.coll_recv_buf().to_vec(j * slot, block);
            recv[j * block..(j + 1) * block].copy_from_slice(&data);
        }
        self.clock_ref().advance(self.copy_ns_pub((n - 1) * block));
        Stats::bump(&self.stats_ref().rendezvous_ops);
        Ok(())
    }
}

impl Photon {
    /// Gather: every rank contributes `block` bytes; `root` receives them
    /// concatenated in rank order (`out` must be `n * block.len()` bytes;
    /// ignored on non-roots).
    pub fn gather(&self, root: Rank, block: &[u8], out: &mut [u8]) -> Result<()> {
        self.check_rank_pub(root)?;
        let n = self.size();
        let gen = self.next_gen();
        let rid = rid_space::collective(KIND_GATHER, gen, 0);
        if self.rank() == root {
            if out.len() != n * block.len() {
                return Err(PhotonError::Protocol("gather output must be n * block"));
            }
            out[root * block.len()..(root + 1) * block.len()].copy_from_slice(block);
            // Collect n-1 contributions; senders are identified per event.
            let mut seen = 0;
            while seen < n - 1 {
                let (src, payload, _ts) = self.wait_coll(rid)?;
                if payload.len() != block.len() {
                    return Err(PhotonError::Protocol("gather block length mismatch"));
                }
                out[src * block.len()..(src + 1) * block.len()].copy_from_slice(&payload);
                seen += 1;
            }
            Ok(())
        } else {
            self.send_internal(root, block, rid, None)
        }
    }

    /// Scatter: `root` holds `n * block_len` bytes; each rank receives its
    /// rank-indexed block into `out`.
    pub fn scatter(&self, root: Rank, data: &[u8], out: &mut [u8]) -> Result<()> {
        self.check_rank_pub(root)?;
        let n = self.size();
        let gen = self.next_gen();
        let rid = rid_space::collective(KIND_SCATTER, gen, 0);
        if self.rank() == root {
            if !data.len().is_multiple_of(n) {
                return Err(PhotonError::Protocol("scatter input must be n * block"));
            }
            let block = data.len() / n;
            if out.len() != block {
                return Err(PhotonError::Protocol("scatter output must be one block"));
            }
            for j in 0..n {
                if j == root {
                    out.copy_from_slice(&data[root * block..(root + 1) * block]);
                } else {
                    self.send_internal(j, &data[j * block..(j + 1) * block], rid, None)?;
                }
            }
            Ok(())
        } else {
            let (_src, payload, _ts) = self.wait_coll(rid)?;
            if payload.len() != out.len() {
                return Err(PhotonError::Protocol("scatter block length mismatch"));
            }
            out.copy_from_slice(&payload);
            Ok(())
        }
    }
}

fn encode_u64s(data: &[u64]) -> Vec<u8> {
    data.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
}

fn encode_f64s(data: &[f64]) -> Vec<u8> {
    data.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhotonCluster, PhotonConfig};
    use photon_fabric::NetworkModel;

    fn run_all(c: &PhotonCluster, f: impl Fn(&Photon) + Sync) {
        std::thread::scope(|s| {
            for p in c.ranks() {
                let f = &f;
                s.spawn(move || f(p));
            }
        });
    }

    #[test]
    fn barrier_all_sizes() {
        for n in [1, 2, 3, 4, 7, 8] {
            let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
            run_all(&c, |p| {
                for _ in 0..3 {
                    p.barrier().unwrap();
                }
            });
        }
    }

    #[test]
    fn barrier_latency_grows_with_rounds() {
        // log2 scaling: an 8-rank barrier takes ~3 rounds, a 2-rank one 1.
        let lat = |n: usize| {
            let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
            run_all(&c, |p| p.barrier().unwrap());
            c.ranks().iter().map(|p| p.now().as_nanos()).max().unwrap()
        };
        let l2 = lat(2);
        let l8 = lat(8);
        assert!(l8 > 2 * l2, "8 ranks ({l8}ns) should be ~3x of 2 ranks ({l2}ns)");
    }

    #[test]
    fn bcast_from_each_root() {
        let n = 5;
        for root in 0..n {
            let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
            run_all(&c, |p| {
                let mut data =
                    if p.rank() == root { b"broadcast payload".to_vec() } else { vec![0u8; 17] };
                p.bcast(root, &mut data).unwrap();
                assert_eq!(data, b"broadcast payload");
            });
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        let n = 6;
        let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
        run_all(&c, |p| {
            let mut data = vec![p.rank() as u64 + 1, 10 * (p.rank() as u64 + 1)];
            p.reduce_u64(0, &mut data, ReduceOp::Sum).unwrap();
            if p.rank() == 0 {
                assert_eq!(data, vec![21, 210]); // 1+..+6, 10+..+60
            }
        });
    }

    #[test]
    fn allreduce_ops() {
        let n = 4;
        let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
        run_all(&c, |p| {
            let r = p.rank() as u64;
            let mut sum = vec![r];
            p.allreduce_u64(&mut sum, ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![1 + 2 + 3]);
            let mut mx = vec![r];
            p.allreduce_u64(&mut mx, ReduceOp::Max).unwrap();
            assert_eq!(mx, vec![3]);
            let mut mn = vec![r + 5];
            p.allreduce_u64(&mut mn, ReduceOp::Min).unwrap();
            assert_eq!(mn, vec![5]);
            let mut xr = vec![1u64 << p.rank()];
            p.allreduce_u64(&mut xr, ReduceOp::Xor).unwrap();
            assert_eq!(xr, vec![0b1111]);
        });
    }

    #[test]
    fn allreduce_f64() {
        let n = 3;
        let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
        run_all(&c, |p| {
            let mut data = vec![0.5 * (p.rank() as f64 + 1.0), 1.0];
            p.allreduce_f64_sum(&mut data).unwrap();
            assert!((data[0] - 3.0).abs() < 1e-12);
            assert!((data[1] - 3.0).abs() < 1e-12);
        });
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let n = 5;
        for root in [0usize, 3] {
            let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
            run_all(&c, |p| {
                let block = vec![p.rank() as u8; 4];
                let mut out = vec![0u8; if p.rank() == root { n * 4 } else { 0 }];
                p.gather(root, &block, &mut out).unwrap();
                if p.rank() == root {
                    for j in 0..n {
                        assert_eq!(&out[j * 4..(j + 1) * 4], vec![j as u8; 4].as_slice());
                    }
                }
            });
        }
    }

    #[test]
    fn scatter_distributes_blocks() {
        let n = 4;
        let root = 1;
        let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
        run_all(&c, |p| {
            let data: Vec<u8> = if p.rank() == root {
                (0..n).flat_map(|j| vec![10 + j as u8; 8]).collect()
            } else {
                Vec::new()
            };
            let mut out = vec![0u8; 8];
            p.scatter(root, &data, &mut out).unwrap();
            assert_eq!(out, vec![10 + p.rank() as u8; 8]);
        });
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let n = 3;
        let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
        run_all(&c, |p| {
            let mine = vec![p.rank() as u8 + 1; 16];
            let mut gathered = vec![0u8; if p.rank() == 0 { n * 16 } else { 0 }];
            p.gather(0, &mine, &mut gathered).unwrap();
            let mut back = vec![0u8; 16];
            p.scatter(0, &gathered, &mut back).unwrap();
            assert_eq!(back, mine, "scatter(gather(x)) == x");
        });
    }

    #[test]
    fn alltoall_exchanges_blocks() {
        let n = 4;
        let block = 8;
        let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
        run_all(&c, |p| {
            let me = p.rank() as u8;
            // send block j = [i, j, i, j, ...]
            let mut send = vec![0u8; n * block];
            for j in 0..n {
                for k in 0..block {
                    send[j * block + k] = if k % 2 == 0 { me } else { j as u8 };
                }
            }
            let mut recv = vec![0u8; n * block];
            p.alltoall(&send, &mut recv).unwrap();
            for j in 0..n {
                for k in 0..block {
                    let expect = if k % 2 == 0 { j as u8 } else { me };
                    assert_eq!(recv[j * block + k], expect, "rank {me} block {j} byte {k}");
                }
            }
        });
    }

    #[test]
    fn alltoall_rejects_bad_shapes() {
        let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
        run_all(&c, |p| {
            let send = vec![0u8; 10];
            let mut recv = vec![0u8; 12];
            assert!(matches!(p.alltoall(&send, &mut recv), Err(PhotonError::Protocol(_))));
        });
    }

    #[test]
    fn back_to_back_collectives_do_not_cross() {
        let n = 4;
        let c = PhotonCluster::new(n, NetworkModel::ib_fdr(), PhotonConfig::default());
        run_all(&c, |p| {
            for round in 0..10u64 {
                let mut v = vec![round + p.rank() as u64];
                p.allreduce_u64(&mut v, ReduceOp::Sum).unwrap();
                assert_eq!(v[0], 4 * round + 6);
                p.barrier().unwrap();
            }
        });
    }
}
