//! Completion events and probing types.
//!
//! Photon surfaces progress through *probing*: the application (or the
//! runtime's progress thread) repeatedly asks the context for the next
//! completion event.  Local events answer "may I reuse / free this buffer?";
//! remote events answer "what just landed in my memory, and what does it
//! mean?" — the identifier is the meaning, assigned by the initiator.

use crate::Rank;
use photon_fabric::VTime;

/// Which event classes a probe should consider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeFlags {
    /// Only initiator-side (local) completions.
    Local,
    /// Only target-side (remote) completions.
    Remote,
    /// Either (local drained first).
    Any,
}

/// A remote completion: a peer's PWC/send has fully arrived here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteEvent {
    /// The initiating rank.
    pub src: Rank,
    /// The remote completion identifier the initiator attached.
    pub rid: u64,
    /// Payload size (0 for pure completions).
    pub size: usize,
    /// For destination-less sends: the payload itself.
    pub payload: Option<Vec<u8>>,
    /// Virtual arrival time.
    pub ts: VTime,
}

/// A completion event returned by probing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An operation initiated locally has completed locally: the local
    /// buffer is reusable.
    Local {
        /// The local completion identifier passed at initiation.
        rid: u64,
        /// Virtual time of local completion (injection finished).
        ts: VTime,
    },
    /// A peer's operation has completed at this rank.
    Remote(RemoteEvent),
}

impl Event {
    /// The completion identifier regardless of direction.
    pub fn rid(&self) -> u64 {
        match self {
            Event::Local { rid, .. } => *rid,
            Event::Remote(r) => r.rid,
        }
    }

    /// The event's virtual timestamp.
    pub fn ts(&self) -> VTime {
        match self {
            Event::Local { ts, .. } => *ts,
            Event::Remote(r) => r.ts,
        }
    }
}

/// Identifier namespaces.
///
/// User-visible rids live below [`rid_space::RESERVED_BASE`]; the middleware reserves
/// the top byte for collectives and internal control so they can share the
/// delivery channels without colliding with application identifiers.
pub mod rid_space {
    /// All rids at or above this value are reserved for the middleware.
    pub const RESERVED_BASE: u64 = 0xFF00_0000_0000_0000;
    /// Collective-operation namespace tag.
    pub const COLLECTIVE: u64 = 0xFFC0_0000_0000_0000;

    /// Does `rid` belong to the middleware-internal namespace?
    pub fn is_reserved(rid: u64) -> bool {
        rid >= RESERVED_BASE
    }

    /// Encode a collective rid from `(kind, generation, round, src)`.
    pub fn collective(kind: u8, generation: u32, round: u8) -> u64 {
        COLLECTIVE | ((kind as u64) << 40) | ((generation as u64) << 8) | round as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let e = Event::Local { rid: 5, ts: VTime(10) };
        assert_eq!(e.rid(), 5);
        assert_eq!(e.ts(), VTime(10));
        let r = Event::Remote(RemoteEvent { src: 2, rid: 9, size: 4, payload: None, ts: VTime(3) });
        assert_eq!(r.rid(), 9);
        assert_eq!(r.ts(), VTime(3));
    }

    #[test]
    fn rid_namespaces_disjoint() {
        assert!(!rid_space::is_reserved(0));
        assert!(!rid_space::is_reserved(0xFEFF_FFFF_FFFF_FFFF));
        assert!(rid_space::is_reserved(rid_space::collective(1, 0, 0)));
        // Distinct parameters yield distinct rids.
        let a = rid_space::collective(1, 7, 0);
        let b = rid_space::collective(1, 7, 1);
        let c = rid_space::collective(2, 7, 0);
        let d = rid_space::collective(1, 8, 0);
        assert!(a != b && a != c && a != d && b != c);
    }
}
