//! Completion events and probing types.
//!
//! Photon surfaces progress through *probing*: the application (or the
//! runtime's progress thread) repeatedly asks the context for the next
//! completion event.  Local events answer "may I reuse / free this buffer?";
//! remote events answer "what just landed in my memory, and what does it
//! mean?" — the identifier is the meaning, assigned by the initiator.

use crate::Rank;
use photon_fabric::{VTime, WcStatus};

/// Which event classes a probe should consider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeFlags {
    /// Only initiator-side (local) completions.
    Local,
    /// Only target-side (remote) completions.
    Remote,
    /// Either class, drained fairly: successive probes alternate which
    /// class they try first, so a flood of one class cannot starve the
    /// other.
    Any,
}

/// A remote completion: a peer's PWC/send has fully arrived here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteEvent {
    /// The initiating rank.
    pub src: Rank,
    /// The remote completion identifier the initiator attached.
    pub rid: u64,
    /// Payload size (0 for pure completions).
    pub size: usize,
    /// For destination-less sends: the payload itself.
    pub payload: Option<Vec<u8>>,
    /// Virtual arrival time.
    pub ts: VTime,
    /// Completion status. Anything but [`WcStatus::Success`] means the
    /// operation this event reports *failed* (peer death, partition flush)
    /// and `payload` is absent.
    pub status: WcStatus,
}

/// Which side of the wire a [`Completion`] was observed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionClass {
    /// Initiator-side: an operation posted here finished locally (the local
    /// buffer is reusable).
    Local,
    /// Target-side: a peer's operation finished at this rank.
    Remote,
}

/// The consolidated completion view returned by every probe/wait path
/// (`Photon::poll_completion` / `poll_completions` / `wait_completion` /
/// `wait_completion_matching` / `wait_completion_from`).
///
/// One shape for both directions: rid, peer, timestamp, status, and class,
/// plus the payload/size a remote send delivers. Rid-addressed waits
/// ([`crate::Photon::wait_local`]) still return bare `(VTime, status)`
/// information — the caller already knows the rid — and [`RemoteEvent`]
/// survives as the payload-bearing remote half, interconverting losslessly
/// with [`CompletionClass::Remote`] completions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The completion identifier: the `local` id the initiator passed (for
    /// [`CompletionClass::Local`]) or the `remote` id it attached (for
    /// [`CompletionClass::Remote`]).
    pub rid: u64,
    /// The other end of the operation: destination rank for local
    /// completions, initiating rank for remote ones.
    pub peer: Rank,
    /// Virtual completion time (injection finished / arrival).
    pub ts: VTime,
    /// Completion status; anything but [`WcStatus::Success`] means the
    /// operation failed (peer death, partition flush).
    pub status: WcStatus,
    /// Which side of the wire this completion was observed on.
    pub class: CompletionClass,
    /// Payload size in bytes (0 for pure completions and local events).
    pub size: usize,
    /// For destination-less sends surfacing remotely: the payload itself.
    pub payload: Option<Vec<u8>>,
}

impl Completion {
    /// Did the operation behind this completion succeed?
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }

    /// Is this an initiator-side (local) completion?
    pub fn is_local(&self) -> bool {
        self.class == CompletionClass::Local
    }

    /// Is this a target-side (remote) completion?
    pub fn is_remote(&self) -> bool {
        self.class == CompletionClass::Remote
    }

    pub(crate) fn local(rid: u64, peer: Rank, ts: VTime, status: WcStatus) -> Completion {
        Completion { rid, peer, ts, status, class: CompletionClass::Local, size: 0, payload: None }
    }

    #[cfg(test)]
    pub(crate) fn into_remote_event(self) -> RemoteEvent {
        debug_assert_eq!(self.class, CompletionClass::Remote);
        RemoteEvent {
            src: self.peer,
            rid: self.rid,
            size: self.size,
            payload: self.payload,
            ts: self.ts,
            status: self.status,
        }
    }
}

impl From<RemoteEvent> for Completion {
    fn from(r: RemoteEvent) -> Completion {
        Completion {
            rid: r.rid,
            peer: r.src,
            ts: r.ts,
            status: r.status,
            class: CompletionClass::Remote,
            size: r.size,
            payload: r.payload,
        }
    }
}

/// Identifier namespaces.
///
/// User-visible rids live below [`rid_space::RESERVED_BASE`]; the middleware reserves
/// the top byte for collectives and internal control so they can share the
/// delivery channels without colliding with application identifiers.
pub mod rid_space {
    /// All rids at or above this value are reserved for the middleware.
    pub const RESERVED_BASE: u64 = 0xFF00_0000_0000_0000;
    /// Collective-operation namespace tag (occupies the top 10 bits).
    pub const COLLECTIVE: u64 = 0xFFC0_0000_0000_0000;
    /// Gossip membership frames (see [`crate::membership`]): routed to the
    /// internal inbox like collectives, never surfaced as user events.
    pub const GOSSIP: u64 = 0xFF47_0551_0000_0001;

    /// Width of the `kind` field (bits 40..48).
    pub const KIND_BITS: u32 = 8;
    /// Width of the `generation` field (bits 8..40).
    pub const GENERATION_BITS: u32 = 32;
    /// Width of the `round` field (bits 0..8).
    pub const ROUND_BITS: u32 = 8;

    const KIND_SHIFT: u32 = GENERATION_BITS + ROUND_BITS;
    const GENERATION_SHIFT: u32 = ROUND_BITS;
    const KIND_MASK: u64 = (1 << KIND_BITS) - 1;
    const GENERATION_MASK: u64 = (1 << GENERATION_BITS) - 1;
    const ROUND_MASK: u64 = (1 << ROUND_BITS) - 1;

    /// Does `rid` belong to the middleware-internal namespace?
    pub fn is_reserved(rid: u64) -> bool {
        rid >= RESERVED_BASE
    }

    /// Encode a collective rid from `(kind, generation, round)`.
    ///
    /// Layout: `COLLECTIVE | kind:8 << 40 | generation:32 << 8 | round:8`.
    /// Each field is masked to its declared width (and width violations are
    /// debug-asserted), so an out-of-range value can never smear into an
    /// adjacent field or the namespace tag.
    pub fn collective(kind: u8, generation: u32, round: u8) -> u64 {
        debug_assert_eq!(kind as u64 & !KIND_MASK, 0, "collective kind exceeds field width");
        debug_assert_eq!(
            generation as u64 & !GENERATION_MASK,
            0,
            "collective generation exceeds field width"
        );
        debug_assert_eq!(round as u64 & !ROUND_MASK, 0, "collective round exceeds field width");
        COLLECTIVE
            | ((kind as u64 & KIND_MASK) << KIND_SHIFT)
            | ((generation as u64 & GENERATION_MASK) << GENERATION_SHIFT)
            | (round as u64 & ROUND_MASK)
    }

    /// Decode a collective rid back into `(kind, generation, round)`.
    pub fn collective_parts(rid: u64) -> (u8, u32, u8) {
        (
            ((rid >> KIND_SHIFT) & KIND_MASK) as u8,
            ((rid >> GENERATION_SHIFT) & GENERATION_MASK) as u32,
            (rid & ROUND_MASK) as u8,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_accessors_and_remote_round_trip() {
        let c = Completion::local(5, 3, VTime(10), WcStatus::Success);
        assert!(c.is_ok() && c.is_local() && !c.is_remote());
        assert_eq!((c.rid, c.peer, c.ts), (5, 3, VTime(10)));

        let r = RemoteEvent {
            src: 2,
            rid: 9,
            size: 4,
            payload: Some(vec![1, 2, 3, 4]),
            ts: VTime(3),
            status: WcStatus::Success,
        };
        let c: Completion = r.clone().into();
        assert!(c.is_remote() && !c.is_local());
        assert_eq!((c.peer, c.rid, c.size), (2, 9, 4));
        assert_eq!(c.clone().into_remote_event(), r);

        let bad = Completion::local(1, 0, VTime(1), WcStatus::FlushErr);
        assert!(!bad.is_ok());
    }

    #[test]
    fn rid_namespaces_disjoint() {
        assert!(!rid_space::is_reserved(0));
        assert!(!rid_space::is_reserved(0xFEFF_FFFF_FFFF_FFFF));
        assert!(rid_space::is_reserved(rid_space::collective(1, 0, 0)));
        // Distinct parameters yield distinct rids.
        let a = rid_space::collective(1, 7, 0);
        let b = rid_space::collective(1, 7, 1);
        let c = rid_space::collective(2, 7, 0);
        let d = rid_space::collective(1, 8, 0);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn collective_rid_roundtrips() {
        for (k, g, r) in [(0, 0, 0), (255, u32::MAX, 255), (3, 0xDEAD_BEEF, 17)] {
            let rid = rid_space::collective(k, g, r);
            assert!(rid_space::is_reserved(rid));
            assert_eq!(rid & rid_space::COLLECTIVE, rid_space::COLLECTIVE, "tag intact");
            assert_eq!(rid_space::collective_parts(rid), (k, g, r));
        }
    }

    #[test]
    fn collective_fields_never_smear() {
        // Extreme field values stay inside their lanes: the namespace tag
        // survives and neighboring fields decode unchanged.
        let rid = rid_space::collective(u8::MAX, u32::MAX, u8::MAX);
        assert_eq!(rid_space::collective_parts(rid), (u8::MAX, u32::MAX, u8::MAX));
        let (k, g, r) = rid_space::collective_parts(rid_space::collective(u8::MAX, 0, 0));
        assert_eq!((k, g, r), (u8::MAX, 0, 0));
    }
}
