//! Epidemic (gossip) membership over the Photon eager path.
//!
//! SWIM-style dissemination layered on the per-peer health machine: every
//! rank keeps a *view* — per-member `(incarnation, version, status)` triples
//! — and pushes a bounded set of the freshest rumors to a few random peers
//! per round. A receiver merges what it learns and replies with anything it
//! knows better (push-pull anti-entropy), so liveness, joins and departures
//! reach every rank in O(log N) rounds without any rank ever paying O(N)
//! per round.
//!
//! Rumor order is monotone and commutative, so merges converge regardless
//! of delivery order:
//!
//! * a higher **incarnation** (the fabric's revive counter) always wins —
//!   a rejoined rank's `Alive(inc+1)` claim supersedes the `Dead(inc)`
//!   rumors of its previous life, and a flushed generation can never be
//!   resurrected by stale gossip;
//! * at equal incarnation, **Dead is sticky** (death of a generation is a
//!   verdict, not an opinion) and otherwise the higher **version** wins —
//!   a suspected rank refutes by publishing `Alive` at a higher version,
//!   exactly SWIM's refutation rule with the version taking the place of
//!   an incarnation bump (our incarnations are fabric-owned).
//!
//! Rumors originate from three sources, all local evidence: the health
//! machine's dead notifications ([`Photon::take_dead_peers`], fed in by the
//! embedder via [`Membership::note_dead`]), the live-connection health
//! snapshot ([`Photon::peer_states`] — Suspect rumors and direct-evidence
//! refutations), and each rank's own alive self-claim refreshed every
//! round.
//!
//! Gossip frames ride the eager path under a reserved rid
//! ([`crate::probe::rid_space::GOSSIP`]), so they route to the
//! middleware-internal inbox
//! like collective traffic and never surface as user events — application
//! probes, quiescence accounting and campaign digests are unaffected.
//! Everything is driven by explicit [`Membership::tick`] calls (the
//! runtime's progress loop, or a simulation stepper), keeping the protocol
//! deterministic under the simtest harness.

use crate::photon::{PeerHealthState, Photon};
use crate::{PhotonError, Rank};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Membership/gossip configuration.
#[derive(Debug, Clone, Copy)]
pub struct MembershipConfig {
    /// Peers pushed to per gossip round.
    pub fanout: usize,
    /// Minimum virtual nanoseconds between rounds; `0` runs a round on
    /// every [`Membership::tick`] call.
    pub interval_ns: u64,
    /// Maximum rumors carried per gossip message (freshest first, self
    /// always included); bounds message size independent of cluster size.
    pub max_rumors: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig { fanout: 2, interval_ns: 100_000, max_rumors: 64 }
    }
}

/// Disseminated liveness status of one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberStatus {
    /// Believed reachable.
    Alive,
    /// Some rank's health machine missed its response deadline; awaiting
    /// refutation or a death verdict.
    Suspect,
    /// This incarnation was declared dead; sticky until the fabric revives
    /// the rank into a higher incarnation.
    Dead,
}

impl MemberStatus {
    fn encode(self) -> u8 {
        match self {
            MemberStatus::Alive => 0,
            MemberStatus::Suspect => 1,
            MemberStatus::Dead => 2,
        }
    }

    fn decode(b: u8) -> Option<MemberStatus> {
        match b {
            0 => Some(MemberStatus::Alive),
            1 => Some(MemberStatus::Suspect),
            2 => Some(MemberStatus::Dead),
            _ => None,
        }
    }
}

/// One member's disseminated state, as seen by a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberEntry {
    /// The member's rank.
    pub rank: Rank,
    /// Fabric incarnation the rumor talks about.
    pub incarnation: u64,
    /// Refutation counter within the incarnation (higher wins at equal
    /// incarnation, except Dead is sticky).
    pub version: u64,
    /// The rumored status.
    pub status: MemberStatus,
}

/// Wire size of one rumor: u32 rank, u64 incarnation, u64 version,
/// u8 status.
const RUMOR_BYTES: usize = 4 + 8 + 8 + 1;
/// Message header: u8 kind (0 = push, 1 = reply), u32 rumor count.
const MSG_HDR: usize = 1 + 4;
const MSG_PUSH: u8 = 0;
const MSG_REPLY: u8 = 1;

crate::counter_registry! {
    /// Atomic gossip counters for one rank's membership instance.
    registry GossipCounters;
    /// A point-in-time copy of a rank's gossip statistics.
    snapshot GossipStats;
    table GOSSIP_COUNTERS;
    counters {
        /// Gossip rounds run (interval-gated ticks that actually pushed).
        gossip_rounds,
        /// Gossip messages sent (pushes and replies).
        gossip_msgs_tx,
        /// Gossip messages received and merged.
        gossip_msgs_rx,
        /// Rumors carried by sent messages.
        rumors_tx,
        /// Rumors received (before the merge filter).
        rumors_rx,
        /// Received rumors that changed the local view.
        rumors_applied,
        /// Deaths learned from this rank's own health machine.
        deaths_direct,
        /// Deaths learned from gossip before local detection.
        deaths_gossip,
        /// Suspect rumors this rank originated from its health snapshot.
        suspects_rumored,
        /// Suspect entries refuted by direct evidence or self-claims.
        refutations,
        /// Gossip sends that failed for a reason other than a dead peer.
        gossip_send_failures,
    }
}

#[derive(Debug, Clone, Copy)]
struct Ent {
    inc: u64,
    version: u64,
    status: MemberStatus,
    /// Local round in which this entry last changed: freshness key for
    /// bounded rumor selection.
    touched: u64,
    /// Remaining rounds this entry may be piggybacked on pushes — SWIM's
    /// per-rumor retransmit budget, reset to λ·log₂(n)+c on every view
    /// change. Guarantees each change gets enough epidemic transmissions
    /// to cover the cluster w.h.p., then stops consuming rumor slots (the
    /// pull half of anti-entropy covers any straggler).
    sends_left: u32,
}

#[derive(Debug)]
struct View {
    entries: BTreeMap<Rank, Ent>,
    rng: u64,
    round: u64,
    last_round_ns: u64,
    started: bool,
}

/// One rank's gossip membership instance. Owns nothing inside the Photon
/// context; the embedder drives it with [`Membership::tick`] and feeds it
/// dead-peer notifications.
#[derive(Debug)]
pub struct Membership {
    photon: Arc<Photon>,
    cfg: MembershipConfig,
    /// Retransmit budget granted to every view change: 3·⌈log₂(n)⌉ + 4
    /// rounds of piggybacking (each reaching `fanout` targets).
    retransmit: u32,
    view: Mutex<View>,
    stats: GossipCounters,
}

impl Membership {
    /// Create the instance for `photon`'s rank. `seed` derives the target
    /// selection stream (mix the rank in for per-rank streams).
    pub fn new(photon: Arc<Photon>, cfg: MembershipConfig, seed: u64) -> Membership {
        let rank = photon.rank();
        let inc = photon.self_incarnation();
        let n = photon.size().max(2) as u64;
        let retransmit = 3 * (u64::BITS - (n - 1).leading_zeros()) + 4;
        let mut entries = BTreeMap::new();
        entries.insert(
            rank,
            Ent {
                inc,
                version: 1,
                status: MemberStatus::Alive,
                touched: 0,
                sends_left: retransmit,
            },
        );
        Membership {
            photon,
            cfg,
            retransmit,
            view: Mutex::new(View {
                entries,
                rng: seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                round: 0,
                last_round_ns: 0,
                started: false,
            }),
            stats: GossipCounters::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MembershipConfig {
        &self.cfg
    }

    /// Gossip statistics.
    pub fn stats(&self) -> GossipStats {
        self.stats.snapshot()
    }

    /// Rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.view.lock().round
    }

    /// The current view, sorted by rank. Only members this rank has heard
    /// about appear — an entry-less rank is implicitly `Alive(0)`.
    pub fn view(&self) -> Vec<MemberEntry> {
        self.view
            .lock()
            .entries
            .iter()
            .map(|(&rank, e)| MemberEntry {
                rank,
                incarnation: e.inc,
                version: e.version,
                status: e.status,
            })
            .collect()
    }

    /// The rumored status of `rank` (implicitly alive when unheard-of).
    pub fn status_of(&self, rank: Rank) -> MemberStatus {
        self.view.lock().entries.get(&rank).map_or(MemberStatus::Alive, |e| e.status)
    }

    /// The full entry for `rank`, if this rank has heard of it. O(log n) —
    /// convergence checkers over large clusters use this instead of
    /// cloning [`Membership::view`] per query.
    pub fn entry_of(&self, rank: Rank) -> Option<MemberEntry> {
        self.view.lock().entries.get(&rank).map(|e| MemberEntry {
            rank,
            incarnation: e.inc,
            version: e.version,
            status: e.status,
        })
    }

    /// Approximate heap bytes held by the view — the membership share of
    /// the per-rank state the churn memory-bound test pins.
    pub fn state_bytes(&self) -> usize {
        self.view.lock().entries.len() * (std::mem::size_of::<Rank>() + std::mem::size_of::<Ent>())
    }

    /// Record a death detected by this rank's own health machine. The
    /// incarnation comes from the middleware's dead map so the rumor names
    /// the generation that actually died.
    pub fn note_dead(&self, peer: Rank) {
        let inc = self.photon.dead_incarnation(peer).unwrap_or(0);
        let mut v = self.view.lock();
        let round = v.round;
        if Self::merge_one(
            &mut v,
            round,
            self.retransmit,
            MemberEntry {
                rank: peer,
                incarnation: inc,
                version: u64::MAX,
                status: MemberStatus::Dead,
            },
        ) {
            GossipCounters::bump(&self.stats.deaths_direct);
        }
    }

    /// Drive the protocol: drain and merge every pending gossip frame,
    /// answer pushes (the pull half of anti-entropy), then — when the
    /// round interval has elapsed — refresh local evidence and push the
    /// freshest rumors to `fanout` random peers. Returns the number of
    /// gossip messages sent. Send failures are absorbed: a dead target is
    /// itself fresh evidence, anything else is counted and retried by
    /// later rounds.
    pub fn tick(&self) -> usize {
        let mut sent = 0;
        // A progress pass routes any frames the fabric has delivered but
        // nobody has polled for, then the inbox drain merges them — ticks
        // are self-contained even without a separate progress driver.
        let _ = self.photon.progress();
        // Inbox first: replies merged before we select rumors keeps the
        // push half as fresh as possible.
        let inbox = self.photon.gossip_inbox();
        for (src, payload, _ts) in inbox {
            sent += self.on_message(src, &payload);
        }

        let now = self.photon.now().as_nanos();
        {
            let v = self.view.lock();
            if v.started && now < v.last_round_ns.saturating_add(self.cfg.interval_ns) {
                return sent;
            }
        }
        sent += self.round(now);
        sent
    }

    // ------------------------------------------------------------ internals

    /// One gossip round: local evidence refresh, then fanout pushes.
    fn round(&self, now_ns: u64) -> usize {
        let self_rank = self.photon.rank();
        let n = self.photon.size();

        // Local evidence: health snapshot + self-claim.
        let states = self.photon.peer_states();
        let self_inc = self.photon.self_incarnation();
        let mut targets: Vec<Rank> = Vec::with_capacity(self.cfg.fanout);
        let msg;
        {
            let mut v = self.view.lock();
            v.round += 1;
            v.last_round_ns = now_ns;
            v.started = true;
            let round = v.round;
            for (peer, inc, health) in states {
                let cur = v.entries.get(&peer).copied();
                match health {
                    PeerHealthState::Suspect => {
                        // Suspicion is news only while the view still says
                        // Alive at this incarnation.
                        let rumor_worthy = cur.is_none_or(|e| {
                            e.inc < inc || (e.inc == inc && e.status == MemberStatus::Alive)
                        });
                        if rumor_worthy {
                            let version = cur.map_or(1, |e| {
                                if e.inc < inc {
                                    1
                                } else {
                                    e.version.saturating_add(1)
                                }
                            });
                            if Self::merge_one(
                                &mut v,
                                round,
                                self.retransmit,
                                MemberEntry {
                                    rank: peer,
                                    incarnation: inc,
                                    version,
                                    status: MemberStatus::Suspect,
                                },
                            ) {
                                GossipCounters::bump(&self.stats.suspects_rumored);
                            }
                        }
                    }
                    PeerHealthState::Healthy => {
                        // Direct evidence refutes a same-incarnation
                        // Suspect rumor (and advertises newly met
                        // incarnations).
                        let refute = cur.is_some_and(|e| {
                            e.inc < inc || (e.inc == inc && e.status == MemberStatus::Suspect)
                        });
                        if refute {
                            let version = cur.map_or(1, |e| {
                                if e.inc < inc {
                                    1
                                } else {
                                    e.version.saturating_add(1)
                                }
                            });
                            if Self::merge_one(
                                &mut v,
                                round,
                                self.retransmit,
                                MemberEntry {
                                    rank: peer,
                                    incarnation: inc,
                                    version,
                                    status: MemberStatus::Alive,
                                },
                            ) {
                                GossipCounters::bump(&self.stats.refutations);
                            }
                        }
                    }
                    PeerHealthState::Dead => {
                        // The dead notification also arrives via
                        // note_dead; merging here just makes the round
                        // self-contained.
                        Self::merge_one(
                            &mut v,
                            round,
                            self.retransmit,
                            MemberEntry {
                                rank: peer,
                                incarnation: inc,
                                version: u64::MAX,
                                status: MemberStatus::Dead,
                            },
                        );
                    }
                }
            }
            // Self-claim: alive at the current fabric incarnation, version
            // bumped so it outranks any same-incarnation Suspect rumor.
            let self_ent = v.entries.get(&self_rank).copied();
            let (version, changed) = match self_ent {
                Some(e) if e.inc == self_inc && e.status == MemberStatus::Alive => {
                    (e.version, false)
                }
                // New incarnation: the refutation counter restarts (the old
                // generation's entry may sit at the Dead sentinel version).
                Some(e) if e.inc < self_inc => (1, true),
                Some(e) if e.inc == self_inc => (e.version.saturating_add(1), true),
                Some(e) => (e.version, e.status != MemberStatus::Alive), // stale fabric read
                None => (1, true),
            };
            if changed {
                let touched = v.round;
                v.entries.insert(
                    self_rank,
                    Ent {
                        inc: self_inc,
                        version,
                        status: MemberStatus::Alive,
                        touched,
                        sends_left: self.retransmit,
                    },
                );
                GossipCounters::bump(&self.stats.refutations);
            }

            // Fanout target selection: uniform over ranks not known dead.
            let candidates: Vec<Rank> = (0..n)
                .filter(|&r| {
                    r != self_rank
                        && v.entries.get(&r).is_none_or(|e| e.status != MemberStatus::Dead)
                })
                .collect();
            if candidates.is_empty() {
                return 0;
            }
            for _ in 0..self.cfg.fanout.min(candidates.len()) {
                let x = Self::xorshift(&mut v.rng);
                let pick = candidates[(x % candidates.len() as u64) as usize];
                if !targets.contains(&pick) {
                    targets.push(pick);
                }
            }
            msg = Self::encode(
                MSG_PUSH,
                &Self::select_rumors(&mut v, self_rank, self.cfg.max_rumors),
            );
        }

        GossipCounters::bump(&self.stats.gossip_rounds);
        let mut sent = 0;
        for t in targets {
            sent += self.send_gossip(t, &msg);
        }
        sent
    }

    /// Merge an incoming message; pushes get a reply carrying everything
    /// this rank knows better. Returns messages sent (0 or 1).
    fn on_message(&self, src: Rank, payload: &[u8]) -> usize {
        let Some((kind, rumors)) = Self::decode(payload) else { return 0 };
        let self_rank = self.photon.rank();
        GossipCounters::bump(&self.stats.gossip_msgs_rx);
        GossipCounters::add(&self.stats.rumors_rx, rumors.len() as u64);
        let reply;
        {
            let mut v = self.view.lock();
            let round = v.round;
            for r in &rumors {
                let was_dead = v
                    .entries
                    .get(&r.rank)
                    .is_some_and(|e| e.status == MemberStatus::Dead && e.inc >= r.incarnation);
                if Self::merge_one(&mut v, round, self.retransmit, *r) {
                    GossipCounters::bump(&self.stats.rumors_applied);
                    if r.status == MemberStatus::Dead && !was_dead {
                        GossipCounters::bump(&self.stats.deaths_gossip);
                    }
                }
            }
            if kind != MSG_PUSH {
                return 0;
            }
            // Pull half: answer with entries the sender lacked or was
            // behind on, freshest first, same size bound as a push.
            let newer: Vec<MemberEntry> = {
                let mut out: Vec<(u64, MemberEntry)> = Vec::new();
                for (&rank, e) in &v.entries {
                    let claimed = rumors.iter().find(|r| r.rank == rank);
                    let newer = match claimed {
                        None => true,
                        // At equal incarnation a Dead claim is final; our
                        // entry only helps if it's Dead or strictly newer.
                        Some(c) => {
                            e.inc > c.incarnation
                                || (e.inc == c.incarnation
                                    && c.status != MemberStatus::Dead
                                    && (e.status == MemberStatus::Dead || e.version > c.version))
                        }
                    };
                    if newer {
                        out.push((
                            Self::rumor_key(self_rank, rank, e),
                            MemberEntry {
                                rank,
                                incarnation: e.inc,
                                version: e.version,
                                status: e.status,
                            },
                        ));
                    }
                }
                out.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.rank.cmp(&b.1.rank)));
                out.truncate(self.cfg.max_rumors);
                out.into_iter().map(|(_, e)| e).collect()
            };
            if newer.is_empty() {
                return 0;
            }
            reply = Self::encode(MSG_REPLY, &newer);
        }
        self.send_gossip(src, &reply)
    }

    /// Apply SWIM's merge order. Returns true when the view changed; a
    /// change re-arms the entry's retransmit budget.
    fn merge_one(v: &mut View, round: u64, retransmit: u32, r: MemberEntry) -> bool {
        let e = v.entries.get(&r.rank).copied();
        let accept = match e {
            None => true,
            Some(e) => {
                r.incarnation > e.inc
                    || (r.incarnation == e.inc
                        && e.status != MemberStatus::Dead
                        && (r.status == MemberStatus::Dead || r.version > e.version))
            }
        };
        if accept {
            v.entries.insert(
                r.rank,
                Ent {
                    inc: r.incarnation,
                    version: r.version,
                    status: r.status,
                    touched: round,
                    sends_left: retransmit,
                },
            );
        }
        accept
    }

    /// Rumor priority: the self-claim always rides; generation verdicts —
    /// deaths and rejoins (incarnation > 0) — outrank everything else
    /// (they are rare and the one rumor class whose loss costs the whole
    /// cluster a convergence round; at n ≫ max_rumors the Alive/Suspect
    /// refutation churn would otherwise age them out of the rumor budget
    /// before they reach every rank); then recency.
    fn rumor_key(self_rank: Rank, rank: Rank, e: &Ent) -> u64 {
        if rank == self_rank {
            u64::MAX
        } else if e.status == MemberStatus::Dead || e.inc > 0 {
            // Verdict bucket, recency-ordered within it: when more verdicts
            // exist than rumor slots, fresh ones ride first while stale
            // ones (whose budget is already being spent) wait their turn.
            u64::MAX / 2 + e.touched
        } else {
            e.touched
        }
    }

    /// The highest-priority `max` entries with retransmit budget remaining
    /// (self always included), charging one round of budget to each pick.
    fn select_rumors(v: &mut View, self_rank: Rank, max: usize) -> Vec<MemberEntry> {
        let mut out: Vec<(u64, MemberEntry)> = v
            .entries
            .iter()
            .filter(|&(&rank, e)| rank == self_rank || e.sends_left > 0)
            .map(|(&rank, e)| {
                let key = Self::rumor_key(self_rank, rank, e);
                (
                    key,
                    MemberEntry { rank, incarnation: e.inc, version: e.version, status: e.status },
                )
            })
            .collect();
        out.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.rank.cmp(&b.1.rank)));
        out.truncate(max);
        for (_, r) in &out {
            if r.rank != self_rank {
                if let Some(e) = v.entries.get_mut(&r.rank) {
                    e.sends_left -= 1;
                }
            }
        }
        out.into_iter().map(|(_, e)| e).collect()
    }

    fn send_gossip(&self, target: Rank, msg: &[u8]) -> usize {
        match self.photon.send_gossip_frame(target, msg) {
            Ok(()) => {
                GossipCounters::bump(&self.stats.gossip_msgs_tx);
                GossipCounters::add(
                    &self.stats.rumors_tx,
                    ((msg.len() - MSG_HDR) / RUMOR_BYTES) as u64,
                );
                1
            }
            Err(PhotonError::PeerDead(p)) => {
                self.note_dead(p);
                0
            }
            Err(_) => {
                GossipCounters::bump(&self.stats.gossip_send_failures);
                0
            }
        }
    }

    fn encode(kind: u8, rumors: &[MemberEntry]) -> Vec<u8> {
        let mut out = Vec::with_capacity(MSG_HDR + rumors.len() * RUMOR_BYTES);
        out.push(kind);
        out.extend_from_slice(&(rumors.len() as u32).to_le_bytes());
        for r in rumors {
            out.extend_from_slice(&(r.rank as u32).to_le_bytes());
            out.extend_from_slice(&r.incarnation.to_le_bytes());
            out.extend_from_slice(&r.version.to_le_bytes());
            out.push(r.status.encode());
        }
        out
    }

    fn decode(payload: &[u8]) -> Option<(u8, Vec<MemberEntry>)> {
        if payload.len() < MSG_HDR {
            return None;
        }
        let kind = payload[0];
        let count = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
        if payload.len() != MSG_HDR + count * RUMOR_BYTES {
            return None;
        }
        let mut rumors = Vec::with_capacity(count);
        for i in 0..count {
            let off = MSG_HDR + i * RUMOR_BYTES;
            let rank = u32::from_le_bytes(payload[off..off + 4].try_into().ok()?) as Rank;
            let incarnation = u64::from_le_bytes(payload[off + 4..off + 12].try_into().ok()?);
            let version = u64::from_le_bytes(payload[off + 12..off + 20].try_into().ok()?);
            let status = MemberStatus::decode(payload[off + 20])?;
            rumors.push(MemberEntry { rank, incarnation, version, status });
        }
        Some((kind, rumors))
    }

    /// xorshift64*: cheap deterministic stream for target selection.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(rank: Rank, inc: u64, version: u64, status: MemberStatus) -> MemberEntry {
        MemberEntry { rank, incarnation: inc, version, status }
    }

    fn fresh_view() -> View {
        View { entries: BTreeMap::new(), rng: 1, round: 0, last_round_ns: 0, started: false }
    }

    /// Retransmit budget used by the unit tests.
    const RT: u32 = 8;

    #[test]
    fn merge_order_is_monotone() {
        let mut v = fresh_view();
        assert!(Membership::merge_one(&mut v, 1, RT, e(3, 0, 1, MemberStatus::Alive)));
        // Same incarnation: higher version wins, lower loses.
        assert!(Membership::merge_one(&mut v, 1, RT, e(3, 0, 2, MemberStatus::Suspect)));
        assert!(!Membership::merge_one(&mut v, 1, RT, e(3, 0, 1, MemberStatus::Alive)));
        // Refutation: Alive at a higher version clears Suspect.
        assert!(Membership::merge_one(&mut v, 2, RT, e(3, 0, 3, MemberStatus::Alive)));
        assert_eq!(v.entries[&3].status, MemberStatus::Alive);
        // Dead is sticky within the incarnation, whatever the version.
        assert!(Membership::merge_one(&mut v, 2, RT, e(3, 0, 1, MemberStatus::Dead)));
        assert!(!Membership::merge_one(&mut v, 3, RT, e(3, 0, 99, MemberStatus::Alive)));
        assert_eq!(v.entries[&3].status, MemberStatus::Dead);
        // A higher incarnation resurrects: the rank rejoined.
        assert!(Membership::merge_one(&mut v, 4, RT, e(3, 1, 1, MemberStatus::Alive)));
        assert_eq!(v.entries[&3].status, MemberStatus::Alive);
        assert_eq!(v.entries[&3].inc, 1);
    }

    #[test]
    fn wire_format_round_trips() {
        let rumors = vec![
            e(0, 0, 5, MemberStatus::Alive),
            e(999, 3, 1, MemberStatus::Dead),
            e(17, 1, 2, MemberStatus::Suspect),
        ];
        let msg = Membership::encode(MSG_PUSH, &rumors);
        assert_eq!(msg.len(), MSG_HDR + 3 * RUMOR_BYTES);
        let (kind, back) = Membership::decode(&msg).unwrap();
        assert_eq!(kind, MSG_PUSH);
        assert_eq!(back, rumors);
        // Truncated and trailing-garbage payloads are rejected, not UB.
        assert!(Membership::decode(&msg[..msg.len() - 1]).is_none());
        let mut longer = msg.clone();
        longer.push(0);
        assert!(Membership::decode(&longer).is_none());
        assert!(Membership::decode(&[]).is_none());
    }

    #[test]
    fn rumor_selection_is_bounded_and_self_first() {
        let mut v = fresh_view();
        for r in 0..10 {
            Membership::merge_one(&mut v, r, RT, e(r as Rank, 0, 1, MemberStatus::Alive));
        }
        let picked = Membership::select_rumors(&mut v, 7, 4);
        assert_eq!(picked.len(), 4);
        assert_eq!(picked[0].rank, 7, "self-claim always rides along");
        // The rest are the freshest (highest touched round) entries.
        assert_eq!(picked[1].rank, 9);
        assert_eq!(picked[2].rank, 8);
        // Generation verdicts jump the recency queue: a death about an old
        // rumor outranks fresher Alive churn.
        assert!(Membership::merge_one(&mut v, 10, RT, e(0, 0, 1, MemberStatus::Dead)));
        let picked = Membership::select_rumors(&mut v, 7, 2);
        assert_eq!(picked[0].rank, 7);
        assert_eq!(picked[1].rank, 0, "death verdict rides ahead of recency");
    }

    #[test]
    fn retransmit_budget_retires_rumors() {
        let mut v = fresh_view();
        Membership::merge_one(&mut v, 1, 3, e(2, 0, 1, MemberStatus::Alive));
        // Three selections spend the budget; the fourth omits the entry
        // (the self-claim is exempt and always rides).
        for _ in 0..3 {
            let picked = Membership::select_rumors(&mut v, 9, 8);
            assert!(picked.iter().any(|r| r.rank == 2));
        }
        let picked = Membership::select_rumors(&mut v, 9, 8);
        assert!(!picked.iter().any(|r| r.rank == 2), "budget-spent rumor still pushed");
        // A view change re-arms the budget.
        Membership::merge_one(&mut v, 5, 3, e(2, 0, 2, MemberStatus::Suspect));
        let picked = Membership::select_rumors(&mut v, 9, 8);
        assert!(picked.iter().any(|r| r.rank == 2));
    }
}
