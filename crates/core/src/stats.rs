//! Operation statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counters for one Photon context.
#[derive(Debug, Default)]
pub struct Stats {
    pub(crate) puts_eager: AtomicU64,
    pub(crate) puts_direct: AtomicU64,
    pub(crate) gets: AtomicU64,
    pub(crate) sends: AtomicU64,
    pub(crate) local_completions: AtomicU64,
    pub(crate) remote_completions: AtomicU64,
    pub(crate) credit_stalls: AtomicU64,
    pub(crate) credit_returns: AtomicU64,
    pub(crate) bytes_put: AtomicU64,
    pub(crate) bytes_got: AtomicU64,
    pub(crate) rendezvous_ops: AtomicU64,
    pub(crate) probes: AtomicU64,
    pub(crate) probe_batches: AtomicU64,
    pub(crate) batch_posts: AtomicU64,
    pub(crate) frames_per_batch_1: AtomicU64,
    pub(crate) frames_per_batch_2_4: AtomicU64,
    pub(crate) frames_per_batch_5_16: AtomicU64,
    pub(crate) frames_per_batch_17plus: AtomicU64,
    pub(crate) stage_copies_avoided: AtomicU64,
    pub(crate) peers_suspected: AtomicU64,
    pub(crate) peers_dead: AtomicU64,
    pub(crate) reconnect_probes: AtomicU64,
    pub(crate) peer_recoveries: AtomicU64,
    pub(crate) rids_flushed: AtomicU64,
}

impl Stats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Record one doorbell-batched post of `frames` eager frames.
    pub(crate) fn record_batch(&self, frames: usize) {
        Stats::bump(&self.batch_posts);
        Stats::bump(match frames {
            0..=1 => &self.frames_per_batch_1,
            2..=4 => &self.frames_per_batch_2_4,
            5..=16 => &self.frames_per_batch_5_16,
            _ => &self.frames_per_batch_17plus,
        });
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            puts_eager: self.puts_eager.load(Ordering::Relaxed),
            puts_direct: self.puts_direct.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            sends: self.sends.load(Ordering::Relaxed),
            local_completions: self.local_completions.load(Ordering::Relaxed),
            remote_completions: self.remote_completions.load(Ordering::Relaxed),
            credit_stalls: self.credit_stalls.load(Ordering::Relaxed),
            credit_returns: self.credit_returns.load(Ordering::Relaxed),
            bytes_put: self.bytes_put.load(Ordering::Relaxed),
            bytes_got: self.bytes_got.load(Ordering::Relaxed),
            rendezvous_ops: self.rendezvous_ops.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            probe_batches: self.probe_batches.load(Ordering::Relaxed),
            batch_posts: self.batch_posts.load(Ordering::Relaxed),
            frames_per_batch_1: self.frames_per_batch_1.load(Ordering::Relaxed),
            frames_per_batch_2_4: self.frames_per_batch_2_4.load(Ordering::Relaxed),
            frames_per_batch_5_16: self.frames_per_batch_5_16.load(Ordering::Relaxed),
            frames_per_batch_17plus: self.frames_per_batch_17plus.load(Ordering::Relaxed),
            stage_copies_avoided: self.stage_copies_avoided.load(Ordering::Relaxed),
            peers_suspected: self.peers_suspected.load(Ordering::Relaxed),
            peers_dead: self.peers_dead.load(Ordering::Relaxed),
            reconnect_probes: self.reconnect_probes.load(Ordering::Relaxed),
            peer_recoveries: self.peer_recoveries.load(Ordering::Relaxed),
            rids_flushed: self.rids_flushed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a context's statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Put-with-completion operations that took the eager (packed) path.
    pub puts_eager: u64,
    /// Put-with-completion operations that took the direct RDMA path.
    pub puts_direct: u64,
    /// Get(-with-completion) operations.
    pub gets: u64,
    /// Destination-less sends (parcel path).
    pub sends: u64,
    /// Local completions surfaced.
    pub local_completions: u64,
    /// Remote completions surfaced.
    pub remote_completions: u64,
    /// Times a producer found a ledger/ring out of credits.
    pub credit_stalls: u64,
    /// Credit-return writes issued.
    pub credit_returns: u64,
    /// Payload bytes put.
    pub bytes_put: u64,
    /// Payload bytes fetched by gets.
    pub bytes_got: u64,
    /// Rendezvous protocol steps executed.
    pub rendezvous_ops: u64,
    /// Probe calls.
    pub probes: u64,
    /// Batch probe calls (`probe_completions`), also counted in `probes`.
    pub probe_batches: u64,
    /// Doorbell-batched eager posts (`put_many` / batch flushes): one wire
    /// write carrying a run of frames.
    pub batch_posts: u64,
    /// Batches that carried exactly 1 frame.
    pub frames_per_batch_1: u64,
    /// Batches that carried 2–4 frames.
    pub frames_per_batch_2_4: u64,
    /// Batches that carried 5–16 frames.
    pub frames_per_batch_5_16: u64,
    /// Batches that carried 17 or more frames.
    pub frames_per_batch_17plus: u64,
    /// Per-op heap copies eliminated on the eager fast path: one per
    /// MR→stage direct staging on TX, one per in-place ring copy-out on RX.
    pub stage_copies_avoided: u64,
    /// Healthy → Suspect transitions of the per-peer health machine.
    pub peers_suspected: u64,
    /// Peers declared dead (evicted).
    pub peers_dead: u64,
    /// Reconnection probes issued while a peer was Suspect.
    pub reconnect_probes: u64,
    /// Suspect → Healthy recoveries (a reconnection probe succeeded).
    pub peer_recoveries: u64,
    /// Pending rids drained as error completions by peer eviction.
    pub rids_flushed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        Stats::bump(&s.puts_eager);
        Stats::bump(&s.puts_eager);
        Stats::add(&s.bytes_put, 100);
        let snap = s.snapshot();
        assert_eq!(snap.puts_eager, 2);
        assert_eq!(snap.bytes_put, 100);
        assert_eq!(snap.gets, 0);
    }
}
