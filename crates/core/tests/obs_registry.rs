//! Property tests over the `counter_registry!`-generated surface: every
//! declared counter must appear exactly once — with the right value — in
//! the snapshot iterator, `get`, `delta`, and both export renderings. This
//! is the guard against a counter being declared but dropped (or doubled)
//! by a future macro edit.

use photon_core::obs::{Stats, StatsSnapshot, STATS_COUNTERS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_counter_appears_exactly_once(
        vals in proptest::collection::vec(0u64..1_000_000, STATS_COUNTERS.len()..STATS_COUNTERS.len() + 1)
    ) {
        let s = Stats::default();
        for (def, v) in STATS_COUNTERS.iter().zip(vals.iter()) {
            prop_assert!(s.add_named(def.name, *v), "add_named rejected declared counter {}", def.name);
        }
        prop_assert!(!s.add_named("no_such_counter", 1));
        let snap = s.snapshot();

        // iter(): declaration order, one entry per declared counter.
        let got: Vec<(&'static str, u64)> = snap.iter().collect();
        prop_assert_eq!(got.len(), STATS_COUNTERS.len());
        for ((name, v), (def, want)) in got.iter().zip(STATS_COUNTERS.iter().zip(vals.iter())) {
            prop_assert_eq!(*name, def.name);
            prop_assert_eq!(*v, *want);
        }

        // get(): agrees with what was added; unknown names miss.
        for (def, want) in STATS_COUNTERS.iter().zip(vals.iter()) {
            prop_assert_eq!(snap.get(def.name), Some(*want));
        }
        prop_assert_eq!(snap.get("no_such_counter"), None);

        // delta(): self-minus-self zeroes every field, minus-default is identity.
        let zero = snap.delta(&snap);
        for (name, v) in zero.iter() {
            prop_assert_eq!(v, 0, "delta(self) left {} = {}", name, v);
        }
        prop_assert_eq!(snap.delta(&StatsSnapshot::default()), snap);

        // export_json(): each counter keyed exactly once.
        let json = snap.export_json();
        for (def, want) in STATS_COUNTERS.iter().zip(vals.iter()) {
            let needle = format!("\"{}\":{}", def.name, want);
            prop_assert_eq!(json.matches(&needle).count(), 1, "{} in {}", needle, json);
        }

        // export_text(): one HELP line and one value line per counter.
        let text = snap.export_text();
        for (def, want) in STATS_COUNTERS.iter().zip(vals.iter()) {
            let value_line = format!("{} {}", def.name, want);
            prop_assert_eq!(
                text.lines().filter(|l| **l == value_line).count(), 1,
                "value line for {}", def.name
            );
            let help_prefix = format!("# HELP {} ", def.name);
            prop_assert_eq!(
                text.lines().filter(|l| l.starts_with(&help_prefix)).count(), 1,
                "HELP line for {}", def.name
            );
        }
    }
}
