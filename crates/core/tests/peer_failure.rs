//! End-to-end peer-failure semantics through the full middleware stack:
//! fault-plan injection (crash-stop, windowed partition) → QP error →
//! per-peer health machine → eviction or backoff recovery, exercised over
//! the public API only. Companion to the failure-model section of
//! DESIGN.md and experiment E17.

use photon_core::{PeerHealthState, PhotonCluster, PhotonConfig, PhotonError, WcStatus};
use photon_fabric::{NetworkModel, VTime, Window};
use std::time::Duration;

fn pair(cfg: PhotonConfig) -> PhotonCluster {
    PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg)
}

#[test]
fn kill_mid_stream_evicts_peer_and_fails_fast() {
    let c = pair(PhotonConfig { wait_timeout_secs: 5, ..PhotonConfig::default() });
    let (p0, p1) = (c.rank(0), c.rank(1));
    let src = p0.register_buffer(64).unwrap();
    let dst = p1.register_buffer(64).unwrap();
    let d = dst.descriptor();
    for i in 0..3u64 {
        p0.put_with_completion(1, &src, 0, 64, &d, 0, i, 100 + i).unwrap();
    }
    // Kill rank 1 one virtual nanosecond from now: the next put's staging
    // memcpy advances the clock across the kill instant, so its transfer
    // fails mid-flight rather than at the pre-post health gate.
    c.fabric().switch().faults().kill_node_at(1, VTime(p0.now().as_nanos() + 1));
    let mut failed_at = None;
    for i in 3..20u64 {
        match p0.put_with_completion(1, &src, 0, 64, &d, 0, i, 100 + i) {
            Ok(()) => continue,
            Err(e) => {
                failed_at = Some((i, e));
                break;
            }
        }
    }
    let (first_failed, e) = failed_at.expect("the kill must surface as an error");
    assert_eq!(e, PhotonError::PeerDead(1));
    assert_eq!(p0.peer_health(1).unwrap(), PeerHealthState::Dead);
    // Every rid accepted before the failure resolves — zero hangs. (Their
    // sources were staged, so their local completions are genuine.)
    for i in 0..first_failed {
        p0.wait_local(i).unwrap();
    }
    assert_eq!(p0.in_flight(), 0, "eviction leaves nothing pending toward the dead peer");
    // New operations of every flavor fail fast, without spinning.
    assert_eq!(
        p0.put_with_completion(1, &src, 0, 64, &d, 0, 99, 199),
        Err(PhotonError::PeerDead(1))
    );
    assert_eq!(p0.try_send(1, b"x", 55), Err(PhotonError::PeerDead(1)));
    assert_eq!(p0.put(1, &src, 0, 8, &d, 0, 98), Err(PhotonError::PeerDead(1)));
    let s = p0.stats();
    assert_eq!(s.peers_dead, 1);
    // Death is permanent: even at a much later virtual time the peer stays
    // evicted (crash-stop has no resurrection).
    p0.elapse(1_000_000_000);
    assert_eq!(p0.try_send(1, b"x", 56), Err(PhotonError::PeerDead(1)));
}

#[test]
fn windowed_partition_heals_through_backoff_probes() {
    let c = pair(PhotonConfig { wait_timeout_secs: 10, ..PhotonConfig::default() });
    let (p0, p1) = (c.rank(0), c.rank(1));
    let src = p0.register_buffer(32).unwrap();
    let dst = p1.register_buffer(32).unwrap();
    let d = dst.descriptor();
    src.write_at(0, b"after the storm");
    // Partition 0<->1 for 400us of virtual time starting now. The default
    // backoff schedule (50us deadline, 20us base doubling to 1ms) crosses
    // the window's end well before the 12-probe death budget.
    let t0 = p0.now().as_nanos();
    c.fabric().switch().faults().partition_during(
        0,
        1,
        Window::new(VTime(t0), VTime(t0 + 400_000)),
    );
    // Blocks, turns Suspect, probes with backoff, heals, then posts.
    p0.put_with_completion(1, &src, 0, 15, &d, 0, 7, 8).unwrap();
    p0.wait_local(7).unwrap();
    assert!(
        p0.now().as_nanos() >= t0 + 400_000,
        "recovery cannot precede the partition window's end"
    );
    let ev = p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
    assert_eq!((ev.rid, ev.size), (8, 15));
    assert!(ev.status.is_ok());
    assert_eq!(dst.to_vec(0, 15), b"after the storm");
    let s = p0.stats();
    assert!(s.peers_suspected >= 1, "partition must trip the detector");
    assert!(s.reconnect_probes >= 2, "healing takes more than one probe here");
    assert_eq!(s.peer_recoveries, 1);
    assert_eq!(s.peers_dead, 0);
    assert_eq!(p0.peer_health(1).unwrap(), PeerHealthState::Healthy);
    // The healed path keeps working with no residual state.
    p0.put_with_completion(1, &src, 0, 15, &d, 16, 9, 10).unwrap();
    p0.wait_local(9).unwrap();
    assert_eq!(p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap().rid, 10);
}

#[test]
fn permanent_partition_exhausts_probe_budget_and_evicts() {
    let c = pair(PhotonConfig { wait_timeout_secs: 5, ..PhotonConfig::default() });
    let p0 = c.rank(0);
    let src = p0.register_buffer(8).unwrap();
    let dst = c.rank(1).register_buffer(8).unwrap();
    let d = dst.descriptor();
    c.fabric().switch().faults().partition_during(0, 1, Window::ALWAYS);
    let e = p0.put_with_completion(1, &src, 0, 8, &d, 0, 1, 2).unwrap_err();
    assert_eq!(e, PhotonError::PeerDead(1));
    let s = p0.stats();
    assert_eq!(s.peers_suspected, 1);
    assert_eq!(s.peers_dead, 1);
    assert!(
        s.reconnect_probes >= u64::from(PhotonConfig::default().suspect_death_probes),
        "eviction only after the full probe budget: {} probes",
        s.reconnect_probes
    );
    assert_eq!(p0.peer_health(1).unwrap(), PeerHealthState::Dead);
}

#[test]
fn dead_peer_does_not_stall_traffic_to_survivors() {
    let c = PhotonCluster::new(3, NetworkModel::ib_fdr(), PhotonConfig::default());
    let (p0, p1) = (c.rank(0), c.rank(1));
    c.fabric().switch().faults().kill_node_at(2, VTime(0));
    // Toward the dead rank: immediate, clean failure.
    assert_eq!(p0.try_send(2, b"nope", 1), Err(PhotonError::PeerDead(2)));
    // Toward the survivor: unaffected, exactly-once, payload intact.
    for i in 0..50u64 {
        p0.send(1, format!("msg-{i}").as_bytes(), i).unwrap();
    }
    for i in 0..50u64 {
        let ev = p1.wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
        assert_eq!(ev.rid, i);
        assert_eq!(ev.payload.as_deref(), Some(format!("msg-{i}").as_bytes()));
    }
    assert_eq!(p0.peer_health(1).unwrap(), PeerHealthState::Healthy);
    assert_eq!(p0.peer_health(2).unwrap(), PeerHealthState::Dead);
}

#[test]
fn eviction_reclaims_credits_and_purges_rendezvous_state() {
    // Tiny rings so a dead consumer would wedge the producer within a few
    // frames if eviction failed to reclaim flow-control credits.
    let cfg = PhotonConfig { wait_timeout_secs: 5, ..PhotonConfig::tiny() };
    let c = pair(cfg);
    let (p0, p1) = (c.rank(0), c.rank(1));
    // Rank 1 announces a rendezvous landing zone; rank 0 parks it.
    let land = p1.register_buffer(64).unwrap();
    p1.post_recv_buffer(0, &land, 0, 64, 42).unwrap();
    while p0.queued_rendezvous().0 == 0 {
        p0.progress().unwrap();
    }
    c.fabric().switch().faults().kill_node_at(1, VTime(p0.now().as_nanos() + 1));
    // Drive sends until the death is detected. Without credit reclamation
    // these would end in a credit-stall timeout, not PeerDead.
    let e = loop {
        match p0.send(1, &[0u8; 48], 5) {
            Ok(()) => continue,
            Err(e) => break e,
        }
    };
    assert_eq!(e, PhotonError::PeerDead(1));
    assert_eq!(
        p0.queued_rendezvous(),
        (0, 0),
        "announces from the dead peer can never complete and must be dropped"
    );
    // Post-eviction sends fail fast instead of stalling on ghost credits.
    assert_eq!(p0.send(1, &[0u8; 48], 6), Err(PhotonError::PeerDead(1)));
}

#[test]
fn wait_local_for_timeout_leaves_operation_pending() {
    let c = pair(PhotonConfig::default());
    let p0 = c.rank(0);
    let e = p0.wait_local_for(0x77, Duration::from_millis(25)).unwrap_err();
    assert_eq!(e, PhotonError::Timeout { what: "local completion", rid: Some(0x77) });
    // The rid was never consumed: a later completion still reaches it.
    let src = p0.register_buffer(8).unwrap();
    let dst = c.rank(1).register_buffer(8).unwrap();
    p0.put(1, &src, 0, 8, &dst.descriptor(), 0, 0x77).unwrap();
    p0.wait_local(0x77).unwrap();
}

#[test]
fn failure_status_display_is_stable() {
    // The error surface the runtime layer matches on.
    assert_eq!(PhotonError::PeerDead(3).to_string(), "peer rank 3 is dead");
    assert_eq!(
        PhotonError::OpFailed { rid: 0x10, status: WcStatus::FlushErr }.to_string(),
        "operation rid 0x10 failed: work request flushed (WR_FLUSH_ERR)"
    );
}
