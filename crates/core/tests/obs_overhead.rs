//! With recording *disabled* (the default), the op-lifecycle observability
//! hooks must cost nothing on the steady-state eager put path — in
//! particular, zero heap allocations per operation. A counting global
//! allocator arms around a windowed put loop and counts every `alloc`;
//! the zero-alloc property of the staged TX path (established by the
//! doorbell-batching work) must survive the hook insertion.

use photon_core::{Completion, PhotonCluster, PhotonConfig, ProbeFlags};
use photon_fabric::NetworkModel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `ops` windowed 8-byte eager puts (window 16), sender reaping local
/// completions while the receiver drains remote notifications.
fn windowed_puts(c: &PhotonCluster, base_rid: u64, ops: u64) {
    let p0 = c.rank(0);
    let p1 = c.rank(1);
    let src = p0.register_buffer(64).unwrap();
    let dst = p1.register_buffer(64).unwrap();
    let d = dst.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let (mut posted, mut done) = (0u64, 0u64);
    let mut inflight = 0usize;
    while done < ops {
        while inflight < 16 && posted < ops {
            let rid = base_rid + posted;
            if p0.try_put_with_completion(1, &src, 0, 8, &d, 0, rid, rid).unwrap() {
                posted += 1;
                inflight += 1;
            } else {
                break;
            }
        }
        loop {
            evs.clear();
            if p1.poll_completions(ProbeFlags::Remote, &mut evs, 64).unwrap() == 0 {
                break;
            }
        }
        evs.clear();
        let n = p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap();
        done += n as u64;
        inflight -= n;
    }
}

#[test]
fn disabled_recording_allocates_nothing_per_op() {
    let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    assert!(!c.rank(0).obs().is_enabled());

    // Warm-up: fills the staging rings, completion shard vectors, probe
    // scratch, etc., so the measured window sees only steady-state work.
    windowed_puts(&c, 0, 2_048);

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    windowed_puts(&c, 10_000, 2_048);
    ARMED.store(false, Ordering::SeqCst);

    // The path is not literally allocation-free: the receiver's periodic
    // credit-return machinery allocates roughly once per 15 frames (133
    // allocations for this exact workload, measured identically on the
    // pre-observability tree). The invariant the hooks must preserve is
    // *amortized* zero: anything per-op would add >= 2048 allocations here
    // and trip the bound at once.
    let n = ALLOCS.load(Ordering::SeqCst);
    assert!(
        n <= 2_048 / 14,
        "eager put path allocated {n} times over 2048 ops with recording disabled \
         (pre-obs baseline: 133; a per-op hook allocation would show as >= 2048)"
    );
}

#[test]
fn recycler_caches_make_the_batched_put_loop_allocation_free() {
    // The tightened form of the bound above, for the doorbell-batched path:
    // with the CQE harvest reading into recycled scratch, the batch rid /
    // stamp vectors cycling through the context pools, and the run frames
    // living in per-peer TX scratch, the steady-state batched put loop
    // performs literally zero heap allocations. Setup (buffer registration,
    // caller-side scratch) happens before the allocator arms.
    let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    assert!(!c.rank(0).obs().is_enabled());
    let p0 = c.rank(0);
    let p1 = c.rank(1);
    let src = p0.register_buffer(64).unwrap();
    let dst = p1.register_buffer(64).unwrap();
    let d = dst.descriptor();
    let mut evs: Vec<Completion> = Vec::with_capacity(128);
    let mut items: Vec<photon_core::PutManyItem> = Vec::with_capacity(16);

    // Run `ops` doorbell-batched 8-byte eager puts (batches of 16 through
    // `try_put_many`), sender reaping local completions while the receiver
    // drains remote notifications — the hot loop the recycler caches serve.
    let mut batched_puts = |base_rid: u64, ops: u64| {
        let (mut posted, mut done) = (0u64, 0u64);
        while done < ops {
            if posted < ops {
                items.clear();
                for i in 0..16.min(ops - posted) {
                    let rid = base_rid + posted + i;
                    items.push(photon_core::PutManyItem {
                        loff: 0,
                        len: 8,
                        doff: 0,
                        local_rid: rid,
                        remote_rid: rid,
                    });
                }
                posted += p0.try_put_many(1, &src, &d, &items).unwrap() as u64;
            }
            loop {
                evs.clear();
                if p1.poll_completions(ProbeFlags::Remote, &mut evs, 64).unwrap() == 0 {
                    break;
                }
            }
            evs.clear();
            done += p0.poll_completions(ProbeFlags::Local, &mut evs, 128).unwrap() as u64;
        }
    };

    // Warm-up: grows every recycled vector to its working capacity.
    batched_puts(0, 2_048);

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    batched_puts(10_000, 2_048);
    ARMED.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "batched put loop allocated {n} times over 2048 steady-state ops");
}

#[test]
fn enabled_recording_observes_the_same_traffic() {
    // Sanity inverse: with recording on, the same loop yields spans and
    // latency samples (allocation is expected and unchecked here).
    let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    for p in c.ranks() {
        p.obs().enable();
    }
    windowed_puts(&c, 0, 256);
    let m = c.rank(0).metrics();
    assert!(m.counters.puts_eager >= 256);
    let lat = m
        .latencies
        .iter()
        .find(|s| s.kind == photon_core::OpKind::PutEager)
        .expect("put-eager latency summary");
    assert_eq!(lat.count, 256);
    assert!(c.rank(0).span_trace().spans.len() >= 256);
}
