//! Gossip membership over the public API: epidemic dissemination of
//! deaths and rejoins, refutation of transient suspicion, and the O(log N)
//! round bound. Companion to DESIGN.md "Membership and connection
//! lifecycle".

use photon_core::{
    MemberStatus, Membership, MembershipConfig, PhotonCluster, PhotonConfig, PhotonError,
};
use photon_fabric::{NetworkModel, VTime};
use std::sync::Arc;

fn memberships(c: &PhotonCluster, cfg: MembershipConfig, seed: u64) -> Vec<Membership> {
    c.ranks().iter().map(|p| Membership::new(Arc::clone(p), cfg, seed)).collect()
}

/// Tick every live rank once, in rank order (a deterministic "round").
fn round(ms: &[Membership], dead: &[usize]) -> usize {
    let mut sent = 0;
    for (i, m) in ms.iter().enumerate() {
        if !dead.contains(&i) {
            sent += m.tick();
        }
    }
    sent
}

#[test]
fn death_disseminates_in_logarithmic_rounds() {
    let n = 32;
    let c = PhotonCluster::new(n, NetworkModel::ideal(), PhotonConfig::default());
    let cfg = MembershipConfig { fanout: 2, interval_ns: 0, max_rumors: 64 };
    let ms = memberships(&c, cfg, 0xD15E);
    // Kill rank 3; rank 0 discovers it directly by talking to it.
    let p0 = c.rank(0);
    c.fabric().switch().faults().kill_node_at(3, VTime(p0.now().as_nanos() + 1));
    p0.elapse(10);
    let death = loop {
        match p0.send(3, b"probe", 1) {
            Ok(()) => continue,
            Err(e) => break e,
        }
    };
    assert_eq!(death, PhotonError::PeerDead(3));
    for peer in p0.take_dead_peers() {
        ms[0].note_dead(peer);
    }
    assert_eq!(ms[0].status_of(3), MemberStatus::Dead);
    // Epidemic push-pull: every live rank must learn of the death within
    // a small multiple of log2(n) rounds (log2(32) = 5; x4 slack absorbs
    // fanout collisions on random target draws).
    let budget = 4 * 5;
    let mut rounds_used = None;
    for r in 1..=budget {
        round(&ms, &[3]);
        let informed = (0..n).filter(|&i| i != 3).all(|i| ms[i].status_of(3) == MemberStatus::Dead);
        if informed {
            rounds_used = Some(r);
            break;
        }
    }
    let used = rounds_used.expect("death never reached every rank");
    assert!(used <= budget, "dissemination took {used} rounds, budget {budget}");
    // Most ranks learn from gossip; the rest happened to pick the dead
    // rank as a gossip target and detected the death themselves.
    let via_gossip: u64 = (0..n).map(|i| ms[i].stats().deaths_gossip).sum();
    assert!(via_gossip >= (n as u64) / 2, "gossip must carry the news: {via_gossip}");
}

#[test]
fn rejoin_refutes_dead_rumors_cluster_wide() {
    let n = 8;
    let c = PhotonCluster::new(n, NetworkModel::ideal(), PhotonConfig::default());
    let cfg = MembershipConfig { fanout: 2, interval_ns: 0, max_rumors: 64 };
    let ms = memberships(&c, cfg, 0xBEA7);
    let p0 = c.rank(0);
    let t0 = p0.now().as_nanos();
    c.fabric().switch().faults().kill_node_at(5, VTime(t0 + 1));
    c.fabric().switch().faults().revive_node_at(5, VTime(t0 + 1_000));
    p0.elapse(10);
    let death = loop {
        match p0.send(5, b"probe", 1) {
            Ok(()) => continue,
            Err(e) => break e,
        }
    };
    assert_eq!(death, PhotonError::PeerDead(5));
    for peer in p0.take_dead_peers() {
        ms[0].note_dead(peer);
    }
    // Spread the death while the rank is still down.
    for _ in 0..6 {
        round(&ms, &[5]);
    }
    assert!((0..n).filter(|&i| i != 5).any(|i| ms[i].status_of(5) == MemberStatus::Dead));
    // The rank rejoins: its own ticks claim Alive at incarnation 1, which
    // supersedes every Dead(0) rumor as gossip mixes.
    for p in c.ranks() {
        p.elapse(2_000);
    }
    assert_eq!(c.rank(5).self_incarnation(), 1);
    for _ in 0..24 {
        round(&ms, &[]);
        if (0..n).all(|i| ms[i].status_of(5) == MemberStatus::Alive) {
            break;
        }
    }
    for (i, m) in ms.iter().enumerate() {
        assert_eq!(m.status_of(5), MemberStatus::Alive, "rank {i} still believes the rumor");
        let e = m.view().into_iter().find(|e| e.rank == 5).unwrap();
        assert_eq!(e.incarnation, 1, "rank {i} must know the new incarnation");
    }
}

#[test]
fn view_state_is_bounded_and_stats_accumulate() {
    let n = 16;
    let c = PhotonCluster::new(n, NetworkModel::ideal(), PhotonConfig::default());
    let cfg = MembershipConfig { fanout: 3, interval_ns: 0, max_rumors: 8 };
    let ms = memberships(&c, cfg, 0x5EED);
    for _ in 0..10 {
        round(&ms, &[]);
    }
    for m in &ms {
        // A full view costs one entry per member — tens of bytes each,
        // independent of traffic volume.
        assert!(m.state_bytes() <= n * 64, "view too large: {}", m.state_bytes());
        let s = m.stats();
        assert!(s.gossip_rounds >= 10);
        assert!(s.gossip_msgs_tx > 0);
        // Bounded rumor budget: every message carries at most max_rumors.
        assert!(s.rumors_tx <= s.gossip_msgs_tx * 8);
    }
    // Gossip frames never surface as user events.
    let mut buf = Vec::new();
    for p in c.ranks() {
        assert_eq!(
            p.poll_completions(photon_core::ProbeFlags::Any, &mut buf, 64).unwrap(),
            0,
            "gossip leaked into the user event stream"
        );
    }
}

#[test]
fn interval_gates_round_frequency() {
    let c = PhotonCluster::new(4, NetworkModel::ideal(), PhotonConfig::default());
    let cfg = MembershipConfig { fanout: 2, interval_ns: 1_000_000, max_rumors: 64 };
    let m = Membership::new(Arc::clone(c.rank(0)), cfg, 7);
    m.tick(); // first round runs unconditionally
    m.tick();
    m.tick();
    assert_eq!(m.rounds(), 1, "rounds must be interval-gated");
    c.rank(0).elapse(1_000_001);
    m.tick();
    assert_eq!(m.rounds(), 2);
}
