//! Lazy connection cache + incarnation lifecycle, over the public API:
//! establishment on first contact, bounded-LRU eviction with
//! mark_dead-equivalent flushing, reconnect-on-demand, and the
//! kill-then-rejoin incarnation guard. Companion to DESIGN.md "Membership
//! and connection lifecycle" and experiment E22.

use photon_core::{PeerHealthState, PhotonCluster, PhotonConfig, PhotonError};
use photon_fabric::{NetworkModel, VTime};

#[test]
fn connections_establish_lazily_on_first_contact() {
    let c = PhotonCluster::new(8, NetworkModel::ideal(), PhotonConfig::default());
    let p0 = c.rank(0);
    for p in c.ranks() {
        assert_eq!(p.conn_count(), 0, "no wiring before traffic");
    }
    // Talking to exactly two peers allocates exactly two connections on
    // this side (plus the acceptor half on each target) — the other five
    // ranks cost nothing.
    p0.send(1, b"one", 1).unwrap();
    p0.send(5, b"five", 2).unwrap();
    assert_eq!(p0.conn_count(), 2);
    assert_eq!(c.rank(1).conn_count(), 1);
    assert_eq!(c.rank(5).conn_count(), 1);
    for r in [2, 3, 4, 6, 7] {
        assert_eq!(c.rank(r).conn_count(), 0, "rank {r} was never contacted");
    }
    assert_eq!(p0.stats().conns_opened, 2);
    // Remote-event FIFOs are lazy too: the receivers allocate one (for
    // rank 0), the bystanders none.
    assert_eq!(c.rank(1).wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap().rid, 1);
    assert_eq!(c.rank(1).remote_fifos_allocated(), 1);
    assert_eq!(c.rank(2).remote_fifos_allocated(), 0);
}

#[test]
fn per_rank_state_is_bounded_by_contacts_not_cluster_size() {
    // The O(N) -> O(contacts) memory pin: a rank in a 64-node job that
    // talks to 3 peers must hold state proportional to 3 blocks, not 64.
    let cfg = PhotonConfig::default();
    let c = PhotonCluster::new(64, NetworkModel::ideal(), cfg);
    let p0 = c.rank(0);
    assert_eq!(p0.conn_state_bytes(), 0, "an idle rank holds no per-peer state");
    for peer in 1..=3usize {
        p0.send(peer, b"hi", peer as u64).unwrap();
    }
    // Self-calibrating bound: rank 1 holds exactly one connection, so
    // rank 0's three contacts may cost at most three of those (plus small
    // fixed overhead) — and in particular nothing close to 63 blocks.
    let one = c.rank(1).conn_state_bytes();
    assert!(one > 0);
    assert!(
        p0.conn_state_bytes() <= 3 * one + 4096,
        "3 contacts cost {} bytes, over the 3-connection bound {}",
        p0.conn_state_bytes(),
        3 * one + 4096
    );
    // A rank that never spoke holds nothing, regardless of cluster size.
    assert_eq!(c.rank(63).conn_state_bytes(), 0);
}

#[test]
fn lru_eviction_disconnects_and_reconnects_on_demand() {
    let cfg = PhotonConfig::builder().conn_cache_cap(2).build().unwrap();
    let c = PhotonCluster::new(4, NetworkModel::ideal(), cfg);
    let p0 = c.rank(0);
    p0.send(1, b"a", 1).unwrap();
    p0.send(2, b"b", 2).unwrap();
    assert_eq!(p0.conn_count(), 2);
    // Third contact exceeds the cap: the LRU victim (peer 1) is torn down.
    p0.send(3, b"c", 3).unwrap();
    assert_eq!(p0.conn_count(), 2);
    assert_eq!(p0.stats().conns_evicted, 1);
    assert_eq!(c.rank(1).conn_count(), 0, "teardown removes the acceptor half too");
    // Eviction is not death: the peer is still healthy, and traffic toward
    // it transparently reconnects (evicting the next LRU victim in turn).
    assert_eq!(p0.peer_health(1).unwrap(), PeerHealthState::Healthy);
    p0.send(1, b"again", 4).unwrap();
    assert_eq!(p0.conn_count(), 2);
    assert_eq!(p0.stats().conns_opened, 4, "reconnect counts as a fresh establishment");
    // Teardown was lossless: every message, including the pre-eviction
    // one, reaches its receiver exactly once.
    let ev = c.rank(1).wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
    assert_eq!((ev.rid, ev.payload.as_deref()), (1, Some(b"a".as_slice())));
    let ev = c.rank(1).wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap();
    assert_eq!((ev.rid, ev.payload.as_deref()), (4, Some(b"again".as_slice())));
    assert_eq!(c.rank(2).wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap().rid, 2);
    assert_eq!(c.rank(3).wait_completion_matching(photon_core::ProbeFlags::Remote).unwrap().rid, 3);
    // No rank ever exceeded the cap.
    for p in c.ranks() {
        assert!(p.conn_count() <= 2, "rank {} holds {} conns", p.rank(), p.conn_count());
    }
}

#[test]
fn eviction_resolves_in_flight_rids_like_mark_dead() {
    // Eviction runs the mark_dead flush discipline: CQEs that already
    // exist deliver with their true status first, anything left drains as
    // FlushErr — either way every accepted rid resolves typed and the
    // wr table is left empty.
    let cfg = PhotonConfig::builder().conn_cache_cap(2).build().unwrap();
    let c = PhotonCluster::new(4, NetworkModel::ib_fdr(), cfg);
    let p0 = c.rank(0);
    let src = p0.register_buffer(256 * 1024).unwrap();
    let dst = c.rank(1).register_buffer(256 * 1024).unwrap();
    // A direct RDMA put whose CQE lies in the virtual future.
    p0.put(1, &src, 0, 256 * 1024, &dst.descriptor(), 0, 7).unwrap();
    assert_eq!(p0.in_flight(), 1);
    // Evict peer 1 while that wr is outstanding.
    p0.send(2, b"x", 100).unwrap();
    p0.send(3, b"y", 101).unwrap();
    assert!(p0.stats().conns_evicted >= 1);
    assert_eq!(p0.in_flight(), 0, "eviction leaves nothing pending");
    match p0.wait_local(7) {
        Ok(_) => {} // the CQE existed at flush time: true status delivered
        Err(PhotonError::OpFailed { rid: 7, .. }) => {} // drained as FlushErr
        other => panic!("rid must resolve typed, got {other:?}"),
    }
    // The resolved generation stays resolved: reusing the rid after the
    // reconnect completes exactly once, with a genuine success.
    p0.put(1, &src, 0, 64, &dst.descriptor(), 0, 7).unwrap();
    p0.wait_local(7).unwrap();
}

#[test]
fn killed_peer_cannot_resurrect_before_rejoin() {
    let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    let p0 = c.rank(0);
    let kill_at = p0.now().as_nanos() + 1;
    p0.send(1, b"pre", 1).unwrap();
    c.fabric().switch().faults().kill_node_at(1, VTime(kill_at));
    p0.elapse(10);
    let e = loop {
        match p0.send(1, b"mid", 2) {
            Ok(()) => continue,
            Err(e) => break e,
        }
    };
    assert_eq!(e, PhotonError::PeerDead(1));
    assert_eq!(p0.take_dead_peers(), vec![1], "one death, one notification");
    // Long after the crash the peer is still dead — same incarnation, no
    // reconnect, no CM round-trip.
    p0.elapse(1_000_000_000);
    assert_eq!(p0.send(1, b"late", 3), Err(PhotonError::PeerDead(1)));
    assert_eq!(p0.peer_health(1).unwrap(), PeerHealthState::Dead);
}

#[test]
fn rejoined_peer_gets_fresh_incarnation_and_state() {
    let c = PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default());
    let (p0, p1) = (c.rank(0), c.rank(1));
    let src = p0.register_buffer(64).unwrap();
    let dst = p1.register_buffer(64).unwrap();
    let t0 = p0.now().as_nanos();
    c.fabric().switch().faults().kill_node_at(1, VTime(t0 + 1));
    c.fabric().switch().faults().revive_node_at(1, VTime(t0 + 1_000_000));
    p0.elapse(10);
    // Drive traffic into the crash: ops accepted before detection flush.
    let mut flushed = Vec::new();
    let mut rid = 10u64;
    let death = loop {
        match p0.put(1, &src, 0, 64, &dst.descriptor(), 0, rid) {
            Ok(()) => {
                flushed.push(rid);
                rid += 1;
            }
            Err(e) => break e,
        }
    };
    assert_eq!(death, PhotonError::PeerDead(1));
    // Every accepted rid resolves (success or typed flush) — no hangs, and
    // exactly once.
    for r in &flushed {
        let _ = p0.wait_local(*r);
    }
    assert_eq!(p0.in_flight(), 0);
    assert_eq!(p0.take_dead_peers(), vec![1]);
    // Still the dead incarnation: the guard refuses resurrection.
    assert_eq!(p0.send(1, b"too-soon", 500), Err(PhotonError::PeerDead(1)));
    // Cross the revive instant: the next op reconnects against the new
    // incarnation and completes for real.
    p0.elapse(2_000_000);
    p0.put(1, &src, 0, 64, &dst.descriptor(), 0, 900).unwrap();
    p0.wait_local(900).unwrap();
    assert_eq!(p0.peer_health(1).unwrap(), PeerHealthState::Healthy);
    // A rid flushed in the old generation completes cleanly when reused in
    // the new one — the old generation's flush cannot leak into it.
    if let Some(&r) = flushed.first() {
        p0.put(1, &src, 0, 8, &dst.descriptor(), 0, r).unwrap();
        p0.wait_local(r).unwrap();
    }
    assert_eq!(p0.take_dead_peers(), Vec::<usize>::new(), "no duplicate death notification");
}
