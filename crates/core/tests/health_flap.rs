//! Property tests for the per-peer health machine under flapping — seeded
//! kill/revive sequences with traffic in between. Pinned properties:
//!
//! * **backoff-probe monotonicity** — while a peer is Suspect, the virtual
//!   intervals between reconnection probes never shrink, and saturate at
//!   `backoff_max_ns`;
//! * **no double-flush** — across any kill/revive/kill sequence, every
//!   accepted rid surfaces exactly one local completion (success or error),
//!   never two, never zero;
//! * **credits reclaimed exactly once** — after a death flushed a
//!   generation's credits, a reconnect to the revived peer starts from a
//!   full credit window: the eager path accepts exactly as many posts as a
//!   never-killed peer's does.

use photon_core::{
    Completion, PeerHealthState, PhotonCluster, PhotonConfig, PhotonError, ProbeFlags,
};
use photon_fabric::{NetworkModel, VTime, Window};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Fast-detection knobs shared by every case: the full ride (deadline +
/// probe budget) spans ≈70k virtual ns.
fn fast_cfg() -> PhotonConfig {
    PhotonConfig {
        eager_threshold: 1024,
        eager_ring_bytes: 8 * 1024,
        ledger_entries: 32,
        suspect_deadline_ns: 5_000,
        backoff_base_ns: 2_000,
        backoff_max_ns: 40_000,
        suspect_death_probes: 5,
        ..PhotonConfig::default()
    }
}

#[test]
fn backoff_probe_intervals_are_monotone_then_capped() {
    // A long partition with a probe budget too large to exhaust: every
    // `check_peer` call advances the clock to the next retry deadline, so
    // consecutive `now()` readings expose the backoff schedule directly.
    let cfg = PhotonConfig {
        suspect_deadline_ns: 5_000,
        backoff_base_ns: 1_000,
        backoff_max_ns: 64_000,
        suspect_death_probes: 200,
        ..PhotonConfig::default()
    };
    let c = PhotonCluster::new(2, NetworkModel::ib_fdr(), cfg);
    let p0 = c.rank(0);
    let t0 = p0.now().as_nanos();
    c.fabric().switch().faults().partition_during(
        0,
        1,
        Window::new(VTime(t0), VTime(t0 + 10_000_000)),
    );
    assert_eq!(p0.check_peer(1).unwrap(), PeerHealthState::Suspect);

    let mut instants = vec![p0.now().as_nanos()];
    for _ in 0..16 {
        assert_eq!(p0.check_peer(1).unwrap(), PeerHealthState::Suspect);
        instants.push(p0.now().as_nanos());
    }
    // deltas[0] is the suspect deadline; the backoff schedule proper starts
    // at deltas[1] and must never shrink, saturating at backoff_max.
    let deltas: Vec<u64> = instants.windows(2).map(|w| w[1] - w[0]).collect();
    for (i, w) in deltas[1..].windows(2).enumerate() {
        assert!(w[1] >= w[0], "probe interval shrank at step {i}: {:?}", deltas);
        assert!(w[1] <= 64_000, "probe interval exceeds backoff_max: {:?}", deltas);
    }
    assert_eq!(
        *deltas.last().unwrap(),
        64_000,
        "backoff never saturated at backoff_max: {:?}",
        deltas
    );
    // The partition ends inside the probe budget: the peer heals and the
    // machine records exactly the probes the schedule predicts.
    p0.elapse(10_000_000);
    assert_eq!(p0.check_peer(1).unwrap(), PeerHealthState::Healthy);
    let s = p0.stats();
    assert_eq!(s.peer_recoveries, 1);
    assert!(s.reconnect_probes >= deltas.len() as u64);
    assert_eq!(s.peers_dead, 0, "a healed partition must not count as a death");
}

/// Drive rank 0's completion queue dry, folding every surfaced local rid
/// into `seen`.
fn drain_local(c: &PhotonCluster, seen: &mut HashMap<u64, u32>) {
    let p0 = c.rank(0);
    let mut evs: Vec<Completion> = Vec::new();
    loop {
        evs.clear();
        let n = p0.poll_completions(ProbeFlags::Local, &mut evs, 64).unwrap_or(0);
        if n == 0 {
            break;
        }
        for ev in &evs {
            *seen.entry(ev.rid).or_insert(0) += 1;
        }
    }
}

/// Retry a 1-byte send until the (revived) peer accepts it again.
fn reconnect(c: &PhotonCluster, peer: usize, rrid: u64) {
    let p0 = c.rank(0);
    for _ in 0..50 {
        match p0.try_send(peer, b"r", rrid) {
            Ok(true) => return,
            Ok(false) | Err(PhotonError::PeerDead(_)) => {
                p0.elapse(20_000);
            }
            Err(e) => panic!("reconnect to {peer} failed oddly: {e}"),
        }
    }
    panic!("rank 0 never reconnected to revived rank {peer}");
}

/// Flood `peer` with unacknowledged 64-byte eager sends until the credit
/// window closes; returns how many the window admitted.
fn flood_capacity(c: &PhotonCluster, peer: usize, rid_base: u64) -> u64 {
    let p0 = c.rank(0);
    let mut accepted = 0u64;
    for i in 0..10_000u64 {
        match p0.try_send(peer, &[0u8; 64], rid_base + i) {
            Ok(true) => accepted += 1,
            Ok(false) => break,
            Err(e) => panic!("flood send {i} to {peer} failed oddly: {e}"),
        }
    }
    accepted
}

#[test]
fn flapping_never_double_flushes_rids_and_reclaims_credits_once() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xF1A9 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let c = PhotonCluster::new(3, NetworkModel::ideal(), fast_cfg());
        let p0 = c.rank(0);
        let src = p0.register_buffer(256).unwrap();
        let dst = c.rank(1).register_buffer(256).unwrap();
        let d = dst.descriptor();

        let mut seen: HashMap<u64, u32> = HashMap::new();
        let mut posted: Vec<u64> = Vec::new();
        let mut rid = 1u64;
        let mut rrid = 0x10_0000u64;
        let mut deaths = 0u64;

        let phases = rng.gen_range(2..=4);
        for _ in 0..phases {
            // Kill rank 1 a hair into the future, then keep posting: some
            // ops race the kill, some fail at the gate, some ride probes.
            c.fabric().switch().faults().kill_node_at(1, VTime(p0.now().as_nanos() + 1));
            deaths += 1;
            let ops = rng.gen_range(4..=12);
            for _ in 0..ops {
                rrid += 1;
                let accepted = if rng.gen_range(0u8..100) < 50 {
                    let r = p0.put_with_completion(1, &src, 0, 64, &d, 0, rid, rrid);
                    match r {
                        Ok(()) => true,
                        Err(PhotonError::PeerDead(_)) | Err(PhotonError::WouldBlock) => false,
                        Err(e) => panic!("seed {seed}: put failed oddly: {e}"),
                    }
                } else {
                    // A send with a local rid so its resolution is countable.
                    match p0.send_with_local(1, &[7u8; 48], rrid, rid) {
                        Ok(()) => true,
                        Err(PhotonError::PeerDead(_)) | Err(PhotonError::WouldBlock) => false,
                        Err(e) => panic!("seed {seed}: send failed oddly: {e}"),
                    }
                };
                if accepted {
                    posted.push(rid);
                }
                rid += 1;
                drain_local(&c, &mut seen);
            }
            // Ride the health machine to the death verdict, then verify the
            // eviction flushed everything exactly once.
            while p0.check_peer(1).unwrap() != PeerHealthState::Dead {
                p0.elapse(5_000);
            }
            drain_local(&c, &mut seen);
            assert_eq!(p0.in_flight(), 0, "seed {seed}: eviction left in-flight wrs");
            for r in &posted {
                assert_eq!(
                    seen.get(r),
                    Some(&1),
                    "seed {seed}: rid {r} resolved {:?} times (want exactly 1)",
                    seen.get(r)
                );
            }
            // Revive into the next incarnation and reconnect on demand.
            c.fabric().switch().faults().revive_node_at(1, VTime(p0.now().as_nanos() + 1));
            p0.elapse(10_000);
            rrid += 1;
            reconnect(&c, 1, rrid);
        }

        assert_eq!(
            p0.stats().peers_dead,
            deaths,
            "seed {seed}: each kill must be detected exactly once (no double eviction)"
        );

        // Credit conservation across all that flapping: the rebuilt
        // connection's eager window admits exactly as much as the window
        // toward never-killed rank 2 — reclaimed once, leaked never.
        let baseline = flood_capacity(&c, 2, 0x20_0000);
        let revived = flood_capacity(&c, 1, 0x30_0000);
        assert!(baseline > 0, "seed {seed}: baseline flood admitted nothing");
        // The final reconnect consumed one frame of the revived window;
        // anything beyond that means credits were double-reclaimed or
        // leaked somewhere across the flaps.
        assert!(
            revived <= baseline && baseline - revived <= 1,
            "seed {seed}: revived credit window {revived} vs baseline {baseline} \
             (credits double-reclaimed or leaked)"
        );
    }
}
