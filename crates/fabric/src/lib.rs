//! # photon-fabric — a simulated RDMA fabric
//!
//! This crate is the hardware substrate for the `photon-rs` reproduction of
//! *Photon: Remote Memory Access Middleware for High-Performance Runtime
//! Systems* (Kissel & Swany, IPDRM 2016).
//!
//! The original middleware runs over InfiniBand verbs and Cray uGNI.  Neither
//! is available here, so this crate provides a faithful, software-only stand-in
//! with the same structural API surface:
//!
//! * **Memory registration** — buffers must be registered before the "NIC" may
//!   touch them; registration yields `(addr, rkey)` descriptors that peers use
//!   for one-sided access, with bounds and access-flag checking on every op.
//! * **Queue pairs** — reliable-connected endpoints carrying `Send`,
//!   `RdmaWrite` (optionally with immediate data), `RdmaRead`, `FetchAdd` and
//!   `CompareSwap` work requests, with per-QP ordering.
//! * **Completion queues** — polled for initiator- and target-side completion
//!   events, exactly as a verbs consumer would.
//! * **A LogGP network model** — every operation is assigned virtual-time
//!   timestamps from a configurable `(L, o, g, G)` model with per-port
//!   serialization, so latency/bandwidth/message-rate *shapes* match what the
//!   protocols above would exhibit on the modeled hardware.
//!
//! ## Execution model
//!
//! Operations take effect *synchronously* at post time (the posting thread
//! performs the remote memory effect under the target's locks), while
//! completion **timestamps** are computed from the network model.  Virtual
//! time flows along causal chains: completions carry timestamps, consumers
//! advance their [`clock::VClock`] to the maximum of their own time and the
//! event's time, and subsequent posts depart no earlier than the consumer's
//! clock.  This makes sequential patterns (ping-pong, streaming windows,
//! dissemination rounds) deterministic in virtual time while keeping the
//! implementation free of background progress threads.
//!
//! Real wall-clock measurements of the software path (ledger manipulation,
//! probe costs, registration) remain meaningful because the fabric performs
//! real work (real locks, real memcpys) on the posting thread.

#![warn(missing_docs)]

pub mod api;
pub mod backend;
pub mod clock;
pub mod error;
pub mod fault;
pub mod model;
pub mod mr;
pub mod nic;
pub mod sock;
pub mod topology;
pub mod verbs;
pub mod wire;

pub use backend::FabricBackend;
pub use clock::{VClock, VTime};
pub use error::{FabricError, Result};
pub use fault::{FaultPlan, Window};
pub use model::NetworkModel;
pub use mr::{Access, MemoryRegion, MrTable, RemoteKey};
pub use nic::{Nic, NicConfig};
pub use topology::Cluster;
pub use verbs::{
    Completion, CompletionKind, Cq, MrSlice, Qp, RecvWr, RemoteSlice, SendWr, WcStatus, WrOp,
};
pub use wire::{PodTopology, Switch};

/// Identifier of a simulated node (0-based, dense).
pub type NodeId = usize;
