//! Memory registration.
//!
//! RDMA NICs can only DMA into *registered* (pinned, IOMMU-mapped) memory.
//! Registration returns a local key (`lkey`, used in local work requests) and
//! a remote key (`rkey`, handed to peers for one-sided access).  This module
//! simulates that contract: all fabric memory lives inside [`MemoryRegion`]s
//! owned by a per-node [`MrTable`], every one-sided access is resolved and
//! bounds/permission checked through the table, and registration carries a
//! modeled virtual-time cost proportional to the number of pages pinned.
//!
//! The application reads and writes registered memory through the region
//! handle (`write_at` / `read_at` / typed helpers); this stands in for the
//! raw pointer access a real consumer would use, while keeping the simulated
//! cross-"node" accesses data-race free behind a per-region `RwLock`.

use crate::error::{FabricError, Result};
use crate::NodeId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Access permissions for a registered region, verbs-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access(u8);

impl Access {
    /// Local read/write only (the NIC may gather from it).
    pub const LOCAL: Access = Access(0b001);
    /// Peers may RDMA-write into the region.
    pub const REMOTE_WRITE: Access = Access(0b010);
    /// Peers may RDMA-read from the region.
    pub const REMOTE_READ: Access = Access(0b100);
    /// Peers may perform remote atomics on the region.
    pub const REMOTE_ATOMIC: Access = Access(0b1000);
    /// Everything: the common choice for middleware-managed buffers.
    pub const ALL: Access = Access(0b1111);

    /// Union of two permission sets.
    #[inline]
    pub fn union(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }

    /// Does this permission set include all bits of `needed`?
    #[inline]
    pub fn allows(self, needed: Access) -> bool {
        self.0 & needed.0 == needed.0
    }
}

/// The `(addr, rkey, len)` descriptor a peer needs for one-sided access.
///
/// This is what Photon's buffer-exchange metadata carries on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteKey {
    /// Base virtual address of the region on the owning node.
    pub addr: u64,
    /// Remote key naming the region.
    pub rkey: u32,
    /// Length in bytes.
    pub len: usize,
}

impl RemoteKey {
    /// Descriptor for the sub-range `[offset, offset + len)` of this region.
    pub fn slice(&self, offset: usize, len: usize) -> RemoteKey {
        debug_assert!(offset + len <= self.len);
        RemoteKey { addr: self.addr + offset as u64, rkey: self.rkey, len }
    }

    /// Serialize to fixed-size bytes for in-band exchange (20 bytes).
    pub fn to_bytes(&self) -> [u8; 20] {
        let mut b = [0u8; 20];
        b[0..8].copy_from_slice(&self.addr.to_le_bytes());
        b[8..12].copy_from_slice(&self.rkey.to_le_bytes());
        b[12..20].copy_from_slice(&(self.len as u64).to_le_bytes());
        b
    }

    /// Inverse of [`RemoteKey::to_bytes`].
    pub fn from_bytes(b: &[u8]) -> RemoteKey {
        RemoteKey {
            addr: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            rkey: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            len: u64::from_le_bytes(b[12..20].try_into().unwrap()) as usize,
        }
    }
}

#[derive(Debug)]
struct MrInner {
    node: NodeId,
    base: u64,
    rkey: u32,
    lkey: u32,
    flags: Access,
    /// Region size. Registration sizes are immutable, so hot-path bounds
    /// checks read this instead of taking the data lock.
    len: usize,
    data: RwLock<Box<[u8]>>,
}

/// A registered memory region on a simulated node.
///
/// Cloning the handle is cheap (`Arc`); the underlying memory is shared.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    inner: Arc<MrInner>,
}

impl MemoryRegion {
    /// Owning node.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Base virtual address on the owning node.
    pub fn base_addr(&self) -> u64 {
        self.inner.base
    }

    /// Remote key peers use to name this region.
    pub fn rkey(&self) -> u32 {
        self.inner.rkey
    }

    /// Local key.
    pub fn lkey(&self) -> u32 {
        self.inner.lkey
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access flags the region was registered with.
    pub fn flags(&self) -> Access {
        self.inner.flags
    }

    /// Full remote descriptor for this region.
    pub fn remote_key(&self) -> RemoteKey {
        RemoteKey { addr: self.inner.base, rkey: self.inner.rkey, len: self.len() }
    }

    /// Copy `src` into the region at `offset` (local CPU store).
    pub fn write_at(&self, offset: usize, src: &[u8]) {
        let mut d = self.inner.data.write();
        d[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Copy from the region at `offset` into `dst` (local CPU load).
    pub fn read_at(&self, offset: usize, dst: &mut [u8]) {
        let d = self.inner.data.read();
        dst.copy_from_slice(&d[offset..offset + dst.len()]);
    }

    /// Read a little-endian `u64` at `offset`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read_at(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian `u64` at `offset`.
    pub fn write_u64(&self, offset: usize, v: u64) {
        self.write_at(offset, &v.to_le_bytes());
    }

    /// Fill the whole region with `byte`.
    pub fn fill(&self, byte: u8) {
        self.inner.data.write().fill(byte);
    }

    /// Snapshot `len` bytes from `offset` into a fresh `Vec`.
    pub fn to_vec(&self, offset: usize, len: usize) -> Vec<u8> {
        let d = self.inner.data.read();
        d[offset..offset + len].to_vec()
    }

    /// Run `f` with shared access to the raw bytes (used by the NIC engine
    /// to gather without an intermediate copy).
    pub fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.inner.data.read())
    }

    /// Run `f` with exclusive access to the raw bytes (used by the NIC
    /// engine to scatter).
    pub fn with_bytes_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.inner.data.write())
    }

    /// Check that `[offset, offset+len)` lies inside the region.
    pub fn check_bounds(&self, offset: usize, len: usize) -> Result<()> {
        let region_len = self.len();
        if offset.checked_add(len).is_none_or(|end| end > region_len) {
            return Err(FabricError::OutOfBounds {
                addr: self.inner.base + offset as u64,
                len,
                region_base: self.inner.base,
                region_len,
            });
        }
        Ok(())
    }

    /// Atomically fetch-and-add at a u64-aligned `offset`, returning the old
    /// value. Used by the NIC engine for remote atomics; atomicity is
    /// provided by the region's write lock.
    pub fn fetch_add_u64(&self, offset: usize, add: u64) -> u64 {
        let mut d = self.inner.data.write();
        let old = u64::from_le_bytes(d[offset..offset + 8].try_into().unwrap());
        d[offset..offset + 8].copy_from_slice(&old.wrapping_add(add).to_le_bytes());
        old
    }

    /// Atomically compare-and-swap at a u64-aligned `offset`, returning the
    /// old value (swap happens only if old == `compare`).
    pub fn compare_swap_u64(&self, offset: usize, compare: u64, swap: u64) -> u64 {
        let mut d = self.inner.data.write();
        let old = u64::from_le_bytes(d[offset..offset + 8].try_into().unwrap());
        if old == compare {
            d[offset..offset + 8].copy_from_slice(&swap.to_le_bytes());
        }
        old
    }
}

/// Per-node registration table: allocates keys and virtual addresses,
/// resolves `(addr, rkey)` descriptors, and enforces a registration limit.
#[derive(Debug)]
pub struct MrTable {
    node: NodeId,
    by_rkey: RwLock<HashMap<u32, MemoryRegion>>,
    next_key: AtomicU32,
    next_addr: AtomicU64,
    registered_bytes: AtomicUsize,
    limit_bytes: usize,
    /// Bumped on every deregistration. Rkeys are never reused, so a resolve
    /// result cached against a generation stays valid exactly while the
    /// generation holds (registration can only add rkeys, never repoint one).
    generation: AtomicU64,
}

/// Default per-node registration limit: 1 GiB of pinned memory.
pub const DEFAULT_REG_LIMIT: usize = 1 << 30;

impl MrTable {
    /// New table for `node` with the default registration limit.
    pub fn new(node: NodeId) -> Self {
        Self::with_limit(node, DEFAULT_REG_LIMIT)
    }

    /// New table with an explicit pinning limit (fault-injection hook).
    pub fn with_limit(node: NodeId, limit_bytes: usize) -> Self {
        MrTable {
            node,
            by_rkey: RwLock::new(HashMap::new()),
            next_key: AtomicU32::new(1),
            // Start virtual addresses away from zero so a zero addr is
            // recognizably invalid, as on real hardware.
            next_addr: AtomicU64::new(0x1000_0000),
            registered_bytes: AtomicUsize::new(0),
            limit_bytes,
            generation: AtomicU64::new(0),
        }
    }

    /// Register a zero-initialized region of `len` bytes.
    pub fn register(&self, len: usize, flags: Access) -> Result<MemoryRegion> {
        // Charge against the pinning limit first.
        let mut cur = self.registered_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur + len;
            if next > self.limit_bytes {
                return Err(FabricError::RegistrationLimit { limit_bytes: self.limit_bytes });
            }
            match self.registered_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        // Page-align and pad address allocation like a pinned allocator would.
        let span = len.div_ceil(crate::model::PAGE_SIZE).max(1) * crate::model::PAGE_SIZE;
        let base = self.next_addr.fetch_add(span as u64, Ordering::Relaxed);
        let mr = MemoryRegion {
            inner: Arc::new(MrInner {
                node: self.node,
                base,
                rkey: key,
                lkey: key,
                flags,
                len,
                data: RwLock::new(vec![0u8; len].into_boxed_slice()),
            }),
        };
        self.by_rkey.write().insert(key, mr.clone());
        Ok(mr)
    }

    /// Deregister a region, releasing its pinning budget. Outstanding handles
    /// keep the memory alive but the table will no longer resolve its rkey.
    pub fn deregister(&self, mr: &MemoryRegion) -> Result<()> {
        self.generation.fetch_add(1, Ordering::Relaxed);
        let removed = self.by_rkey.write().remove(&mr.rkey());
        match removed {
            Some(r) => {
                self.registered_bytes.fetch_sub(r.len(), Ordering::Relaxed);
                Ok(())
            }
            None => Err(FabricError::InvalidRkey { node: self.node, rkey: mr.rkey() }),
        }
    }

    /// Resolve a one-sided access `(addr, rkey, len)` to a region and offset,
    /// verifying bounds and that the region allows `needed` access.
    pub fn resolve(
        &self,
        addr: u64,
        rkey: u32,
        len: usize,
        needed: Access,
    ) -> Result<(MemoryRegion, usize)> {
        let mr = self
            .by_rkey
            .read()
            .get(&rkey)
            .cloned()
            .ok_or(FabricError::InvalidRkey { node: self.node, rkey })?;
        if !mr.flags().allows(needed) {
            return Err(FabricError::AccessDenied { rkey, needed: access_name(needed) });
        }
        let base = mr.base_addr();
        if addr < base {
            return Err(FabricError::OutOfBounds {
                addr,
                len,
                region_base: base,
                region_len: mr.len(),
            });
        }
        let offset = (addr - base) as usize;
        mr.check_bounds(offset, len)?;
        Ok((mr, offset))
    }

    /// Resolve-cache validity token: unchanged generation means every rkey
    /// that resolved before still resolves to the same region.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Look up a region by lkey (local gather/scatter validation).
    pub fn lookup_lkey(&self, lkey: u32) -> Result<MemoryRegion> {
        self.by_rkey.read().get(&lkey).cloned().ok_or(FabricError::InvalidLkey { lkey })
    }

    /// Bytes currently pinned.
    pub fn registered_bytes(&self) -> usize {
        self.registered_bytes.load(Ordering::Relaxed)
    }

    /// The pinning limit this table enforces.
    pub fn limit_bytes(&self) -> usize {
        self.limit_bytes
    }

    /// Number of live registrations.
    pub fn region_count(&self) -> usize {
        self.by_rkey.read().len()
    }
}

fn access_name(a: Access) -> &'static str {
    if a.allows(Access::REMOTE_ATOMIC) {
        "remote-atomic"
    } else if a.allows(Access::REMOTE_WRITE) {
        "remote-write"
    } else if a.allows(Access::REMOTE_READ) {
        "remote-read"
    } else {
        "local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_rw_roundtrip() {
        let t = MrTable::new(0);
        let mr = t.register(128, Access::ALL).unwrap();
        assert_eq!(mr.len(), 128);
        mr.write_at(16, b"hello photon");
        let mut buf = [0u8; 12];
        mr.read_at(16, &mut buf);
        assert_eq!(&buf, b"hello photon");
        mr.write_u64(0, 0xdead_beef);
        assert_eq!(mr.read_u64(0), 0xdead_beef);
    }

    #[test]
    fn resolve_checks_bounds_and_flags() {
        let t = MrTable::new(2);
        let mr = t.register(64, Access::REMOTE_WRITE.union(Access::LOCAL)).unwrap();
        let rk = mr.remote_key();
        // In-bounds write resolve is fine.
        let (r, off) = t.resolve(rk.addr + 8, rk.rkey, 8, Access::REMOTE_WRITE).unwrap();
        assert_eq!(off, 8);
        assert_eq!(r.rkey(), mr.rkey());
        // Out-of-bounds fails.
        let err = t.resolve(rk.addr + 60, rk.rkey, 8, Access::REMOTE_WRITE);
        assert!(matches!(err, Err(FabricError::OutOfBounds { .. })));
        // Address below the base fails.
        let err = t.resolve(rk.addr - 1, rk.rkey, 1, Access::REMOTE_WRITE);
        assert!(matches!(err, Err(FabricError::OutOfBounds { .. })));
        // Missing access flag fails.
        let err = t.resolve(rk.addr, rk.rkey, 8, Access::REMOTE_READ);
        assert!(matches!(err, Err(FabricError::AccessDenied { .. })));
        // Unknown rkey fails.
        let err = t.resolve(rk.addr, 999, 8, Access::REMOTE_WRITE);
        assert!(matches!(err, Err(FabricError::InvalidRkey { node: 2, .. })));
    }

    #[test]
    fn deregister_releases_budget_and_resolution() {
        let t = MrTable::with_limit(0, 256);
        let mr = t.register(200, Access::ALL).unwrap();
        assert_eq!(t.registered_bytes(), 200);
        // Second registration exceeds the limit.
        assert!(matches!(t.register(100, Access::ALL), Err(FabricError::RegistrationLimit { .. })));
        let rk = mr.remote_key();
        t.deregister(&mr).unwrap();
        assert_eq!(t.registered_bytes(), 0);
        assert!(t.resolve(rk.addr, rk.rkey, 8, Access::LOCAL).is_err());
        // Double-deregister reports an error.
        assert!(t.deregister(&mr).is_err());
        // Now there is room again.
        t.register(100, Access::ALL).unwrap();
    }

    #[test]
    fn addresses_do_not_overlap() {
        let t = MrTable::new(0);
        let a = t.register(5000, Access::ALL).unwrap();
        let b = t.register(64, Access::ALL).unwrap();
        assert!(b.base_addr() >= a.base_addr() + 5000);
        assert_ne!(a.rkey(), b.rkey());
    }

    #[test]
    fn remote_key_bytes_roundtrip() {
        let rk = RemoteKey { addr: 0x1234_5678_9abc, rkey: 77, len: 4096 };
        assert_eq!(RemoteKey::from_bytes(&rk.to_bytes()), rk);
        let sliced = rk.slice(100, 50);
        assert_eq!(sliced.addr, rk.addr + 100);
        assert_eq!(sliced.len, 50);
    }

    #[test]
    fn atomics_on_region() {
        let t = MrTable::new(0);
        let mr = t.register(64, Access::ALL).unwrap();
        mr.write_u64(8, 10);
        assert_eq!(mr.fetch_add_u64(8, 5), 10);
        assert_eq!(mr.read_u64(8), 15);
        assert_eq!(mr.compare_swap_u64(8, 15, 99), 15);
        assert_eq!(mr.read_u64(8), 99);
        // Failed CAS leaves the value alone.
        assert_eq!(mr.compare_swap_u64(8, 15, 1), 99);
        assert_eq!(mr.read_u64(8), 99);
    }

    #[test]
    fn access_flag_algebra() {
        assert!(Access::ALL.allows(Access::REMOTE_ATOMIC));
        assert!(!Access::LOCAL.allows(Access::REMOTE_WRITE));
        let rw = Access::REMOTE_READ.union(Access::REMOTE_WRITE);
        assert!(rw.allows(Access::REMOTE_READ));
        assert!(rw.allows(Access::REMOTE_WRITE));
        assert!(!rw.allows(Access::REMOTE_ATOMIC));
    }
}
