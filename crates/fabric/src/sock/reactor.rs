//! The per-process reactor: executes emulated one-sided operations.
//!
//! One thread per [`SockNic`] loops on the UDP socket with a short read
//! timeout. Each pass drains pending datagrams (processing piggybacked and
//! explicit ACKs, then accepting sequenced frames in channel order),
//! answers read/atomic requests against local registered memory, flushes
//! newly due ACKs, and runs the retransmission tick. A channel whose retry
//! budget is exhausted is failed here, flushing its pending work requests
//! as `RetryExceeded` completions.

use super::chan::Channel;
use super::nic::{stamp_payload, SendReasm, SockNic};
use super::wire::{AtomicKind, Body, Packet, F_ERR, F_HAS_IMM, F_LAST, MAX_FRAG};
use crate::mr::Access;
use crate::verbs::{Completion, CompletionKind, WcStatus};
use std::io::ErrorKind;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Reactor thread body for `nic` (named `photon-sock-<node>`).
pub(super) fn run(nic: Arc<SockNic>) {
    let mut buf = vec![0u8; 65536];
    while !nic.stop.load(Ordering::Acquire) {
        // Drain every queued datagram before housekeeping.
        let mut drained = 0;
        loop {
            match nic.sock.recv_from(&mut buf) {
                Ok((n, _)) => {
                    if let Some(p) = Packet::decode(&buf[..n]) {
                        handle(&nic, p);
                    }
                    drained += 1;
                    if drained >= 1024 {
                        break; // bounded pass; acks must get out
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break
                }
                Err(_) => break,
            }
        }
        housekeeping(&nic);
    }
}

/// Flush due ACKs and run the retransmission tick on every channel.
fn housekeeping(nic: &Arc<SockNic>) {
    let Some(chans) = nic.chans.get() else { return };
    let now = Instant::now();
    for ch in chans {
        if ch.peer == nic.node() {
            continue;
        }
        if let Some(cum) = ch.ack_due(false) {
            send_ack(nic, ch, cum, None);
        }
        if ch.tick(&nic.sock, now) {
            nic.fail_peer(ch.peer);
        }
    }
}

fn send_ack(nic: &SockNic, ch: &Channel, cum: u64, err_op: Option<u64>) {
    let pkt = Packet {
        flags: if err_op.is_some() { F_ERR } else { 0 },
        src: nic.node(),
        dst: ch.peer,
        seq: 0,
        ack: cum,
        op: err_op.unwrap_or(0),
        body: Body::Ack,
    };
    let _ = nic.sock.send_to(&pkt.encode(), ch.peer_addr);
}

fn handle(nic: &Arc<SockNic>, p: Packet) {
    if p.dst != nic.node() {
        return;
    }
    let Some(chans) = nic.chans.get() else { return };
    let Some(ch) = chans.get(p.src) else { return };

    // Piggybacked cumulative ack (every packet carries one).
    let err_op =
        if matches!(p.body, Body::Ack) && p.flags & F_ERR != 0 { Some(p.op) } else { None };
    let acked = ch.on_ack(&nic.sock, p.ack, err_op);
    if !acked.is_empty() {
        nic.complete_acked(p.src, acked);
    }
    // Remote-validation failure of a read/atomic resolves its pending op.
    if let Some(bad) = err_op {
        let failed = nic.pending.lock().remove(&bad);
        if let Some(op) = failed {
            if op.signaled {
                let kind = if op.atomic {
                    CompletionKind::AtomicDone { old: 0 }
                } else {
                    CompletionKind::ReadDone
                };
                nic.push_send_cqe(Completion {
                    wr_id: op.wr_id,
                    kind,
                    ts: nic.now_v(),
                    status: WcStatus::FlushErr,
                });
            }
        }
    }
    if matches!(p.body, Body::Ack) {
        return;
    }

    // Sequenced frame: accept in order or drop + re-advertise (go-back-N).
    if !ch.accept(p.seq) {
        if let Some(cum) = ch.ack_due(true) {
            send_ack(nic, ch, cum, None);
        }
        return;
    }

    match p.body {
        Body::Ack => unreachable!("handled above"),
        Body::Write { addr, rkey, total, imm, stamps, mut payload } => {
            let ts = nic.now_v();
            stamp_payload(&mut payload, &stamps, 0, ts);
            match nic.mrs().resolve(addr, rkey, payload.len(), Access::REMOTE_WRITE) {
                Ok((mr, off)) => {
                    mr.write_at(off, &payload);
                    if p.flags & F_LAST != 0 && p.flags & F_HAS_IMM != 0 {
                        nic.push_recv_cqe(Completion {
                            wr_id: 0,
                            kind: CompletionKind::ImmDone { src: p.src, len: total as usize, imm },
                            ts,
                            status: WcStatus::Success,
                        });
                    }
                }
                Err(_) => {
                    if let Some(cum) = ch.ack_due(true) {
                        send_ack(nic, ch, cum, Some(p.op));
                    }
                    return;
                }
            }
        }
        Body::Send { total, frag_off, imm, payload } => {
            let imm = if p.flags & F_HAS_IMM != 0 { Some(imm) } else { None };
            let total = total as usize;
            if frag_off == 0 && payload.len() == total {
                nic.deliver_send(p.src, payload, imm);
            } else {
                let key = (p.src, p.op);
                let mut reasm = nic.reasm.lock();
                let entry = reasm.entry(key).or_insert_with(|| SendReasm {
                    buf: vec![0u8; total],
                    received: 0,
                    imm: None,
                });
                let off = frag_off as usize;
                let end = (off + payload.len()).min(entry.buf.len());
                if off < end {
                    entry.buf[off..end].copy_from_slice(&payload[..end - off]);
                    entry.received += end - off;
                }
                if imm.is_some() {
                    entry.imm = imm;
                }
                if p.flags & F_LAST != 0 {
                    let done = reasm.remove(&key).unwrap();
                    drop(reasm);
                    nic.deliver_send(p.src, done.buf, done.imm);
                }
            }
        }
        Body::ReadReq { addr, rkey, len } => {
            match nic.mrs().resolve(addr, rkey, len as usize, Access::REMOTE_READ) {
                Ok((mr, off)) => {
                    let data = mr.to_vec(off, len as usize);
                    let pkts = frag_read_resp(nic.node(), p.src, p.op, data);
                    ch.send_run(&nic.sock, pkts, None);
                }
                Err(_) => {
                    if let Some(cum) = ch.ack_due(true) {
                        send_ack(nic, ch, cum, Some(p.op));
                    }
                    return;
                }
            }
        }
        Body::ReadResp { total, frag_off, payload } => {
            let last = p.flags & F_LAST != 0;
            let mut pend = nic.pending.lock();
            if let Some(op) = pend.get(&p.op) {
                let off = frag_off as usize;
                let n = payload.len().min(op.local.len.saturating_sub(off));
                if n > 0 {
                    op.local.mr.write_at(op.local.offset + off, &payload[..n]);
                }
                let _ = total;
                if last {
                    let op = pend.remove(&p.op).unwrap();
                    drop(pend);
                    if op.signaled {
                        nic.push_send_cqe(Completion {
                            wr_id: op.wr_id,
                            kind: CompletionKind::ReadDone,
                            ts: nic.now_v(),
                            status: WcStatus::Success,
                        });
                    }
                }
            }
        }
        Body::AtomicReq { addr, rkey, akind, arg1, arg2 } => {
            let served = nic.serve_atomic_local(addr, rkey, |mr, off| match akind {
                AtomicKind::FetchAdd => mr.fetch_add_u64(off, arg1),
                AtomicKind::CompareSwap => mr.compare_swap_u64(off, arg1, arg2),
            });
            match served {
                Ok(old) => {
                    let pkt = Packet {
                        flags: F_LAST,
                        src: nic.node(),
                        dst: p.src,
                        seq: 0,
                        ack: 0,
                        op: p.op,
                        body: Body::AtomicResp { old },
                    };
                    ch.send_run(&nic.sock, vec![pkt], None);
                }
                Err(_) => {
                    if let Some(cum) = ch.ack_due(true) {
                        send_ack(nic, ch, cum, Some(p.op));
                    }
                    return;
                }
            }
        }
        Body::AtomicResp { old } => {
            let op = nic.pending.lock().remove(&p.op);
            if let Some(op) = op {
                op.local.mr.write_u64(op.local.offset, old);
                if op.signaled {
                    nic.push_send_cqe(Completion {
                        wr_id: op.wr_id,
                        kind: CompletionKind::AtomicDone { old },
                        ts: nic.now_v(),
                        status: WcStatus::Success,
                    });
                }
            }
        }
    }
    // Acknowledge the accepted frame promptly (cumulative).
    if let Some(cum) = ch.ack_due(false) {
        send_ack(nic, ch, cum, None);
    }
}

fn frag_read_resp(src: crate::NodeId, dst: crate::NodeId, op: u64, data: Vec<u8>) -> Vec<Packet> {
    let total = data.len();
    let mut pkts = Vec::new();
    let mut off = 0;
    loop {
        let n = (total - off).min(MAX_FRAG);
        let last = off + n == total;
        pkts.push(Packet {
            flags: if last { F_LAST } else { 0 },
            src,
            dst,
            seq: 0,
            ack: 0,
            op,
            body: Body::ReadResp {
                total: total as u32,
                frag_off: off as u32,
                payload: data[off..off + n].to_vec(),
            },
        });
        off += n;
        if last {
            break;
        }
    }
    pkts
}
