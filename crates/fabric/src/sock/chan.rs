//! Reliable delivery over one `(src, dst)` direction: cumulative
//! sequence/ack with go-back-N retransmission and bounded retry.
//!
//! All QPs between one pair of nodes share a channel, so channel order
//! implies per-QP order (strictly stronger, as on a shared RC link). A
//! channel that exhausts its retry budget is *failed*: every QP to the peer
//! enters the error state and pending work requests resolve as
//! [`crate::verbs::WcStatus::RetryExceeded`] completions — the sockets
//! analogue of `IBV_WC_RETRY_EXC_ERR`.

use super::wire::Packet;
use crate::verbs::CompletionKind;
use crate::NodeId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// In-flight window: frames past either cap wait, already sequenced, for
/// ack progress before hitting the wire.
pub const WINDOW_PKTS: usize = 128;
/// Byte-based companion cap, keeping bursts under the default UDP socket
/// buffer on localhost.
pub const WINDOW_BYTES: usize = 256 * 1024;

/// Initial retransmission timeout; doubles per round up to [`RTO_MAX`].
pub const RTO_INITIAL: Duration = Duration::from_millis(20);
/// Retransmission timeout ceiling.
pub const RTO_MAX: Duration = Duration::from_millis(200);
/// Retransmit rounds without ack progress before the channel fails.
pub const MAX_TRIES: u32 = 10;

/// What to resolve when a sequenced frame is cumulatively acked: the
/// initiator-side completion of the work request whose last fragment this
/// was.
#[derive(Debug)]
pub struct OpDone {
    /// Op correlation id (for remote-validation errors arriving by ACK).
    pub op: u64,
    /// Caller cookie for the completion.
    pub wr_id: u64,
    /// False for unsignaled wrs: resolve silently, no CQE.
    pub signaled: bool,
    /// `SendDone` or `WriteDone`.
    pub kind: CompletionKind,
    /// Remote validation failed (set by an `F_ERR` ACK before the frame
    /// was acked).
    pub errored: bool,
}

#[derive(Debug)]
struct Frame {
    seq: u64,
    bytes: Vec<u8>,
    /// Whether this frame has been handed to the socket at least once.
    sent: bool,
}

#[derive(Debug)]
struct TxState {
    /// Next sequence number to assign (first frame is seq 1).
    next_seq: u64,
    /// Highest cumulatively acked sequence.
    acked: u64,
    /// Sequenced frames not yet cumulatively acked, in seq order. The
    /// in-window prefix has hit the wire; the rest waits for ack progress.
    unacked: VecDeque<Frame>,
    /// Bytes of the in-window (sent) prefix.
    inflight_bytes: usize,
    /// Completions to resolve at cumulative ack, keyed by seq (ascending).
    on_ack: VecDeque<(u64, OpDone)>,
    /// Last transmission or ack-progress instant (RTO anchor).
    last_activity: Instant,
    /// Retransmit rounds since the last ack progress.
    tries: u32,
    current_rto: Duration,
}

#[derive(Debug)]
struct RxState {
    /// Next expected sequence number.
    expected: u64,
    /// Highest ack we have sent (suppresses redundant ACK datagrams).
    last_acked: u64,
}

/// One direction of a node pair: reliable transmission toward `peer` plus
/// in-order acceptance of `peer`'s frames.
#[derive(Debug)]
pub struct Channel {
    /// The remote node.
    pub peer: NodeId,
    /// The remote node's datagram address.
    pub peer_addr: SocketAddr,
    tx: Mutex<TxState>,
    rx: Mutex<RxState>,
    failed: AtomicBool,
    /// Latest cumulative ack to piggyback on outgoing frames (mirror of
    /// `rx.expected - 1`, readable without the rx lock).
    ack_mirror: AtomicU64,
}

/// Frames acked by one ack-processing pass, ready for completion fan-out.
pub type AckedOps = Vec<OpDone>;

impl Channel {
    /// Fresh channel toward `peer` at `peer_addr`.
    pub fn new(peer: NodeId, peer_addr: SocketAddr) -> Channel {
        Channel {
            peer,
            peer_addr,
            tx: Mutex::new(TxState {
                next_seq: 1,
                acked: 0,
                unacked: VecDeque::new(),
                inflight_bytes: 0,
                on_ack: VecDeque::new(),
                last_activity: Instant::now(),
                tries: 0,
                current_rto: RTO_INITIAL,
            }),
            rx: Mutex::new(RxState { expected: 1, last_acked: 0 }),
            failed: AtomicBool::new(false),
            ack_mirror: AtomicU64::new(0),
        }
    }

    /// True once the retry budget is exhausted.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Cumulative ack value to piggyback on the next outgoing packet.
    pub fn piggyback_ack(&self) -> u64 {
        self.ack_mirror.load(Ordering::Relaxed)
    }

    /// Sequence, enqueue, and (window permitting) transmit a run of
    /// packets. `packets` are pre-built except for `seq`/`ack`, which this
    /// method assigns under the tx lock; `done` resolves when the *last*
    /// packet of the run is cumulatively acked.
    pub fn send_run(
        &self,
        sock: &UdpSocket,
        mut packets: Vec<Packet>,
        done: Option<OpDone>,
    ) -> bool {
        if self.is_failed() {
            return false;
        }
        let ack = self.piggyback_ack();
        let mut tx = self.tx.lock();
        let mut last_seq = 0;
        for p in &mut packets {
            p.seq = tx.next_seq;
            p.ack = ack;
            tx.next_seq += 1;
            last_seq = p.seq;
        }
        if let Some(d) = done {
            tx.on_ack.push_back((last_seq, d));
        }
        for p in &packets {
            tx.unacked.push_back(Frame { seq: p.seq, bytes: p.encode(), sent: false });
        }
        self.pump_window(sock, &mut tx);
        true
    }

    /// Transmit the unsent prefix that fits the window.
    fn pump_window(&self, sock: &UdpSocket, tx: &mut TxState) {
        let mut sent_any = false;
        let mut pkts_inflight = 0;
        for f in tx.unacked.iter() {
            if f.sent {
                pkts_inflight += 1;
            }
        }
        let mut bytes = tx.inflight_bytes;
        for f in tx.unacked.iter_mut() {
            if f.sent {
                continue;
            }
            if pkts_inflight >= WINDOW_PKTS
                || bytes + f.bytes.len() > WINDOW_BYTES.max(f.bytes.len())
            {
                break;
            }
            let _ = sock.send_to(&f.bytes, self.peer_addr);
            f.sent = true;
            pkts_inflight += 1;
            bytes += f.bytes.len();
            sent_any = true;
        }
        tx.inflight_bytes = bytes;
        if sent_any {
            tx.last_activity = Instant::now();
        }
    }

    /// Process a cumulative ack from the peer; returns the completions it
    /// resolved, in seq order. `err_op` carries an op id the peer flagged
    /// as failing remote validation (`F_ERR`).
    pub fn on_ack(&self, sock: &UdpSocket, ack: u64, err_op: Option<u64>) -> AckedOps {
        let mut tx = self.tx.lock();
        if let Some(bad) = err_op {
            for (_, d) in tx.on_ack.iter_mut() {
                if d.op == bad {
                    d.errored = true;
                }
            }
        }
        if ack > tx.acked {
            tx.acked = ack;
            tx.tries = 0;
            tx.current_rto = RTO_INITIAL;
            tx.last_activity = Instant::now();
            while tx.unacked.front().is_some_and(|f| f.seq <= ack) {
                let f = tx.unacked.pop_front().unwrap();
                if f.sent {
                    tx.inflight_bytes = tx.inflight_bytes.saturating_sub(f.bytes.len());
                }
            }
            self.pump_window(sock, &mut tx);
        }
        let mut out = Vec::new();
        while tx.on_ack.front().is_some_and(|(s, _)| *s <= tx.acked) {
            out.push(tx.on_ack.pop_front().unwrap().1);
        }
        out
    }

    /// Retransmission tick: resend the in-window unacked frames if the RTO
    /// expired. Returns `true` when this tick exhausted the retry budget
    /// (the caller fails the channel and flushes its ops).
    pub fn tick(&self, sock: &UdpSocket, now: Instant) -> bool {
        if self.is_failed() {
            return false;
        }
        let mut tx = self.tx.lock();
        if tx.unacked.is_empty() {
            return false;
        }
        if now.duration_since(tx.last_activity) < tx.current_rto {
            return false;
        }
        tx.tries += 1;
        if tx.tries > MAX_TRIES {
            return true;
        }
        tx.current_rto = (tx.current_rto * 2).min(RTO_MAX);
        tx.last_activity = now;
        let ack = self.piggyback_ack();
        for f in tx.unacked.iter_mut().take(WINDOW_PKTS) {
            if !f.sent {
                break;
            }
            // Refresh the piggybacked ack in the stored frame (offset 20).
            f.bytes[20..28].copy_from_slice(&ack.to_le_bytes());
            let _ = sock.send_to(&f.bytes, self.peer_addr);
        }
        false
    }

    /// Fail the channel, draining every pending completion (they resolve
    /// as `RetryExceeded` at the caller).
    pub fn fail(&self) -> AckedOps {
        self.failed.store(true, Ordering::Release);
        let mut tx = self.tx.lock();
        tx.unacked.clear();
        tx.inflight_bytes = 0;
        tx.on_ack.drain(..).map(|(_, d)| d).collect()
    }

    /// In-order acceptance of a sequenced frame: `Some(true)` to process
    /// (it is the expected one), `Some(false)` to drop (duplicate or
    /// out-of-order under go-back-N); always records the ack to send.
    pub fn accept(&self, seq: u64) -> bool {
        let mut rx = self.rx.lock();
        if seq == rx.expected {
            rx.expected += 1;
            self.ack_mirror.store(rx.expected - 1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The cumulative ack to advertise, and whether it is new since the
    /// last advertisement (dup-ack requests still re-advertise).
    pub fn ack_due(&self, force: bool) -> Option<u64> {
        let mut rx = self.rx.lock();
        let cum = rx.expected - 1;
        if force || cum > rx.last_acked {
            rx.last_acked = cum;
            Some(cum)
        } else {
            None
        }
    }

    /// Whether any frames await (re)transmission or acknowledgement.
    #[cfg(test)]
    pub fn has_unacked(&self) -> bool {
        !self.tx.lock().unacked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_sock() -> UdpSocket {
        UdpSocket::bind("127.0.0.1:0").expect("bind")
    }

    use super::super::wire::Body;

    fn pkt(src: NodeId, dst: NodeId) -> Packet {
        Packet {
            flags: 0,
            src,
            dst,
            seq: 0,
            ack: 0,
            op: 1,
            body: Body::ReadReq { addr: 0, rkey: 0, len: 8 },
        }
    }

    #[test]
    fn seq_assignment_and_cumulative_ack() {
        let s = loop_sock();
        let sink = loop_sock();
        let ch = Channel::new(1, sink.local_addr().unwrap());
        let done = OpDone {
            op: 7,
            wr_id: 42,
            signaled: true,
            kind: CompletionKind::WriteDone,
            errored: false,
        };
        assert!(ch.send_run(&s, vec![pkt(0, 1), pkt(0, 1), pkt(0, 1)], Some(done)));
        assert!(ch.has_unacked());
        // Ack of the middle frame resolves nothing (op rides frame 3).
        assert!(ch.on_ack(&s, 2, None).is_empty());
        let acked = ch.on_ack(&s, 3, None);
        assert_eq!(acked.len(), 1);
        assert_eq!(acked[0].wr_id, 42);
        assert!(!acked[0].errored);
        assert!(!ch.has_unacked());
    }

    #[test]
    fn err_ack_marks_op() {
        let s = loop_sock();
        let sink = loop_sock();
        let ch = Channel::new(1, sink.local_addr().unwrap());
        let done = OpDone {
            op: 9,
            wr_id: 1,
            signaled: true,
            kind: CompletionKind::WriteDone,
            errored: false,
        };
        ch.send_run(&s, vec![pkt(0, 1)], Some(done));
        let acked = ch.on_ack(&s, 1, Some(9));
        assert_eq!(acked.len(), 1);
        assert!(acked[0].errored);
    }

    #[test]
    fn rx_accept_is_in_order() {
        let ch = Channel::new(0, "127.0.0.1:9".parse().unwrap());
        assert!(ch.accept(1));
        assert!(!ch.accept(3)); // gap: go-back-N drops it
        assert!(ch.accept(2));
        assert_eq!(ch.ack_due(false), Some(2));
        assert_eq!(ch.ack_due(false), None); // nothing new
        assert_eq!(ch.ack_due(true), Some(2)); // forced re-advertisement
        assert!(!ch.accept(1)); // duplicate
    }

    #[test]
    fn retry_budget_exhausts() {
        let s = loop_sock();
        let sink = loop_sock();
        let ch = Channel::new(1, sink.local_addr().unwrap());
        ch.send_run(&s, vec![pkt(0, 1)], None);
        let mut failed = false;
        let far = Instant::now();
        for i in 0..(MAX_TRIES + 2) {
            // Pretend ever-later ticks so every tick fires the RTO.
            let t = far + Duration::from_secs(u64::from(i + 1) * 10);
            if ch.tick(&s, t) {
                failed = true;
                break;
            }
        }
        assert!(failed);
        let flushed = ch.fail();
        assert!(ch.is_failed());
        assert!(flushed.is_empty());
        assert!(!ch.send_run(&s, vec![pkt(0, 1)], None));
    }
}
