//! The sockets NIC: verbs-shaped endpoint over UDP datagrams.
//!
//! One-sided semantics are *emulated*: every process runs a reactor thread
//! (see [`super::reactor`]) that executes incoming write/read/atomic
//! requests against the locally registered [`MrTable`] — the standard
//! software-RMA construction (and what Photon's original sockets backend
//! did). Posting gathers the payload synchronously (so the source buffer is
//! reusable immediately, strictly stronger than verbs' completion-gated
//! reuse), hands framed packets to the per-peer reliable channel, and
//! resolves the initiator completion when the peer acknowledges (writes,
//! sends) or responds (reads, atomics).
//!
//! Timestamps are wall-clock nanoseconds relative to a job-wide epoch
//! distributed at bootstrap, clamped monotone per NIC, satisfying the
//! [`VTime`] contract the middleware's virtual clocks assume.

use super::chan::{Channel, OpDone};
use super::wire::{AtomicKind, Body, Packet, F_HAS_IMM, F_LAST, MAX_FRAG};
use crate::clock::VTime;
use crate::error::{FabricError, Result};
use crate::mr::{Access, MemoryRegion, MrTable};
use crate::verbs::{
    Completion, CompletionKind, Cq, MrSlice, Qp, RecvWr, SendWr, WcStatus, WrOp, DEFAULT_CQ_DEPTH,
};
use crate::NodeId;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Unexpected two-sided sends parked per NIC before new ones are dropped
/// (the reliable channel will have acked them; parking beyond the cap
/// trades the sim's synchronous RNR error for bounded memory).
pub const SOCK_PENDING_SEND_CAP: usize = 8192;

#[derive(Debug)]
struct SockQp {
    qp: Qp,
    error: AtomicBool,
}

/// A read or atomic in flight, awaiting its response packet.
#[derive(Debug)]
pub(super) struct PendingOp {
    pub wr_id: u64,
    pub signaled: bool,
    pub peer: NodeId,
    /// Local destination the response scatters into.
    pub local: MrSlice,
    /// True for atomics (response is one 8-byte old value).
    pub atomic: bool,
}

#[derive(Debug)]
pub(super) struct ParkedSend {
    pub src: NodeId,
    pub data: Vec<u8>,
    pub imm: Option<u64>,
}

#[derive(Debug, Default)]
pub(super) struct SockRecvState {
    pub posted: VecDeque<RecvWr>,
    pub pending: VecDeque<ParkedSend>,
}

/// In-progress reassembly of a fragmented two-sided send.
#[derive(Debug)]
pub(super) struct SendReasm {
    pub buf: Vec<u8>,
    pub received: usize,
    pub imm: Option<u64>,
}

/// A sockets-transport fabric endpoint for one node.
///
/// Build with [`SockNic::bind`], wire with [`SockNic::start`] once every
/// peer's datagram address is known (bootstrap), then drive through the
/// [`crate::backend::FabricBackend`] surface exactly like the simulated
/// NIC.
#[derive(Debug)]
pub struct SockNic {
    node: NodeId,
    n: usize,
    mrs: MrTable,
    send_cq: Cq,
    recv_cq: Cq,
    pub(super) sock: UdpSocket,
    /// Per-peer reliable channels, indexed by node id; set by `start`.
    pub(super) chans: OnceLock<Vec<Arc<Channel>>>,
    qps: RwLock<HashMap<u32, Arc<SockQp>>>,
    next_qp: AtomicU32,
    next_op: AtomicU64,
    pub(super) pending: Mutex<HashMap<u64, PendingOp>>,
    pub(super) rq: Mutex<SockRecvState>,
    pub(super) reasm: Mutex<HashMap<(NodeId, u64), SendReasm>>,
    /// Job-wide wall-clock epoch (unix nanoseconds); timestamps are
    /// relative to it.
    epoch_ns: AtomicU64,
    /// Monotonicity floor for issued timestamps.
    vfloor: AtomicU64,
    pub(super) stop: AtomicBool,
    reactor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl SockNic {
    /// Bind a fresh endpoint for `node` of an `n`-rank job on a loopback
    /// UDP port chosen by the OS.
    pub fn bind(node: NodeId, n: usize) -> Result<Arc<SockNic>> {
        let sock = UdpSocket::bind("127.0.0.1:0")
            .map_err(|e| FabricError::Io { what: format!("udp bind: {e}") })?;
        sock.set_read_timeout(Some(std::time::Duration::from_millis(1)))
            .map_err(|e| FabricError::Io { what: format!("udp timeout: {e}") })?;
        Ok(Arc::new(SockNic {
            node,
            n,
            mrs: MrTable::new(node),
            send_cq: Cq::new(DEFAULT_CQ_DEPTH),
            recv_cq: Cq::new(DEFAULT_CQ_DEPTH),
            sock,
            chans: OnceLock::new(),
            qps: RwLock::new(HashMap::new()),
            next_qp: AtomicU32::new(1),
            next_op: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
            rq: Mutex::new(SockRecvState::default()),
            reasm: Mutex::new(HashMap::new()),
            epoch_ns: AtomicU64::new(0),
            vfloor: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            reactor: Mutex::new(None),
        }))
    }

    /// This endpoint's datagram address (exchange it at bootstrap).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.sock.local_addr().map_err(|e| FabricError::Io { what: format!("local addr: {e}") })
    }

    /// Wire the peer map and start the reactor thread. `peers[i]` is node
    /// `i`'s datagram address (this node's own entry is ignored);
    /// `epoch_ns` is the job-wide unix-nanosecond timestamp origin.
    pub fn start(self: &Arc<SockNic>, peers: Vec<SocketAddr>, epoch_ns: u64) -> Result<()> {
        if peers.len() != self.n {
            return Err(FabricError::Io {
                what: format!("peer map has {} entries for {}-rank job", peers.len(), self.n),
            });
        }
        self.epoch_ns.store(epoch_ns, Ordering::Release);
        let chans: Vec<Arc<Channel>> =
            peers.iter().enumerate().map(|(i, a)| Arc::new(Channel::new(i, *a))).collect();
        self.chans.set(chans).map_err(|_| FabricError::Io { what: "started twice".into() })?;
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("photon-sock-{}", self.node))
            .spawn(move || super::reactor::run(me))
            .map_err(|e| FabricError::Io { what: format!("reactor spawn: {e}") })?;
        *self.reactor.lock() = Some(handle);
        Ok(())
    }

    /// Signal the reactor to exit and join it. Idempotent; also run on
    /// drop via [`super::SockCluster`].
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.reactor.lock().take() {
            let _ = h.join();
        }
    }

    /// Current wall-clock virtual time: nanoseconds since the job epoch,
    /// clamped monotone per NIC.
    pub fn now_v(&self) -> VTime {
        let unix =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        let raw = unix.saturating_sub(self.epoch_ns.load(Ordering::Acquire));
        let prev = self.vfloor.fetch_max(raw, Ordering::AcqRel);
        VTime(raw.max(prev))
    }

    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Job size.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The registration table.
    pub fn mrs(&self) -> &MrTable {
        &self.mrs
    }

    fn chan(&self, peer: NodeId) -> Result<&Arc<Channel>> {
        self.chans.get().and_then(|c| c.get(peer)).ok_or(FabricError::NoSuchNode { node: peer })
    }

    pub(super) fn push_send_cqe(&self, c: Completion) {
        let _ = self.send_cq.push(c);
    }

    pub(super) fn push_recv_cqe(&self, c: Completion) {
        let _ = self.recv_cq.push(c);
    }

    /// Resolve the completions of a batch of acked frames.
    pub(super) fn complete_acked(&self, _peer: NodeId, acked: Vec<OpDone>) {
        let ts = self.now_v();
        for d in acked {
            if !d.signaled {
                continue;
            }
            let status = if d.errored { WcStatus::FlushErr } else { WcStatus::Success };
            self.push_send_cqe(Completion { wr_id: d.wr_id, kind: d.kind, ts, status });
        }
    }

    /// Fail the channel to `peer`: error every QP to it and flush pending
    /// work as `RetryExceeded` completions.
    pub(super) fn fail_peer(&self, peer: NodeId) {
        let Ok(ch) = self.chan(peer) else { return };
        let flushed = ch.fail();
        let ts = self.now_v();
        for d in flushed {
            if d.signaled {
                self.push_send_cqe(Completion {
                    wr_id: d.wr_id,
                    kind: d.kind,
                    ts,
                    status: WcStatus::RetryExceeded,
                });
            }
        }
        let mut dead_ops = Vec::new();
        {
            let mut pend = self.pending.lock();
            pend.retain(|_, p| {
                if p.peer == peer {
                    dead_ops.push((p.wr_id, p.signaled, p.atomic));
                    false
                } else {
                    true
                }
            });
        }
        for (wr_id, signaled, atomic) in dead_ops {
            if signaled {
                let kind = if atomic {
                    CompletionKind::AtomicDone { old: 0 }
                } else {
                    CompletionKind::ReadDone
                };
                self.push_send_cqe(Completion { wr_id, kind, ts, status: WcStatus::RetryExceeded });
            }
        }
        for st in self.qps.read().values() {
            if st.qp.peer == peer {
                st.error.store(true, Ordering::Release);
            }
        }
    }

    // ------------------------------------------------------------ verbs API

    /// Register a zeroed region of `len` bytes.
    pub fn register(&self, len: usize, flags: Access) -> Result<MemoryRegion> {
        self.mrs.register(len, flags)
    }

    /// Create a reliable-connected QP to `peer`.
    pub fn create_qp(&self, peer: NodeId) -> Result<Qp> {
        if peer >= self.n {
            return Err(FabricError::NoSuchNode { node: peer });
        }
        let num = self.next_qp.fetch_add(1, Ordering::Relaxed);
        let qp = Qp { num, node: self.node, peer };
        self.qps.write().insert(num, Arc::new(SockQp { qp, error: AtomicBool::new(false) }));
        Ok(qp)
    }

    /// Destroy a QP; subsequent posts on it fail.
    pub fn destroy_qp(&self, qp: Qp) -> Result<()> {
        self.qps.write().remove(&qp.num).map(|_| ()).ok_or(FabricError::NoSuchQp { qp: qp.num })
    }

    /// Clear a QP's error state (the channel itself stays failed once its
    /// retry budget is gone — reset only helps transient QP-level errors).
    pub fn reset_qp(&self, qp: Qp) -> Result<()> {
        let st = self
            .qps
            .read()
            .get(&qp.num)
            .filter(|st| st.qp == qp)
            .cloned()
            .ok_or(FabricError::NoSuchQp { qp: qp.num })?;
        st.error.store(false, Ordering::Release);
        Ok(())
    }

    /// True when `qp` is in the error state.
    pub fn qp_errored(&self, qp: Qp) -> bool {
        self.qps
            .read()
            .get(&qp.num)
            .is_some_and(|st| st.qp == qp && st.error.load(Ordering::Acquire))
    }

    /// Reachability verdict for `peer`: a failed channel reports
    /// `RetryExceeded` (the sockets transport cannot distinguish a dead
    /// process from a broken path).
    pub fn node_status(&self, peer: NodeId) -> Option<WcStatus> {
        match self.chans.get().and_then(|c| c.get(peer)) {
            Some(ch) if ch.is_failed() => Some(WcStatus::RetryExceeded),
            _ => None,
        }
    }

    /// Poll one initiator-side completion.
    pub fn poll_send_cq(&self) -> Option<Completion> {
        self.send_cq.poll()
    }

    /// Poll one target-side completion.
    pub fn poll_recv_cq(&self) -> Option<Completion> {
        self.recv_cq.poll()
    }

    /// Drain up to `n` initiator-side completions into `out`.
    pub fn poll_send_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        self.send_cq.poll_n_into(n, out)
    }

    /// Drain up to `n` target-side completions into `out`.
    pub fn poll_recv_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        self.recv_cq.poll_n_into(n, out)
    }

    /// Post a receive for the next matching two-sided send.
    pub fn post_recv(&self, wr: RecvWr) -> Result<()> {
        wr.local.check()?;
        self.check_local(&wr.local)?;
        let mut rq = self.rq.lock();
        if let Some(p) = rq.pending.pop_front() {
            drop(rq);
            self.complete_recv(wr, p);
            return Ok(());
        }
        rq.posted.push_back(wr);
        Ok(())
    }

    /// Match `wr` with a landed send: scatter and complete.
    pub(super) fn complete_recv(&self, wr: RecvWr, p: ParkedSend) {
        let n = p.data.len().min(wr.local.len);
        wr.local.mr.write_at(wr.local.offset, &p.data[..n]);
        self.push_recv_cqe(Completion {
            wr_id: wr.wr_id,
            kind: CompletionKind::RecvDone { src: p.src, len: p.data.len(), imm: p.imm },
            ts: self.now_v(),
            status: WcStatus::Success,
        });
    }

    /// Deliver a fully reassembled two-sided send (reactor side).
    pub(super) fn deliver_send(&self, src: NodeId, data: Vec<u8>, imm: Option<u64>) {
        let mut rq = self.rq.lock();
        if let Some(wr) = rq.posted.pop_front() {
            drop(rq);
            self.complete_recv(wr, ParkedSend { src, data, imm });
        } else if rq.pending.len() < SOCK_PENDING_SEND_CAP {
            rq.pending.push_back(ParkedSend { src, data, imm });
        }
        // Past the cap the send is dropped after ack — the bounded-memory
        // analogue of the sim's synchronous RNR error.
    }

    fn check_local(&self, s: &MrSlice) -> Result<()> {
        if s.mr.node() != self.node {
            return Err(FabricError::InvalidLkey { lkey: s.mr.lkey() });
        }
        self.mrs.lookup_lkey(s.mr.lkey())?;
        Ok(())
    }

    fn qp_state(&self, qp: Qp) -> Result<Arc<SockQp>> {
        let st = self
            .qps
            .read()
            .get(&qp.num)
            .filter(|st| st.qp == qp)
            .cloned()
            .ok_or(FabricError::NoSuchQp { qp: qp.num })?;
        if st.error.load(Ordering::Acquire) {
            return Err(FabricError::PeerUnreachable { node: qp.peer });
        }
        if qp.peer != self.node {
            if let Some(ch) = self.chans.get().and_then(|c| c.get(qp.peer)) {
                if ch.is_failed() {
                    st.error.store(true, Ordering::Release);
                    return Err(FabricError::PeerUnreachable { node: qp.peer });
                }
            }
        }
        Ok(st)
    }

    /// Post one work request.
    pub fn post_send(&self, qp: Qp, wr: SendWr, _now: VTime) -> Result<()> {
        let _st = self.qp_state(qp)?;
        self.validate_wr(&wr)?;
        if qp.peer == self.node {
            return self.exec_loopback(&wr);
        }
        self.transmit_wr(qp.peer, &wr)
    }

    /// Post a run of work requests. RC ordering holds because all frames
    /// ride one in-order channel; stops at the first failing wr.
    pub fn post_send_many(&self, qp: Qp, wrs: &[SendWr], now: VTime) -> Result<()> {
        for wr in wrs {
            self.post_send(qp, wr.clone(), now)?;
        }
        Ok(())
    }

    fn validate_wr(&self, wr: &SendWr) -> Result<()> {
        let local = match &wr.op {
            WrOp::Send { local, .. }
            | WrOp::Write { local, .. }
            | WrOp::Read { local, .. }
            | WrOp::FetchAdd { local, .. }
            | WrOp::CompareSwap { local, .. } => local,
        };
        local.check()?;
        self.check_local(local)?;
        match &wr.op {
            WrOp::Write { local, remote, .. } | WrOp::Read { local, remote } => {
                if local.len != remote.len {
                    return Err(FabricError::LengthMismatch {
                        local: local.len,
                        remote: remote.len,
                    });
                }
            }
            WrOp::FetchAdd { local, remote, .. } | WrOp::CompareSwap { local, remote, .. } => {
                if local.len != 8 || remote.len != 8 {
                    return Err(FabricError::BadAtomicTarget {
                        addr: remote.addr,
                        len: remote.len,
                    });
                }
            }
            WrOp::Send { .. } => {}
        }
        Ok(())
    }

    /// Gather the local payload and stamp-offset list of a send/write wr.
    fn gather(&self, local: &MrSlice, wr: &SendWr) -> (Vec<u8>, Vec<u32>) {
        let payload = local.mr.to_vec(local.offset, local.len);
        let mut stamps = Vec::new();
        if let Some(off) = wr.stamp_deliver_at {
            stamps.push(off as u32);
        }
        for &off in &wr.stamp_deliver_also {
            stamps.push(off as u32);
        }
        (payload, stamps)
    }

    /// Emulate the wr locally for a loopback QP (synchronous, like the
    /// sim: effects and completions land before return).
    fn exec_loopback(&self, wr: &SendWr) -> Result<()> {
        let ts = self.now_v();
        match &wr.op {
            WrOp::Send { local, imm } => {
                let data = local.mr.to_vec(local.offset, local.len);
                self.deliver_send(self.node, data, *imm);
                if wr.signaled {
                    self.push_send_cqe(Completion {
                        wr_id: wr.wr_id,
                        kind: CompletionKind::SendDone,
                        ts,
                        status: WcStatus::Success,
                    });
                }
            }
            WrOp::Write { local, remote, imm } => {
                let (mut payload, stamps) = self.gather(local, wr);
                stamp_payload(&mut payload, &stamps, 0, ts);
                let (mr, off) =
                    self.mrs.resolve(remote.addr, remote.rkey, remote.len, Access::REMOTE_WRITE)?;
                mr.write_at(off, &payload);
                if let Some(imm) = imm {
                    self.push_recv_cqe(Completion {
                        wr_id: 0,
                        kind: CompletionKind::ImmDone { src: self.node, len: local.len, imm: *imm },
                        ts,
                        status: WcStatus::Success,
                    });
                }
                if wr.signaled {
                    self.push_send_cqe(Completion {
                        wr_id: wr.wr_id,
                        kind: CompletionKind::WriteDone,
                        ts,
                        status: WcStatus::Success,
                    });
                }
            }
            WrOp::Read { local, remote } => {
                let (mr, off) =
                    self.mrs.resolve(remote.addr, remote.rkey, remote.len, Access::REMOTE_READ)?;
                let data = mr.to_vec(off, remote.len);
                local.mr.write_at(local.offset, &data);
                if wr.signaled {
                    self.push_send_cqe(Completion {
                        wr_id: wr.wr_id,
                        kind: CompletionKind::ReadDone,
                        ts,
                        status: WcStatus::Success,
                    });
                }
            }
            WrOp::FetchAdd { local, remote, add } => {
                let old = self.serve_atomic_local(remote.addr, remote.rkey, |mr, off| {
                    mr.fetch_add_u64(off, *add)
                })?;
                local.mr.write_u64(local.offset, old);
                if wr.signaled {
                    self.push_send_cqe(Completion {
                        wr_id: wr.wr_id,
                        kind: CompletionKind::AtomicDone { old },
                        ts,
                        status: WcStatus::Success,
                    });
                }
            }
            WrOp::CompareSwap { local, remote, compare, swap } => {
                let old = self.serve_atomic_local(remote.addr, remote.rkey, |mr, off| {
                    mr.compare_swap_u64(off, *compare, *swap)
                })?;
                local.mr.write_u64(local.offset, old);
                if wr.signaled {
                    self.push_send_cqe(Completion {
                        wr_id: wr.wr_id,
                        kind: CompletionKind::AtomicDone { old },
                        ts,
                        status: WcStatus::Success,
                    });
                }
            }
        }
        Ok(())
    }

    /// Resolve + execute an atomic against local memory (loopback and
    /// reactor service path share this).
    pub(super) fn serve_atomic_local(
        &self,
        addr: u64,
        rkey: u32,
        op: impl FnOnce(&MemoryRegion, usize) -> u64,
    ) -> Result<u64> {
        let (mr, off) = self.mrs.resolve(addr, rkey, 8, Access::REMOTE_ATOMIC)?;
        if off % 8 != 0 {
            return Err(FabricError::BadAtomicTarget { addr, len: 8 });
        }
        Ok(op(&mr, off))
    }

    /// Frame and transmit a wr toward a remote peer.
    fn transmit_wr(&self, peer: NodeId, wr: &SendWr) -> Result<()> {
        let ch = self.chan(peer)?;
        let op = self.next_op.fetch_add(1, Ordering::Relaxed);
        let (packets, done, pending) = match &wr.op {
            WrOp::Send { local, imm } => {
                let (payload, _) = self.gather(local, wr);
                let pkts = frag_send(self.node, peer, op, payload, *imm);
                let done = OpDone {
                    op,
                    wr_id: wr.wr_id,
                    signaled: wr.signaled,
                    kind: CompletionKind::SendDone,
                    errored: false,
                };
                (pkts, Some(done), None)
            }
            WrOp::Write { local, remote, imm } => {
                let (payload, stamps) = self.gather(local, wr);
                let pkts = frag_write(
                    self.node,
                    peer,
                    op,
                    remote.addr,
                    remote.rkey,
                    payload,
                    stamps,
                    *imm,
                );
                let done = OpDone {
                    op,
                    wr_id: wr.wr_id,
                    signaled: wr.signaled,
                    kind: CompletionKind::WriteDone,
                    errored: false,
                };
                (pkts, Some(done), None)
            }
            WrOp::Read { local, remote } => {
                let pkt = Packet {
                    flags: F_LAST,
                    src: self.node,
                    dst: peer,
                    seq: 0,
                    ack: 0,
                    op,
                    body: Body::ReadReq {
                        addr: remote.addr,
                        rkey: remote.rkey,
                        len: remote.len as u32,
                    },
                };
                let p = PendingOp {
                    wr_id: wr.wr_id,
                    signaled: wr.signaled,
                    peer,
                    local: local.clone(),
                    atomic: false,
                };
                (vec![pkt], None, Some(p))
            }
            WrOp::FetchAdd { local, remote, add } => {
                let pkt = atomic_req(self.node, peer, op, remote, AtomicKind::FetchAdd, *add, 0);
                let p = PendingOp {
                    wr_id: wr.wr_id,
                    signaled: wr.signaled,
                    peer,
                    local: local.clone(),
                    atomic: true,
                };
                (vec![pkt], None, Some(p))
            }
            WrOp::CompareSwap { local, remote, compare, swap } => {
                let pkt = atomic_req(
                    self.node,
                    peer,
                    op,
                    remote,
                    AtomicKind::CompareSwap,
                    *compare,
                    *swap,
                );
                let p = PendingOp {
                    wr_id: wr.wr_id,
                    signaled: wr.signaled,
                    peer,
                    local: local.clone(),
                    atomic: true,
                };
                (vec![pkt], None, Some(p))
            }
        };
        if let Some(p) = pending {
            self.pending.lock().insert(op, p);
        }
        if !ch.send_run(&self.sock, packets, done) {
            self.pending.lock().remove(&op);
            return Err(FabricError::PeerUnreachable { node: peer });
        }
        Ok(())
    }
}

impl Drop for SockNic {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.reactor.get_mut().take() {
            let _ = h.join();
        }
    }
}

/// Overwrite `payload` at each stamp offset (relative to `frag_off` within
/// the whole transfer) with the timestamp, skipping stamps outside this
/// fragment.
pub(super) fn stamp_payload(payload: &mut [u8], stamps: &[u32], frag_off: usize, ts: VTime) {
    for &s in stamps {
        let s = s as usize;
        if s >= frag_off && s + 8 <= frag_off + payload.len() {
            payload[s - frag_off..s - frag_off + 8].copy_from_slice(&ts.0.to_le_bytes());
        }
    }
}

fn frag_send(src: NodeId, dst: NodeId, op: u64, payload: Vec<u8>, imm: Option<u64>) -> Vec<Packet> {
    let total = payload.len();
    let mut pkts = Vec::new();
    let mut off = 0;
    loop {
        let n = (total - off).min(MAX_FRAG);
        let last = off + n == total;
        let mut flags = 0;
        if last {
            flags |= F_LAST;
            if imm.is_some() {
                flags |= F_HAS_IMM;
            }
        }
        pkts.push(Packet {
            flags,
            src,
            dst,
            seq: 0,
            ack: 0,
            op,
            body: Body::Send {
                total: total as u32,
                frag_off: off as u32,
                imm: imm.unwrap_or(0),
                payload: payload[off..off + n].to_vec(),
            },
        });
        off += n;
        if last {
            break;
        }
    }
    pkts
}

#[allow(clippy::too_many_arguments)]
fn frag_write(
    src: NodeId,
    dst: NodeId,
    op: u64,
    addr: u64,
    rkey: u32,
    payload: Vec<u8>,
    stamps: Vec<u32>,
    imm: Option<u64>,
) -> Vec<Packet> {
    let total = payload.len();
    let mut pkts = Vec::new();
    let mut off = 0;
    loop {
        let n = (total - off).min(MAX_FRAG);
        let last = off + n == total;
        let mut flags = 0;
        if last {
            flags |= F_LAST;
            if imm.is_some() {
                flags |= F_HAS_IMM;
            }
        }
        // Stamps whose 8 bytes fall inside this fragment, re-based to it.
        let frag_stamps: Vec<u32> = stamps
            .iter()
            .filter(|&&s| (s as usize) >= off && (s as usize) + 8 <= off + n)
            .map(|&s| s - off as u32)
            .collect();
        pkts.push(Packet {
            flags,
            src,
            dst,
            seq: 0,
            ack: 0,
            op,
            body: Body::Write {
                addr: addr + off as u64,
                rkey,
                total: total as u32,
                imm: imm.unwrap_or(0),
                stamps: frag_stamps,
                payload: payload[off..off + n].to_vec(),
            },
        });
        off += n;
        if last {
            break;
        }
    }
    pkts
}

fn atomic_req(
    src: NodeId,
    dst: NodeId,
    op: u64,
    remote: &crate::verbs::RemoteSlice,
    akind: AtomicKind,
    arg1: u64,
    arg2: u64,
) -> Packet {
    Packet {
        flags: F_LAST,
        src,
        dst,
        seq: 0,
        ack: 0,
        op,
        body: Body::AtomicReq { addr: remote.addr, rkey: remote.rkey, akind, arg1, arg2 },
    }
}
