//! Datagram wire format of the sockets backend.
//!
//! Every UDP datagram carries one packet: a fixed header followed by a
//! kind-specific body with a length-prefixed payload. All integers are
//! little-endian. Packets other than [`Kind::Ack`] consume one sequence
//! number on the per-`(src, dst)` channel and are retransmitted until
//! cumulatively acknowledged; ACKs are unsequenced and idempotent.
//!
//! Large transfers are fragmented at [`MAX_FRAG`] payload bytes. Write
//! fragments are *independent* (each names its own remote address), so a
//! receiver applies them as they arrive in channel order; send and
//! read-response fragments carry `(total, frag_off)` and are reassembled
//! per op id.

use crate::NodeId;

/// First two bytes of every datagram; anything else is dropped on read.
pub const MAGIC: u16 = 0x9A07;

/// Fixed header size in bytes.
pub const HDR: usize = 36;

/// Maximum payload bytes per fragment: comfortably under the 64 KiB UDP
/// datagram ceiling with header + stamp-table overhead included.
pub const MAX_FRAG: usize = 32 * 1024;

/// Final fragment of its work request.
pub const F_LAST: u8 = 1 << 0;
/// The op carries immediate data (valid only with `F_LAST`).
pub const F_HAS_IMM: u8 = 1 << 1;
/// On an ACK: the op named by `op` failed remote validation (bounds,
/// access, unknown rkey); the initiator resolves it as an error completion.
pub const F_ERR: u8 = 1 << 2;

/// Packet kind discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Cumulative acknowledgement (unsequenced).
    Ack = 0,
    /// Two-sided send fragment.
    Send = 1,
    /// One-sided write fragment.
    Write = 2,
    /// RDMA-read request.
    ReadReq = 3,
    /// RDMA-read response fragment.
    ReadResp = 4,
    /// Remote-atomic request.
    AtomicReq = 5,
    /// Remote-atomic response.
    AtomicResp = 6,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        Some(match v {
            0 => Kind::Ack,
            1 => Kind::Send,
            2 => Kind::Write,
            3 => Kind::ReadReq,
            4 => Kind::ReadResp,
            5 => Kind::AtomicReq,
            6 => Kind::AtomicResp,
            _ => return None,
        })
    }
}

/// Atomic sub-operation inside [`Body::AtomicReq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// 64-bit fetch-and-add; `arg1` is the addend.
    FetchAdd,
    /// 64-bit compare-and-swap; `arg1` is the expected value, `arg2` the
    /// replacement.
    CompareSwap,
}

/// Kind-specific packet body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Cumulative ACK; op-level errors ride the header's `F_ERR` + `op`.
    Ack,
    /// Two-sided send fragment: reassembled per op id.
    Send {
        /// Total payload bytes of the whole send.
        total: u32,
        /// This fragment's offset within the send.
        frag_off: u32,
        /// Immediate data (valid if `F_HAS_IMM`).
        imm: u64,
        /// Fragment payload.
        payload: Vec<u8>,
    },
    /// One-sided write fragment targeting `(addr, rkey)` directly.
    Write {
        /// Remote virtual address this fragment lands at.
        addr: u64,
        /// Remote key naming the target region.
        rkey: u32,
        /// Total payload bytes of the whole write (reported in `ImmDone`).
        total: u32,
        /// Immediate data (valid if `F_HAS_IMM`, on the last fragment).
        imm: u64,
        /// Payload-relative offsets (within this fragment) the receiver
        /// overwrites with its delivery timestamp before applying.
        stamps: Vec<u32>,
        /// Fragment payload.
        payload: Vec<u8>,
    },
    /// RDMA-read request for `len` bytes at `(addr, rkey)`.
    ReadReq {
        /// Remote source address.
        addr: u64,
        /// Remote key naming the source region.
        rkey: u32,
        /// Bytes to read.
        len: u32,
    },
    /// RDMA-read response fragment, scattered into the initiator's local
    /// slice at `frag_off`.
    ReadResp {
        /// Total bytes of the whole response.
        total: u32,
        /// This fragment's offset.
        frag_off: u32,
        /// Fragment payload.
        payload: Vec<u8>,
    },
    /// Remote-atomic request on the 8-byte word at `(addr, rkey)`.
    AtomicReq {
        /// Remote target address (8-aligned within its region).
        addr: u64,
        /// Remote key naming the target region.
        rkey: u32,
        /// Which atomic.
        akind: AtomicKind,
        /// Addend (FAA) or expected value (CAS).
        arg1: u64,
        /// Replacement value (CAS only).
        arg2: u64,
    },
    /// Remote-atomic response carrying the prior value.
    AtomicResp {
        /// Value at the remote word before the operation.
        old: u64,
    },
}

impl Body {
    fn kind(&self) -> Kind {
        match self {
            Body::Ack => Kind::Ack,
            Body::Send { .. } => Kind::Send,
            Body::Write { .. } => Kind::Write,
            Body::ReadReq { .. } => Kind::ReadReq,
            Body::ReadResp { .. } => Kind::ReadResp,
            Body::AtomicReq { .. } => Kind::AtomicReq,
            Body::AtomicResp { .. } => Kind::AtomicResp,
        }
    }
}

/// A decoded (or to-be-encoded) packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Flag bits (`F_LAST`, `F_HAS_IMM`, `F_ERR`).
    pub flags: u8,
    /// Sending node.
    pub src: NodeId,
    /// Intended receiver (guards against port-map confusion).
    pub dst: NodeId,
    /// Channel sequence number (0 and unused for ACKs).
    pub seq: u64,
    /// Piggybacked cumulative ACK of the reverse direction.
    pub ack: u64,
    /// Work-request correlation id (request/response matching).
    pub op: u64,
    /// Kind-specific body.
    pub body: Body,
}

fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.b.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    /// Length-prefixed byte string.
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        self.take(n).map(|s| s.to_vec())
    }
}

impl Packet {
    /// Serialize to a fresh datagram buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(HDR + 64);
        put_u16(&mut b, MAGIC);
        b.push(self.body.kind() as u8);
        b.push(self.flags);
        put_u32(&mut b, self.src as u32);
        put_u32(&mut b, self.dst as u32);
        put_u64(&mut b, self.seq);
        put_u64(&mut b, self.ack);
        put_u64(&mut b, self.op);
        debug_assert_eq!(b.len(), HDR);
        match &self.body {
            Body::Ack => {}
            Body::Send { total, frag_off, imm, payload } => {
                put_u32(&mut b, *total);
                put_u32(&mut b, *frag_off);
                put_u64(&mut b, *imm);
                put_u32(&mut b, payload.len() as u32);
                b.extend_from_slice(payload);
            }
            Body::Write { addr, rkey, total, imm, stamps, payload } => {
                put_u64(&mut b, *addr);
                put_u32(&mut b, *rkey);
                put_u32(&mut b, *total);
                put_u64(&mut b, *imm);
                put_u16(&mut b, stamps.len() as u16);
                for s in stamps {
                    put_u32(&mut b, *s);
                }
                put_u32(&mut b, payload.len() as u32);
                b.extend_from_slice(payload);
            }
            Body::ReadReq { addr, rkey, len } => {
                put_u64(&mut b, *addr);
                put_u32(&mut b, *rkey);
                put_u32(&mut b, *len);
            }
            Body::ReadResp { total, frag_off, payload } => {
                put_u32(&mut b, *total);
                put_u32(&mut b, *frag_off);
                put_u32(&mut b, payload.len() as u32);
                b.extend_from_slice(payload);
            }
            Body::AtomicReq { addr, rkey, akind, arg1, arg2 } => {
                put_u64(&mut b, *addr);
                put_u32(&mut b, *rkey);
                b.push(match akind {
                    AtomicKind::FetchAdd => 0,
                    AtomicKind::CompareSwap => 1,
                });
                put_u64(&mut b, *arg1);
                put_u64(&mut b, *arg2);
            }
            Body::AtomicResp { old } => {
                put_u64(&mut b, *old);
            }
        }
        b
    }

    /// Parse a datagram; `None` for anything malformed (dropped silently,
    /// like line noise).
    pub fn decode(b: &[u8]) -> Option<Packet> {
        let mut c = Cursor { b, at: 0 };
        if c.u16()? != MAGIC {
            return None;
        }
        let kind = Kind::from_u8(c.u8()?)?;
        let flags = c.u8()?;
        let src = c.u32()? as NodeId;
        let dst = c.u32()? as NodeId;
        let seq = c.u64()?;
        let ack = c.u64()?;
        let op = c.u64()?;
        let body = match kind {
            Kind::Ack => Body::Ack,
            Kind::Send => {
                let total = c.u32()?;
                let frag_off = c.u32()?;
                let imm = c.u64()?;
                Body::Send { total, frag_off, imm, payload: c.bytes()? }
            }
            Kind::Write => {
                let addr = c.u64()?;
                let rkey = c.u32()?;
                let total = c.u32()?;
                let imm = c.u64()?;
                let nstamp = c.u16()? as usize;
                let mut stamps = Vec::with_capacity(nstamp);
                for _ in 0..nstamp {
                    stamps.push(c.u32()?);
                }
                Body::Write { addr, rkey, total, imm, stamps, payload: c.bytes()? }
            }
            Kind::ReadReq => Body::ReadReq { addr: c.u64()?, rkey: c.u32()?, len: c.u32()? },
            Kind::ReadResp => {
                let total = c.u32()?;
                let frag_off = c.u32()?;
                Body::ReadResp { total, frag_off, payload: c.bytes()? }
            }
            Kind::AtomicReq => {
                let addr = c.u64()?;
                let rkey = c.u32()?;
                let akind = match c.u8()? {
                    0 => AtomicKind::FetchAdd,
                    1 => AtomicKind::CompareSwap,
                    _ => return None,
                };
                Body::AtomicReq { addr, rkey, akind, arg1: c.u64()?, arg2: c.u64()? }
            }
            Kind::AtomicResp => Body::AtomicResp { old: c.u64()? },
        };
        Some(Packet { flags, src, dst, seq, ack, op, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Packet) {
        let enc = p.encode();
        assert_eq!(Packet::decode(&enc).expect("decodes"), p);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Packet { flags: 0, src: 1, dst: 2, seq: 0, ack: 41, op: 0, body: Body::Ack });
        roundtrip(Packet {
            flags: F_LAST | F_HAS_IMM,
            src: 0,
            dst: 3,
            seq: 9,
            ack: 2,
            op: 77,
            body: Body::Send {
                total: 12,
                frag_off: 0,
                imm: 0xfeed,
                payload: b"hello photon".to_vec(),
            },
        });
        roundtrip(Packet {
            flags: F_LAST,
            src: 2,
            dst: 0,
            seq: 10,
            ack: 0,
            op: 78,
            body: Body::Write {
                addr: 0x1000_0040,
                rkey: 7,
                total: 64,
                imm: 0,
                stamps: vec![0, 24],
                payload: vec![0xab; 64],
            },
        });
        roundtrip(Packet {
            flags: 0,
            src: 1,
            dst: 0,
            seq: 11,
            ack: 5,
            op: 80,
            body: Body::ReadReq { addr: 0x2000, rkey: 3, len: 4096 },
        });
        roundtrip(Packet {
            flags: F_LAST,
            src: 0,
            dst: 1,
            seq: 4,
            ack: 11,
            op: 80,
            body: Body::ReadResp { total: 4096, frag_off: 2048, payload: vec![1; 2048] },
        });
        roundtrip(Packet {
            flags: F_LAST,
            src: 0,
            dst: 1,
            seq: 5,
            ack: 0,
            op: 81,
            body: Body::AtomicReq {
                addr: 0x3000,
                rkey: 9,
                akind: AtomicKind::CompareSwap,
                arg1: 17,
                arg2: 18,
            },
        });
        roundtrip(Packet {
            flags: F_LAST,
            src: 1,
            dst: 0,
            seq: 6,
            ack: 5,
            op: 81,
            body: Body::AtomicResp { old: 17 },
        });
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Packet::decode(&[]).is_none());
        assert!(Packet::decode(&[0u8; 10]).is_none());
        let mut ok = Packet {
            flags: 0,
            src: 0,
            dst: 1,
            seq: 1,
            ack: 0,
            op: 1,
            body: Body::ReadReq { addr: 0, rkey: 0, len: 8 },
        }
        .encode();
        ok[0] ^= 0xff; // clobber the magic
        assert!(Packet::decode(&ok).is_none());
        // Truncated body.
        let enc = Packet {
            flags: 0,
            src: 0,
            dst: 1,
            seq: 2,
            ack: 0,
            op: 2,
            body: Body::Send { total: 4, frag_off: 0, imm: 0, payload: vec![1, 2, 3, 4] },
        }
        .encode();
        assert!(Packet::decode(&enc[..enc.len() - 2]).is_none());
    }
}
