//! Out-of-band bootstrap: a TCP rendezvous for multi-process jobs.
//!
//! The launcher (`photon-launch`) runs a [`BootstrapServer`] on a loopback
//! listen socket and passes its address to every rank process. Each rank
//! [`Bootstrap::connect`]s, learns the job size and the shared wall-clock
//! epoch, and then performs any number of **allgather rounds**: every rank
//! contributes an opaque byte payload and receives all `n` payloads in rank
//! order. Two rounds bootstrap a cluster: one exchanges UDP datagram
//! addresses, one exchanges per-peer service-block remote keys. The
//! protocol is strictly round-synchronous — the PMI stand-in, not a
//! general-purpose collective.

use crate::error::{FabricError, Result};
use crate::NodeId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{SystemTime, UNIX_EPOCH};

const BOOT_MAGIC: u32 = 0xB007_0901;

fn io_err(what: &str, e: std::io::Error) -> FabricError {
    FabricError::Io { what: format!("{what}: {e}") }
}

fn write_u32(s: &mut TcpStream, v: u32) -> Result<()> {
    s.write_all(&v.to_le_bytes()).map_err(|e| io_err("bootstrap write", e))
}

fn write_u64(s: &mut TcpStream, v: u64) -> Result<()> {
    s.write_all(&v.to_le_bytes()).map_err(|e| io_err("bootstrap write", e))
}

fn read_u32(s: &mut TcpStream) -> Result<u32> {
    let mut b = [0u8; 4];
    s.read_exact(&mut b).map_err(|e| io_err("bootstrap read", e))?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(s: &mut TcpStream) -> Result<u64> {
    let mut b = [0u8; 8];
    s.read_exact(&mut b).map_err(|e| io_err("bootstrap read", e))?;
    Ok(u64::from_le_bytes(b))
}

/// The launcher-side rendezvous service.
#[derive(Debug)]
pub struct BootstrapServer {
    listener: TcpListener,
}

impl BootstrapServer {
    /// Bind the rendezvous listener (use port 0 for an OS-chosen port).
    pub fn bind(addr: &str) -> Result<BootstrapServer> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bootstrap bind", e))?;
        Ok(BootstrapServer { listener })
    }

    /// The address rank processes should connect to (`PHOTON_BOOTSTRAP`).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener.local_addr().map_err(|e| io_err("bootstrap addr", e))
    }

    /// Serve an `n`-rank job: accept all ranks, distribute `(n, epoch)`,
    /// then run allgather rounds until every rank disconnects. Blocking —
    /// the launcher runs it on a thread.
    pub fn run(&self, n: usize) -> Result<()> {
        let mut conns: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut accepted = 0;
        while accepted < n {
            let (mut s, _) = self.listener.accept().map_err(|e| io_err("bootstrap accept", e))?;
            if read_u32(&mut s)? != BOOT_MAGIC {
                continue; // stray connection; ignore
            }
            let rank = read_u32(&mut s)? as usize;
            if rank >= n || conns[rank].is_some() {
                return Err(FabricError::Io {
                    what: format!("bootstrap: bad or duplicate rank {rank}"),
                });
            }
            conns[rank] = Some(s);
            accepted += 1;
        }
        let epoch =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        for s in conns.iter_mut().flatten() {
            write_u32(s, BOOT_MAGIC)?;
            write_u32(s, n as u32)?;
            write_u64(s, epoch)?;
        }
        // Allgather rounds until unanimous EOF.
        loop {
            let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(n);
            let mut eofs = 0;
            for s in conns.iter_mut().flatten() {
                let mut lb = [0u8; 4];
                match s.read_exact(&mut lb) {
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        eofs += 1;
                        payloads.push(Vec::new());
                        continue;
                    }
                    Err(e) => return Err(io_err("bootstrap round", e)),
                    Ok(()) => {}
                }
                let len = u32::from_le_bytes(lb) as usize;
                let mut body = vec![0u8; len];
                s.read_exact(&mut body).map_err(|e| io_err("bootstrap round", e))?;
                payloads.push(body);
            }
            if eofs == n {
                return Ok(());
            }
            if eofs != 0 {
                return Err(FabricError::Io {
                    what: format!("bootstrap: {eofs}/{n} ranks left mid-round"),
                });
            }
            for s in conns.iter_mut().flatten() {
                for pl in &payloads {
                    write_u32(s, pl.len() as u32)?;
                    s.write_all(pl).map_err(|e| io_err("bootstrap round", e))?;
                }
            }
        }
    }
}

/// A rank's connection to the rendezvous service.
#[derive(Debug)]
pub struct Bootstrap {
    stream: TcpStream,
    /// This rank.
    pub rank: NodeId,
    /// Job size, as the server knows it.
    pub n: usize,
    /// Job-wide wall-clock epoch (unix nanoseconds).
    pub epoch_ns: u64,
}

impl Bootstrap {
    /// Connect to the rendezvous service as `rank` and complete the hello
    /// handshake (learning `n` and the epoch).
    pub fn connect(addr: &str, rank: NodeId) -> Result<Bootstrap> {
        let mut stream = TcpStream::connect(addr).map_err(|e| io_err("bootstrap connect", e))?;
        stream.set_nodelay(true).ok();
        write_u32(&mut stream, BOOT_MAGIC)?;
        write_u32(&mut stream, rank as u32)?;
        if read_u32(&mut stream)? != BOOT_MAGIC {
            return Err(FabricError::Io { what: "bootstrap: bad server hello".into() });
        }
        let n = read_u32(&mut stream)? as usize;
        let epoch_ns = read_u64(&mut stream)?;
        Ok(Bootstrap { stream, rank, n, epoch_ns })
    }

    /// One allgather round: contribute `payload`, receive all `n` payloads
    /// in rank order. Every rank must call this the same number of times.
    pub fn allgather(&mut self, payload: &[u8]) -> Result<Vec<Vec<u8>>> {
        write_u32(&mut self.stream, payload.len() as u32)?;
        self.stream.write_all(payload).map_err(|e| io_err("allgather write", e))?;
        let mut out = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let len = read_u32(&mut self.stream)? as usize;
            let mut body = vec![0u8; len];
            self.stream.read_exact(&mut body).map_err(|e| io_err("allgather read", e))?;
            out.push(body);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_rounds_across_threads() {
        let server = BootstrapServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let n = 3;
        let srv = std::thread::spawn(move || server.run(n));
        let mut clients = Vec::new();
        for rank in 0..n {
            let addr = addr.clone();
            clients.push(std::thread::spawn(move || {
                let mut bs = Bootstrap::connect(&addr, rank).unwrap();
                assert_eq!(bs.n, 3);
                assert_eq!(bs.rank, rank);
                let round1 = bs.allgather(format!("rank-{rank}").as_bytes()).unwrap();
                assert_eq!(round1.len(), 3);
                for (i, p) in round1.iter().enumerate() {
                    assert_eq!(p, format!("rank-{i}").as_bytes());
                }
                let round2 = bs.allgather(&[rank as u8; 4]).unwrap();
                assert_eq!(round2[2], vec![2u8; 4]);
                bs.epoch_ns
            }));
        }
        let epochs: Vec<u64> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        assert!(epochs.iter().all(|&e| e == epochs[0] && e > 0));
        srv.join().unwrap().unwrap();
    }
}
