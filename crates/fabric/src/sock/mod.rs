//! The sockets fabric backend: real OS transport behind the
//! [`FabricBackend`] seam.
//!
//! Where the simulated NIC models an RDMA fabric in virtual time, this
//! backend moves bytes over UDP datagrams on a real network path (loopback
//! today; any routable address in principle):
//!
//! * **Framing** — length-prefixed datagram packets ([`wire`]), one per
//!   fragment, fragments capped at [`wire::MAX_FRAG`] bytes.
//! * **Reliability** — per-`(src, dst)` cumulative sequence/ack channels
//!   with go-back-N retransmission and a bounded retry budget (`chan`);
//!   exhausting it fails the channel and resolves pending work as
//!   `RetryExceeded`, the verbs `IBV_WC_RETRY_EXC_ERR` analogue.
//! * **Emulated one-sided ops** — a per-process reactor thread
//!   (`reactor`) executes write/read/atomic requests against locally
//!   registered memory, as Photon's original sockets backend did.
//! * **Bootstrap** — a TCP rendezvous (`bootstrap`) distributes the job
//!   size, a shared wall-clock epoch, and per-rank metadata (datagram
//!   addresses, service-block keys) for multi-process jobs.
//!
//! Two deployment shapes share all of the above:
//! [`SockCluster`] wires `n` endpoints *in one process* (tests, benches —
//! the data path still crosses real sockets), while [`join_job`] builds
//! this process's single endpoint of a *multi-process* job launched by
//! `photon-launch`.

mod bootstrap;
mod chan;
mod nic;
pub(crate) mod reactor;
pub mod wire;

pub use bootstrap::{Bootstrap, BootstrapServer};
pub use nic::{SockNic, SOCK_PENDING_SEND_CAP};

use crate::backend::FabricBackend;
use crate::clock::VTime;
use crate::error::{FabricError, Result};
use crate::mr::{Access, MemoryRegion, MrTable};
use crate::verbs::{Completion, Qp, RecvWr, SendWr, WcStatus};
use crate::NodeId;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

impl FabricBackend for SockNic {
    fn node(&self) -> NodeId {
        SockNic::node(self)
    }

    fn num_nodes(&self) -> usize {
        SockNic::num_nodes(self)
    }

    fn mrs(&self) -> &MrTable {
        SockNic::mrs(self)
    }

    fn register(&self, len: usize, flags: Access) -> Result<MemoryRegion> {
        SockNic::register(self, len, flags)
    }

    fn create_qp(&self, peer: NodeId) -> Result<Qp> {
        SockNic::create_qp(self, peer)
    }

    fn destroy_qp(&self, qp: Qp) -> Result<()> {
        SockNic::destroy_qp(self, qp)
    }

    fn reset_qp(&self, qp: Qp) -> Result<()> {
        SockNic::reset_qp(self, qp)
    }

    fn qp_errored(&self, qp: Qp) -> bool {
        SockNic::qp_errored(self, qp)
    }

    fn post_send(&self, qp: Qp, wr: SendWr, now: VTime) -> Result<()> {
        SockNic::post_send(self, qp, wr, now)
    }

    fn post_send_many(&self, qp: Qp, wrs: &[SendWr], now: VTime) -> Result<()> {
        SockNic::post_send_many(self, qp, wrs, now)
    }

    fn post_recv(&self, wr: RecvWr) -> Result<()> {
        SockNic::post_recv(self, wr)
    }

    fn poll_send_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        SockNic::poll_send_cq_into(self, n, out)
    }

    fn poll_recv_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        SockNic::poll_recv_cq_into(self, n, out)
    }

    fn poll_send_cq(&self) -> Option<Completion> {
        SockNic::poll_send_cq(self)
    }

    fn poll_recv_cq(&self) -> Option<Completion> {
        SockNic::poll_recv_cq(self)
    }

    fn node_status(&self, peer: NodeId, _now: VTime) -> Option<WcStatus> {
        SockNic::node_status(self, peer)
    }
}

/// An `n`-endpoint sockets cluster in one process: every rank gets its own
/// UDP socket and reactor thread, and the data path crosses the loopback
/// interface for real. The in-process twin of a `photon-launch` job, used
/// by tests and single-process benches.
#[derive(Debug)]
pub struct SockCluster {
    nics: Vec<Arc<SockNic>>,
}

impl SockCluster {
    /// Bind and start `n` endpoints wired to each other over loopback.
    pub fn new(n: usize) -> Result<SockCluster> {
        let nics: Vec<Arc<SockNic>> = (0..n).map(|i| SockNic::bind(i, n)).collect::<Result<_>>()?;
        let peers: Vec<_> = nics.iter().map(|nic| nic.local_addr()).collect::<Result<_>>()?;
        let epoch =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        for nic in &nics {
            nic.start(peers.clone(), epoch)?;
        }
        Ok(SockCluster { nics })
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.nics.len()
    }

    /// True for a zero-endpoint cluster.
    pub fn is_empty(&self) -> bool {
        self.nics.is_empty()
    }

    /// Endpoint of node `i`.
    pub fn nic(&self, i: NodeId) -> &Arc<SockNic> {
        &self.nics[i]
    }
}

impl Drop for SockCluster {
    fn drop(&mut self) {
        for nic in &self.nics {
            nic.shutdown();
        }
    }
}

/// Join a multi-process job as one rank: rendezvous at `bootstrap_addr`
/// (the `PHOTON_BOOTSTRAP` address a `photon-launch` parent exported),
/// exchange datagram addresses, and start this process's endpoint.
///
/// Returns the live endpoint plus the still-open [`Bootstrap`] connection
/// so higher layers can run further allgather rounds (connection key
/// exchange) before releasing it.
pub fn join_job(bootstrap_addr: &str, rank: NodeId) -> Result<(Arc<SockNic>, Bootstrap)> {
    let mut bs = Bootstrap::connect(bootstrap_addr, rank)?;
    let nic = SockNic::bind(rank, bs.n)?;
    let my_addr = nic.local_addr()?.to_string();
    let addrs = bs.allgather(my_addr.as_bytes())?;
    let peers: Vec<_> = addrs
        .iter()
        .map(|b| {
            std::str::from_utf8(b)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| FabricError::Io { what: "bad peer address in bootstrap".into() })
        })
        .collect::<Result<_>>()?;
    nic.start(peers, bs.epoch_ns)?;
    Ok((nic, bs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verbs::{CompletionKind, MrSlice, RemoteSlice, WrOp};
    use std::time::{Duration, Instant};

    fn wait_send_cqe(nic: &SockNic) -> Completion {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(c) = nic.poll_send_cq() {
                return c;
            }
            assert!(Instant::now() < deadline, "no completion within 5s");
            std::thread::yield_now();
        }
    }

    fn wait_recv_cqe(nic: &SockNic) -> Completion {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(c) = nic.poll_recv_cq() {
                return c;
            }
            assert!(Instant::now() < deadline, "no recv completion within 5s");
            std::thread::yield_now();
        }
    }

    #[test]
    fn write_with_imm_crosses_sockets() {
        let c = SockCluster::new(2).unwrap();
        let src = c.nic(0).register(64, Access::ALL).unwrap();
        let dst = c.nic(1).register(64, Access::ALL).unwrap();
        src.write_u64(0, 0xabcd);
        let qp = c.nic(0).create_qp(1).unwrap();
        c.nic(0)
            .post_send(
                qp,
                SendWr::new(
                    5,
                    WrOp::Write {
                        local: MrSlice::new(&src, 0, 8),
                        remote: RemoteSlice::from_key(&dst.remote_key(), 8, 8),
                        imm: Some(42),
                    },
                ),
                VTime(0),
            )
            .unwrap();
        let cqe = wait_send_cqe(c.nic(0));
        assert_eq!(cqe.wr_id, 5);
        assert_eq!(cqe.status, WcStatus::Success);
        assert_eq!(cqe.kind, CompletionKind::WriteDone);
        let ev = wait_recv_cqe(c.nic(1));
        assert!(matches!(ev.kind, CompletionKind::ImmDone { src: 0, len: 8, imm: 42 }));
        assert_eq!(dst.read_u64(8), 0xabcd);
    }

    #[test]
    fn read_and_atomics_round_trip() {
        let c = SockCluster::new(2).unwrap();
        let local = c.nic(0).register(64, Access::ALL).unwrap();
        let remote = c.nic(1).register(64, Access::ALL).unwrap();
        remote.write_u64(0, 999);
        let qp = c.nic(0).create_qp(1).unwrap();
        c.nic(0)
            .post_send(
                qp,
                SendWr::new(
                    1,
                    WrOp::Read {
                        local: MrSlice::new(&local, 0, 8),
                        remote: RemoteSlice::from_key(&remote.remote_key(), 0, 8),
                    },
                ),
                VTime(0),
            )
            .unwrap();
        assert_eq!(wait_send_cqe(c.nic(0)).kind, CompletionKind::ReadDone);
        assert_eq!(local.read_u64(0), 999);

        c.nic(0)
            .post_send(
                qp,
                SendWr::new(
                    2,
                    WrOp::FetchAdd {
                        local: MrSlice::new(&local, 8, 8),
                        remote: RemoteSlice::from_key(&remote.remote_key(), 0, 8),
                        add: 11,
                    },
                ),
                VTime(0),
            )
            .unwrap();
        let cqe = wait_send_cqe(c.nic(0));
        assert!(matches!(cqe.kind, CompletionKind::AtomicDone { old: 999 }));
        assert_eq!(remote.read_u64(0), 1010);

        c.nic(0)
            .post_send(
                qp,
                SendWr::new(
                    3,
                    WrOp::CompareSwap {
                        local: MrSlice::new(&local, 16, 8),
                        remote: RemoteSlice::from_key(&remote.remote_key(), 0, 8),
                        compare: 1010,
                        swap: 7,
                    },
                ),
                VTime(0),
            )
            .unwrap();
        assert!(matches!(wait_send_cqe(c.nic(0)).kind, CompletionKind::AtomicDone { old: 1010 }));
        assert_eq!(remote.read_u64(0), 7);
    }

    #[test]
    fn two_sided_send_and_large_fragmented_write() {
        let c = SockCluster::new(2).unwrap();
        let src = c.nic(0).register(200_000, Access::ALL).unwrap();
        let dst = c.nic(1).register(200_000, Access::ALL).unwrap();
        // Two-sided with a posted receive.
        let rbuf = c.nic(1).register(64, Access::ALL).unwrap();
        c.nic(1).post_recv(RecvWr { wr_id: 77, local: MrSlice::new(&rbuf, 0, 64) }).unwrap();
        let qp = c.nic(0).create_qp(1).unwrap();
        src.write_at(0, b"parcel");
        c.nic(0)
            .post_send(
                qp,
                SendWr::new(1, WrOp::Send { local: MrSlice::new(&src, 0, 6), imm: Some(9) }),
                VTime(0),
            )
            .unwrap();
        let ev = wait_recv_cqe(c.nic(1));
        assert_eq!(ev.wr_id, 77);
        assert!(matches!(ev.kind, CompletionKind::RecvDone { src: 0, len: 6, imm: Some(9) }));
        assert_eq!(rbuf.to_vec(0, 6), b"parcel");
        assert_eq!(wait_send_cqe(c.nic(0)).kind, CompletionKind::SendDone);

        // A write spanning many fragments lands byte-exact.
        let pattern: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        src.write_at(0, &pattern);
        c.nic(0)
            .post_send(
                qp,
                SendWr::new(
                    2,
                    WrOp::Write {
                        local: MrSlice::new(&src, 0, 200_000),
                        remote: RemoteSlice::from_key(&dst.remote_key(), 0, 200_000),
                        imm: None,
                    },
                ),
                VTime(0),
            )
            .unwrap();
        let cqe = wait_send_cqe(c.nic(0));
        assert_eq!(cqe.status, WcStatus::Success);
        assert_eq!(dst.to_vec(0, 200_000), pattern);
    }

    #[test]
    fn loopback_is_synchronous() {
        let c = SockCluster::new(1).unwrap();
        let a = c.nic(0).register(32, Access::ALL).unwrap();
        let b = c.nic(0).register(32, Access::ALL).unwrap();
        a.write_u64(0, 31337);
        let qp = c.nic(0).create_qp(0).unwrap();
        c.nic(0)
            .post_send(
                qp,
                SendWr::new(
                    1,
                    WrOp::Write {
                        local: MrSlice::new(&a, 0, 8),
                        remote: RemoteSlice::from_key(&b.remote_key(), 0, 8),
                        imm: None,
                    },
                ),
                VTime(0),
            )
            .unwrap();
        assert_eq!(b.read_u64(0), 31337);
        assert_eq!(c.nic(0).poll_send_cq().unwrap().wr_id, 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let c = SockCluster::new(1).unwrap();
        let mut last = VTime(0);
        for _ in 0..100 {
            let t = c.nic(0).now_v();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn multi_process_style_bootstrap_over_threads() {
        let server = BootstrapServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let srv = std::thread::spawn(move || server.run(2));
        let mk = |rank: NodeId, addr: String| {
            std::thread::spawn(move || {
                let (nic, _bs) = join_job(&addr, rank).unwrap();
                nic
            })
        };
        let h0 = mk(0, addr.clone());
        let h1 = mk(1, addr);
        let n0 = h0.join().unwrap();
        let n1 = h1.join().unwrap();
        srv.join().unwrap().unwrap();
        // Post a real write across the two endpoints.
        let src = n0.register(8, Access::ALL).unwrap();
        let dst = n1.register(8, Access::ALL).unwrap();
        src.write_u64(0, 4242);
        let qp = n0.create_qp(1).unwrap();
        n0.post_send(
            qp,
            SendWr::new(
                1,
                WrOp::Write {
                    local: MrSlice::whole(&src),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                    imm: None,
                },
            ),
            VTime(0),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while dst.read_u64(0) != 4242 {
            assert!(Instant::now() < deadline);
            std::thread::yield_now();
        }
        n0.shutdown();
        n1.shutdown();
    }
}
