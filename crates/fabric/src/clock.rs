//! Virtual time.
//!
//! The fabric assigns every operation timestamps from a *virtual* nanosecond
//! clock driven by the network model, independent of wall-clock time.  Virtual
//! time propagates along causal chains: a completion carries the virtual time
//! at which the modeled hardware would have delivered it, and a consumer
//! advances its [`VClock`] to that time before issuing dependent operations.
//!
//! This is a Lamport clock in nanosecond units: for sequential dependency
//! chains (ping-pong, windowed streams, collective rounds) the resulting
//! timestamps are exactly what a discrete-event simulation of the same model
//! would produce.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// A point in virtual time, in nanoseconds since cluster construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

impl VTime {
    /// The origin of virtual time.
    pub const ZERO: VTime = VTime(0);

    /// Nanoseconds since the origin.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to (fractional) microseconds; convenient for reporting.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference `self - earlier`, in nanoseconds.
    #[inline]
    pub fn since(self, earlier: VTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }
}

impl Add<u64> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, ns: u64) -> VTime {
        VTime(self.0 + ns)
    }
}

impl AddAssign<u64> for VTime {
    #[inline]
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub<VTime> for VTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: VTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
    }
}

/// A monotonically advancing virtual clock, safely shared between threads.
///
/// Consumers call [`VClock::advance_to`] when they observe a completion and
/// [`VClock::advance`] to model local computation.  The clock never moves
/// backwards.
#[derive(Debug, Default)]
pub struct VClock {
    ns: AtomicU64,
}

impl VClock {
    /// A clock starting at the origin of virtual time.
    pub fn new() -> Self {
        VClock { ns: AtomicU64::new(0) }
    }

    /// Current reading.
    #[inline]
    pub fn now(&self) -> VTime {
        VTime(self.ns.load(Ordering::Acquire))
    }

    /// Advance to at least `t` (no-op if the clock is already past `t`).
    /// Returns the new reading.
    #[inline]
    pub fn advance_to(&self, t: VTime) -> VTime {
        let prev = self.ns.fetch_max(t.0, Ordering::AcqRel);
        VTime(prev.max(t.0))
    }

    /// Advance by `ns` nanoseconds of modeled local work. Returns the new
    /// reading.
    #[inline]
    pub fn advance(&self, ns: u64) -> VTime {
        VTime(self.ns.fetch_add(ns, Ordering::AcqRel) + ns)
    }

    /// Reset to the origin. Only used between benchmark repetitions.
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Release);
    }
}

/// Per-resource serialization calendar: tracks the virtual-time intervals
/// during which a shared resource (a NIC port) is busy, and books
/// non-overlapping intervals for new transfers.
///
/// This is what turns the open LogGP formulas into a queueing model: two
/// messages crossing the same port are serialized even if their posting
/// threads race.
///
/// Reservations are *interval bookings*, not a single high-water mark:
/// posting threads race in wall-clock order, but their virtual clocks can
/// be arbitrarily skewed, so a request with an earlier `earliest` must be
/// able to claim an earlier free gap instead of queueing behind a
/// virtually-later transfer that merely arrived first in wall time.
/// Adjacent intervals are merged, so steady streams keep the calendar at a
/// handful of entries.
#[derive(Debug, Default)]
pub struct BusyUntil {
    intervals: parking_lot::Mutex<std::collections::BTreeMap<u64, u64>>,
    horizon: AtomicU64,
    booked: AtomicU64,
}

impl BusyUntil {
    /// An empty calendar (resource free at all times).
    pub fn new() -> Self {
        BusyUntil::default()
    }

    /// Reserve an interval of `dur` nanoseconds starting no earlier than
    /// `earliest`, in the first free gap. Returns `(start, end)` of the
    /// granted interval.
    pub fn reserve(&self, earliest: VTime, dur: u64) -> (VTime, VTime) {
        let mut iv = self.intervals.lock();
        let mut start = earliest.0;
        for (&s, &e) in iv.iter() {
            if e <= start {
                continue; // entirely before us
            }
            if dur == 0 || s >= start + dur {
                break; // found a gap
            }
            start = e; // collision: try right after this booking
        }
        let end = start + dur;
        if dur > 0 {
            // Merge with a predecessor ending exactly at `start`.
            let mut new_start = start;
            if let Some((&ps, &pe)) = iv.range(..=start).next_back() {
                if pe == start {
                    new_start = ps;
                    iv.remove(&ps);
                }
            }
            // Merge with a successor starting exactly at `end`.
            let mut new_end = end;
            if let Some(&se) = iv.get(&end) {
                new_end = se;
                iv.remove(&end);
            }
            iv.insert(new_start, new_end);
        }
        self.horizon.fetch_max(end, Ordering::AcqRel);
        self.booked.fetch_add(dur, Ordering::Relaxed);
        (VTime(start), VTime(end))
    }

    /// Total nanoseconds ever booked on this resource.
    pub fn booked_ns(&self) -> u64 {
        self.booked.load(Ordering::Relaxed)
    }

    /// Fraction of time up to the horizon during which the resource was
    /// busy (1.0 = fully utilized; 0.0 for an idle resource).
    pub fn utilization(&self) -> f64 {
        let h = self.horizon.load(Ordering::Acquire);
        if h == 0 {
            0.0
        } else {
            self.booked.load(Ordering::Relaxed) as f64 / h as f64
        }
    }

    /// Latest booked instant (virtual time at which the resource is known
    /// free of all current bookings).
    pub fn horizon(&self) -> VTime {
        VTime(self.horizon.load(Ordering::Acquire))
    }

    /// Clear all bookings. Only used between benchmark repetitions.
    pub fn reset(&self) {
        self.intervals.lock().clear();
        self.horizon.store(0, Ordering::Release);
        self.booked.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn vtime_arithmetic() {
        let t = VTime(100);
        assert_eq!((t + 50).as_nanos(), 150);
        assert_eq!(VTime(200) - t, 100);
        assert_eq!(t - VTime(200), 0, "subtraction saturates");
        assert_eq!(t.max(VTime(70)), t);
        assert_eq!(VTime(1500).as_micros_f64(), 1.5);
    }

    #[test]
    fn vclock_monotone() {
        let c = VClock::new();
        assert_eq!(c.now(), VTime::ZERO);
        c.advance_to(VTime(100));
        assert_eq!(c.now(), VTime(100));
        // Moving "backwards" is a no-op.
        c.advance_to(VTime(50));
        assert_eq!(c.now(), VTime(100));
        assert_eq!(c.advance(10), VTime(110));
    }

    #[test]
    fn busy_until_serializes_sequential() {
        let b = BusyUntil::new();
        let (s1, e1) = b.reserve(VTime(0), 100);
        assert_eq!((s1, e1), (VTime(0), VTime(100)));
        // A request arriving "earlier" than the horizon is pushed back.
        let (s2, e2) = b.reserve(VTime(10), 100);
        assert_eq!((s2, e2), (VTime(100), VTime(200)));
        // A request after the horizon starts at its own time.
        let (s3, e3) = b.reserve(VTime(500), 7);
        assert_eq!((s3, e3), (VTime(500), VTime(507)));
    }

    #[test]
    fn late_wall_arrival_takes_early_virtual_gap() {
        let b = BusyUntil::new();
        // A virtually-late transfer books far in the future...
        let (s1, _) = b.reserve(VTime(10_000), 100);
        assert_eq!(s1, VTime(10_000));
        // ...and must NOT delay a virtually-early one that arrives later in
        // wall-clock order.
        let (s2, e2) = b.reserve(VTime(0), 100);
        assert_eq!((s2, e2), (VTime(0), VTime(100)));
        // A request that fits exactly between bookings takes the gap.
        let (s3, _) = b.reserve(VTime(50), 100);
        assert_eq!(s3, VTime(100));
        // One that cannot fit before the future booking goes after it.
        let (s4, _) = b.reserve(VTime(9_950), 200);
        assert_eq!(s4, VTime(10_100));
    }

    #[test]
    fn utilization_accounting() {
        let b = BusyUntil::new();
        assert_eq!(b.utilization(), 0.0);
        b.reserve(VTime(0), 50);
        b.reserve(VTime(100), 50);
        assert_eq!(b.booked_ns(), 100);
        // 100 busy of a 150 horizon.
        assert!((b.utilization() - 100.0 / 150.0).abs() < 1e-9);
        b.reset();
        assert_eq!(b.booked_ns(), 0);
    }

    #[test]
    fn adjacent_bookings_merge() {
        let b = BusyUntil::new();
        for i in 0..100 {
            b.reserve(VTime(i * 10), 10);
        }
        assert_eq!(b.horizon(), VTime(1000));
        // Everything merged: a fresh reservation at 0 lands at the end.
        let (s, _) = b.reserve(VTime(0), 5);
        assert_eq!(s, VTime(1000));
    }

    #[test]
    fn busy_until_no_overlap_under_contention() {
        let b = Arc::new(BusyUntil::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut spans = Vec::new();
                for _ in 0..1000 {
                    spans.push(b.reserve(VTime(0), 3));
                }
                spans
            }));
        }
        let mut all: Vec<(VTime, VTime)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort();
        // Intervals must tile [0, 8000*3) without overlap.
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping reservations {w:?}");
        }
        assert_eq!(all.last().unwrap().1, VTime(8 * 1000 * 3));
    }

    #[test]
    fn calendar_properties_under_random_bookings() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let mut runner = TestRunner::new(Config { cases: 64, ..Config::default() });
        runner
            .run(&proptest::collection::vec((0u64..10_000, 1u64..500), 1..120), |reqs| {
                let b = BusyUntil::new();
                let mut granted: Vec<(u64, u64)> = Vec::new();
                for (earliest, dur) in reqs {
                    let (s, e) = b.reserve(VTime(earliest), dur);
                    // Respect the earliest bound and the duration.
                    prop_assert!(s.0 >= earliest);
                    prop_assert_eq!(e.0 - s.0, dur);
                    granted.push((s.0, e.0));
                }
                // No two granted intervals overlap.
                granted.sort();
                for w in granted.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
                }
                // Horizon is the max end.
                let max_end = granted.iter().map(|g| g.1).max().unwrap();
                prop_assert_eq!(b.horizon().0, max_end);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn calendar_is_work_conserving() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        // If every request has earliest = 0, the grants must tile [0, sum)
        // with no holes (the calendar wastes no capacity).
        let mut runner = TestRunner::new(Config { cases: 32, ..Config::default() });
        runner
            .run(&proptest::collection::vec(1u64..200, 1..60), |durs| {
                let b = BusyUntil::new();
                let total: u64 = durs.iter().sum();
                let mut granted: Vec<(u64, u64)> = durs
                    .iter()
                    .map(|&d| {
                        let (s, e) = b.reserve(VTime(0), d);
                        (s.0, e.0)
                    })
                    .collect();
                granted.sort();
                prop_assert_eq!(granted[0].0, 0);
                for w in granted.windows(2) {
                    prop_assert_eq!(w[0].1, w[1].0, "hole or overlap: {:?}", w);
                }
                prop_assert_eq!(granted.last().unwrap().1, total);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn vclock_concurrent_advance_to_is_max() {
        let c = Arc::new(VClock::new());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for j in 0..1000 {
                    c.advance_to(VTime(i * 1000 + j));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), VTime(7999));
    }
}
