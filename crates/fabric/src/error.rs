//! Error types for fabric operations.

use crate::NodeId;
use std::fmt;

/// Errors surfaced by the simulated fabric.
///
/// These mirror the failure classes a verbs/uGNI consumer must handle:
/// protection faults (bad rkey, out-of-bounds, wrong access flags),
/// resource exhaustion (registration limits, CQ overflow, receive-not-ready)
/// and connection errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The remote key does not name a registered region on the target node.
    InvalidRkey {
        /// Target node.
        node: NodeId,
        /// The unresolvable key.
        rkey: u32,
    },
    /// The local key does not name a registered region.
    InvalidLkey {
        /// The unresolvable key.
        lkey: u32,
    },
    /// The access touches bytes outside the registered region.
    OutOfBounds {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: usize,
        /// Base of the resolved region.
        region_base: u64,
        /// Length of the resolved region.
        region_len: usize,
    },
    /// The region was not registered with the access flag the op requires.
    AccessDenied {
        /// The region's key.
        rkey: u32,
        /// Human label of the missing permission.
        needed: &'static str,
    },
    /// The target node id does not exist in the cluster.
    NoSuchNode {
        /// The missing node id.
        node: NodeId,
    },
    /// The queue pair number is unknown on this NIC.
    NoSuchQp {
        /// The unknown queue-pair number.
        qp: u32,
    },
    /// Registration failed: the per-node registration limit is exhausted.
    RegistrationLimit {
        /// The node's pinning budget.
        limit_bytes: usize,
    },
    /// A completion queue reached capacity and dropped an event.
    CqOverflow,
    /// The target had no posted receive and its pending-send backlog is full.
    ReceiverNotReady {
        /// The overwhelmed node.
        node: NodeId,
    },
    /// Atomic operations require an 8-byte, 8-byte-aligned target.
    BadAtomicTarget {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: usize,
    },
    /// Local and remote lengths disagree for an op that requires equality.
    LengthMismatch {
        /// Local slice length.
        local: usize,
        /// Remote slice length.
        remote: usize,
    },
    /// The peer cannot be reached: it is dead or the path to it is
    /// partitioned. The affected QP has transitioned to the error state;
    /// outstanding work requests flush as error completions.
    PeerUnreachable {
        /// The unreachable node.
        node: NodeId,
    },
    /// The fabric (switch) has been shut down.
    Down,
    /// An operating-system transport failed (sockets backend only): bind,
    /// bootstrap, or datagram I/O.
    Io {
        /// Human-readable description of the failed operation.
        what: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::InvalidRkey { node, rkey } => {
                write!(f, "invalid rkey {rkey:#x} on node {node}")
            }
            FabricError::InvalidLkey { lkey } => write!(f, "invalid lkey {lkey:#x}"),
            FabricError::OutOfBounds { addr, len, region_base, region_len } => write!(
                f,
                "access [{addr:#x}, +{len}) outside region [{region_base:#x}, +{region_len})"
            ),
            FabricError::AccessDenied { rkey, needed } => {
                write!(f, "region {rkey:#x} lacks {needed} access")
            }
            FabricError::NoSuchNode { node } => write!(f, "no such node {node}"),
            FabricError::NoSuchQp { qp } => write!(f, "no such qp {qp}"),
            FabricError::RegistrationLimit { limit_bytes } => {
                write!(f, "registration limit of {limit_bytes} bytes exhausted")
            }
            FabricError::CqOverflow => write!(f, "completion queue overflow"),
            FabricError::ReceiverNotReady { node } => {
                write!(f, "receiver on node {node} not ready (RNR)")
            }
            FabricError::BadAtomicTarget { addr, len } => {
                write!(f, "bad atomic target [{addr:#x}, +{len})")
            }
            FabricError::LengthMismatch { local, remote } => {
                write!(f, "length mismatch: local {local} vs remote {remote}")
            }
            FabricError::PeerUnreachable { node } => {
                write!(f, "peer node {node} unreachable (dead or partitioned)")
            }
            FabricError::Down => write!(f, "fabric is down"),
            FabricError::Io { what } => write!(f, "transport I/O failure: {what}"),
        }
    }
}

impl std::error::Error for FabricError {}

/// Convenience alias used throughout the fabric crate.
pub type Result<T> = std::result::Result<T, FabricError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FabricError::InvalidRkey { node: 3, rkey: 0xab };
        assert!(e.to_string().contains("0xab"));
        assert!(e.to_string().contains("node 3"));
        let e =
            FabricError::OutOfBounds { addr: 0x1000, len: 64, region_base: 0x1000, region_len: 32 };
        assert!(e.to_string().contains("outside region"));
        let e = FabricError::PeerUnreachable { node: 4 };
        assert!(e.to_string().contains("node 4"));
        assert!(e.to_string().contains("unreachable"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FabricError::CqOverflow, FabricError::CqOverflow);
        assert_ne!(FabricError::CqOverflow, FabricError::ReceiverNotReady { node: 0 });
    }
}
