//! Fault and perturbation injection.
//!
//! RDMA fabrics are reliable transports, so we do not model loss; the faults
//! that matter to middleware are *performance* faults (congested or degraded
//! links, straggler NICs, OS noise) and *resource* faults (registration
//! limits, CQ overflow — configured on [`crate::mr::MrTable`] and
//! [`crate::verbs::Cq`] directly).  A [`FaultPlan`] perturbs the virtual-time
//! model; it never corrupts data, so protocol invariants must hold under any
//! plan.
//!
//! Faults can be *windowed* in virtual time: a degradation installed with
//! [`FaultPlan::degrade_link_during`] only charges packets whose departure
//! falls inside its [`Window`].  This is what makes chaos schedules
//! replayable — a test can install its entire fault timeline up front and
//! the packets themselves trigger activation deterministically, with no
//! wall-clock mutation races.

use crate::clock::VTime;
use crate::NodeId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A half-open interval `[from, until)` of virtual time during which a fault
/// is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant at which the fault applies.
    pub from: VTime,
    /// First instant at which the fault no longer applies.
    pub until: VTime,
}

impl Window {
    /// The whole of virtual time (classic always-on fault).
    pub const ALWAYS: Window = Window { from: VTime(0), until: VTime(u64::MAX) };

    /// A window covering `[from, until)`.
    pub fn new(from: VTime, until: VTime) -> Window {
        Window { from, until }
    }

    /// True when `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: VTime) -> bool {
        self.from <= t && t < self.until
    }
}

impl Default for Window {
    fn default() -> Self {
        Window::ALWAYS
    }
}

/// Windowed extra-latency entries: `(extra_ns, active window)`.
type WindowedExtras = Vec<(u64, Window)>;

/// A performance-fault plan applied by the switch when computing delivery
/// times.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Extra one-way latency per directed link `(src, dst)`, each entry
    /// active during its window, nanoseconds.
    link_extra_ns: RwLock<HashMap<(NodeId, NodeId), WindowedExtras>>,
    /// Extra latency for every packet touching this node (straggler NIC).
    node_extra_ns: RwLock<HashMap<NodeId, Vec<(u64, Window)>>>,
    /// Uniform deterministic jitter bound (0 = disabled), nanoseconds.
    jitter_ns: AtomicU64,
    /// Virtual-time window during which jitter applies.
    jitter_window: RwLock<Window>,
    /// Seed mixed into the jitter hash (reproducible chaos campaigns).
    jitter_seed: AtomicU64,
    /// Sequence counter feeding the jitter hash.
    seq: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no perturbation).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add `extra_ns` of latency to every packet on the directed link
    /// `src -> dst`, at all times.
    pub fn degrade_link(&self, src: NodeId, dst: NodeId, extra_ns: u64) {
        self.degrade_link_during(src, dst, extra_ns, Window::ALWAYS);
    }

    /// Add `extra_ns` of latency to packets departing on `src -> dst`
    /// during `window`. Entries accumulate: overlapping windows sum.
    pub fn degrade_link_during(&self, src: NodeId, dst: NodeId, extra_ns: u64, window: Window) {
        self.link_extra_ns.write().entry((src, dst)).or_default().push((extra_ns, window));
    }

    /// Remove every degradation (windowed or not) on `src -> dst`.
    pub fn heal_link(&self, src: NodeId, dst: NodeId) {
        self.link_extra_ns.write().remove(&(src, dst));
    }

    /// Make `node` a straggler: every packet it sends or receives pays
    /// `extra_ns` more, at all times.
    pub fn straggle_node(&self, node: NodeId, extra_ns: u64) {
        self.straggle_node_during(node, extra_ns, Window::ALWAYS);
    }

    /// Straggle `node` during `window` only. Entries accumulate.
    pub fn straggle_node_during(&self, node: NodeId, extra_ns: u64, window: Window) {
        self.node_extra_ns.write().entry(node).or_default().push((extra_ns, window));
    }

    /// Remove every straggler entry for `node`.
    pub fn heal_node(&self, node: NodeId) {
        self.node_extra_ns.write().remove(&node);
    }

    /// Enable deterministic per-packet jitter uniform in `[0, bound_ns)`,
    /// at all times.
    pub fn set_jitter(&self, bound_ns: u64) {
        self.set_jitter_during(bound_ns, Window::ALWAYS);
    }

    /// Enable jitter during `window` only (replaces any previous jitter
    /// setting; pass `bound_ns = 0` to disable).
    pub fn set_jitter_during(&self, bound_ns: u64, window: Window) {
        *self.jitter_window.write() = window;
        self.jitter_ns.store(bound_ns, Ordering::Relaxed);
    }

    /// Seed the jitter stream. Same seed + same packet sequence ⇒ identical
    /// per-packet jitter, which is what makes chaos campaigns replayable.
    /// Also resets the packet sequence counter.
    pub fn set_jitter_seed(&self, seed: u64) {
        self.jitter_seed.store(seed, Ordering::Relaxed);
        self.seq.store(0, Ordering::Relaxed);
    }

    /// Total extra latency to charge a packet `src -> dst`, evaluated at the
    /// origin of virtual time. Compatibility wrapper over
    /// [`FaultPlan::extra_latency_at`]; windowed entries whose window does
    /// not contain time zero are not charged.
    pub fn extra_latency(&self, src: NodeId, dst: NodeId) -> u64 {
        self.extra_latency_at(src, dst, VTime::ZERO)
    }

    /// Total extra latency to charge a packet departing `src -> dst` at
    /// virtual time `t`. Only entries whose window contains `t` apply.
    pub fn extra_latency_at(&self, src: NodeId, dst: NodeId, t: VTime) -> u64 {
        let mut extra = 0;
        if let Some(entries) = self.link_extra_ns.read().get(&(src, dst)) {
            extra += active_sum(entries, t);
        }
        {
            let nodes = self.node_extra_ns.read();
            if let Some(entries) = nodes.get(&src) {
                extra += active_sum(entries, t);
            }
            if let Some(entries) = nodes.get(&dst) {
                extra += active_sum(entries, t);
            }
        }
        let bound = self.jitter_ns.load(Ordering::Relaxed);
        if bound > 0 && self.jitter_window.read().contains(t) {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let seed = self.jitter_seed.load(Ordering::Relaxed);
            extra += splitmix64(seed ^ seq ^ ((src as u64) << 32) ^ dst as u64) % bound;
        }
        extra
    }

    /// True when the plan perturbs nothing (fast-path check).
    pub fn is_empty(&self) -> bool {
        self.jitter_ns.load(Ordering::Relaxed) == 0
            && self.link_extra_ns.read().is_empty()
            && self.node_extra_ns.read().is_empty()
    }
}

/// Sum of entries active at `t`.
fn active_sum(entries: &[(u64, Window)], t: VTime) -> u64 {
    entries.iter().filter(|(_, w)| w.contains(t)).map(|(e, _)| e).sum()
}

/// SplitMix64: deterministic 64-bit mixer for jitter generation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_free() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.extra_latency(0, 1), 0);
    }

    #[test]
    fn link_degradation_is_directional() {
        let p = FaultPlan::none();
        p.degrade_link(0, 1, 500);
        assert_eq!(p.extra_latency(0, 1), 500);
        assert_eq!(p.extra_latency(1, 0), 0);
        p.heal_link(0, 1);
        assert_eq!(p.extra_latency(0, 1), 0);
    }

    #[test]
    fn straggler_charges_both_directions() {
        let p = FaultPlan::none();
        p.straggle_node(2, 100);
        assert_eq!(p.extra_latency(2, 5), 100);
        assert_eq!(p.extra_latency(5, 2), 100);
        assert_eq!(p.extra_latency(3, 4), 0);
        // Degradations compose.
        p.degrade_link(2, 5, 50);
        assert_eq!(p.extra_latency(2, 5), 150);
        p.heal_node(2);
        assert_eq!(p.extra_latency(2, 5), 50);
    }

    #[test]
    fn windowed_faults_activate_by_departure_time() {
        let p = FaultPlan::none();
        p.degrade_link_during(0, 1, 700, Window::new(VTime(1_000), VTime(2_000)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(999)), 0);
        assert_eq!(p.extra_latency_at(0, 1, VTime(1_000)), 700, "from is inclusive");
        assert_eq!(p.extra_latency_at(0, 1, VTime(1_999)), 700);
        assert_eq!(p.extra_latency_at(0, 1, VTime(2_000)), 0, "until is exclusive");
        // Overlapping windows sum; disjoint ones apply alone.
        p.degrade_link_during(0, 1, 40, Window::new(VTime(1_500), VTime(3_000)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(1_700)), 740);
        assert_eq!(p.extra_latency_at(0, 1, VTime(2_500)), 40);
        // Node windows behave the same way.
        p.straggle_node_during(1, 5, Window::new(VTime(0), VTime(100)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(50)), 5);
        assert_eq!(p.extra_latency_at(0, 1, VTime(100)), 0);
    }

    #[test]
    fn jitter_bounded_and_nonconstant() {
        let p = FaultPlan::none();
        p.set_jitter(64);
        assert!(!p.is_empty());
        let samples: Vec<u64> = (0..256).map(|_| p.extra_latency(0, 1)).collect();
        assert!(samples.iter().all(|&s| s < 64));
        assert!(samples.iter().any(|&s| s != samples[0]), "jitter should vary");
    }

    #[test]
    fn jitter_stream_is_seed_reproducible() {
        let draw = |seed: u64| -> Vec<u64> {
            let p = FaultPlan::none();
            p.set_jitter(1_000);
            p.set_jitter_seed(seed);
            (0..64).map(|i| p.extra_latency_at(i % 3, 1 + i % 2, VTime(0))).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed, same stream");
        assert_ne!(draw(42), draw(43), "different seed, different stream");
        // Re-seeding mid-run restarts the sequence.
        let p = FaultPlan::none();
        p.set_jitter(1_000);
        p.set_jitter_seed(7);
        let first: Vec<u64> = (0..8).map(|_| p.extra_latency(0, 1)).collect();
        p.set_jitter_seed(7);
        let again: Vec<u64> = (0..8).map(|_| p.extra_latency(0, 1)).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn windowed_jitter_only_fires_inside_window() {
        let p = FaultPlan::none();
        p.set_jitter_during(1_000_000, Window::new(VTime(500), VTime(600)));
        p.set_jitter_seed(1);
        assert_eq!(p.extra_latency_at(0, 1, VTime(499)), 0);
        assert_eq!(p.extra_latency_at(0, 1, VTime(600)), 0);
        let inside: Vec<u64> = (0..32).map(|_| p.extra_latency_at(0, 1, VTime(550))).collect();
        assert!(inside.iter().any(|&s| s > 0), "jitter active inside window");
    }

    #[test]
    fn splitmix_spreads() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }
}
