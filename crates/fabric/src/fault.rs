//! Fault and perturbation injection.
//!
//! RDMA fabrics are reliable transports, so we do not model loss; the faults
//! that matter to middleware are *performance* faults (congested or degraded
//! links, straggler NICs, OS noise) and *resource* faults (registration
//! limits, CQ overflow — configured on [`crate::mr::MrTable`] and
//! [`crate::verbs::Cq`] directly).  A [`FaultPlan`] perturbs the virtual-time
//! model; it never corrupts data, so protocol invariants must hold under any
//! plan.

use crate::NodeId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A performance-fault plan applied by the switch when computing delivery
/// times.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Extra one-way latency per directed link `(src, dst)`, nanoseconds.
    link_extra_ns: RwLock<HashMap<(NodeId, NodeId), u64>>,
    /// Extra latency for every packet touching this node (straggler NIC).
    node_extra_ns: RwLock<HashMap<NodeId, u64>>,
    /// Uniform deterministic jitter bound (0 = disabled), nanoseconds.
    jitter_ns: AtomicU64,
    /// Sequence counter feeding the jitter hash.
    seq: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no perturbation).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add `extra_ns` of latency to every packet on the directed link
    /// `src -> dst`.
    pub fn degrade_link(&self, src: NodeId, dst: NodeId, extra_ns: u64) {
        self.link_extra_ns.write().insert((src, dst), extra_ns);
    }

    /// Remove a link degradation.
    pub fn heal_link(&self, src: NodeId, dst: NodeId) {
        self.link_extra_ns.write().remove(&(src, dst));
    }

    /// Make `node` a straggler: every packet it sends or receives pays
    /// `extra_ns` more.
    pub fn straggle_node(&self, node: NodeId, extra_ns: u64) {
        self.node_extra_ns.write().insert(node, extra_ns);
    }

    /// Remove a node straggler entry.
    pub fn heal_node(&self, node: NodeId) {
        self.node_extra_ns.write().remove(&node);
    }

    /// Enable deterministic per-packet jitter uniform in `[0, bound_ns)`.
    pub fn set_jitter(&self, bound_ns: u64) {
        self.jitter_ns.store(bound_ns, Ordering::Relaxed);
    }

    /// Total extra latency to charge a packet `src -> dst`.
    pub fn extra_latency(&self, src: NodeId, dst: NodeId) -> u64 {
        let mut extra = 0;
        if let Some(e) = self.link_extra_ns.read().get(&(src, dst)) {
            extra += e;
        }
        {
            let nodes = self.node_extra_ns.read();
            if let Some(e) = nodes.get(&src) {
                extra += e;
            }
            if let Some(e) = nodes.get(&dst) {
                extra += e;
            }
        }
        let bound = self.jitter_ns.load(Ordering::Relaxed);
        if bound > 0 {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            extra += splitmix64(seq ^ ((src as u64) << 32) ^ dst as u64) % bound;
        }
        extra
    }

    /// True when the plan perturbs nothing (fast-path check).
    pub fn is_empty(&self) -> bool {
        self.jitter_ns.load(Ordering::Relaxed) == 0
            && self.link_extra_ns.read().is_empty()
            && self.node_extra_ns.read().is_empty()
    }
}

/// SplitMix64: deterministic 64-bit mixer for jitter generation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_free() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.extra_latency(0, 1), 0);
    }

    #[test]
    fn link_degradation_is_directional() {
        let p = FaultPlan::none();
        p.degrade_link(0, 1, 500);
        assert_eq!(p.extra_latency(0, 1), 500);
        assert_eq!(p.extra_latency(1, 0), 0);
        p.heal_link(0, 1);
        assert_eq!(p.extra_latency(0, 1), 0);
    }

    #[test]
    fn straggler_charges_both_directions() {
        let p = FaultPlan::none();
        p.straggle_node(2, 100);
        assert_eq!(p.extra_latency(2, 5), 100);
        assert_eq!(p.extra_latency(5, 2), 100);
        assert_eq!(p.extra_latency(3, 4), 0);
        // Degradations compose.
        p.degrade_link(2, 5, 50);
        assert_eq!(p.extra_latency(2, 5), 150);
        p.heal_node(2);
        assert_eq!(p.extra_latency(2, 5), 50);
    }

    #[test]
    fn jitter_bounded_and_nonconstant() {
        let p = FaultPlan::none();
        p.set_jitter(64);
        assert!(!p.is_empty());
        let samples: Vec<u64> = (0..256).map(|_| p.extra_latency(0, 1)).collect();
        assert!(samples.iter().all(|&s| s < 64));
        assert!(samples.iter().any(|&s| s != samples[0]), "jitter should vary");
    }

    #[test]
    fn splitmix_spreads() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }
}
