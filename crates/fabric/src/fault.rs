//! Fault and perturbation injection.
//!
//! RDMA fabrics are reliable transports, so we do not model silent loss; the
//! faults that matter to middleware are *performance* faults (congested or
//! degraded links, straggler NICs, OS noise), *resource* faults
//! (registration limits, CQ overflow — configured on [`crate::mr::MrTable`]
//! and [`crate::verbs::Cq`] directly), and *availability* faults: a node
//! that crash-stops ([`FaultPlan::kill_node_at`]) or a link partition
//! ([`FaultPlan::partition_during`]).  Performance faults perturb only the
//! virtual-time model and never corrupt data, so protocol invariants must
//! hold under any plan.  Availability faults make transfers fail: the NIC
//! transitions the affected queue pair to the error state and flushes work
//! requests as error completions, exactly like the verbs failure model.
//!
//! Faults can be *windowed* in virtual time: a degradation installed with
//! [`FaultPlan::degrade_link_during`] only charges packets whose departure
//! falls inside its [`Window`].  This is what makes chaos schedules
//! replayable — a test can install its entire fault timeline up front and
//! the packets themselves trigger activation deterministically, with no
//! wall-clock mutation races.

use crate::clock::VTime;
use crate::NodeId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A half-open interval `[from, until)` of virtual time during which a fault
/// is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant at which the fault applies.
    pub from: VTime,
    /// First instant at which the fault no longer applies.
    pub until: VTime,
}

impl Window {
    /// The whole of virtual time (classic always-on fault).
    pub const ALWAYS: Window = Window { from: VTime(0), until: VTime(u64::MAX) };

    /// A window covering `[from, until)`.
    pub fn new(from: VTime, until: VTime) -> Window {
        Window { from, until }
    }

    /// True when `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: VTime) -> bool {
        self.from <= t && t < self.until
    }
}

impl Default for Window {
    fn default() -> Self {
        Window::ALWAYS
    }
}

/// Windowed extra-latency entries: `(extra_ns, active window)`.
type WindowedExtras = Vec<(u64, Window)>;

/// A node's crash/revive timeline: sorted kill instants and revive
/// instants. A node is dead at `t` when its latest kill at or before `t`
/// is not followed by a revive at or before `t` (a revive at the same
/// instant as a kill wins — the node is treated as back up). Each revive
/// starts a new *incarnation*: a rejoined node is a different process
/// generation, and [`FaultPlan::incarnation_at`] lets higher layers tell
/// the generations apart.
#[derive(Debug, Default, Clone)]
struct NodeLife {
    kills: Vec<VTime>,
    revives: Vec<VTime>,
}

impl NodeLife {
    fn dead_at(&self, t: VTime) -> bool {
        let k = self.kills.iter().filter(|&&k| k <= t).max();
        let Some(&k) = k else { return false };
        !self.revives.iter().any(|&r| k <= r && r <= t)
    }

    fn incarnation_at(&self, t: VTime) -> u64 {
        self.revives.iter().filter(|&&r| r <= t).count() as u64
    }
}

/// A performance-fault plan applied by the switch when computing delivery
/// times.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Extra one-way latency per directed link `(src, dst)`, each entry
    /// active during its window, nanoseconds.
    link_extra_ns: RwLock<HashMap<(NodeId, NodeId), WindowedExtras>>,
    /// Extra latency for every packet touching this node (straggler NIC).
    node_extra_ns: RwLock<HashMap<NodeId, Vec<(u64, Window)>>>,
    /// Uniform deterministic jitter bound (0 = disabled), nanoseconds.
    jitter_ns: AtomicU64,
    /// Virtual-time window during which jitter applies.
    jitter_window: RwLock<Window>,
    /// Seed mixed into the jitter hash (reproducible chaos campaigns).
    jitter_seed: AtomicU64,
    /// Sequence counter feeding the jitter hash.
    seq: AtomicU64,
    /// Crash/revive schedule per node: sorted kill times and revive times.
    lives: RwLock<HashMap<NodeId, NodeLife>>,
    /// Symmetric partitions keyed by the normalized `(min, max)` pair; each
    /// entry is active during its window. Entries accumulate like link
    /// degradations.
    partitions: RwLock<HashMap<(NodeId, NodeId), Vec<Window>>>,
    /// Cheap fast-path gate: true once any kill/partition has been
    /// installed, so healthy-path transfers pay one relaxed atomic load.
    disruptions: AtomicBool,
}

impl FaultPlan {
    /// An empty plan (no perturbation).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add `extra_ns` of latency to every packet on the directed link
    /// `src -> dst`, at all times.
    pub fn degrade_link(&self, src: NodeId, dst: NodeId, extra_ns: u64) {
        self.degrade_link_during(src, dst, extra_ns, Window::ALWAYS);
    }

    /// Add `extra_ns` of latency to packets departing on `src -> dst`
    /// during `window`. Entries accumulate: overlapping windows sum.
    pub fn degrade_link_during(&self, src: NodeId, dst: NodeId, extra_ns: u64, window: Window) {
        self.link_extra_ns.write().entry((src, dst)).or_default().push((extra_ns, window));
    }

    /// Remove every degradation (windowed or not) on `src -> dst`.
    pub fn heal_link(&self, src: NodeId, dst: NodeId) {
        self.link_extra_ns.write().remove(&(src, dst));
    }

    /// Make `node` a straggler: every packet it sends or receives pays
    /// `extra_ns` more, at all times.
    pub fn straggle_node(&self, node: NodeId, extra_ns: u64) {
        self.straggle_node_during(node, extra_ns, Window::ALWAYS);
    }

    /// Straggle `node` during `window` only. Entries accumulate.
    pub fn straggle_node_during(&self, node: NodeId, extra_ns: u64, window: Window) {
        self.node_extra_ns.write().entry(node).or_default().push((extra_ns, window));
    }

    /// Remove every straggler entry for `node`.
    pub fn heal_node(&self, node: NodeId) {
        self.node_extra_ns.write().remove(&node);
    }

    /// Enable deterministic per-packet jitter uniform in `[0, bound_ns)`,
    /// at all times.
    pub fn set_jitter(&self, bound_ns: u64) {
        self.set_jitter_during(bound_ns, Window::ALWAYS);
    }

    /// Enable jitter during `window` only; pass `bound_ns = 0` to disable.
    ///
    /// **Replace semantics, unlike every other windowed fault:** there is a
    /// single jitter setting per plan, so this call *replaces* any previous
    /// bound and window, whereas [`FaultPlan::degrade_link_during`],
    /// [`FaultPlan::straggle_node_during`] and
    /// [`FaultPlan::partition_during`] *accumulate* entries (overlapping
    /// windows sum / both stay active). To model jitter that varies over
    /// time, re-call this at each transition rather than stacking calls.
    pub fn set_jitter_during(&self, bound_ns: u64, window: Window) {
        *self.jitter_window.write() = window;
        self.jitter_ns.store(bound_ns, Ordering::Relaxed);
    }

    /// Seed the jitter stream. Same seed + same packet sequence ⇒ identical
    /// per-packet jitter, which is what makes chaos campaigns replayable.
    /// Also resets the packet sequence counter.
    pub fn set_jitter_seed(&self, seed: u64) {
        self.jitter_seed.store(seed, Ordering::Relaxed);
        self.seq.store(0, Ordering::Relaxed);
    }

    /// Total extra latency to charge a packet `src -> dst`, evaluated at the
    /// origin of virtual time. Compatibility wrapper over
    /// [`FaultPlan::extra_latency_at`]; windowed entries whose window does
    /// not contain time zero are not charged.
    pub fn extra_latency(&self, src: NodeId, dst: NodeId) -> u64 {
        self.extra_latency_at(src, dst, VTime::ZERO)
    }

    /// Total extra latency to charge a packet departing `src -> dst` at
    /// virtual time `t`. Only entries whose window contains `t` apply.
    pub fn extra_latency_at(&self, src: NodeId, dst: NodeId, t: VTime) -> u64 {
        let mut extra = 0;
        if let Some(entries) = self.link_extra_ns.read().get(&(src, dst)) {
            extra += active_sum(entries, t);
        }
        {
            let nodes = self.node_extra_ns.read();
            if let Some(entries) = nodes.get(&src) {
                extra += active_sum(entries, t);
            }
            if let Some(entries) = nodes.get(&dst) {
                extra += active_sum(entries, t);
            }
        }
        let bound = self.jitter_ns.load(Ordering::Relaxed);
        if bound > 0 && self.jitter_window.read().contains(t) {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let seed = self.jitter_seed.load(Ordering::Relaxed);
            extra += splitmix64(seed ^ seq ^ ((src as u64) << 32) ^ dst as u64) % bound;
        }
        extra
    }

    /// True when the plan perturbs nothing (fast-path check).
    pub fn is_empty(&self) -> bool {
        self.jitter_ns.load(Ordering::Relaxed) == 0
            && !self.has_disruptions()
            && self.link_extra_ns.read().is_empty()
            && self.node_extra_ns.read().is_empty()
    }

    /// Crash-stop `node` at virtual time `at`: every packet departing at or
    /// after `at` that would be sent by, delivered to, or served by the node
    /// fails with [`crate::FabricError::PeerUnreachable`]. Without a
    /// matching [`FaultPlan::revive_node_at`] the crash is permanent, and
    /// the earliest kill time wins if called twice.
    pub fn kill_node_at(&self, node: NodeId, at: VTime) {
        let mut lives = self.lives.write();
        let life = lives.entry(node).or_default();
        life.kills.push(at);
        life.kills.sort_unstable();
        self.disruptions.store(true, Ordering::Release);
    }

    /// Bring `node` back up at virtual time `at` as a **new incarnation**:
    /// packets depart/arrive normally from `at` on (until a later kill),
    /// and [`FaultPlan::incarnation_at`] ticks up so middleware can tell
    /// the rejoined generation from the crashed one. A node can also *join*
    /// late: kill it at `VTime(0)` and revive it at its join time.
    pub fn revive_node_at(&self, node: NodeId, at: VTime) {
        let mut lives = self.lives.write();
        let life = lives.entry(node).or_default();
        life.revives.push(at);
        life.revives.sort_unstable();
        self.disruptions.store(true, Ordering::Release);
    }

    /// The incarnation of `node` at virtual time `t`: 0 for the original
    /// process generation, +1 per revive at or before `t`.
    pub fn incarnation_at(&self, node: NodeId, t: VTime) -> u64 {
        if !self.has_disruptions() {
            return 0;
        }
        self.lives.read().get(&node).map_or(0, |l| l.incarnation_at(t))
    }

    /// Partition the pair `a <-> b` (both directions) during `window`.
    /// Entries accumulate like link degradations; packets whose departure
    /// falls inside any active window fail with
    /// [`crate::FabricError::PeerUnreachable`], and the window heals
    /// deterministically when virtual time passes `window.until`.
    pub fn partition_during(&self, a: NodeId, b: NodeId, window: Window) {
        let key = (a.min(b), a.max(b));
        self.partitions.write().entry(key).or_default().push(window);
        self.disruptions.store(true, Ordering::Release);
    }

    /// Remove every partition window for the pair `a <-> b`.
    pub fn heal_partition(&self, a: NodeId, b: NodeId) {
        self.partitions.write().remove(&(a.min(b), a.max(b)));
    }

    /// True once any kill or partition has been installed (one relaxed
    /// atomic load; pessimistic — healing does not clear it).
    #[inline]
    pub fn has_disruptions(&self) -> bool {
        self.disruptions.load(Ordering::Acquire)
    }

    /// True when `node` is dead at virtual time `t`.
    pub fn node_dead_at(&self, node: NodeId, t: VTime) -> bool {
        if !self.has_disruptions() {
            return false;
        }
        self.lives.read().get(&node).is_some_and(|l| l.dead_at(t))
    }

    /// True when the pair `a <-> b` is inside an active partition window at
    /// virtual time `t`.
    pub fn partitioned_at(&self, a: NodeId, b: NodeId, t: VTime) -> bool {
        if !self.has_disruptions() {
            return false;
        }
        self.partitions
            .read()
            .get(&(a.min(b), a.max(b)))
            .is_some_and(|ws| ws.iter().any(|w| w.contains(t)))
    }

    /// If a packet `src -> dst` departing at `t` cannot be delivered,
    /// the node to blame (the dead node, or `dst` for a partition).
    pub fn unreachable_between(&self, src: NodeId, dst: NodeId, t: VTime) -> Option<NodeId> {
        if !self.has_disruptions() {
            return None;
        }
        if self.node_dead_at(src, t) {
            Some(src)
        } else if self.node_dead_at(dst, t) || self.partitioned_at(src, dst, t) {
            Some(dst)
        } else {
            None
        }
    }
}

/// Sum of entries active at `t`.
fn active_sum(entries: &[(u64, Window)], t: VTime) -> u64 {
    entries.iter().filter(|(_, w)| w.contains(t)).map(|(e, _)| e).sum()
}

/// SplitMix64: deterministic 64-bit mixer for jitter generation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_free() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.extra_latency(0, 1), 0);
    }

    #[test]
    fn link_degradation_is_directional() {
        let p = FaultPlan::none();
        p.degrade_link(0, 1, 500);
        assert_eq!(p.extra_latency(0, 1), 500);
        assert_eq!(p.extra_latency(1, 0), 0);
        p.heal_link(0, 1);
        assert_eq!(p.extra_latency(0, 1), 0);
    }

    #[test]
    fn straggler_charges_both_directions() {
        let p = FaultPlan::none();
        p.straggle_node(2, 100);
        assert_eq!(p.extra_latency(2, 5), 100);
        assert_eq!(p.extra_latency(5, 2), 100);
        assert_eq!(p.extra_latency(3, 4), 0);
        // Degradations compose.
        p.degrade_link(2, 5, 50);
        assert_eq!(p.extra_latency(2, 5), 150);
        p.heal_node(2);
        assert_eq!(p.extra_latency(2, 5), 50);
    }

    #[test]
    fn windowed_faults_activate_by_departure_time() {
        let p = FaultPlan::none();
        p.degrade_link_during(0, 1, 700, Window::new(VTime(1_000), VTime(2_000)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(999)), 0);
        assert_eq!(p.extra_latency_at(0, 1, VTime(1_000)), 700, "from is inclusive");
        assert_eq!(p.extra_latency_at(0, 1, VTime(1_999)), 700);
        assert_eq!(p.extra_latency_at(0, 1, VTime(2_000)), 0, "until is exclusive");
        // Overlapping windows sum; disjoint ones apply alone.
        p.degrade_link_during(0, 1, 40, Window::new(VTime(1_500), VTime(3_000)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(1_700)), 740);
        assert_eq!(p.extra_latency_at(0, 1, VTime(2_500)), 40);
        // Node windows behave the same way.
        p.straggle_node_during(1, 5, Window::new(VTime(0), VTime(100)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(50)), 5);
        assert_eq!(p.extra_latency_at(0, 1, VTime(100)), 0);
    }

    #[test]
    fn jitter_bounded_and_nonconstant() {
        let p = FaultPlan::none();
        p.set_jitter(64);
        assert!(!p.is_empty());
        let samples: Vec<u64> = (0..256).map(|_| p.extra_latency(0, 1)).collect();
        assert!(samples.iter().all(|&s| s < 64));
        assert!(samples.iter().any(|&s| s != samples[0]), "jitter should vary");
    }

    #[test]
    fn jitter_stream_is_seed_reproducible() {
        let draw = |seed: u64| -> Vec<u64> {
            let p = FaultPlan::none();
            p.set_jitter(1_000);
            p.set_jitter_seed(seed);
            (0..64).map(|i| p.extra_latency_at(i % 3, 1 + i % 2, VTime(0))).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed, same stream");
        assert_ne!(draw(42), draw(43), "different seed, different stream");
        // Re-seeding mid-run restarts the sequence.
        let p = FaultPlan::none();
        p.set_jitter(1_000);
        p.set_jitter_seed(7);
        let first: Vec<u64> = (0..8).map(|_| p.extra_latency(0, 1)).collect();
        p.set_jitter_seed(7);
        let again: Vec<u64> = (0..8).map(|_| p.extra_latency(0, 1)).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn windowed_jitter_only_fires_inside_window() {
        let p = FaultPlan::none();
        p.set_jitter_during(1_000_000, Window::new(VTime(500), VTime(600)));
        p.set_jitter_seed(1);
        assert_eq!(p.extra_latency_at(0, 1, VTime(499)), 0);
        assert_eq!(p.extra_latency_at(0, 1, VTime(600)), 0);
        let inside: Vec<u64> = (0..32).map(|_| p.extra_latency_at(0, 1, VTime(550))).collect();
        assert!(inside.iter().any(|&s| s > 0), "jitter active inside window");
    }

    #[test]
    fn splitmix_spreads() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn set_jitter_during_replaces_previous_window() {
        // Regression: unlike link/node entries, which accumulate, the jitter
        // setting is single-valued — a second call REPLACES the first window
        // and bound entirely.
        let p = FaultPlan::none();
        p.set_jitter_seed(3);
        p.set_jitter_during(1_000_000, Window::new(VTime(0), VTime(100)));
        let early: Vec<u64> = (0..32).map(|_| p.extra_latency_at(0, 1, VTime(50))).collect();
        assert!(early.iter().any(|&s| s > 0), "first window active");
        // Replace with a later window: the first window must stop applying.
        p.set_jitter_during(1_000_000, Window::new(VTime(200), VTime(300)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(50)), 0, "old window replaced, not summed");
        let late: Vec<u64> = (0..32).map(|_| p.extra_latency_at(0, 1, VTime(250))).collect();
        assert!(late.iter().any(|&s| s > 0), "new window active");
        // Replacing with bound 0 disables jitter outright.
        p.set_jitter_during(0, Window::new(VTime(200), VTime(300)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(250)), 0);
    }

    #[test]
    fn kill_node_is_permanent_and_earliest_wins() {
        let p = FaultPlan::none();
        assert!(!p.has_disruptions());
        assert!(!p.node_dead_at(2, VTime(u64::MAX)));
        p.kill_node_at(2, VTime(1_000));
        assert!(p.has_disruptions());
        assert!(!p.is_empty());
        assert!(!p.node_dead_at(2, VTime(999)));
        assert!(p.node_dead_at(2, VTime(1_000)), "kill instant is inclusive");
        assert!(p.node_dead_at(2, VTime(u64::MAX)), "crash-stop never heals");
        assert!(!p.node_dead_at(3, VTime(2_000)), "other nodes unaffected");
        // A later kill time does not postpone death.
        p.kill_node_at(2, VTime(5_000));
        assert!(p.node_dead_at(2, VTime(1_000)));
        // An earlier one advances it.
        p.kill_node_at(2, VTime(500));
        assert!(p.node_dead_at(2, VTime(500)));
        assert_eq!(p.unreachable_between(2, 0, VTime(600)), Some(2), "dead source blamed");
        assert_eq!(p.unreachable_between(0, 2, VTime(600)), Some(2), "dead destination blamed");
        assert_eq!(p.unreachable_between(0, 1, VTime(600)), None);
    }

    #[test]
    fn revive_opens_a_new_incarnation() {
        let p = FaultPlan::none();
        p.kill_node_at(3, VTime(1_000));
        p.revive_node_at(3, VTime(5_000));
        assert!(!p.node_dead_at(3, VTime(999)));
        assert!(p.node_dead_at(3, VTime(1_000)));
        assert!(p.node_dead_at(3, VTime(4_999)));
        assert!(!p.node_dead_at(3, VTime(5_000)), "revive instant is inclusive");
        assert!(!p.node_dead_at(3, VTime(u64::MAX)));
        assert_eq!(p.incarnation_at(3, VTime(0)), 0);
        assert_eq!(p.incarnation_at(3, VTime(4_999)), 0);
        assert_eq!(p.incarnation_at(3, VTime(5_000)), 1, "rejoin is a new generation");
        // A second kill re-kills the new incarnation.
        p.kill_node_at(3, VTime(9_000));
        assert!(!p.node_dead_at(3, VTime(8_999)));
        assert!(p.node_dead_at(3, VTime(9_000)));
        p.revive_node_at(3, VTime(9_500));
        assert_eq!(p.incarnation_at(3, VTime(9_500)), 2);
        assert!(!p.node_dead_at(3, VTime(9_500)));
        // Reachability blame follows the windows.
        assert_eq!(p.unreachable_between(0, 3, VTime(2_000)), Some(3));
        assert_eq!(p.unreachable_between(0, 3, VTime(6_000)), None);
    }

    #[test]
    fn late_join_is_kill_at_zero_plus_revive() {
        let p = FaultPlan::none();
        p.kill_node_at(7, VTime(0));
        p.revive_node_at(7, VTime(40_000));
        assert!(p.node_dead_at(7, VTime(0)));
        assert!(p.node_dead_at(7, VTime(39_999)));
        assert!(!p.node_dead_at(7, VTime(40_000)), "joined");
        assert_eq!(p.incarnation_at(7, VTime(40_000)), 1);
        assert_eq!(p.incarnation_at(7, VTime(0)), 0);
    }

    #[test]
    fn partition_is_symmetric_windowed_and_accumulates() {
        let p = FaultPlan::none();
        p.partition_during(1, 4, Window::new(VTime(100), VTime(200)));
        assert!(p.has_disruptions());
        assert!(!p.partitioned_at(1, 4, VTime(99)));
        assert!(p.partitioned_at(1, 4, VTime(100)));
        assert!(p.partitioned_at(4, 1, VTime(150)), "partition cuts both directions");
        assert!(!p.partitioned_at(1, 4, VTime(200)), "window heals deterministically");
        assert!(!p.partitioned_at(1, 3, VTime(150)), "other pairs unaffected");
        // Entries accumulate: a second window extends the outage.
        p.partition_during(4, 1, Window::new(VTime(300), VTime(400)));
        assert!(p.partitioned_at(1, 4, VTime(350)));
        assert!(!p.partitioned_at(1, 4, VTime(250)), "gap between windows is healthy");
        assert_eq!(p.unreachable_between(1, 4, VTime(150)), Some(4));
        assert_eq!(p.unreachable_between(4, 1, VTime(150)), Some(1));
        assert_eq!(p.unreachable_between(1, 4, VTime(250)), None);
        p.heal_partition(1, 4);
        assert!(!p.partitioned_at(1, 4, VTime(350)));
    }

    #[test]
    fn window_edges_under_adjacency() {
        // Adjacent windows [a,b) and [b,c): at exactly b only the second
        // applies — no double charge, no gap.
        let p = FaultPlan::none();
        p.degrade_link_during(0, 1, 10, Window::new(VTime(0), VTime(100)));
        p.degrade_link_during(0, 1, 25, Window::new(VTime(100), VTime(200)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(99)), 10);
        assert_eq!(p.extra_latency_at(0, 1, VTime(100)), 25);
        assert_eq!(p.extra_latency_at(0, 1, VTime(199)), 25);
        assert_eq!(p.extra_latency_at(0, 1, VTime(200)), 0);
        // Degenerate empty window [t, t) never applies.
        p.degrade_link_during(0, 1, 1_000, Window::new(VTime(50), VTime(50)));
        assert_eq!(p.extra_latency_at(0, 1, VTime(50)), 10);
    }

    proptest::proptest! {
        /// `active_sum` over arbitrary overlapping/adjacent windows equals a
        /// brute-force filter-and-sum at every probed instant, including the
        /// exact window edges.
        #[test]
        fn active_sum_matches_brute_force(
            entries in proptest::collection::vec((1u64..1_000, 0u64..500, 0u64..500), 0..16),
            probes in proptest::collection::vec(0u64..1_100, 1..32),
        ) {
            let entries: Vec<(u64, Window)> = entries
                .into_iter()
                .map(|(extra, from, len)| (extra, Window::new(VTime(from), VTime(from + len))))
                .collect();
            // Probe random instants plus every edge of every window.
            let mut at: Vec<u64> = probes;
            for (_, w) in &entries {
                at.extend([w.from.0, w.from.0.saturating_sub(1), w.until.0, w.until.0 + 1]);
            }
            for t in at {
                let brute: u64 = entries
                    .iter()
                    .filter(|(_, w)| w.from.0 <= t && t < w.until.0)
                    .map(|(e, _)| e)
                    .sum();
                proptest::prop_assert_eq!(active_sum(&entries, VTime(t)), brute);
            }
        }
    }
}
