//! The simulated NIC: work-request execution engine.
//!
//! Operations execute synchronously on the posting thread (the "NIC DMA" is
//! a locked memcpy into the target's registered region), while completion
//! *timestamps* come from the switch's LogGP accounting.  Per-QP ordering is
//! inherited from program order on the posting thread, matching the in-order
//! delivery guarantee of a reliable-connected QP.
//!
//! Target-side behaviour follows verbs semantics with one documented
//! divergence: a two-sided `Send` arriving before any receive is posted is
//! parked in a bounded pending queue (equivalent to an infinite-retry
//! RNR-NAK policy) instead of tearing down the connection; overflowing that
//! queue surfaces `ReceiverNotReady` to the sender.

use crate::clock::VTime;
use crate::error::{FabricError, Result};
use crate::mr::{Access, MemoryRegion, MrTable};
use crate::verbs::{
    Completion, CompletionKind, Cq, MrSlice, Qp, RecvWr, RemoteSlice, SendWr, WcStatus, WrOp,
    DEFAULT_CQ_DEPTH,
};
use crate::wire::{Switch, Transfer, REQUEST_BYTES};
use crate::NodeId;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Default maximum number of unexpected two-sided sends parked per NIC
/// before the fabric reports `ReceiverNotReady`.
pub const PENDING_SEND_CAP: usize = 8192;

/// Message buffers kept in a NIC's free list for reuse.
const BUF_POOL_CAP: usize = 64;

/// Message buffers kept in each *thread's* front cache ahead of the shared
/// free list: the common send→deliver cycle recycles a buffer on the same
/// thread, so the front cache turns both pool touches into lock-free
/// thread-local pops. Deliberately small — buffers parked in one thread's
/// cache are invisible to the others.
const BUF_FRONT_CAP: usize = 8;

std::thread_local! {
    /// Thread-local front cache over every NIC's shared `buf_pool` (the
    /// buffers are plain `Vec<u8>`s, not NIC-specific, so one cache serves
    /// all NICs a thread drives).
    static BUF_FRONT: std::cell::RefCell<Vec<Vec<u8>>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Largest buffer capacity the free list retains; bigger one-off transfers
/// (rendezvous payloads) are returned to the allocator instead of pinning
/// megabytes in the pool.
const BUF_POOL_MAX_BYTES: usize = 256 * 1024;

/// Per-NIC resource limits (fault-injection and sizing hooks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicConfig {
    /// Bytes of memory the node may register (pin).
    pub reg_limit_bytes: usize,
    /// Completion-queue depth (send and recv CQs).
    pub cq_depth: usize,
    /// Unexpected-send backlog before `ReceiverNotReady`.
    pub pending_send_cap: usize,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            reg_limit_bytes: crate::mr::DEFAULT_REG_LIMIT,
            cq_depth: DEFAULT_CQ_DEPTH,
            pending_send_cap: PENDING_SEND_CAP,
        }
    }
}

#[derive(Debug)]
struct PendingSend {
    src: NodeId,
    data: Vec<u8>,
    imm: Option<u64>,
    ts: VTime,
}

#[derive(Debug, Default)]
struct RecvState {
    posted: VecDeque<RecvWr>,
    pending: VecDeque<PendingSend>,
}

/// Per-QP bookkeeping: the handle plus virtual-time ordering floors that
/// keep a reliable-connected flow in-order *in virtual time* (a later small
/// message must not book an earlier calendar hole than its predecessor).
#[derive(Debug)]
struct QpState {
    qp: Qp,
    /// No later op on this QP may depart before this instant.
    depart_floor: AtomicU64,
    /// No later op on this QP may deliver before this instant.
    deliver_floor: AtomicU64,
    /// Verbs error state: set when a transfer fails against a dead or
    /// partitioned peer; new posts are rejected until [`Nic::reset_qp`].
    error: AtomicBool,
}

/// Operation counters, updated relaxed; snapshot with [`Nic::counters`].
#[derive(Debug, Default)]
pub struct NicCounters {
    sends: AtomicU64,
    writes: AtomicU64,
    reads: AtomicU64,
    atomics: AtomicU64,
    recvs_matched: AtomicU64,
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
}

/// A point-in-time copy of a NIC's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Two-sided sends initiated.
    pub sends: u64,
    /// RDMA writes initiated.
    pub writes: u64,
    /// RDMA reads initiated.
    pub reads: u64,
    /// Remote atomics initiated.
    pub atomics: u64,
    /// Receives matched with an incoming send.
    pub recvs_matched: u64,
    /// Payload bytes transmitted.
    pub bytes_tx: u64,
    /// Payload bytes received (one-sided writes landing here included).
    pub bytes_rx: u64,
}

impl QpState {
    /// Clamp a computed delivery time to this flow's in-order floor.
    fn order_deliver(&self, deliver: VTime) -> VTime {
        VTime(deliver.0.max(self.deliver_floor.load(Ordering::Acquire)))
    }

    /// Record this op's injection end and delivery as floors for successors.
    fn advance_floors(&self, injected: VTime, deliver: VTime) {
        self.depart_floor.fetch_max(injected.0, Ordering::AcqRel);
        self.deliver_floor.fetch_max(deliver.0, Ordering::AcqRel);
    }
}

/// A simulated RDMA NIC attached to one node of the cluster.
#[derive(Debug)]
pub struct Nic {
    node: NodeId,
    switch: Weak<Switch>,
    mrs: MrTable,
    send_cq: Cq,
    recv_cq: Cq,
    rq: Mutex<RecvState>,
    qps: RwLock<HashMap<u32, Arc<QpState>>>,
    next_qp: AtomicU32,
    pending_send_cap: usize,
    counters: NicCounters,
    /// Free list of message buffers: payload movement recycles `Vec`s here
    /// instead of allocating one per send/write/read-response.
    buf_pool: Mutex<Vec<Vec<u8>>>,
}

impl Nic {
    /// Create a NIC, attach it to `switch`, and return it. The node id is
    /// assigned densely by attach order.
    pub fn attach_new(switch: &Arc<Switch>, reg_limit_bytes: usize) -> Arc<Nic> {
        Self::attach_with_config(switch, NicConfig { reg_limit_bytes, ..NicConfig::default() })
    }

    /// Create a NIC with explicit resource limits.
    pub fn attach_with_config(switch: &Arc<Switch>, cfg: NicConfig) -> Arc<Nic> {
        switch.attach_with(|node| {
            Arc::new(Nic {
                node,
                switch: Arc::downgrade(switch),
                mrs: MrTable::with_limit(node, cfg.reg_limit_bytes),
                send_cq: Cq::new(cfg.cq_depth),
                recv_cq: Cq::new(cfg.cq_depth),
                rq: Mutex::new(RecvState::default()),
                qps: RwLock::new(HashMap::new()),
                next_qp: AtomicU32::new(1),
                pending_send_cap: cfg.pending_send_cap,
                counters: NicCounters::default(),
                buf_pool: Mutex::new(Vec::new()),
            })
        })
    }

    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes attached to this NIC's switch (job size).
    pub fn num_nodes(&self) -> usize {
        self.switch.upgrade().map_or(0, |sw| sw.len())
    }

    /// The registration table.
    pub fn mrs(&self) -> &MrTable {
        &self.mrs
    }

    /// Register a region of `len` bytes (convenience for `mrs().register`).
    pub fn register(&self, len: usize, flags: Access) -> Result<MemoryRegion> {
        self.mrs.register(len, flags)
    }

    /// Modeled virtual-time cost of registering `len` bytes.
    pub fn registration_cost_ns(&self, len: usize) -> u64 {
        self.switch.upgrade().map(|sw| sw.model().registration_ns(len)).unwrap_or(0)
    }

    /// Create a reliable-connected QP to `peer`.
    pub fn create_qp(&self, peer: NodeId) -> Result<Qp> {
        let sw = self.switch.upgrade().ok_or(FabricError::Down)?;
        if peer >= sw.len() {
            return Err(FabricError::NoSuchNode { node: peer });
        }
        let num = self.next_qp.fetch_add(1, Ordering::Relaxed);
        let qp = Qp { num, node: self.node, peer };
        self.qps.write().insert(
            num,
            Arc::new(QpState {
                qp,
                depart_floor: AtomicU64::new(0),
                deliver_floor: AtomicU64::new(0),
                error: AtomicBool::new(false),
            }),
        );
        Ok(qp)
    }

    /// Clear a QP's error state after the path to the peer has healed
    /// (reconnection). Ordering floors are preserved: the reconnected flow
    /// continues forward in virtual time.
    pub fn reset_qp(&self, qp: Qp) -> Result<()> {
        let st = self
            .qps
            .read()
            .get(&qp.num)
            .filter(|st| st.qp == qp)
            .cloned()
            .ok_or(FabricError::NoSuchQp { qp: qp.num })?;
        st.error.store(false, Ordering::Release);
        Ok(())
    }

    /// True when `qp` is in the error state (posts are rejected).
    pub fn qp_errored(&self, qp: Qp) -> bool {
        self.qps
            .read()
            .get(&qp.num)
            .is_some_and(|st| st.qp == qp && st.error.load(Ordering::Acquire))
    }

    /// Whether this NIC's *own* node is dead at `now` — i.e. the caller's
    /// virtual clock has crossed the node's scheduled kill time (probe
    /// rides and partition waits advance clocks past arbitrary fault
    /// boundaries). [`Nic::peer_status`] reports [`WcStatus::RemoteDead`]
    /// when *either* end of the wire is down; this read lets the layer
    /// above tell "the peer died" from "I died" so it never records a
    /// live peer dead on the strength of its own crash.
    pub fn self_dead_at(&self, now: VTime) -> bool {
        self.switch.upgrade().is_some_and(|sw| sw.faults().node_dead_at(self.node, now))
    }

    /// Reachability pre-check for `qp`'s peer at virtual time `now`:
    /// `None` when the path is healthy, otherwise the status a post at
    /// `now` would fail with ([`WcStatus::RemoteDead`] for a crashed node,
    /// [`WcStatus::RetryExceeded`] for an active partition). Consults only
    /// the fault plan, never the QP error flag, so callers can use it to
    /// decide when a reconnection probe ([`Nic::reset_qp`]) may succeed.
    pub fn peer_status(&self, qp: Qp, now: VTime) -> Option<WcStatus> {
        let sw = self.switch.upgrade()?;
        let f = sw.faults();
        if !f.has_disruptions() {
            return None;
        }
        if f.node_dead_at(qp.peer, now) || f.node_dead_at(self.node, now) {
            Some(WcStatus::RemoteDead)
        } else if f.partitioned_at(self.node, qp.peer, now) {
            Some(WcStatus::RetryExceeded)
        } else {
            None
        }
    }

    /// Reachability pre-check for `peer` without a QP — the connection-
    /// manager analogue of [`Nic::peer_status`], usable before any QP to
    /// the peer exists. Same status mapping: `RemoteDead` for a crashed
    /// node (or when this node itself is dead), `RetryExceeded` for an
    /// active partition, `None` for a healthy path.
    pub fn node_status(&self, peer: NodeId, now: VTime) -> Option<WcStatus> {
        let sw = self.switch.upgrade()?;
        let f = sw.faults();
        if !f.has_disruptions() {
            return None;
        }
        if f.node_dead_at(peer, now) || f.node_dead_at(self.node, now) {
            Some(WcStatus::RemoteDead)
        } else if f.partitioned_at(self.node, peer, now) {
            Some(WcStatus::RetryExceeded)
        } else {
            None
        }
    }

    /// The incarnation of `peer` at virtual time `now` (0 = original
    /// generation, +1 per [`crate::FaultPlan::revive_node_at`]). A
    /// connection established against one incarnation must not be reused
    /// against a later one.
    pub fn node_incarnation(&self, peer: NodeId, now: VTime) -> u64 {
        self.switch.upgrade().map_or(0, |sw| sw.faults().incarnation_at(peer, now))
    }

    /// Destroy a QP; subsequent posts on it fail.
    pub fn destroy_qp(&self, qp: Qp) -> Result<()> {
        self.qps.write().remove(&qp.num).map(|_| ()).ok_or(FabricError::NoSuchQp { qp: qp.num })
    }

    /// Poll the initiator-side completion queue.
    pub fn poll_send_cq(&self) -> Option<Completion> {
        self.send_cq.poll()
    }

    /// Poll the target-side completion queue (receives and imm events).
    pub fn poll_recv_cq(&self) -> Option<Completion> {
        self.recv_cq.poll()
    }

    /// Drain up to `n` initiator-side completions.
    pub fn poll_send_cq_n(&self, n: usize) -> Vec<Completion> {
        self.send_cq.poll_n(n)
    }

    /// Drain up to `n` target-side completions.
    pub fn poll_recv_cq_n(&self, n: usize) -> Vec<Completion> {
        self.recv_cq.poll_n(n)
    }

    /// Drain up to `n` initiator-side completions into `out` (appended),
    /// allocation-free; returns the number drained.
    pub fn poll_send_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        self.send_cq.poll_n_into(n, out)
    }

    /// Drain up to `n` target-side completions into `out` (appended),
    /// allocation-free; returns the number drained.
    pub fn poll_recv_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        self.recv_cq.poll_n_into(n, out)
    }

    /// Post a receive. If unexpected sends are parked, the oldest one
    /// matches immediately.
    pub fn post_recv(&self, wr: RecvWr) -> Result<()> {
        wr.local.check()?;
        self.check_local(&wr.local)?;
        let mut rq = self.rq.lock();
        if let Some(p) = rq.pending.pop_front() {
            drop(rq);
            return self.complete_recv(wr, p);
        }
        rq.posted.push_back(wr);
        Ok(())
    }

    /// Number of posted-but-unmatched receives.
    pub fn posted_recvs(&self) -> usize {
        self.rq.lock().posted.len()
    }

    /// Post a send-queue work request with the initiator's virtual clock at
    /// `now`.  Effects apply before return; completions are delivered to the
    /// relevant CQs with modeled timestamps.
    pub fn post_send(&self, qp: Qp, wr: SendWr, now: VTime) -> Result<()> {
        let (sw, state) = self.send_path(qp)?;
        // RC in-order floor: never depart before a predecessor on this QP.
        let ready = (now + sw.model().send_overhead_ns)
            .max(VTime(state.depart_floor.load(Ordering::Acquire)));
        self.exec_send(&sw, &state, qp, &wr, ready)
    }

    /// Post a *run* of send-queue work requests through one doorbell: the
    /// per-post overhead (`send_overhead_ns`) and the QP/switch lookup are
    /// charged once for the whole run instead of once per work request. The
    /// wrs execute in order on the same QP, so RC ordering holds across the
    /// run and a signaled *last* wr implies every earlier one has completed
    /// — the contract the middleware's one-CQE batch fan-out relies on.
    ///
    /// Stops at the first failing wr and returns its error; wrs executed
    /// before the failure keep their effects (as on hardware, where one
    /// doorbell covers already-fetched WQEs).
    pub fn post_send_many(&self, qp: Qp, wrs: &[SendWr], now: VTime) -> Result<()> {
        let (sw, state) = self.send_path(qp)?;
        let base = now + sw.model().send_overhead_ns;
        for wr in wrs {
            let ready = base.max(VTime(state.depart_floor.load(Ordering::Acquire)));
            self.exec_send(&sw, &state, qp, wr, ready)?;
        }
        Ok(())
    }

    /// Shared post-path prologue: switch + QP state lookup, error-state
    /// rejection.
    fn send_path(&self, qp: Qp) -> Result<(Arc<Switch>, Arc<QpState>)> {
        let sw = self.switch.upgrade().ok_or(FabricError::Down)?;
        let state = self
            .qps
            .read()
            .get(&qp.num)
            .filter(|st| st.qp == qp)
            .cloned()
            .ok_or(FabricError::NoSuchQp { qp: qp.num })?;
        // A QP in the error state rejects every post until reset_qp.
        if state.error.load(Ordering::Acquire) {
            return Err(FabricError::PeerUnreachable { node: qp.peer });
        }
        Ok((sw, state))
    }

    /// Execute one work request whose departure is gated at `ready`.
    fn exec_send(
        &self,
        sw: &Arc<Switch>,
        state: &QpState,
        qp: Qp,
        wr: &SendWr,
        ready: VTime,
    ) -> Result<()> {
        match wr.op {
            WrOp::Send { ref local, imm } => {
                local.check()?;
                self.check_local(local)?;
                let mut data = self.take_buf(local.len);
                local.mr.read_at(local.offset, &mut data);
                let t = self.transfer_checked(
                    sw,
                    state,
                    self.node,
                    qp.peer,
                    local.len,
                    ready,
                    wr.wr_id,
                    CompletionKind::SendDone,
                )?;
                let deliver = state.order_deliver(t.deliver);
                state.advance_floors(t.injected, deliver);
                stamp_all(&mut data, wr, deliver)?;
                sw.nic(qp.peer)?.deliver_send(self.node, data, imm, deliver)?;
                self.counters.sends.fetch_add(1, Ordering::Relaxed);
                self.counters.bytes_tx.fetch_add(local.len as u64, Ordering::Relaxed);
                if wr.signaled {
                    self.send_cq.push(Completion {
                        wr_id: wr.wr_id,
                        kind: CompletionKind::SendDone,
                        ts: t.injected,
                        status: WcStatus::Success,
                    })?;
                }
            }
            WrOp::Write { ref local, remote, imm } => {
                local.check()?;
                self.check_local(local)?;
                if local.len != remote.len {
                    return Err(FabricError::LengthMismatch {
                        local: local.len,
                        remote: remote.len,
                    });
                }
                let mut data = self.take_buf(local.len);
                local.mr.read_at(local.offset, &mut data);
                let t = self.transfer_checked(
                    sw,
                    state,
                    self.node,
                    qp.peer,
                    local.len,
                    ready,
                    wr.wr_id,
                    CompletionKind::WriteDone,
                )?;
                let deliver = state.order_deliver(t.deliver);
                state.advance_floors(t.injected, deliver);
                stamp_all(&mut data, wr, deliver)?;
                sw.nic(qp.peer)?.apply_write(self.node, &data, remote, imm, deliver)?;
                self.give_buf(data);
                self.counters.writes.fetch_add(1, Ordering::Relaxed);
                self.counters.bytes_tx.fetch_add(local.len as u64, Ordering::Relaxed);
                if wr.signaled {
                    self.send_cq.push(Completion {
                        wr_id: wr.wr_id,
                        kind: CompletionKind::WriteDone,
                        ts: t.injected,
                        status: WcStatus::Success,
                    })?;
                }
            }
            WrOp::Read { ref local, remote } => {
                local.check()?;
                self.check_local(local)?;
                if local.len != remote.len {
                    return Err(FabricError::LengthMismatch {
                        local: local.len,
                        remote: remote.len,
                    });
                }
                // Header-only request travels out; data travels back.
                let req = self.transfer_checked(
                    sw,
                    state,
                    self.node,
                    qp.peer,
                    REQUEST_BYTES,
                    ready,
                    wr.wr_id,
                    CompletionKind::ReadDone,
                )?;
                let req_deliver = state.order_deliver(req.deliver);
                state.advance_floors(req.injected, req_deliver);
                let data = sw.nic(qp.peer)?.serve_read(remote)?;
                let resp = self.transfer_checked(
                    sw,
                    state,
                    qp.peer,
                    self.node,
                    remote.len,
                    req_deliver,
                    wr.wr_id,
                    CompletionKind::ReadDone,
                )?;
                local.mr.write_at(local.offset, &data);
                self.give_buf(data);
                self.counters.reads.fetch_add(1, Ordering::Relaxed);
                self.counters.bytes_rx.fetch_add(remote.len as u64, Ordering::Relaxed);
                if wr.signaled {
                    self.send_cq.push(Completion {
                        wr_id: wr.wr_id,
                        kind: CompletionKind::ReadDone,
                        ts: resp.deliver,
                        status: WcStatus::Success,
                    })?;
                }
            }
            WrOp::FetchAdd { ref local, remote, add } => {
                self.atomic_common(
                    sw,
                    state,
                    local,
                    remote,
                    ready,
                    wr.wr_id,
                    wr.signaled,
                    |nic| nic.serve_atomic(remote, |mr, off| mr.fetch_add_u64(off, add)),
                )?;
            }
            WrOp::CompareSwap { ref local, remote, compare, swap } => {
                self.atomic_common(
                    sw,
                    state,
                    local,
                    remote,
                    ready,
                    wr.wr_id,
                    wr.signaled,
                    |nic| {
                        nic.serve_atomic(remote, |mr, off| mr.compare_swap_u64(off, compare, swap))
                    },
                )?;
            }
        }
        Ok(())
    }

    /// Shared path for both remote atomics.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn atomic_common(
        &self,
        sw: &Arc<Switch>,
        state: &QpState,
        local: &MrSlice,
        remote: RemoteSlice,
        ready: VTime,
        wr_id: u64,
        signaled: bool,
        serve: impl FnOnce(&Nic) -> Result<u64>,
    ) -> Result<u64> {
        let qp = state.qp;
        if local.len != 8 {
            return Err(FabricError::BadAtomicTarget { addr: remote.addr, len: local.len });
        }
        local.check()?;
        self.check_local(local)?;
        let req = self.transfer_checked(
            sw,
            state,
            self.node,
            qp.peer,
            REQUEST_BYTES,
            ready,
            wr_id,
            CompletionKind::AtomicDone { old: 0 },
        )?;
        let req_deliver = state.order_deliver(req.deliver);
        state.advance_floors(req.injected, req_deliver);
        let target = sw.nic(qp.peer)?;
        let old = serve(&target)?;
        let resp = self.transfer_checked(
            sw,
            state,
            qp.peer,
            self.node,
            8,
            req_deliver,
            wr_id,
            CompletionKind::AtomicDone { old: 0 },
        )?;
        local.mr.write_u64(local.offset, old);
        self.counters.atomics.fetch_add(1, Ordering::Relaxed);
        if signaled {
            self.send_cq.push(Completion {
                wr_id,
                kind: CompletionKind::AtomicDone { old },
                ts: resp.deliver,
                status: WcStatus::Success,
            })?;
        }
        Ok(old)
    }

    /// Wire reservation with the verbs failure model: when the transfer is
    /// rejected because the peer is dead or the path partitioned, transition
    /// the QP to the error state, flush the failing work request as an error
    /// CQE carrying its [`WcStatus`] ([`WcStatus::RemoteDead`] for a crashed
    /// node, [`WcStatus::RetryExceeded`] for an active partition), and
    /// surface [`FabricError::PeerUnreachable`] to the poster.  The error
    /// CQE is pushed even for unsignaled work requests (flush semantics);
    /// its `kind` metadata is unspecified, as on real hardware.
    #[allow(clippy::too_many_arguments)]
    fn transfer_checked(
        &self,
        sw: &Arc<Switch>,
        state: &QpState,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        ready: VTime,
        wr_id: u64,
        kind: CompletionKind,
    ) -> Result<Transfer> {
        match sw.transfer(src, dst, bytes, ready) {
            Err(FabricError::PeerUnreachable { node }) => {
                state.error.store(true, Ordering::Release);
                let f = sw.faults();
                let peer = state.qp.peer;
                let status = if f.node_dead_at(peer, ready) || f.node_dead_at(self.node, ready) {
                    WcStatus::RemoteDead
                } else {
                    WcStatus::RetryExceeded
                };
                // Best effort: a full CQ must not mask the post error.
                let _ = self.send_cq.push(Completion { wr_id, kind, ts: ready, status });
                Err(FabricError::PeerUnreachable { node })
            }
            other => other,
        }
    }

    /// Take a message buffer of exactly `len` bytes — first from this
    /// thread's lock-free front cache, then from the shared free list
    /// (allocating only when both are empty). Contents are unspecified;
    /// callers overwrite the whole buffer.
    fn take_buf(&self, len: usize) -> Vec<u8> {
        let mut v = BUF_FRONT
            .with(|c| c.borrow_mut().pop())
            .unwrap_or_else(|| self.buf_pool.lock().pop().unwrap_or_default());
        v.resize(len, 0);
        v
    }

    /// Return a message buffer for reuse: into the thread-local front cache
    /// while it has room (no lock at all on the send→deliver hot path),
    /// spilling to the shared bounded free list past that; oversized or
    /// excess buffers go back to the allocator.
    fn give_buf(&self, mut v: Vec<u8>) {
        if v.capacity() == 0 || v.capacity() > BUF_POOL_MAX_BYTES {
            return;
        }
        v.clear();
        let cached = BUF_FRONT.with(|c| {
            let mut front = c.borrow_mut();
            if front.len() < BUF_FRONT_CAP {
                front.push(std::mem::take(&mut v));
                true
            } else {
                false
            }
        });
        if cached {
            return;
        }
        let mut pool = self.buf_pool.lock();
        if pool.len() < BUF_POOL_CAP {
            pool.push(v);
        }
    }

    /// A local slice must name memory registered on *this* node.
    fn check_local(&self, s: &MrSlice) -> Result<()> {
        if s.mr.node() != self.node {
            return Err(FabricError::InvalidLkey { lkey: s.mr.lkey() });
        }
        Ok(())
    }

    // ---- target-side entry points (called by the initiating thread) ----

    fn deliver_send(&self, src: NodeId, data: Vec<u8>, imm: Option<u64>, ts: VTime) -> Result<()> {
        let mut rq = self.rq.lock();
        if let Some(recv) = rq.posted.pop_front() {
            drop(rq);
            self.complete_recv(recv, PendingSend { src, data, imm, ts })
        } else {
            if rq.pending.len() >= self.pending_send_cap {
                return Err(FabricError::ReceiverNotReady { node: self.node });
            }
            rq.pending.push_back(PendingSend { src, data, imm, ts });
            Ok(())
        }
    }

    fn complete_recv(&self, recv: RecvWr, p: PendingSend) -> Result<()> {
        if recv.local.len < p.data.len() {
            return Err(FabricError::LengthMismatch {
                local: recv.local.len,
                remote: p.data.len(),
            });
        }
        recv.local.mr.write_at(recv.local.offset, &p.data);
        self.counters.recvs_matched.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_rx.fetch_add(p.data.len() as u64, Ordering::Relaxed);
        let len = p.data.len();
        self.give_buf(p.data);
        self.recv_cq.push(Completion {
            wr_id: recv.wr_id,
            kind: CompletionKind::RecvDone { src: p.src, len, imm: p.imm },
            ts: p.ts,
            status: WcStatus::Success,
        })
    }

    fn apply_write(
        &self,
        src: NodeId,
        data: &[u8],
        remote: RemoteSlice,
        imm: Option<u64>,
        ts: VTime,
    ) -> Result<()> {
        let (mr, off) =
            self.mrs.resolve(remote.addr, remote.rkey, remote.len, Access::REMOTE_WRITE)?;
        mr.write_at(off, data);
        self.counters.bytes_rx.fetch_add(data.len() as u64, Ordering::Relaxed);
        if let Some(imm) = imm {
            self.recv_cq.push(Completion {
                wr_id: 0,
                kind: CompletionKind::ImmDone { src, len: data.len(), imm },
                ts,
                status: WcStatus::Success,
            })?;
        }
        Ok(())
    }

    fn serve_read(&self, remote: RemoteSlice) -> Result<Vec<u8>> {
        let (mr, off) =
            self.mrs.resolve(remote.addr, remote.rkey, remote.len, Access::REMOTE_READ)?;
        let mut data = self.take_buf(remote.len);
        mr.read_at(off, &mut data);
        Ok(data)
    }

    fn serve_atomic(
        &self,
        remote: RemoteSlice,
        op: impl FnOnce(&MemoryRegion, usize) -> u64,
    ) -> Result<u64> {
        if remote.len != 8 || !remote.addr.is_multiple_of(8) {
            return Err(FabricError::BadAtomicTarget { addr: remote.addr, len: remote.len });
        }
        let (mr, off) = self.mrs.resolve(remote.addr, remote.rkey, 8, Access::REMOTE_ATOMIC)?;
        Ok(op(&mr, off))
    }

    /// Zero all per-QP virtual-time ordering floors (benchmark repetitions;
    /// called by [`crate::Switch::reset_time`]).
    pub(crate) fn reset_flow_floors(&self) {
        for st in self.qps.read().values() {
            st.depart_floor.store(0, Ordering::Release);
            st.deliver_floor.store(0, Ordering::Release);
        }
    }

    /// Snapshot of the operation counters.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            sends: self.counters.sends.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            reads: self.counters.reads.load(Ordering::Relaxed),
            atomics: self.counters.atomics.load(Ordering::Relaxed),
            recvs_matched: self.counters.recvs_matched.load(Ordering::Relaxed),
            bytes_tx: self.counters.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.counters.bytes_rx.load(Ordering::Relaxed),
        }
    }
}

/// Apply a delivery-time stamp to an outgoing payload (see
/// [`SendWr::stamp_deliver_at`]).
fn stamp(data: &mut [u8], at: Option<usize>, deliver: VTime) -> Result<()> {
    if let Some(off) = at {
        if off + 8 > data.len() {
            return Err(FabricError::OutOfBounds {
                addr: off as u64,
                len: 8,
                region_base: 0,
                region_len: data.len(),
            });
        }
        data[off..off + 8].copy_from_slice(&deliver.as_nanos().to_le_bytes());
    }
    Ok(())
}

/// Apply every stamp a work request carries: the primary offset plus the
/// per-frame offsets of a doorbell-batched post.
fn stamp_all(data: &mut [u8], wr: &SendWr, deliver: VTime) -> Result<()> {
    stamp(data, wr.stamp_deliver_at, deliver)?;
    for &off in &wr.stamp_deliver_also {
        stamp(data, Some(off), deliver)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkModel;
    use crate::mr::DEFAULT_REG_LIMIT;

    fn two_nodes(model: NetworkModel) -> (Arc<Switch>, Arc<Nic>, Arc<Nic>) {
        let sw = Arc::new(Switch::new(model));
        let a = Nic::attach_new(&sw, DEFAULT_REG_LIMIT);
        let b = Nic::attach_new(&sw, DEFAULT_REG_LIMIT);
        (sw, a, b)
    }

    #[test]
    fn rdma_write_moves_bytes_and_completes() {
        let (_sw, a, b) = two_nodes(NetworkModel::ib_fdr());
        let src = a.register(64, Access::ALL).unwrap();
        let dst = b.register(64, Access::ALL).unwrap();
        src.write_at(0, b"one-sided put!!!");
        let qp = a.create_qp(1).unwrap();
        let wr = SendWr::new(
            7,
            WrOp::Write {
                local: MrSlice::new(&src, 0, 16),
                remote: RemoteSlice::from_key(&dst.remote_key(), 0, 16),
                imm: None,
            },
        );
        a.post_send(qp, wr, VTime(0)).unwrap();
        assert_eq!(dst.to_vec(0, 16), b"one-sided put!!!");
        let c = a.poll_send_cq().unwrap();
        assert_eq!(c.wr_id, 7);
        assert_eq!(c.kind, CompletionKind::WriteDone);
        assert!(c.ts > VTime(0));
        // One-sided: the target CQ saw nothing.
        assert!(b.poll_recv_cq().is_none());
        assert_eq!(a.counters().writes, 1);
        assert_eq!(b.counters().bytes_rx, 16);
    }

    #[test]
    fn write_with_imm_notifies_target() {
        let (_sw, a, b) = two_nodes(NetworkModel::ib_fdr());
        let src = a.register(8, Access::ALL).unwrap();
        let dst = b.register(8, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        let wr = SendWr::new(
            1,
            WrOp::Write {
                local: MrSlice::whole(&src),
                remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                imm: Some(0xfeed),
            },
        );
        a.post_send(qp, wr, VTime(0)).unwrap();
        let c = b.poll_recv_cq().unwrap();
        assert_eq!(c.kind, CompletionKind::ImmDone { src: 0, len: 8, imm: 0xfeed });
    }

    #[test]
    fn rdma_read_pulls_remote_bytes() {
        let (sw, a, b) = two_nodes(NetworkModel::ib_fdr());
        let dst = a.register(32, Access::ALL).unwrap();
        let src = b.register(32, Access::ALL).unwrap();
        src.write_at(0, &[9u8; 32]);
        let qp = a.create_qp(1).unwrap();
        a.post_send(
            qp,
            SendWr::new(
                2,
                WrOp::Read {
                    local: MrSlice::whole(&dst),
                    remote: RemoteSlice::from_key(&src.remote_key(), 0, 32),
                },
            ),
            VTime(0),
        )
        .unwrap();
        assert_eq!(dst.to_vec(0, 32), vec![9u8; 32]);
        let c = a.poll_send_cq().unwrap();
        assert_eq!(c.kind, CompletionKind::ReadDone);
        // A read is a round trip: strictly more than one-way latency.
        assert!(c.ts.as_nanos() > sw.model().latency_ns);
    }

    #[test]
    fn post_send_many_charges_one_doorbell() {
        // k Reads through one doorbell: the per-post overhead is charged
        // once, so the last completion lands strictly earlier than k
        // individual posts would, while every read's data still arrives.
        let (sw, a, b) = two_nodes(NetworkModel::ib_fdr());
        let dst = a.register(64, Access::ALL).unwrap();
        let src = b.register(64, Access::ALL).unwrap();
        src.write_at(0, &[7u8; 64]);
        let qp = a.create_qp(1).unwrap();
        let mk = |i: usize, signaled: bool| SendWr {
            wr_id: if signaled { 99 } else { 0 },
            op: WrOp::Read {
                local: MrSlice::new(&dst, i * 8, 8),
                remote: RemoteSlice::from_key(&src.remote_key(), i * 8, 8),
            },
            signaled,
            stamp_deliver_at: None,
            stamp_deliver_also: Vec::new(),
        };
        let wrs: Vec<SendWr> = (0..8).map(|i| mk(i, i == 7)).collect();
        a.post_send_many(qp, &wrs, VTime(0)).unwrap();
        assert_eq!(dst.to_vec(0, 64), vec![7u8; 64]);
        // Exactly one CQE: the signaled tail wr.
        let c = a.poll_send_cq().expect("tail CQE");
        assert_eq!(c.wr_id, 99);
        assert!(a.poll_send_cq().is_none());
        assert_eq!(a.counters().reads, 8);

        // Same 8 reads posted individually: the batched tail completes no
        // later in virtual time (back-to-back posts absorb the overhead in
        // the depart floor either way — the doorbell's saving is the
        // *wall-clock* post path: one QP lookup and one CQE for the run).
        let (_sw2, a2, b2) = {
            let sw2 = Arc::new(Switch::new(NetworkModel::ib_fdr()));
            let x = Nic::attach_new(&sw2, DEFAULT_REG_LIMIT);
            let y = Nic::attach_new(&sw2, DEFAULT_REG_LIMIT);
            (sw2, x, y)
        };
        let dst2 = a2.register(64, Access::ALL).unwrap();
        let src2 = b2.register(64, Access::ALL).unwrap();
        let qp2 = a2.create_qp(1).unwrap();
        let mut last = VTime(0);
        for i in 0..8 {
            let wr = SendWr::new(
                i as u64 + 1,
                WrOp::Read {
                    local: MrSlice::new(&dst2, i * 8, 8),
                    remote: RemoteSlice::from_key(&src2.remote_key(), i * 8, 8),
                },
            );
            a2.post_send(qp2, wr, VTime(0)).unwrap();
        }
        while let Some(c2) = a2.poll_send_cq() {
            last = last.max(c2.ts);
        }
        assert!(
            c.ts <= last,
            "doorbell batch tail {:?} must not lag {} serial posts finishing at {:?}",
            c.ts,
            8,
            last
        );
        assert!(sw.model().send_overhead_ns > 0, "model must charge a posting overhead");
    }

    #[test]
    fn poll_cq_into_appends_without_alloc_semantics() {
        let (_sw, a, b) = two_nodes(NetworkModel::ideal());
        let src = a.register(8, Access::ALL).unwrap();
        let dst = b.register(8, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        for i in 0..3 {
            let wr = SendWr::new(
                i + 1,
                WrOp::Write {
                    local: MrSlice::whole(&src),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                    imm: None,
                },
            );
            a.post_send(qp, wr, VTime(0)).unwrap();
        }
        let mut out = Vec::with_capacity(8);
        assert_eq!(a.poll_send_cq_into(2, &mut out), 2);
        assert_eq!(a.poll_send_cq_into(8, &mut out), 1);
        assert_eq!(a.poll_send_cq_into(8, &mut out), 0);
        let ids: Vec<u64> = out.iter().map(|c| c.wr_id).collect();
        assert_eq!(ids, vec![1, 2, 3], "drained in order, appended");
    }

    #[test]
    fn send_recv_two_sided() {
        let (_sw, a, b) = two_nodes(NetworkModel::ib_fdr());
        let sbuf = a.register(16, Access::ALL).unwrap();
        let rbuf = b.register(16, Access::ALL).unwrap();
        sbuf.write_at(0, b"hello two-sided!");
        b.post_recv(RecvWr { wr_id: 42, local: MrSlice::whole(&rbuf) }).unwrap();
        let qp = a.create_qp(1).unwrap();
        a.post_send(
            qp,
            SendWr::new(3, WrOp::Send { local: MrSlice::whole(&sbuf), imm: Some(5) }),
            VTime(0),
        )
        .unwrap();
        let c = b.poll_recv_cq().unwrap();
        assert_eq!(c.wr_id, 42);
        assert_eq!(c.kind, CompletionKind::RecvDone { src: 0, len: 16, imm: Some(5) });
        assert_eq!(rbuf.to_vec(0, 16), b"hello two-sided!");
        assert_eq!(a.poll_send_cq().unwrap().kind, CompletionKind::SendDone);
    }

    #[test]
    fn unexpected_send_parks_until_recv_posted() {
        let (_sw, a, b) = two_nodes(NetworkModel::ideal());
        let sbuf = a.register(8, Access::ALL).unwrap();
        sbuf.write_u64(0, 77);
        let qp = a.create_qp(1).unwrap();
        a.post_send(
            qp,
            SendWr::new(1, WrOp::Send { local: MrSlice::whole(&sbuf), imm: None }),
            VTime(0),
        )
        .unwrap();
        assert!(b.poll_recv_cq().is_none());
        let rbuf = b.register(8, Access::ALL).unwrap();
        b.post_recv(RecvWr { wr_id: 9, local: MrSlice::whole(&rbuf) }).unwrap();
        let c = b.poll_recv_cq().unwrap();
        assert_eq!(c.wr_id, 9);
        assert_eq!(rbuf.read_u64(0), 77);
    }

    #[test]
    fn remote_atomics() {
        let (_sw, a, b) = two_nodes(NetworkModel::ideal());
        let res = a.register(8, Access::ALL).unwrap();
        let tgt = b.register(64, Access::ALL).unwrap();
        tgt.write_u64(8, 100);
        let qp = a.create_qp(1).unwrap();
        let remote = RemoteSlice::from_key(&tgt.remote_key(), 8, 8);
        a.post_send(
            qp,
            SendWr::new(1, WrOp::FetchAdd { local: MrSlice::whole(&res), remote, add: 5 }),
            VTime(0),
        )
        .unwrap();
        assert_eq!(res.read_u64(0), 100, "fetched old value");
        assert_eq!(tgt.read_u64(8), 105);
        assert_eq!(a.poll_send_cq().unwrap().kind, CompletionKind::AtomicDone { old: 100 });
        a.post_send(
            qp,
            SendWr::new(
                2,
                WrOp::CompareSwap { local: MrSlice::whole(&res), remote, compare: 105, swap: 1 },
            ),
            VTime(0),
        )
        .unwrap();
        assert_eq!(tgt.read_u64(8), 1);
        // Misaligned atomic target is rejected.
        let bad = RemoteSlice::from_key(&tgt.remote_key(), 4, 8);
        let err = a.post_send(
            qp,
            SendWr::new(3, WrOp::FetchAdd { local: MrSlice::whole(&res), remote: bad, add: 1 }),
            VTime(0),
        );
        assert!(matches!(err, Err(FabricError::BadAtomicTarget { .. })));
    }

    #[test]
    fn protection_violations_surface_to_initiator() {
        let (_sw, a, b) = two_nodes(NetworkModel::ideal());
        let src = a.register(16, Access::ALL).unwrap();
        let dst = b.register(16, Access::REMOTE_READ.union(Access::LOCAL)).unwrap();
        let qp = a.create_qp(1).unwrap();
        // Write to a read-only region.
        let err = a.post_send(
            qp,
            SendWr::new(
                1,
                WrOp::Write {
                    local: MrSlice::new(&src, 0, 16),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 16),
                    imm: None,
                },
            ),
            VTime(0),
        );
        assert!(matches!(err, Err(FabricError::AccessDenied { .. })));
        // Length mismatch.
        let err = a.post_send(
            qp,
            SendWr::new(
                2,
                WrOp::Write {
                    local: MrSlice::new(&src, 0, 8),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 16),
                    imm: None,
                },
            ),
            VTime(0),
        );
        assert!(matches!(err, Err(FabricError::LengthMismatch { .. })));
        // Using another node's region as a local slice.
        let err = a.post_send(
            qp,
            SendWr::new(3, WrOp::Send { local: MrSlice::whole(&dst), imm: None }),
            VTime(0),
        );
        assert!(matches!(err, Err(FabricError::InvalidLkey { .. })));
    }

    #[test]
    fn qp_lifecycle() {
        let (_sw, a, _b) = two_nodes(NetworkModel::ideal());
        let qp = a.create_qp(1).unwrap();
        assert!(a.create_qp(5).is_err(), "peer must exist");
        a.destroy_qp(qp).unwrap();
        let src = a.register(8, Access::ALL).unwrap();
        let err = a.post_send(
            qp,
            SendWr::new(1, WrOp::Send { local: MrSlice::whole(&src), imm: None }),
            VTime(0),
        );
        assert!(matches!(err, Err(FabricError::NoSuchQp { .. })));
        assert!(a.destroy_qp(qp).is_err());
    }

    #[test]
    fn unsignaled_ops_produce_no_local_completion() {
        let (_sw, a, b) = two_nodes(NetworkModel::ideal());
        let src = a.register(8, Access::ALL).unwrap();
        let dst = b.register(8, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        a.post_send(
            qp,
            SendWr::unsignaled(WrOp::Write {
                local: MrSlice::whole(&src),
                remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                imm: None,
            }),
            VTime(0),
        )
        .unwrap();
        assert!(a.poll_send_cq().is_none());
    }

    #[test]
    fn loopback_qp_works() {
        let (_sw, a, _b) = two_nodes(NetworkModel::ib_fdr());
        let src = a.register(8, Access::ALL).unwrap();
        let dst = a.register(8, Access::ALL).unwrap();
        src.write_u64(0, 314);
        let qp = a.create_qp(0).unwrap();
        a.post_send(
            qp,
            SendWr::new(
                1,
                WrOp::Write {
                    local: MrSlice::whole(&src),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                    imm: None,
                },
            ),
            VTime(0),
        )
        .unwrap();
        assert_eq!(dst.read_u64(0), 314);
    }

    #[test]
    fn pending_send_cap_surfaces_rnr() {
        let sw = Arc::new(Switch::new(NetworkModel::ideal()));
        let a = Nic::attach_with_config(&sw, NicConfig::default());
        let b =
            Nic::attach_with_config(&sw, NicConfig { pending_send_cap: 4, ..NicConfig::default() });
        let _ = &b;
        let src = a.register(8, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        let send = |id| {
            a.post_send(
                qp,
                SendWr::new(id, WrOp::Send { local: MrSlice::whole(&src), imm: None }),
                VTime(0),
            )
        };
        for i in 0..4 {
            send(i).unwrap();
        }
        assert!(matches!(send(5), Err(FabricError::ReceiverNotReady { node: 1 })));
    }

    #[test]
    fn cq_overflow_surfaces_to_poster() {
        let sw = Arc::new(Switch::new(NetworkModel::ideal()));
        let a = Nic::attach_with_config(&sw, NicConfig { cq_depth: 2, ..NicConfig::default() });
        let b = Nic::attach_with_config(&sw, NicConfig::default());
        let _ = &b;
        let src = a.register(8, Access::ALL).unwrap();
        let dst = b.register(8, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        let put = |id| {
            a.post_send(
                qp,
                SendWr::new(
                    id,
                    WrOp::Write {
                        local: MrSlice::whole(&src),
                        remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                        imm: None,
                    },
                ),
                VTime(0),
            )
        };
        put(1).unwrap();
        put(2).unwrap();
        assert!(matches!(put(3), Err(FabricError::CqOverflow)));
        // Polling drains the CQ and posting works again.
        assert!(a.poll_send_cq().is_some());
        put(3).unwrap();
    }

    #[test]
    fn qp_flow_stays_ordered_despite_calendar_holes() {
        // Create a hole: another flow on node 0's egress books far in the
        // virtual future. A big write then a small write on ONE QP must
        // still deliver in order — the small one may not jump into the hole.
        let m = NetworkModel::ib_fdr();
        let (sw, a, b) = two_nodes(m);
        let other = a.create_qp(1).unwrap();
        let src = a.register(1 << 20, Access::ALL).unwrap();
        let dst = b.register(1 << 20, Access::ALL).unwrap();
        // Future booking from a "skewed" op on a different QP.
        a.post_send(
            other,
            SendWr::new(
                9,
                WrOp::Write {
                    local: MrSlice::new(&src, 0, 8),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                    imm: None,
                },
            ),
            VTime(1_000_000),
        )
        .unwrap();
        let qp = a.create_qp(1).unwrap();
        let big = 1 << 19; // ~75us of serialization
        a.post_send(
            qp,
            SendWr::new(
                1,
                WrOp::Write {
                    local: MrSlice::new(&src, 0, big),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, big),
                    imm: Some(1),
                },
            ),
            VTime(0),
        )
        .unwrap();
        a.post_send(
            qp,
            SendWr::new(
                2,
                WrOp::Write {
                    local: MrSlice::new(&src, 0, 8),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 8, 8),
                    imm: Some(2),
                },
            ),
            VTime(0),
        )
        .unwrap();
        let c1 = b.poll_recv_cq().unwrap();
        let c2 = b.poll_recv_cq().unwrap();
        assert!(c1.kind == CompletionKind::ImmDone { src: 0, len: big, imm: 1 });
        assert!(
            c2.ts >= c1.ts,
            "same-QP delivery reordered in virtual time: {} then {}",
            c1.ts,
            c2.ts
        );
        let _ = sw;
    }

    #[test]
    fn ping_pong_latency_matches_model() {
        // A full ping-pong over the raw fabric: the virtual round-trip must
        // equal twice the analytic one-way time for gap-limited messages.
        let m = NetworkModel::ib_fdr();
        let (_sw, a, b) = two_nodes(m);
        let abuf = a.register(8, Access::ALL).unwrap();
        let bbuf = b.register(8, Access::ALL).unwrap();
        let qp_ab = a.create_qp(1).unwrap();
        let qp_ba = b.create_qp(0).unwrap();

        // a writes to b at t=0.
        a.post_send(
            qp_ab,
            SendWr::new(
                1,
                WrOp::Write {
                    local: MrSlice::whole(&abuf),
                    remote: RemoteSlice::from_key(&bbuf.remote_key(), 0, 8),
                    imm: Some(1),
                },
            ),
            VTime(0),
        )
        .unwrap();
        let arrive_b = b.poll_recv_cq().unwrap().ts;
        // b responds as soon as it (virtually) saw the ping.
        b.post_send(
            qp_ba,
            SendWr::new(
                2,
                WrOp::Write {
                    local: MrSlice::whole(&bbuf),
                    remote: RemoteSlice::from_key(&abuf.remote_key(), 0, 8),
                    imm: Some(2),
                },
            ),
            arrive_b,
        )
        .unwrap();
        let rtt = a.poll_recv_cq().unwrap().ts;
        let oneway = m.send_overhead_ns + m.latency_ns + m.msg_gap_ns;
        assert_eq!(rtt.as_nanos(), 2 * oneway);
    }

    #[test]
    fn dead_peer_flushes_wr_and_errors_the_qp() {
        let (sw, a, b) = two_nodes(NetworkModel::ib_fdr());
        let src = a.register(64, Access::ALL).unwrap();
        let dst = b.register(64, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        sw.faults().kill_node_at(1, VTime(10_000));
        let put = |id, now| {
            a.post_send(
                qp,
                SendWr::new(
                    id,
                    WrOp::Write {
                        local: MrSlice::new(&src, 0, 16),
                        remote: RemoteSlice::from_key(&dst.remote_key(), 0, 16),
                        imm: None,
                    },
                ),
                now,
            )
        };
        // Before the kill instant the path is healthy.
        put(1, VTime(0)).unwrap();
        assert!(a.poll_send_cq().unwrap().status.is_ok());
        assert!(a.peer_status(qp, VTime(0)).is_none());
        // At/after the kill, the post fails, the WR flushes as an error CQE,
        // and the QP enters the error state.
        let err = put(2, VTime(20_000));
        assert!(matches!(err, Err(FabricError::PeerUnreachable { node: 1 })));
        let c = a.poll_send_cq().unwrap();
        assert_eq!(c.wr_id, 2);
        assert_eq!(c.status, WcStatus::RemoteDead);
        assert!(a.qp_errored(qp));
        assert_eq!(a.peer_status(qp, VTime(20_000)), Some(WcStatus::RemoteDead));
        // New posts are rejected fast, with no further CQEs.
        assert!(matches!(put(3, VTime(30_000)), Err(FabricError::PeerUnreachable { node: 1 })));
        assert!(a.poll_send_cq().is_none());
        // The destination region never saw the failed writes.
        assert_eq!(sw.nic(1).unwrap().counters().bytes_rx, 16);
    }

    #[test]
    fn partition_window_heals_and_qp_resets() {
        use crate::fault::Window;
        let (sw, a, b) = two_nodes(NetworkModel::ib_fdr());
        let src = a.register(8, Access::ALL).unwrap();
        let dst = b.register(8, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        sw.faults().partition_during(0, 1, Window::new(VTime(1_000), VTime(50_000)));
        let put = |id, now| {
            a.post_send(
                qp,
                SendWr::new(
                    id,
                    WrOp::Write {
                        local: MrSlice::whole(&src),
                        remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                        imm: None,
                    },
                ),
                now,
            )
        };
        // Inside the window: RetryExceeded flush, QP errored.
        assert!(matches!(put(1, VTime(2_000)), Err(FabricError::PeerUnreachable { node: 1 })));
        assert_eq!(a.poll_send_cq().unwrap().status, WcStatus::RetryExceeded);
        assert_eq!(a.peer_status(qp, VTime(2_000)), Some(WcStatus::RetryExceeded));
        // The QP stays errored even after the window expires...
        assert!(matches!(put(2, VTime(60_000)), Err(FabricError::PeerUnreachable { .. })));
        // ...until reset; peer_status reports the heal so callers know when
        // a reconnect probe can succeed.
        assert!(a.peer_status(qp, VTime(60_000)).is_none());
        a.reset_qp(qp).unwrap();
        assert!(!a.qp_errored(qp));
        put(3, VTime(60_000)).unwrap();
        assert_eq!(a.poll_send_cq().unwrap().status, WcStatus::Success);
    }

    #[test]
    fn dead_source_fails_loopback_and_read_request() {
        let (sw, a, b) = two_nodes(NetworkModel::ib_fdr());
        let buf = a.register(32, Access::ALL).unwrap();
        let remote_buf = b.register(32, Access::ALL).unwrap();
        sw.faults().kill_node_at(0, VTime(0));
        // Loopback on the dead node itself fails.
        let lo = a.create_qp(0).unwrap();
        let err = a.post_send(
            lo,
            SendWr::new(
                1,
                WrOp::Write {
                    local: MrSlice::new(&buf, 0, 8),
                    remote: RemoteSlice::from_key(&buf.remote_key(), 8, 8),
                    imm: None,
                },
            ),
            VTime(0),
        );
        assert!(matches!(err, Err(FabricError::PeerUnreachable { node: 0 })));
        assert_eq!(a.poll_send_cq().unwrap().status, WcStatus::RemoteDead);
        // Reads fail on the outbound request leg.
        let qp = b.create_qp(0).unwrap();
        let err = b.post_send(
            qp,
            SendWr::new(
                2,
                WrOp::Read {
                    local: MrSlice::whole(&remote_buf),
                    remote: RemoteSlice::from_key(&buf.remote_key(), 0, 32),
                },
            ),
            VTime(0),
        );
        assert!(matches!(err, Err(FabricError::PeerUnreachable { node: 0 })));
        assert_eq!(b.poll_send_cq().unwrap().status, WcStatus::RemoteDead);
    }
}
