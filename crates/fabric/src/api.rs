//! The curated, backend-neutral fabric API surface.
//!
//! Everything a fabric *consumer* (the middleware, benches, tests) needs is
//! re-exported here in one coherent namespace: work-request and completion
//! types, memory registration, the backend seam, clocks and errors. Nothing
//! in this module is specific to the simulated NIC or to the sockets
//! transport — backend-specific construction lives in [`crate::nic`],
//! [`crate::topology`] and [`crate::sock`].
//!
//! ```
//! use photon_fabric::api::{Access, FabricBackend, MrSlice, SendWr, VTime, WrOp};
//! ```

pub use crate::backend::FabricBackend;
pub use crate::clock::{VClock, VTime};
pub use crate::error::{FabricError, Result};
pub use crate::mr::{Access, MemoryRegion, MrTable, RemoteKey};
pub use crate::verbs::{
    Completion, CompletionKind, Cq, MrSlice, Qp, RecvWr, RemoteSlice, SendWr, WcStatus, WrOp,
};
pub use crate::NodeId;
