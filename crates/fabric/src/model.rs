//! LogGP-style network model.
//!
//! Each interconnect is parameterized by the classic LogGP tuple
//! (Alexandrov et al.): wire latency *L*, CPU injection overhead *o*,
//! inter-message gap *g* (reciprocal of the NIC message rate), and per-byte
//! gap *G* (reciprocal of bandwidth).  The presets below are calibrated to
//! the interconnect classes the Photon paper's era evaluated on: FDR
//! InfiniBand, Cray Gemini (uGNI), and 10 GbE sockets.
//!
//! The numbers do not have to match the authors' testbed exactly — the goal
//! is that protocol comparisons over the model reproduce the published
//! *shapes*: sub-microsecond small-message floors on IB, bandwidth saturation
//! around the rendezvous threshold, message-rate ceilings set by `g`.

/// A LogGP network model plus memory-registration cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// `L`: one-way wire latency in nanoseconds.
    pub latency_ns: u64,
    /// `o`: CPU/NIC injection overhead per operation, nanoseconds.
    pub send_overhead_ns: u64,
    /// `g`: minimum gap between message injections, nanoseconds
    /// (`1e9 / g` is the peak message rate).
    pub msg_gap_ns: u64,
    /// `G`: per-byte gap in **picoseconds** (`1e12 / G` is the bandwidth in
    /// bytes/second). Picoseconds keep sub-ns/byte rates in integer math.
    pub byte_time_ps: u64,
    /// Fixed cost of a memory registration (pinning setup), nanoseconds.
    pub reg_base_ns: u64,
    /// Incremental registration cost per 4 KiB page, nanoseconds.
    pub reg_page_ns: u64,
}

/// Size of the page used for registration cost accounting.
pub const PAGE_SIZE: usize = 4096;

impl NetworkModel {
    /// FDR InfiniBand (56 Gb/s): ~0.7 µs latency, ~150 Mmsg/s ceiling.
    pub fn ib_fdr() -> Self {
        NetworkModel {
            latency_ns: 700,
            send_overhead_ns: 80,
            msg_gap_ns: 25,
            byte_time_ps: 143, // 56 Gb/s = 7.0 GB/s = 142.9 ps/B
            reg_base_ns: 1_500,
            reg_page_ns: 120,
        }
    }

    /// Cray Gemini (uGNI): higher latency, ~38 Gb/s effective.
    pub fn cray_gemini() -> Self {
        NetworkModel {
            latency_ns: 1_300,
            send_overhead_ns: 150,
            msg_gap_ns: 60,
            byte_time_ps: 211, // ~4.75 GB/s
            reg_base_ns: 2_500,
            reg_page_ns: 180,
        }
    }

    /// 10 GbE with a sockets-like stack: tens of µs latency.
    pub fn ethernet_10g() -> Self {
        NetworkModel {
            latency_ns: 15_000,
            send_overhead_ns: 2_000,
            msg_gap_ns: 600,
            byte_time_ps: 800, // 1.25 GB/s
            reg_base_ns: 0,    // no pinning on the sockets path
            reg_page_ns: 0,
        }
    }

    /// An idealized zero-cost network; useful for isolating software
    /// overheads in wall-clock microbenchmarks.
    pub fn ideal() -> Self {
        NetworkModel {
            latency_ns: 0,
            send_overhead_ns: 0,
            msg_gap_ns: 0,
            byte_time_ps: 0,
            reg_base_ns: 0,
            reg_page_ns: 0,
        }
    }

    /// Serialization time for `bytes` on the wire, nanoseconds (rounded up).
    #[inline]
    pub fn serialize_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.byte_time_ps).div_ceil(1000)
    }

    /// Time the egress port is held by one message of `bytes`:
    /// `max(g, bytes * G)` — small messages are limited by message rate,
    /// large ones by bandwidth.
    #[inline]
    pub fn egress_hold_ns(&self, bytes: usize) -> u64 {
        self.msg_gap_ns.max(self.serialize_ns(bytes))
    }

    /// Analytic one-way time for a single isolated message of `bytes`
    /// (`o + s + L`): used by model-validation tests and experiment E11.
    #[inline]
    pub fn oneway_ns(&self, bytes: usize) -> u64 {
        self.send_overhead_ns + self.serialize_ns(bytes) + self.latency_ns
    }

    /// Modeled cost of registering a buffer of `len` bytes.
    #[inline]
    pub fn registration_ns(&self, len: usize) -> u64 {
        let pages = len.div_ceil(PAGE_SIZE) as u64;
        self.reg_base_ns + pages * self.reg_page_ns
    }

    /// Peak bandwidth in bytes per second (`u64::MAX` for the ideal model).
    pub fn bandwidth_bytes_per_sec(&self) -> u64 {
        1_000_000_000_000u64.checked_div(self.byte_time_ps).unwrap_or(u64::MAX)
    }
}

impl Default for NetworkModel {
    /// The default model is FDR InfiniBand, the Photon paper era's standard
    /// cluster interconnect.
    fn default() -> Self {
        NetworkModel::ib_fdr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_rounds_up() {
        let m = NetworkModel::ib_fdr();
        assert_eq!(m.serialize_ns(0), 0);
        // 1 byte at 143 ps/B rounds up to 1 ns.
        assert_eq!(m.serialize_ns(1), 1);
        // 1 MiB at 7 GB/s is ~150 us.
        let t = m.serialize_ns(1 << 20);
        assert!((149_000..151_000).contains(&t), "{t}");
    }

    #[test]
    fn egress_hold_small_is_gap_limited() {
        let m = NetworkModel::ib_fdr();
        assert_eq!(m.egress_hold_ns(8), m.msg_gap_ns);
        assert!(m.egress_hold_ns(1 << 20) > m.msg_gap_ns);
    }

    #[test]
    fn oneway_monotone_in_size() {
        for m in [NetworkModel::ib_fdr(), NetworkModel::cray_gemini(), NetworkModel::ethernet_10g()]
        {
            let mut prev = 0;
            for sz in [0usize, 8, 64, 1024, 65536, 1 << 20] {
                let t = m.oneway_ns(sz);
                assert!(t >= prev, "one-way time must be monotone in size");
                prev = t;
            }
        }
    }

    #[test]
    fn ideal_is_free() {
        let m = NetworkModel::ideal();
        assert_eq!(m.oneway_ns(1 << 30), 0);
        assert_eq!(m.registration_ns(1 << 30), 0);
        assert_eq!(m.bandwidth_bytes_per_sec(), u64::MAX);
    }

    #[test]
    fn registration_cost_scales_with_pages() {
        let m = NetworkModel::ib_fdr();
        let one_page = m.registration_ns(1);
        assert_eq!(one_page, m.reg_base_ns + m.reg_page_ns);
        assert_eq!(m.registration_ns(PAGE_SIZE), one_page);
        assert_eq!(m.registration_ns(PAGE_SIZE + 1), m.reg_base_ns + 2 * m.reg_page_ns);
    }

    #[test]
    fn preset_ordering_sane() {
        // IB beats Gemini beats Ethernet on latency and bandwidth.
        let ib = NetworkModel::ib_fdr();
        let gm = NetworkModel::cray_gemini();
        let et = NetworkModel::ethernet_10g();
        assert!(ib.latency_ns < gm.latency_ns && gm.latency_ns < et.latency_ns);
        assert!(
            ib.bandwidth_bytes_per_sec() > gm.bandwidth_bytes_per_sec()
                && gm.bandwidth_bytes_per_sec() > et.bandwidth_bytes_per_sec()
        );
    }
}
