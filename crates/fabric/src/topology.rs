//! Cluster construction: N simulated nodes on one switch.

use crate::mr::DEFAULT_REG_LIMIT;
use crate::nic::{Nic, NicConfig};
use crate::verbs::Qp;
use crate::wire::Switch;
use crate::{NetworkModel, NodeId, Result};
use std::sync::Arc;

/// A simulated cluster: `n` nodes, each with a NIC, attached to one switch.
///
/// This is the in-process stand-in for the multi-node testbed the paper ran
/// on: "ranks" are dense node ids and any number of application threads may
/// drive each node.
#[derive(Debug, Clone)]
pub struct Cluster {
    switch: Arc<Switch>,
    nics: Vec<Arc<Nic>>,
}

impl Cluster {
    /// Build a cluster of `n` nodes over `model`.
    pub fn new(n: usize, model: NetworkModel) -> Cluster {
        Cluster::with_reg_limit(n, model, DEFAULT_REG_LIMIT)
    }

    /// Build a cluster with an explicit per-node registration limit
    /// (fault-injection hook).
    pub fn with_reg_limit(n: usize, model: NetworkModel, reg_limit_bytes: usize) -> Cluster {
        Self::with_config(n, model, NicConfig { reg_limit_bytes, ..NicConfig::default() })
    }

    /// Build a cluster with full per-NIC resource limits.
    pub fn with_config(n: usize, model: NetworkModel, cfg: NicConfig) -> Cluster {
        let switch = Arc::new(Switch::new(model));
        let nics = (0..n).map(|_| Nic::attach_with_config(&switch, cfg)).collect();
        Cluster { switch, nics }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nics.len()
    }

    /// True for a zero-node cluster.
    pub fn is_empty(&self) -> bool {
        self.nics.is_empty()
    }

    /// The shared switch (model, faults, diagnostics).
    pub fn switch(&self) -> &Arc<Switch> {
        &self.switch
    }

    /// NIC of node `i`. Panics if `i` is out of range (construction-time
    /// error, not a runtime condition).
    pub fn nic(&self, i: NodeId) -> &Arc<Nic> {
        &self.nics[i]
    }

    /// Create a connected QP pair between nodes `a` and `b`; returns
    /// `(qp_on_a, qp_on_b)`. Connections are made on demand — there is no
    /// eager all-pairs wiring (the middleware above establishes lazily).
    pub fn connect(&self, a: NodeId, b: NodeId) -> Result<(Qp, Qp)> {
        let qa = self.nics[a].create_qp(b)?;
        let qb = self.nics[b].create_qp(a)?;
        Ok((qa, qb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VTime;
    use crate::mr::Access;
    use crate::verbs::{MrSlice, RemoteSlice, SendWr, WrOp};

    #[test]
    fn cluster_builds_dense_ids() {
        let c = Cluster::new(4, NetworkModel::ideal());
        assert_eq!(c.len(), 4);
        for i in 0..4 {
            assert_eq!(c.nic(i).node(), i);
        }
        assert_eq!(c.switch().len(), 4);
    }

    #[test]
    fn connect_shapes() {
        let c = Cluster::new(3, NetworkModel::ideal());
        let (qa, qb) = c.connect(0, 2).unwrap();
        assert_eq!((qa.node, qa.peer), (0, 2));
        assert_eq!((qb.node, qb.peer), (2, 0));
        // Loopback connections are legal too.
        let (ql, _) = c.connect(1, 1).unwrap();
        assert_eq!((ql.node, ql.peer), (1, 1));
    }

    #[test]
    fn cross_node_put_via_cluster() {
        let c = Cluster::new(2, NetworkModel::ib_fdr());
        let (qa, _qb) = c.connect(0, 1).unwrap();
        let src = c.nic(0).register(8, Access::ALL).unwrap();
        let dst = c.nic(1).register(8, Access::ALL).unwrap();
        src.write_u64(0, 4242);
        c.nic(0)
            .post_send(
                qa,
                SendWr::new(
                    1,
                    WrOp::Write {
                        local: MrSlice::whole(&src),
                        remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                        imm: None,
                    },
                ),
                VTime(0),
            )
            .unwrap();
        assert_eq!(dst.read_u64(0), 4242);
    }

    #[test]
    fn many_threads_drive_distinct_nodes() {
        // One thread per node, everyone puts to the next node in a ring.
        let c = Cluster::new(8, NetworkModel::ib_fdr());
        let qps: Vec<_> = (0..8).map(|i| c.nic(i).create_qp((i + 1) % 8).unwrap()).collect();
        let regions: Vec<_> = (0..8).map(|i| c.nic(i).register(64, Access::ALL).unwrap()).collect();
        let keys: Vec<_> = regions.iter().map(|r| r.remote_key()).collect();
        std::thread::scope(|s| {
            for i in 0..8 {
                let c = &c;
                let qps = &qps;
                let keys = &keys;
                let regions = &regions;
                s.spawn(move || {
                    let next = (i + 1) % 8;
                    let src = &regions[i];
                    src.write_u64(0, i as u64);
                    c.nic(i)
                        .post_send(
                            qps[i],
                            SendWr::new(
                                1,
                                WrOp::Write {
                                    local: MrSlice::new(src, 0, 8),
                                    remote: RemoteSlice::from_key(&keys[next], 8, 8),
                                    imm: None,
                                },
                            ),
                            VTime(0),
                        )
                        .unwrap();
                });
            }
        });
        for (i, region) in regions.iter().enumerate() {
            let prev = (i + 7) % 8;
            assert_eq!(region.read_u64(8), prev as u64);
        }
    }
}
