//! The interconnect: a crossbar switch applying the LogGP model with
//! per-port serialization.
//!
//! Every node owns one full-duplex port.  A transfer reserves time on the
//! source's egress register and the destination's ingress register through
//! [`crate::clock::BusyUntil`], which is what makes concurrent flows queue
//! behind each other (incast congestion, bandwidth sharing) instead of each
//! seeing an idle network.

use crate::clock::{BusyUntil, VTime};
use crate::error::{FabricError, Result};
use crate::fault::FaultPlan;
use crate::model::NetworkModel;
use crate::nic::Nic;
use crate::NodeId;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Size on the wire of a read/atomic request packet (header-only).
pub const REQUEST_BYTES: usize = 32;

/// Optional two-level topology: nodes are grouped into pods of `pod_size`;
/// traffic between pods shares one uplink per pod whose per-byte capacity
/// is `oversubscription`× scarcer than a node port (the classic
/// oversubscribed fat-tree compromise). Intra-pod traffic sees only the
/// node ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodTopology {
    /// Nodes per pod.
    pub pod_size: usize,
    /// How many node-ports' worth of traffic contend for one uplink
    /// (1 = non-blocking, 4 = typical oversubscription).
    pub oversubscription: u64,
    /// Extra one-way latency for crossing the core, nanoseconds.
    pub core_latency_ns: u64,
}

/// Timing of one wire traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the source port began serializing the message.
    pub depart: VTime,
    /// When the source port finished (source buffer reusable).
    pub injected: VTime,
    /// When the last byte arrived at the destination.
    pub deliver: VTime,
}

#[derive(Debug, Default)]
struct Port {
    egress: BusyUntil,
    ingress: BusyUntil,
}

#[derive(Debug, Default)]
struct PodLinks {
    up: BusyUntil,
    down: BusyUntil,
}

/// The cluster-wide switch: owns the NICs, the network model, and the fault
/// plan.
#[derive(Debug)]
pub struct Switch {
    model: NetworkModel,
    nics: RwLock<Vec<Arc<Nic>>>,
    ports: RwLock<Vec<Arc<Port>>>,
    pods: RwLock<Option<(PodTopology, Vec<Arc<PodLinks>>)>>,
    faults: FaultPlan,
    packets: AtomicU64,
    bytes: AtomicU64,
}

impl Switch {
    /// A switch for a cluster using `model`.
    pub fn new(model: NetworkModel) -> Switch {
        Switch {
            model,
            nics: RwLock::new(Vec::new()),
            ports: RwLock::new(Vec::new()),
            pods: RwLock::new(None),
            faults: FaultPlan::none(),
            packets: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Install a two-level pod topology. Call before traffic flows; sizing
    /// covers the currently attached nodes.
    pub fn set_topology(&self, topo: PodTopology) {
        assert!(topo.pod_size >= 1 && topo.oversubscription >= 1);
        let n = self.nics.read().len();
        let pods = n.div_ceil(topo.pod_size.max(1));
        *self.pods.write() =
            Some((topo, (0..pods).map(|_| Arc::new(PodLinks::default())).collect()));
    }

    /// The network model in force.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// The mutable fault plan (perturbations can be added mid-run).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Attach a NIC built by `f` (which receives the assigned node id).
    /// Called by NIC/cluster construction; attachment order defines ids.
    pub(crate) fn attach_with(&self, f: impl FnOnce(NodeId) -> Arc<Nic>) -> Arc<Nic> {
        let mut nics = self.nics.write();
        let id = nics.len();
        let nic = f(id);
        nics.push(Arc::clone(&nic));
        self.ports.write().push(Arc::new(Port::default()));
        nic
    }

    /// Number of attached nodes.
    pub fn len(&self) -> usize {
        self.nics.read().len()
    }

    /// True when no nodes are attached.
    pub fn is_empty(&self) -> bool {
        self.nics.read().is_empty()
    }

    /// Look up a NIC by node id.
    pub fn nic(&self, node: NodeId) -> Result<Arc<Nic>> {
        self.nics.read().get(node).cloned().ok_or(FabricError::NoSuchNode { node })
    }

    /// Reserve wire time for `bytes` from `src` to `dst`, with the sender
    /// ready at `ready` (already including injection overhead `o`).
    ///
    /// Loopback (`src == dst`) pays serialization but no wire latency, like
    /// NIC-level loopback on real hardware.
    pub fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        ready: VTime,
    ) -> Result<Transfer> {
        let (sp, dp) = {
            let ports = self.ports.read();
            let sp = ports.get(src).cloned().ok_or(FabricError::NoSuchNode { node: src })?;
            let dp = ports.get(dst).cloned().ok_or(FabricError::NoSuchNode { node: dst })?;
            (sp, dp)
        };
        // Availability faults reject the packet *before* any port state is
        // reserved, so a failed transfer leaves the calendar untouched.
        // Evaluated at `ready` (the departure lower bound), which keeps
        // windowed partitions deterministic; loopback still fails when the
        // node itself is dead.
        if self.faults.has_disruptions() {
            if let Some(node) = self.faults.unreachable_between(src, dst, ready) {
                return Err(FabricError::PeerUnreachable { node });
            }
        }
        let hold = self.model.egress_hold_ns(bytes);
        let (depart, injected) = sp.egress.reserve(ready, hold);
        let mut latency = self.model.latency_ns;
        if !self.faults.is_empty() {
            // Windowed faults key off the departure time, so a chaos
            // schedule installed up front activates deterministically.
            latency += self.faults.extra_latency_at(src, dst, depart);
        }
        // Cross-pod traffic additionally serializes on the shared,
        // oversubscribed pod uplinks and pays the core hop.
        let mut ingress_floor = VTime(0);
        if src != dst {
            if let Some((topo, links)) = self.pods.read().as_ref() {
                let (sp_pod, dp_pod) = (src / topo.pod_size, dst / topo.pod_size);
                if sp_pod != dp_pod {
                    let shared_hold = hold * topo.oversubscription;
                    let (_, up_end) = links[sp_pod].up.reserve(depart, shared_hold);
                    let (_, down_end) = links[dp_pod].down.reserve(up_end, shared_hold);
                    ingress_floor = down_end;
                    latency += topo.core_latency_ns;
                }
            }
        }
        let deliver = if src == dst {
            injected
        } else {
            // The first byte reaches the far port after L; the port then
            // spends the serialization time receiving it. Cross-pod flows
            // cannot start receiving before the core finished forwarding.
            let earliest = (depart + latency).max(ingress_floor);
            let (_, deliver) = dp.ingress.reserve(earliest, hold);
            deliver
        };
        self.packets.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        Ok(Transfer { depart, injected, deliver })
    }

    /// Total packets routed (diagnostics).
    pub fn packets_routed(&self) -> u64 {
        self.packets.load(Ordering::Relaxed)
    }

    /// Total payload bytes routed (diagnostics).
    pub fn bytes_routed(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Egress/ingress utilization of `node`'s port (busy fraction of the
    /// booked horizon): a congestion diagnostic for experiments.
    pub fn port_utilization(&self, node: NodeId) -> Result<(f64, f64)> {
        let ports = self.ports.read();
        let p = ports.get(node).ok_or(FabricError::NoSuchNode { node })?;
        Ok((p.egress.utilization(), p.ingress.utilization()))
    }

    /// Egress/ingress booking horizons of `node`'s port: the virtual times
    /// at which each register is free of all current reservations.
    pub fn port_horizons(&self, node: NodeId) -> Result<(VTime, VTime)> {
        let ports = self.ports.read();
        let p = ports.get(node).ok_or(FabricError::NoSuchNode { node })?;
        Ok((p.egress.horizon(), p.ingress.horizon()))
    }

    /// Latest virtual time booked anywhere on the switch (all node ports and
    /// pod uplinks). A quiesced cluster's clocks never exceed this, so
    /// invariant checkers use it as the snapshot horizon.
    pub fn time_horizon(&self) -> VTime {
        let mut h = VTime::ZERO;
        for p in self.ports.read().iter() {
            h = h.max(p.egress.horizon()).max(p.ingress.horizon());
        }
        if let Some((_, links)) = self.pods.read().as_ref() {
            for l in links {
                h = h.max(l.up.horizon()).max(l.down.horizon());
            }
        }
        h
    }

    /// Reset all port serialization registers to idle. Used between
    /// benchmark repetitions together with resetting consumer clocks.
    pub fn reset_time(&self) {
        for p in self.ports.read().iter() {
            p.egress.reset();
            p.ingress.reset();
        }
        for nic in self.nics.read().iter() {
            nic.reset_flow_floors();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::DEFAULT_REG_LIMIT;
    use crate::nic::Nic;

    fn switch_with_nodes(n: usize, model: NetworkModel) -> Arc<Switch> {
        let sw = Arc::new(Switch::new(model));
        for _ in 0..n {
            Nic::attach_new(&sw, DEFAULT_REG_LIMIT);
        }
        sw
    }

    #[test]
    fn isolated_transfer_matches_analytic_model() {
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(2, m);
        let bytes = 4096;
        let t = sw.transfer(0, 1, bytes, VTime(0)).unwrap();
        assert_eq!(t.depart, VTime(0));
        assert_eq!(t.injected, VTime(m.egress_hold_ns(bytes)));
        // Egress serialization is pipelined with the wire: the last byte
        // arrives one hold after the first byte departs plus the latency.
        assert_eq!(t.deliver.as_nanos(), m.latency_ns + m.egress_hold_ns(bytes));
    }

    #[test]
    fn loopback_skips_the_wire() {
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(1, m);
        let t = sw.transfer(0, 0, 64, VTime(0)).unwrap();
        assert_eq!(t.deliver, t.injected);
    }

    #[test]
    fn back_to_back_messages_serialize_on_egress() {
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(2, m);
        let t1 = sw.transfer(0, 1, 8, VTime(0)).unwrap();
        let t2 = sw.transfer(0, 1, 8, VTime(0)).unwrap();
        // Small messages are gap-limited: second departs one gap later.
        assert_eq!(t2.depart, t1.injected);
        assert_eq!(t2.depart.as_nanos(), m.msg_gap_ns);
    }

    #[test]
    fn incast_serializes_on_ingress() {
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(3, m);
        let bytes = 1 << 20;
        let a = sw.transfer(0, 2, bytes, VTime(0)).unwrap();
        let b = sw.transfer(1, 2, bytes, VTime(0)).unwrap();
        // Both senders depart at 0 on their own ports, but node 2's ingress
        // can only receive one megabyte at a time.
        assert_eq!(a.depart, b.depart);
        let hold = m.egress_hold_ns(bytes);
        assert!(b.deliver.as_nanos() >= a.deliver.as_nanos() + hold - 1);
    }

    #[test]
    fn fault_plan_inflates_latency() {
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(2, m);
        let base = sw.transfer(0, 1, 8, VTime(0)).unwrap();
        sw.faults().degrade_link(0, 1, 10_000);
        sw.reset_time();
        let slow = sw.transfer(0, 1, 8, VTime(0)).unwrap();
        assert_eq!(slow.deliver.as_nanos(), base.deliver.as_nanos() + 10_000);
    }

    #[test]
    fn windowed_fault_activates_by_departure_time() {
        use crate::fault::Window;
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(2, m);
        sw.faults().degrade_link_during(0, 1, 5_000, Window::new(VTime(100_000), VTime(200_000)));
        let before = sw.transfer(0, 1, 8, VTime(0)).unwrap();
        let inside = sw.transfer(0, 1, 8, VTime(150_000)).unwrap();
        let after = sw.transfer(0, 1, 8, VTime(300_000)).unwrap();
        let wire = |t: Transfer| t.deliver.as_nanos() - t.depart.as_nanos();
        assert_eq!(wire(inside), wire(before) + 5_000, "fault active inside window");
        assert_eq!(wire(after), wire(before), "fault expired after window");
        assert_eq!(sw.time_horizon(), VTime(after.deliver.as_nanos()));
        let (eg, ing) = sw.port_horizons(0).unwrap();
        assert_eq!(eg, after.injected);
        assert_eq!(ing, VTime::ZERO, "node 0 received nothing");
    }

    #[test]
    fn unknown_node_is_an_error() {
        let sw = switch_with_nodes(2, NetworkModel::ideal());
        assert!(matches!(sw.transfer(0, 7, 8, VTime(0)), Err(FabricError::NoSuchNode { node: 7 })));
        assert!(sw.nic(9).is_err());
    }

    #[test]
    fn utilization_reflects_streaming() {
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(2, m);
        // Back-to-back large transfers keep node 0's egress saturated.
        let mut t = VTime(0);
        for _ in 0..8 {
            let tr = sw.transfer(0, 1, 1 << 20, t).unwrap();
            t = tr.injected;
        }
        let (egress, _) = sw.port_utilization(0).unwrap();
        assert!(egress > 0.99, "streaming egress should be ~1.0: {egress}");
        let (idle_egress, ingress) = sw.port_utilization(1).unwrap();
        assert_eq!(idle_egress, 0.0, "node 1 sent nothing");
        assert!(ingress > 0.5, "node 1 received everything: {ingress}");
        assert!(sw.port_utilization(5).is_err());
    }

    #[test]
    fn pod_topology_charges_cross_pod_traffic() {
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(4, m);
        sw.set_topology(PodTopology { pod_size: 2, oversubscription: 4, core_latency_ns: 300 });
        let bytes = 1 << 20;
        // Intra-pod: unchanged from the flat model.
        let intra = sw.transfer(0, 1, bytes, VTime(0)).unwrap();
        assert_eq!(intra.deliver.as_nanos(), m.latency_ns + m.egress_hold_ns(bytes));
        sw.reset_time();
        // Cross-pod: pays the core hop and the 4x-oversubscribed uplink.
        let cross = sw.transfer(0, 2, bytes, VTime(0)).unwrap();
        let hold = m.egress_hold_ns(bytes);
        // up + down serialization at 4x, then the final ingress hold.
        let expect_floor = 2 * 4 * hold + hold;
        assert!(
            cross.deliver.as_nanos() >= expect_floor,
            "cross-pod must pay the shared links: {} < {expect_floor}",
            cross.deliver.as_nanos()
        );
        assert!(cross.deliver.as_nanos() >= intra.deliver.as_nanos() + 300);
    }

    #[test]
    fn pod_uplink_is_shared_between_flows() {
        let m = NetworkModel::ib_fdr();
        let sw = switch_with_nodes(4, m);
        sw.set_topology(PodTopology { pod_size: 2, oversubscription: 2, core_latency_ns: 0 });
        let bytes = 1 << 20;
        // Two cross-pod flows from DIFFERENT sources in pod 0 contend for
        // the one uplink even though their node ports are disjoint.
        let a = sw.transfer(0, 2, bytes, VTime(0)).unwrap();
        let b = sw.transfer(1, 3, bytes, VTime(0)).unwrap();
        assert_eq!(a.depart, b.depart, "node ports are independent");
        let shared = 2 * m.egress_hold_ns(bytes);
        assert!(
            b.deliver.as_nanos() >= a.deliver.as_nanos() + shared
                || a.deliver.as_nanos() >= b.deliver.as_nanos() + shared,
            "one flow must queue behind the other on the uplink: {a:?} {b:?}"
        );
    }

    #[test]
    fn counters_accumulate() {
        let sw = switch_with_nodes(2, NetworkModel::ideal());
        sw.transfer(0, 1, 100, VTime(0)).unwrap();
        sw.transfer(1, 0, 28, VTime(0)).unwrap();
        assert_eq!(sw.packets_routed(), 2);
        assert_eq!(sw.bytes_routed(), 128);
    }
}
