//! The fabric backend seam: one verbs-shaped trait, many transports.
//!
//! The original Photon shipped verbs, uGNI *and* sockets backends behind a
//! single RMA API. This module is that seam for the reproduction:
//! [`FabricBackend`] captures exactly the surface the middleware consumes —
//! memory registration yielding `(addr, rkey)`, QP-style endpoints carrying
//! Send/Write(+imm)/Read/FetchAdd/CompareSwap work requests, and polled
//! completion queues — so the simulated [`Nic`] and the real-sockets
//! [`crate::sock::SockNic`] are interchangeable above this line.
//!
//! ## What stays behind the seam
//!
//! Fault injection ([`crate::FaultPlan`]) and the LogGP clock are *sim-only*
//! concerns: the trait exposes their observable consequences (reachability
//! verdicts, incarnations, modeled registration cost) with defaults that a
//! real transport satisfies trivially (`None`, `0`, `false`). Conversely,
//! retransmission and wire framing are sockets-only concerns the sim never
//! sees. Neither leaks through the trait.
//!
//! ## Timestamp contract
//!
//! Every completion carries a [`VTime`]. Backends must deliver timestamps
//! that are *monotone per flow*: a completion observed after another on the
//! same CQ never carries a smaller timestamp than causality allows. The sim
//! derives them from the LogGP model; the sockets backend uses wall-clock
//! nanoseconds against a job-wide epoch, clamped monotone.

use crate::clock::VTime;
use crate::error::Result;
use crate::mr::{Access, MemoryRegion, MrTable};
use crate::nic::Nic;
use crate::verbs::{Completion, Qp, RecvWr, SendWr, WcStatus};
use crate::NodeId;
use std::fmt::Debug;

/// A fabric transport endpoint for one node: the verbs-like surface the
/// middleware posts against.
///
/// Object-safe by design — the middleware holds `Arc<dyn FabricBackend>`
/// and the cost of dynamic dispatch is noise next to a post's real work
/// (locking, memcpy, or a syscall).
pub trait FabricBackend: Send + Sync + Debug {
    /// This endpoint's node id (dense, 0-based).
    fn node(&self) -> NodeId;

    /// Number of nodes in the job this endpoint belongs to.
    fn num_nodes(&self) -> usize;

    /// The local registration table (resolve, deregister, accounting).
    fn mrs(&self) -> &MrTable;

    /// Register a zeroed region of `len` bytes.
    fn register(&self, len: usize, flags: Access) -> Result<MemoryRegion>;

    /// Modeled virtual-time cost of registering `len` bytes. Real
    /// transports charge nothing to virtual time (the wall clock *is* the
    /// clock there).
    fn registration_cost_ns(&self, _len: usize) -> u64 {
        0
    }

    /// Create a reliable-connected QP to `peer`.
    fn create_qp(&self, peer: NodeId) -> Result<Qp>;

    /// Destroy a QP; subsequent posts on it fail.
    fn destroy_qp(&self, qp: Qp) -> Result<()>;

    /// Clear a QP's error state after the path to the peer has healed.
    fn reset_qp(&self, qp: Qp) -> Result<()>;

    /// True when `qp` is in the error state (posts are rejected).
    fn qp_errored(&self, qp: Qp) -> bool;

    /// Post one send-queue work request with the initiator's clock at
    /// `now`.
    fn post_send(&self, qp: Qp, wr: SendWr, now: VTime) -> Result<()>;

    /// Post a run of work requests through one doorbell. RC ordering holds
    /// across the run; stops at the first failing wr.
    fn post_send_many(&self, qp: Qp, wrs: &[SendWr], now: VTime) -> Result<()>;

    /// Post a receive for the next matching two-sided send.
    fn post_recv(&self, wr: RecvWr) -> Result<()>;

    /// Drain up to `n` initiator-side completions into `out` (appended);
    /// returns the number drained.
    fn poll_send_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize;

    /// Drain up to `n` target-side completions into `out` (appended);
    /// returns the number drained.
    fn poll_recv_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize;

    /// Poll one initiator-side completion.
    fn poll_send_cq(&self) -> Option<Completion> {
        let mut out = Vec::with_capacity(1);
        if self.poll_send_cq_into(1, &mut out) == 1 {
            out.pop()
        } else {
            None
        }
    }

    /// Poll one target-side completion.
    fn poll_recv_cq(&self) -> Option<Completion> {
        let mut out = Vec::with_capacity(1);
        if self.poll_recv_cq_into(1, &mut out) == 1 {
            out.pop()
        } else {
            None
        }
    }

    /// Reachability pre-check for `qp`'s peer at `now`: `None` when the
    /// path is healthy, otherwise the status a post would fail with.
    fn peer_status(&self, qp: Qp, now: VTime) -> Option<WcStatus> {
        self.node_status(qp.peer, now)
    }

    /// Reachability pre-check for `peer` without a QP (connection-manager
    /// analogue of [`FabricBackend::peer_status`]).
    fn node_status(&self, peer: NodeId, now: VTime) -> Option<WcStatus>;

    /// Whether this endpoint's *own* node is dead at `now` (sim fault
    /// plans only; a real process that can ask is alive).
    fn self_dead_at(&self, _now: VTime) -> bool {
        false
    }

    /// The incarnation of `peer` at `now` (0 = original generation; bumped
    /// by sim-side revive-after-crash). Real transports have one
    /// generation per job.
    fn node_incarnation(&self, _peer: NodeId, _now: VTime) -> u64 {
        0
    }
}

impl FabricBackend for crate::nic::Nic {
    fn node(&self) -> NodeId {
        Nic::node(self)
    }

    fn num_nodes(&self) -> usize {
        Nic::num_nodes(self)
    }

    fn mrs(&self) -> &MrTable {
        Nic::mrs(self)
    }

    fn register(&self, len: usize, flags: Access) -> Result<MemoryRegion> {
        Nic::register(self, len, flags)
    }

    fn registration_cost_ns(&self, len: usize) -> u64 {
        Nic::registration_cost_ns(self, len)
    }

    fn create_qp(&self, peer: NodeId) -> Result<Qp> {
        Nic::create_qp(self, peer)
    }

    fn destroy_qp(&self, qp: Qp) -> Result<()> {
        Nic::destroy_qp(self, qp)
    }

    fn reset_qp(&self, qp: Qp) -> Result<()> {
        Nic::reset_qp(self, qp)
    }

    fn qp_errored(&self, qp: Qp) -> bool {
        Nic::qp_errored(self, qp)
    }

    fn post_send(&self, qp: Qp, wr: SendWr, now: VTime) -> Result<()> {
        Nic::post_send(self, qp, wr, now)
    }

    fn post_send_many(&self, qp: Qp, wrs: &[SendWr], now: VTime) -> Result<()> {
        Nic::post_send_many(self, qp, wrs, now)
    }

    fn post_recv(&self, wr: RecvWr) -> Result<()> {
        Nic::post_recv(self, wr)
    }

    fn poll_send_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        Nic::poll_send_cq_into(self, n, out)
    }

    fn poll_recv_cq_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        Nic::poll_recv_cq_into(self, n, out)
    }

    fn poll_send_cq(&self) -> Option<Completion> {
        Nic::poll_send_cq(self)
    }

    fn poll_recv_cq(&self) -> Option<Completion> {
        Nic::poll_recv_cq(self)
    }

    fn peer_status(&self, qp: Qp, now: VTime) -> Option<WcStatus> {
        Nic::peer_status(self, qp, now)
    }

    fn node_status(&self, peer: NodeId, now: VTime) -> Option<WcStatus> {
        Nic::node_status(self, peer, now)
    }

    fn self_dead_at(&self, now: VTime) -> bool {
        Nic::self_dead_at(self, now)
    }

    fn node_incarnation(&self, peer: NodeId, now: VTime) -> u64 {
        Nic::node_incarnation(self, peer, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verbs::{MrSlice, RemoteSlice, WrOp};
    use crate::{Cluster, NetworkModel};
    use std::sync::Arc;

    #[test]
    fn sim_nic_behind_trait_object() {
        let c = Cluster::new(2, NetworkModel::ib_fdr());
        let a: Arc<dyn FabricBackend> = Arc::clone(c.nic(0)) as Arc<dyn FabricBackend>;
        let b: Arc<dyn FabricBackend> = Arc::clone(c.nic(1)) as Arc<dyn FabricBackend>;
        assert_eq!(a.node(), 0);
        assert_eq!(a.num_nodes(), 2);
        let src = a.register(16, Access::ALL).unwrap();
        let dst = b.register(16, Access::ALL).unwrap();
        src.write_u64(0, 7777);
        let qp = a.create_qp(1).unwrap();
        a.post_send(
            qp,
            SendWr::new(
                1,
                WrOp::Write {
                    local: MrSlice::new(&src, 0, 8),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                    imm: None,
                },
            ),
            VTime(0),
        )
        .unwrap();
        assert_eq!(dst.read_u64(0), 7777);
        let mut out = Vec::new();
        assert_eq!(a.poll_send_cq_into(8, &mut out), 1);
        assert_eq!(out[0].wr_id, 1);
        assert!(a.node_status(1, VTime(0)).is_none());
        assert!(!a.self_dead_at(VTime(0)));
        assert_eq!(a.node_incarnation(1, VTime(0)), 0);
    }
}
