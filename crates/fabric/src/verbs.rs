//! Verbs-like work-request and completion types.
//!
//! The shapes here deliberately mirror `ibv_post_send` / `ibv_post_recv` /
//! `ibv_poll_cq`: work requests carry a caller-chosen 64-bit `wr_id` that
//! comes back in the completion, operations name local memory through
//! registered-region slices and remote memory through `(addr, rkey)`
//! descriptors, and initiator- vs target-side events arrive on separate
//! completion queues.

use crate::clock::VTime;
use crate::error::{FabricError, Result};
use crate::mr::MemoryRegion;
use crate::NodeId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;

/// A slice of a locally registered region: the gather/scatter element of a
/// work request.
#[derive(Debug, Clone)]
pub struct MrSlice {
    /// The registered region.
    pub mr: MemoryRegion,
    /// Byte offset into the region.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

impl MrSlice {
    /// Slice covering the whole region.
    pub fn whole(mr: &MemoryRegion) -> MrSlice {
        MrSlice { mr: mr.clone(), offset: 0, len: mr.len() }
    }

    /// Slice `[offset, offset+len)` of `mr`.
    pub fn new(mr: &MemoryRegion, offset: usize, len: usize) -> MrSlice {
        MrSlice { mr: mr.clone(), offset, len }
    }

    /// Validate the slice lies within its region.
    pub fn check(&self) -> Result<()> {
        self.mr.check_bounds(self.offset, self.len)
    }
}

/// Remote target of a one-sided operation: `(addr, rkey)` within a peer's
/// registered region, plus the transfer length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSlice {
    /// Remote virtual address (within the peer's registered region).
    pub addr: u64,
    /// Remote key naming the region on the peer.
    pub rkey: u32,
    /// Length in bytes.
    pub len: usize,
}

impl RemoteSlice {
    /// Build from a [`crate::mr::RemoteKey`] at `offset` for `len` bytes.
    pub fn from_key(key: &crate::mr::RemoteKey, offset: usize, len: usize) -> RemoteSlice {
        RemoteSlice { addr: key.addr + offset as u64, rkey: key.rkey, len }
    }
}

/// The operation performed by a send-queue work request.
#[derive(Debug, Clone)]
pub enum WrOp {
    /// Two-sided send: consumes a posted receive at the target.
    Send {
        /// Payload gather.
        local: MrSlice,
        /// Optional 64-bit immediate delivered with the receive completion.
        imm: Option<u64>,
    },
    /// One-sided RDMA write; with `imm`, the target also gets a completion.
    Write {
        /// Payload gather.
        local: MrSlice,
        /// Remote destination.
        remote: RemoteSlice,
        /// Optional immediate: generates a target-side completion event.
        imm: Option<u64>,
    },
    /// One-sided RDMA read: remote bytes land in `local`.
    Read {
        /// Local destination scatter.
        local: MrSlice,
        /// Remote source.
        remote: RemoteSlice,
    },
    /// Remote 64-bit fetch-and-add; the old value lands in `local` (8 bytes).
    FetchAdd {
        /// 8-byte local destination for the fetched value.
        local: MrSlice,
        /// 8-byte, 8-aligned remote target.
        remote: RemoteSlice,
        /// Addend.
        add: u64,
    },
    /// Remote 64-bit compare-and-swap; the old value lands in `local`.
    CompareSwap {
        /// 8-byte local destination for the fetched value.
        local: MrSlice,
        /// 8-byte, 8-aligned remote target.
        remote: RemoteSlice,
        /// Expected value.
        compare: u64,
        /// Replacement value stored on match.
        swap: u64,
    },
}

impl WrOp {
    /// Number of payload bytes this op moves on the wire (requests for
    /// reads/atomics are accounted separately by the engine).
    pub fn wire_bytes(&self) -> usize {
        match self {
            WrOp::Send { local, .. } | WrOp::Write { local, .. } => local.len,
            WrOp::Read { local, .. } => local.len,
            WrOp::FetchAdd { .. } | WrOp::CompareSwap { .. } => 8,
        }
    }
}

/// A send-queue work request.
#[derive(Debug, Clone)]
pub struct SendWr {
    /// Caller cookie returned in the completion.
    pub wr_id: u64,
    /// The operation.
    pub op: WrOp,
    /// If false, no initiator-side completion is generated (verbs
    /// "unsignaled"); used for piggybacked protocol writes.
    pub signaled: bool,
    /// If set (for `Send`/`Write` ops), the simulated NIC overwrites payload
    /// bytes `[off, off+8)` with the virtual delivery time (LE nanoseconds)
    /// before the payload lands.  This is the simulation's stand-in for
    /// hardware delivery timestamping and is how middleware propagates
    /// virtual time through one-sided protocol writes that generate no
    /// target-side completion.
    pub stamp_deliver_at: Option<usize>,
    /// Additional payload offsets stamped exactly like `stamp_deliver_at`.
    /// A doorbell-batched post carries several protocol frames in one
    /// payload; each frame header gets its own delivery timestamp. Empty
    /// (allocation-free) for ordinary single-frame posts.
    pub stamp_deliver_also: Vec<usize>,
}

impl SendWr {
    /// A signaled work request.
    pub fn new(wr_id: u64, op: WrOp) -> SendWr {
        SendWr { wr_id, op, signaled: true, stamp_deliver_at: None, stamp_deliver_also: Vec::new() }
    }

    /// An unsignaled work request (no initiator completion).
    pub fn unsignaled(op: WrOp) -> SendWr {
        SendWr {
            wr_id: 0,
            op,
            signaled: false,
            stamp_deliver_at: None,
            stamp_deliver_also: Vec::new(),
        }
    }

    /// Request a delivery-time stamp at payload offset `off`.
    pub fn with_stamp(mut self, off: usize) -> SendWr {
        self.stamp_deliver_at = Some(off);
        self
    }
}

/// A receive-queue work request: where the next matching two-sided send
/// scatters its payload.
#[derive(Debug, Clone)]
pub struct RecvWr {
    /// Caller cookie returned in the completion.
    pub wr_id: u64,
    /// Destination scatter.
    pub local: MrSlice,
}

/// What a completion reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionKind {
    /// Initiator: two-sided send fully injected.
    SendDone,
    /// Initiator: RDMA write fully injected (source buffer reusable).
    WriteDone,
    /// Initiator: RDMA read response arrived; data is in the local slice.
    ReadDone,
    /// Initiator: atomic response arrived; `old` is the prior remote value.
    AtomicDone {
        /// Value at the remote location before the operation.
        old: u64,
    },
    /// Target: a two-sided send landed in a posted receive.
    RecvDone {
        /// Source node.
        src: NodeId,
        /// Payload length scattered into the receive buffer.
        len: usize,
        /// Immediate data, if the sender attached any.
        imm: Option<u64>,
    },
    /// Target: an RDMA write-with-immediate landed.
    ImmDone {
        /// Source node.
        src: NodeId,
        /// Payload length written.
        len: usize,
        /// The immediate value.
        imm: u64,
    },
}

/// Completion status, mirroring `ibv_wc_status`: a successful event, or the
/// error class a flushed/failed work request carries. Error completions keep
/// their `wr_id` (so initiators can resolve the matching operation) but the
/// payload/metadata of `kind` is unspecified, as on real hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WcStatus {
    /// The operation completed successfully.
    Success,
    /// The work request was flushed from a queue pair in the error state
    /// without executing (`IBV_WC_WR_FLUSH_ERR`).
    FlushErr,
    /// The transport gave up retrying: the path to the peer is broken
    /// (`IBV_WC_RETRY_EXC_ERR`), e.g. an active partition.
    RetryExceeded,
    /// The remote node is dead (crash-stop); no retry can succeed.
    RemoteDead,
}

impl WcStatus {
    /// True for [`WcStatus::Success`].
    #[inline]
    pub fn is_ok(self) -> bool {
        self == WcStatus::Success
    }
}

impl fmt::Display for WcStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcStatus::Success => write!(f, "success"),
            WcStatus::FlushErr => write!(f, "work request flushed (WR_FLUSH_ERR)"),
            WcStatus::RetryExceeded => write!(f, "transport retries exceeded (RETRY_EXC_ERR)"),
            WcStatus::RemoteDead => write!(f, "remote peer dead"),
        }
    }
}

/// A completion-queue event.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Cookie from the originating work request (0 for target-side events of
    /// one-sided ops).
    pub wr_id: u64,
    /// Event classification and payload metadata.
    pub kind: CompletionKind,
    /// Virtual time at which the modeled hardware delivered this event.
    pub ts: VTime,
    /// Success, or the error class of a flushed/failed work request.
    pub status: WcStatus,
}

/// A polled completion queue.
///
/// Capacity-bounded, like a real CQ: overflow is an error surfaced to the
/// *poster* (the simulated NIC refuses the op), so tests can exercise
/// CQ-sizing bugs deterministically instead of corrupting events.
#[derive(Debug)]
pub struct Cq {
    q: Mutex<VecDeque<Completion>>,
    capacity: usize,
}

/// Default CQ depth, matching common verbs defaults.
pub const DEFAULT_CQ_DEPTH: usize = 4096;

impl Cq {
    /// A CQ holding at most `capacity` events.
    pub fn new(capacity: usize) -> Cq {
        Cq { q: Mutex::new(VecDeque::with_capacity(capacity.min(1024))), capacity }
    }

    /// Append an event; fails with `CqOverflow` when full.
    pub fn push(&self, c: Completion) -> Result<()> {
        let mut q = self.q.lock();
        if q.len() >= self.capacity {
            return Err(FabricError::CqOverflow);
        }
        q.push_back(c);
        Ok(())
    }

    /// Pop the oldest event, if any.
    pub fn poll(&self) -> Option<Completion> {
        self.q.lock().pop_front()
    }

    /// Pop up to `n` events.
    pub fn poll_n(&self, n: usize) -> Vec<Completion> {
        let mut q = self.q.lock();
        let take = n.min(q.len());
        q.drain(..take).collect()
    }

    /// Pop up to `n` events into `out` (appended), returning how many were
    /// drained. The allocation-free twin of [`Cq::poll_n`]: steady-state
    /// pollers keep one scratch vector alive instead of collecting a fresh
    /// one per harvest.
    pub fn poll_n_into(&self, n: usize, out: &mut Vec<Completion>) -> usize {
        let mut q = self.q.lock();
        let take = n.min(q.len());
        out.extend(q.drain(..take));
        take
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.q.lock().len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.q.lock().is_empty()
    }
}

/// A reliable-connected queue-pair handle.
///
/// Cheap to copy; the NIC validates the handle on every post.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Qp {
    /// Queue-pair number on the local NIC.
    pub num: u32,
    /// Local node.
    pub node: NodeId,
    /// Remote node this QP is connected to.
    pub peer: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::{Access, MrTable};

    #[test]
    fn cq_fifo_and_overflow() {
        let cq = Cq::new(2);
        let mk = |id| Completion {
            wr_id: id,
            kind: CompletionKind::SendDone,
            ts: VTime(id),
            status: WcStatus::Success,
        };
        cq.push(mk(1)).unwrap();
        cq.push(mk(2)).unwrap();
        assert!(matches!(cq.push(mk(3)), Err(FabricError::CqOverflow)));
        assert_eq!(cq.poll().unwrap().wr_id, 1);
        assert_eq!(cq.poll().unwrap().wr_id, 2);
        assert!(cq.poll().is_none());
        assert!(cq.is_empty());
    }

    #[test]
    fn cq_poll_n_drains_in_order() {
        let cq = Cq::new(16);
        for i in 0..5 {
            cq.push(Completion {
                wr_id: i,
                kind: CompletionKind::SendDone,
                ts: VTime(i),
                status: WcStatus::Success,
            })
            .unwrap();
        }
        let got = cq.poll_n(3);
        assert_eq!(got.iter().map(|c| c.wr_id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(cq.len(), 2);
        let rest = cq.poll_n(10);
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn mr_slice_check() {
        let t = MrTable::new(0);
        let mr = t.register(32, Access::ALL).unwrap();
        assert!(MrSlice::new(&mr, 0, 32).check().is_ok());
        assert!(MrSlice::new(&mr, 16, 16).check().is_ok());
        assert!(MrSlice::new(&mr, 16, 17).check().is_err());
    }

    #[test]
    fn wire_bytes_per_op() {
        let t = MrTable::new(0);
        let mr = t.register(64, Access::ALL).unwrap();
        let local = MrSlice::new(&mr, 0, 48);
        let remote = RemoteSlice { addr: 0, rkey: 0, len: 48 };
        assert_eq!(WrOp::Send { local: local.clone(), imm: None }.wire_bytes(), 48);
        assert_eq!(WrOp::Write { local: local.clone(), remote, imm: None }.wire_bytes(), 48);
        let r8 = RemoteSlice { addr: 0, rkey: 0, len: 8 };
        assert_eq!(
            WrOp::FetchAdd { local: MrSlice::new(&mr, 0, 8), remote: r8, add: 1 }.wire_bytes(),
            8
        );
    }

    #[test]
    fn wc_status_display_and_classification() {
        assert_eq!(WcStatus::Success.to_string(), "success");
        assert!(WcStatus::FlushErr.to_string().contains("WR_FLUSH_ERR"));
        assert!(WcStatus::RetryExceeded.to_string().contains("RETRY_EXC_ERR"));
        assert!(WcStatus::RemoteDead.to_string().contains("dead"));
        assert!(WcStatus::Success.is_ok());
        for s in [WcStatus::FlushErr, WcStatus::RetryExceeded, WcStatus::RemoteDead] {
            assert!(!s.is_ok(), "{s} must not be ok");
        }
    }

    #[test]
    fn remote_slice_from_key() {
        let key = crate::mr::RemoteKey { addr: 0x1000, rkey: 9, len: 256 };
        let rs = RemoteSlice::from_key(&key, 128, 64);
        assert_eq!(rs.addr, 0x1080);
        assert_eq!(rs.rkey, 9);
        assert_eq!(rs.len, 64);
    }
}
