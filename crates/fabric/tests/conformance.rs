//! Backend conformance suite.
//!
//! Every [`FabricBackend`] implementation — the simulated RDMA NIC and the
//! real-sockets transport — must satisfy the same observable contract:
//! registration bounds and access classes are enforced, RC queue pairs
//! deliver writes in posting order, atomics are serialized at the target,
//! completions are delivered exactly once with per-CQ monotone timestamps,
//! and remote protection violations surface as an error (synchronously at
//! post time, as the sim does, or as an error CQE, as a wire transport
//! must). Each scenario below runs against *both* backends through the
//! trait object, never a concrete type.

use photon_fabric::api::{
    Access, Completion, CompletionKind, FabricBackend, MrSlice, RecvWr, RemoteSlice, SendWr, VTime,
    WcStatus, WrOp,
};
use photon_fabric::sock::SockCluster;
use photon_fabric::{Cluster, NetworkModel};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a polled expectation may take before the suite declares the
/// backend broken. Loopback UDP is fast; ten seconds is CI headroom.
const DEADLINE: Duration = Duration::from_secs(10);

/// Two live endpoints plus whatever owns them (the cluster must outlive
/// the trait objects' use).
struct Fixture {
    name: &'static str,
    _owner: Box<dyn std::any::Any>,
    nics: Vec<Arc<dyn FabricBackend>>,
}

fn sim(n: usize) -> Fixture {
    let c = Cluster::new(n, NetworkModel::ib_fdr());
    let nics = (0..n).map(|i| Arc::clone(c.nic(i)) as Arc<dyn FabricBackend>).collect();
    Fixture { name: "sim", _owner: Box::new(c), nics }
}

fn sock(n: usize) -> Fixture {
    let c = SockCluster::new(n).expect("bind sockets cluster");
    let nics = (0..n).map(|i| Arc::clone(c.nic(i)) as Arc<dyn FabricBackend>).collect();
    Fixture { name: "sock", _owner: Box::new(c), nics }
}

/// Both backends, two nodes each.
fn backends() -> Vec<Fixture> {
    vec![sim(2), sock(2)]
}

/// Collect exactly `n` initiator-side completions, spinning until the
/// deadline (the sim completes at post time; sockets complete on ack).
fn wait_send_cqes(nic: &dyn FabricBackend, n: usize) -> Vec<Completion> {
    let mut out = Vec::new();
    let start = Instant::now();
    while out.len() < n {
        nic.poll_send_cq_into(n - out.len(), &mut out);
        assert!(start.elapsed() < DEADLINE, "send CQ: got {} of {n} events", out.len());
        std::hint::spin_loop();
    }
    out
}

/// Collect exactly `n` target-side completions before the deadline.
fn wait_recv_cqes(nic: &dyn FabricBackend, n: usize) -> Vec<Completion> {
    let mut out = Vec::new();
    let start = Instant::now();
    while out.len() < n {
        nic.poll_recv_cq_into(n - out.len(), &mut out);
        assert!(start.elapsed() < DEADLINE, "recv CQ: got {} of {n} events", out.len());
        std::hint::spin_loop();
    }
    out
}

/// Spin until the remote region's word at `off` equals `want` (one-sided
/// writes need no target CQE; the data itself is the observable).
fn wait_remote_u64(mr: &photon_fabric::api::MemoryRegion, off: usize, want: u64) {
    let start = Instant::now();
    while mr.read_u64(off) != want {
        assert!(start.elapsed() < DEADLINE, "remote word never became {want:#x}");
        std::hint::spin_loop();
    }
}

#[test]
fn identity_and_registration() {
    for f in backends() {
        let a = f.nics[0].as_ref();
        let b = f.nics[1].as_ref();
        assert_eq!((a.node(), b.node()), (0, 1), "{}", f.name);
        assert_eq!((a.num_nodes(), b.num_nodes()), (2, 2), "{}", f.name);

        let mr = a.register(256, Access::ALL).unwrap();
        assert_eq!(mr.len(), 256, "{}", f.name);
        assert_eq!(mr.node(), 0, "{}", f.name);
        // Fresh registrations are zeroed.
        assert_eq!(mr.to_vec(0, 256), vec![0u8; 256], "{}", f.name);
        // The region resolves through the local table under its rkey.
        let rk = mr.remote_key();
        assert!(a.mrs().resolve(rk.addr, rk.rkey, 256, Access::REMOTE_WRITE).is_ok(), "{}", f.name);
        // Deregistration invalidates it.
        a.mrs().deregister(&mr).unwrap();
        assert!(a.mrs().resolve(rk.addr, rk.rkey, 8, Access::REMOTE_WRITE).is_err(), "{}", f.name);
    }
}

#[test]
fn registration_bounds_and_access_classes() {
    for f in backends() {
        let b = f.nics[1].as_ref();
        let mrs = b.mrs();

        let wr_only = b.register(64, Access::LOCAL.union(Access::REMOTE_WRITE)).unwrap();
        let rk = wr_only.remote_key();
        // In-bounds with the granted class: ok.
        assert!(mrs.resolve(rk.addr + 8, rk.rkey, 8, Access::REMOTE_WRITE).is_ok(), "{}", f.name);
        // Out of bounds (tail past the end, head before the base): rejected.
        assert!(mrs.resolve(rk.addr + 60, rk.rkey, 8, Access::REMOTE_WRITE).is_err(), "{}", f.name);
        assert!(mrs.resolve(rk.addr.wrapping_sub(1), rk.rkey, 1, Access::REMOTE_WRITE).is_err());
        // A class the registration never granted: rejected.
        assert!(mrs.resolve(rk.addr, rk.rkey, 8, Access::REMOTE_READ).is_err(), "{}", f.name);
        assert!(mrs.resolve(rk.addr, rk.rkey, 8, Access::REMOTE_ATOMIC).is_err(), "{}", f.name);
        // A bogus rkey never resolves, even at a valid address.
        assert!(mrs.resolve(rk.addr, rk.rkey ^ 0xDEAD, 8, Access::REMOTE_WRITE).is_err());

        // LOCAL-only registrations are invisible to remote classes entirely.
        let private = b.register(64, Access::LOCAL).unwrap();
        let pk = private.remote_key();
        assert!(mrs.resolve(pk.addr, pk.rkey, 8, Access::REMOTE_WRITE).is_err(), "{}", f.name);
        assert!(mrs.resolve(pk.addr, pk.rkey, 8, Access::REMOTE_READ).is_err(), "{}", f.name);
    }
}

#[test]
fn write_roundtrip_and_read() {
    for f in backends() {
        let a = f.nics[0].as_ref();
        let b = f.nics[1].as_ref();
        let src = a.register(64, Access::ALL).unwrap();
        let dst = b.register(64, Access::ALL).unwrap();
        src.write_at(0, b"conformance!");
        let qp = a.create_qp(1).unwrap();

        a.post_send(
            qp,
            SendWr::new(
                11,
                WrOp::Write {
                    local: MrSlice::new(&src, 0, 12),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 12),
                    imm: None,
                },
            ),
            VTime(0),
        )
        .unwrap();
        let cq = wait_send_cqes(a, 1);
        assert_eq!(cq[0].wr_id, 11, "{}", f.name);
        assert_eq!(cq[0].kind, CompletionKind::WriteDone, "{}", f.name);
        assert!(cq[0].status.is_ok(), "{}", f.name);
        wait_remote_u64(&dst, 0, u64::from_le_bytes(*b"conforma"));
        assert_eq!(dst.to_vec(0, 12), b"conformance!", "{}", f.name);

        // Read the bytes back into a fresh local region.
        let back = a.register(64, Access::ALL).unwrap();
        a.post_send(
            qp,
            SendWr::new(
                12,
                WrOp::Read {
                    local: MrSlice::new(&back, 0, 12),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 12),
                },
            ),
            VTime(0),
        )
        .unwrap();
        let cq = wait_send_cqes(a, 1);
        assert_eq!((cq[0].wr_id, cq[0].kind.clone()), (12, CompletionKind::ReadDone), "{}", f.name);
        assert!(cq[0].status.is_ok(), "{}", f.name);
        assert_eq!(back.to_vec(0, 12), b"conformance!", "{}", f.name);
    }
}

#[test]
fn write_with_immediate_reaches_target_cq() {
    for f in backends() {
        let a = f.nics[0].as_ref();
        let b = f.nics[1].as_ref();
        let src = a.register(32, Access::ALL).unwrap();
        let dst = b.register(32, Access::ALL).unwrap();
        src.write_at(0, b"imm-data");
        let qp = a.create_qp(1).unwrap();
        a.post_send(
            qp,
            SendWr::new(
                21,
                WrOp::Write {
                    local: MrSlice::new(&src, 0, 8),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                    imm: Some(0xFACE),
                },
            ),
            VTime(0),
        )
        .unwrap();
        let ev = wait_recv_cqes(b, 1).remove(0);
        match ev.kind {
            CompletionKind::ImmDone { src: s, len, imm } => {
                assert_eq!((s, len, imm), (0, 8, 0xFACE), "{}", f.name);
            }
            other => panic!("{}: expected ImmDone, got {other:?}", f.name),
        }
        assert!(ev.status.is_ok(), "{}", f.name);
        assert_eq!(dst.to_vec(0, 8), b"imm-data", "{}", f.name);
        wait_send_cqes(a, 1);
    }
}

#[test]
fn two_sided_send_consumes_posted_receive() {
    for f in backends() {
        let a = f.nics[0].as_ref();
        let b = f.nics[1].as_ref();
        let src = a.register(32, Access::ALL).unwrap();
        let rcv = b.register(32, Access::ALL).unwrap();
        src.write_at(0, b"hello-two-sided");
        b.post_recv(RecvWr { wr_id: 77, local: MrSlice::new(&rcv, 0, 32) }).unwrap();
        let qp = a.create_qp(1).unwrap();
        a.post_send(
            qp,
            SendWr::new(31, WrOp::Send { local: MrSlice::new(&src, 0, 15), imm: Some(42) }),
            VTime(0),
        )
        .unwrap();
        let ev = wait_recv_cqes(b, 1).remove(0);
        assert_eq!(ev.wr_id, 77, "{}", f.name);
        match ev.kind {
            CompletionKind::RecvDone { src: s, len, imm } => {
                assert_eq!((s, len, imm), (0, 15, Some(42)), "{}", f.name);
            }
            other => panic!("{}: expected RecvDone, got {other:?}", f.name),
        }
        assert_eq!(rcv.to_vec(0, 15), b"hello-two-sided", "{}", f.name);
        let cq = wait_send_cqes(a, 1);
        assert_eq!((cq[0].wr_id, cq[0].kind.clone()), (31, CompletionKind::SendDone), "{}", f.name);
    }
}

/// RC ordering: back-to-back writes to the same remote word apply in
/// posting order (the final value is the last write), their initiator
/// completions retire in posting order, and CQ timestamps never step
/// backwards. Half the run goes through the doorbell-batched entry point.
#[test]
fn qp_ordering_and_monotone_timestamps() {
    const N: u64 = 32;
    for f in backends() {
        let a = f.nics[0].as_ref();
        let b = f.nics[1].as_ref();
        let src = a.register(8 * N as usize, Access::ALL).unwrap();
        let dst = b.register(8, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();

        let wr = |i: u64| {
            src.write_u64(8 * i as usize, 0x1000 + i);
            SendWr::new(
                i,
                WrOp::Write {
                    local: MrSlice::new(&src, 8 * i as usize, 8),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                    imm: None,
                },
            )
        };
        for i in 0..N / 2 {
            a.post_send(qp, wr(i), VTime(0)).unwrap();
        }
        let batch: Vec<SendWr> = (N / 2..N).map(wr).collect();
        a.post_send_many(qp, &batch, VTime(0)).unwrap();

        let cq = wait_send_cqes(a, N as usize);
        let ids: Vec<u64> = cq.iter().map(|c| c.wr_id).collect();
        assert_eq!(ids, (0..N).collect::<Vec<_>>(), "{}: completions in posting order", f.name);
        for w in cq.windows(2) {
            assert!(w[1].ts >= w[0].ts, "{}: CQ timestamps must be monotone", f.name);
        }
        wait_remote_u64(&dst, 0, 0x1000 + N - 1);
    }
}

#[test]
fn atomics_serialize_at_target() {
    for f in backends() {
        let a = f.nics[0].as_ref();
        let b = f.nics[1].as_ref();
        let loc = a.register(8, Access::ALL).unwrap();
        let word = b.register(8, Access::ALL).unwrap();
        word.write_u64(0, 100);
        let qp = a.create_qp(1).unwrap();
        let remote = || RemoteSlice::from_key(&word.remote_key(), 0, 8);

        a.post_send(
            qp,
            SendWr::new(
                41,
                WrOp::FetchAdd { local: MrSlice::new(&loc, 0, 8), remote: remote(), add: 5 },
            ),
            VTime(0),
        )
        .unwrap();
        let ev = wait_send_cqes(a, 1).remove(0);
        assert_eq!(ev.kind, CompletionKind::AtomicDone { old: 100 }, "{}", f.name);
        assert_eq!(loc.read_u64(0), 100, "{}: fetched value lands locally", f.name);
        assert_eq!(word.read_u64(0), 105, "{}", f.name);

        // CAS that matches swaps and reports the old value...
        a.post_send(
            qp,
            SendWr::new(
                42,
                WrOp::CompareSwap {
                    local: MrSlice::new(&loc, 0, 8),
                    remote: remote(),
                    compare: 105,
                    swap: 1000,
                },
            ),
            VTime(0),
        )
        .unwrap();
        let ev = wait_send_cqes(a, 1).remove(0);
        assert_eq!(ev.kind, CompletionKind::AtomicDone { old: 105 }, "{}", f.name);
        assert_eq!(word.read_u64(0), 1000, "{}", f.name);

        // ...and a CAS that misses leaves the word untouched.
        a.post_send(
            qp,
            SendWr::new(
                43,
                WrOp::CompareSwap {
                    local: MrSlice::new(&loc, 0, 8),
                    remote: remote(),
                    compare: 105,
                    swap: 7,
                },
            ),
            VTime(0),
        )
        .unwrap();
        let ev = wait_send_cqes(a, 1).remove(0);
        assert_eq!(ev.kind, CompletionKind::AtomicDone { old: 1000 }, "{}", f.name);
        assert_eq!(word.read_u64(0), 1000, "{}: failed CAS must not store", f.name);
    }
}

/// Exactly-once CQE delivery: every *signaled* work request produces one
/// completion, unsignaled ones produce none, and a drained CQ stays empty.
#[test]
fn cq_delivery_is_exactly_once() {
    for f in backends() {
        let a = f.nics[0].as_ref();
        let b = f.nics[1].as_ref();
        let src = a.register(64, Access::ALL).unwrap();
        let dst = b.register(64, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        let slice = |i: usize| MrSlice::new(&src, 8 * i, 8);
        let rem = |i: usize| RemoteSlice::from_key(&dst.remote_key(), 8 * i, 8);

        // Signaled rids 0,2,4,6; unsignaled in between.
        for i in 0..8usize {
            src.write_u64(8 * i, i as u64 + 1);
            let op = WrOp::Write { local: slice(i), remote: rem(i), imm: None };
            let wr = if i % 2 == 0 { SendWr::new(i as u64, op) } else { SendWr::unsignaled(op) };
            a.post_send(qp, wr, VTime(0)).unwrap();
        }
        let cq = wait_send_cqes(a, 4);
        let ids: Vec<u64> = cq.iter().map(|c| c.wr_id).collect();
        assert_eq!(ids, vec![0, 2, 4, 6], "{}: signaled wrs, once each, in order", f.name);
        // All data landed regardless of signaling.
        wait_remote_u64(&dst, 8 * 7, 8);
        for i in 0..8usize {
            assert_eq!(dst.read_u64(8 * i), i as u64 + 1, "{}", f.name);
        }
        // Nothing further may ever surface for these posts.
        std::thread::sleep(Duration::from_millis(100));
        assert!(a.poll_send_cq().is_none(), "{}: drained CQ must stay empty", f.name);
    }
}

/// A remote protection violation must surface as an *error*, never as
/// silent success: synchronously at post time (the sim validates against
/// the shared MR table) or as an error completion (a wire transport only
/// learns at the target). Both are conformant; losing the op is not.
#[test]
fn remote_violation_surfaces_as_error() {
    for f in backends() {
        let a = f.nics[0].as_ref();
        let b = f.nics[1].as_ref();
        let loc = a.register(8, Access::ALL).unwrap();
        let dst = b.register(8, Access::ALL).unwrap();
        let qp = a.create_qp(1).unwrap();
        let mut bad = dst.remote_key();
        bad.rkey ^= 0xBADC0DE;

        let posted = a.post_send(
            qp,
            SendWr::new(
                51,
                WrOp::Read {
                    local: MrSlice::new(&loc, 0, 8),
                    remote: RemoteSlice::from_key(&bad, 0, 8),
                },
            ),
            VTime(0),
        );
        match posted {
            Err(_) => {} // synchronous rejection (sim)
            Ok(()) => {
                let ev = wait_send_cqes(a, 1).remove(0);
                assert_eq!(ev.wr_id, 51, "{}", f.name);
                assert!(
                    !ev.status.is_ok(),
                    "{}: bad-rkey read completed with {:?}",
                    f.name,
                    ev.status
                );
                assert_ne!(ev.status, WcStatus::Success, "{}", f.name);
            }
        }
        // The endpoint must survive the violation: a well-formed op still works.
        a.post_send(
            qp,
            SendWr::new(
                52,
                WrOp::Read {
                    local: MrSlice::new(&loc, 0, 8),
                    remote: RemoteSlice::from_key(&dst.remote_key(), 0, 8),
                },
            ),
            VTime(0),
        )
        .unwrap();
        let ev = wait_send_cqes(a, 1).remove(0);
        assert_eq!((ev.wr_id, ev.status), (52, WcStatus::Success), "{}", f.name);
    }
}
