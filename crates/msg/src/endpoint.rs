//! The baseline engine: tag matching, eager pool, rendezvous.

use crate::buffer::MsgBuffer;
use crate::wire::{Header, MsgKind, HDR};
use crate::{MsgConfig, MsgError, Rank, Result};
use parking_lot::Mutex;
use photon_fabric::mr::Access;
use photon_fabric::verbs::{CompletionKind, MrSlice, Qp, RecvWr, RemoteSlice, SendWr, WrOp};
use photon_fabric::{Cluster, MemoryRegion, NetworkModel, Nic, VClock, VTime, WcStatus};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a matched message's payload should land.
#[derive(Debug)]
enum Landing {
    /// The library allocates (recv returns an owned `Vec`).
    Owned,
    /// A pre-registered user buffer (zero-copy rendezvous).
    User { region: MemoryRegion, off: usize, cap: usize },
}

#[derive(Debug)]
struct PostedRecv {
    req: u64,
    src: Option<Rank>,
    tag: Option<u64>,
    landing: Landing,
}

impl PostedRecv {
    fn matches(&self, src: Rank, tag: u64) -> bool {
        self.src.is_none_or(|s| s == src) && self.tag.is_none_or(|t| t == tag)
    }
}

#[derive(Debug)]
struct RtsInfo {
    src: Rank,
    tag: u64,
    xid: u64,
    size: usize,
    ts: VTime,
}

#[derive(Debug)]
struct SenderRdv {
    peer: Rank,
    region: MemoryRegion,
    off: usize,
    len: usize,
    owned: bool,
}

#[derive(Debug)]
struct RecvRdv {
    req: u64,
    src: Rank,
    tag: u64,
    size: usize,
    region: MemoryRegion,
    off: usize,
    owned: bool,
}

#[derive(Debug)]
struct UnexMsg {
    /// Global arrival sequence number, unique across all sources.
    seq: u64,
    tag: u64,
    data: Vec<u8>,
    ts: VTime,
}

/// Unexpected-message store sharded per source rank, mirroring the sharded
/// completion engine in photon-core: a known-`src` match scans only that
/// source's queue, and wildcard matches pick the minimum arrival `seq`
/// across per-source heads instead of scanning one global FIFO.
#[derive(Debug, Default)]
struct UnexpectedQueue {
    by_src: HashMap<Rank, VecDeque<UnexMsg>>,
    next_seq: u64,
    len: usize,
}

impl UnexpectedQueue {
    fn push(&mut self, src: Rank, tag: u64, data: Vec<u8>, ts: VTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_src.entry(src).or_default().push_back(UnexMsg { seq, tag, data, ts });
        self.len += 1;
    }

    /// Queued message count (used by the matching reference-model test).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.len
    }

    /// Locate the earliest-arrival message matching the pattern. The unique
    /// global `seq` makes the wildcard-src winner deterministic regardless
    /// of map iteration order.
    fn find(&self, src: Option<Rank>, tag: Option<u64>) -> Option<(Rank, usize)> {
        let first_match = |s: Rank, q: &VecDeque<UnexMsg>| {
            q.iter()
                .enumerate()
                .find(|(_, m)| tag.is_none_or(|w| w == m.tag))
                .map(|(i, m)| (m.seq, s, i))
        };
        let best = match src {
            Some(s) => self.by_src.get(&s).and_then(|q| first_match(s, q)),
            None => self
                .by_src
                .iter()
                .filter_map(|(&s, q)| first_match(s, q))
                .min_by_key(|&(seq, _, _)| seq),
        };
        best.map(|(_, s, i)| (s, i))
    }

    /// Envelope of the earliest match without consuming it.
    fn peek(&self, src: Option<Rank>, tag: Option<u64>) -> Option<(Rank, u64, usize)> {
        let (s, i) = self.find(src, tag)?;
        let m = &self.by_src[&s][i];
        Some((s, m.tag, m.data.len()))
    }

    /// Remove and return the earliest match.
    fn take(&mut self, src: Option<Rank>, tag: Option<u64>) -> Option<(Rank, u64, Vec<u8>, VTime)> {
        let (s, i) = self.find(src, tag)?;
        let m = self.by_src.get_mut(&s).expect("source present").remove(i).expect("index valid");
        self.len -= 1;
        Some((s, m.tag, m.data, m.ts))
    }
}

#[derive(Debug, Default)]
struct EpState {
    posted: Vec<PostedRecv>,
    completed: HashMap<u64, RecvMsg>,
    unexpected: UnexpectedQueue,
    rts_queue: VecDeque<RtsInfo>,
    sender_rdv: HashMap<u64, SenderRdv>,
    recv_rdv: HashMap<u64, RecvRdv>,
    sends_done: HashSet<u64>,
    /// Peers declared unreachable: new operations toward them fail fast.
    dead: HashSet<Rank>,
    /// Rendezvous sends resolved with an error (xid → dead peer).
    failed_sends: HashMap<u64, Rank>,
    /// Receive requests resolved with an error (req → dead peer).
    failed_reqs: HashMap<u64, Rank>,
}

/// A completed receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvMsg {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: u64,
    /// Payload length.
    pub len: usize,
    /// The payload (empty when received into a user buffer).
    pub data: Vec<u8>,
    /// Virtual completion time.
    pub ts: VTime,
}

photon_core::counter_registry! {
    /// Atomic counter registry backing [`MsgStats`].
    registry StatsInner;
    /// Baseline operation counters.
    snapshot MsgStats;
    table MSG_COUNTERS;
    counters {
        /// Eager sends.
        sends_eager,
        /// Rendezvous sends.
        sends_rdv,
        /// Completed receives.
        recvs,
        /// Messages that arrived before a matching receive was posted.
        unexpected,
        /// Per-transfer registrations performed (uncached-MPI behaviour).
        registrations,
        /// Payload bytes sent.
        bytes_sent,
    }
}

/// Cached registrations retained per size class. Releases past the cap are
/// deregistered so the cache cannot pin unbounded memory after a burst.
const REG_CACHE_PER_SIZE: usize = 8;

/// One rank of the baseline messaging job.
#[derive(Debug)]
pub struct MsgEndpoint {
    rank: Rank,
    n: usize,
    cfg: MsgConfig,
    nic: Arc<Nic>,
    qps: Vec<Qp>,
    clock: VClock,
    pool: MemoryRegion,
    slot_bytes: usize,
    stage: Mutex<MemoryRegion>,
    state: Mutex<EpState>,
    next_xid: AtomicU64,
    next_req: AtomicU64,
    reg_cache: Mutex<HashMap<usize, Vec<MemoryRegion>>>,
    stats: StatsInner,
}

/// A whole baseline job over one fabric.
#[derive(Debug)]
pub struct MsgCluster {
    fabric: Cluster,
    endpoints: Vec<Arc<MsgEndpoint>>,
}

impl MsgCluster {
    /// Build an `n`-rank job over a fresh cluster using `model`.
    pub fn new(n: usize, model: NetworkModel, cfg: MsgConfig) -> MsgCluster {
        Self::with_fabric(Cluster::new(n, model), cfg)
    }

    /// Build over a pre-constructed fabric.
    pub fn with_fabric(fabric: Cluster, cfg: MsgConfig) -> MsgCluster {
        let n = fabric.len();
        let endpoints = (0..n)
            .map(|i| Arc::new(MsgEndpoint::init(i, &fabric, cfg).expect("endpoint init")))
            .collect();
        MsgCluster { fabric, endpoints }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True for an empty job.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The endpoint for `rank`.
    pub fn rank(&self, rank: Rank) -> &Arc<MsgEndpoint> {
        &self.endpoints[rank]
    }

    /// All endpoints.
    pub fn ranks(&self) -> &[Arc<MsgEndpoint>] {
        &self.endpoints
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Cluster {
        &self.fabric
    }

    /// Reset virtual time (benchmark repetitions).
    pub fn reset_time(&self) {
        self.fabric.switch().reset_time();
        for e in &self.endpoints {
            e.clock.reset();
        }
    }
}

impl MsgEndpoint {
    fn init(rank: Rank, fabric: &Cluster, cfg: MsgConfig) -> Result<MsgEndpoint> {
        let n = fabric.len();
        let nic = Arc::clone(fabric.nic(rank));
        let qps = (0..n).map(|j| nic.create_qp(j)).collect::<photon_fabric::Result<Vec<_>>>()?;
        let slot_bytes = HDR + cfg.eager_threshold;
        let pool = nic.register(cfg.pool_slots * slot_bytes, Access::ALL)?;
        let stage = nic.register(slot_bytes, Access::LOCAL)?;
        let ep = MsgEndpoint {
            rank,
            n,
            cfg,
            nic,
            qps,
            clock: VClock::new(),
            pool,
            slot_bytes,
            stage: Mutex::new(stage),
            state: Mutex::new(EpState::default()),
            next_xid: AtomicU64::new(1),
            next_req: AtomicU64::new(1),
            reg_cache: Mutex::new(HashMap::new()),
            stats: StatsInner::default(),
        };
        for slot in 0..cfg.pool_slots {
            ep.repost_slot(slot)?;
        }
        Ok(ep)
    }

    fn repost_slot(&self, slot: usize) -> Result<()> {
        self.nic.post_recv(RecvWr {
            wr_id: slot as u64,
            local: MrSlice::new(&self.pool, slot * self.slot_bytes, self.slot_bytes),
        })?;
        Ok(())
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Ranks in the job.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.clock.now()
    }

    /// Model `ns` of local computation.
    pub fn elapse(&self, ns: u64) -> VTime {
        self.clock.advance(ns)
    }

    /// Operation statistics.
    pub fn stats(&self) -> MsgStats {
        self.stats.snapshot()
    }

    /// Register a buffer for the zero-copy variants, charging registration
    /// cost.
    pub fn register_buffer(&self, len: usize) -> Result<MsgBuffer> {
        let b = MsgBuffer::register(&self.nic, len)?;
        self.clock.advance(self.nic.registration_cost_ns(len));
        Ok(b)
    }

    fn check_rank(&self, peer: Rank) -> Result<()> {
        if peer >= self.n {
            return Err(MsgError::InvalidRank(peer));
        }
        Ok(())
    }

    // -------------------------------------------------------- peer failure
    //
    // The baseline has no health machine or reconnection probes (contrast
    // photon-core): the first post that hits a dead or partitioned peer
    // fails, the peer is declared unreachable, and every pending operation
    // bound to it — rendezvous sends awaiting CTS, receives matched to that
    // source, parked RTS announcements — is resolved with
    // [`MsgError::PeerUnreachable`]. Nothing hangs; nothing retries.

    /// True if `peer` has been declared unreachable.
    pub fn peer_unreachable(&self, peer: Rank) -> bool {
        self.state.lock().dead.contains(&peer)
    }

    /// Declare `peer` unreachable and fail everything pending toward it.
    /// Idempotent.
    fn mark_peer_dead(&self, peer: Rank) {
        let mut orphans: Vec<MemoryRegion> = Vec::new();
        {
            let mut st = self.state.lock();
            if !st.dead.insert(peer) {
                return;
            }
            // Rendezvous sends whose CTS can never arrive.
            let xids: Vec<u64> =
                st.sender_rdv.iter().filter(|(_, r)| r.peer == peer).map(|(&x, _)| x).collect();
            for x in xids {
                let rdv = st.sender_rdv.remove(&x).expect("xid present");
                if rdv.owned {
                    orphans.push(rdv.region);
                }
                st.failed_sends.insert(x, peer);
            }
            // Receives bound to the dead source. Wildcard receives stay
            // posted: another peer can still match them.
            let mut i = 0;
            while i < st.posted.len() {
                if st.posted[i].src == Some(peer) {
                    let p = st.posted.remove(i);
                    st.failed_reqs.insert(p.req, peer);
                } else {
                    i += 1;
                }
            }
            // In-flight rendezvous receives whose FIN can never arrive.
            let xids: Vec<u64> =
                st.recv_rdv.iter().filter(|(_, r)| r.src == peer).map(|(&x, _)| x).collect();
            for x in xids {
                let rdv = st.recv_rdv.remove(&x).expect("xid present");
                if rdv.owned {
                    orphans.push(rdv.region);
                }
                st.failed_reqs.insert(rdv.req, peer);
            }
            // Unmatched RTS announcements from the dead peer are garbage.
            st.rts_queue.retain(|r| r.src != peer);
        }
        for r in orphans {
            let _ = self.release_region(r);
        }
    }

    /// Map a failed post toward `peer`: connectivity errors declare the
    /// peer dead (resolving all its pending state) and become
    /// [`MsgError::PeerUnreachable`]; everything else passes through.
    fn fail_post(&self, peer: Rank, e: MsgError) -> MsgError {
        if matches!(e, MsgError::Fabric(photon_fabric::FabricError::PeerUnreachable { .. })) {
            self.mark_peer_dead(peer);
            MsgError::PeerUnreachable(peer)
        } else {
            e
        }
    }

    /// Fast-fail guard for new operations toward a known-dead peer.
    fn check_peer_alive(&self, peer: Rank) -> Result<()> {
        if self.state.lock().dead.contains(&peer) {
            return Err(MsgError::PeerUnreachable(peer));
        }
        Ok(())
    }

    /// Fail pending operations bound to peers the fault plan has since
    /// declared dead. Detects *silent* death — a receiver blocked on a
    /// crashed sender would otherwise spin to its timeout without ever
    /// posting toward the peer. Partitions are not scanned for: they may
    /// heal, and the pending operation can still complete afterwards.
    fn scan_dead_peers(&self) {
        let now = self.clock.now();
        for p in 0..self.n {
            if p != self.rank
                && self.nic.peer_status(self.qps[p], now) == Some(WcStatus::RemoteDead)
            {
                self.mark_peer_dead(p);
            }
        }
    }

    fn copy_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.cfg.copy_ps_per_byte).div_ceil(1000)
    }

    /// Acquire an internally managed registered region of exactly `len`
    /// bytes: from the cache when enabled (free), else a fresh registration
    /// (charged to the virtual clock and counted).
    fn acquire_region(&self, len: usize) -> Result<MemoryRegion> {
        if self.cfg.registration_cache {
            if let Some(r) = self.reg_cache.lock().get_mut(&len).and_then(Vec::pop) {
                return Ok(r);
            }
        }
        let r = self.nic.register(len, Access::ALL)?;
        self.clock.advance(self.nic.registration_cost_ns(len));
        StatsInner::bump(&self.stats.registrations);
        Ok(r)
    }

    /// Return an internally managed region: to the cache when enabled and
    /// its size bucket has room, otherwise deregister. The per-size cap
    /// keeps a burst of concurrent transfers from pinning memory forever —
    /// the cache bounds steady-state reuse, it is not a leak.
    fn release_region(&self, r: MemoryRegion) -> Result<()> {
        if self.cfg.registration_cache {
            let mut cache = self.reg_cache.lock();
            let bucket = cache.entry(r.len()).or_default();
            if bucket.len() < REG_CACHE_PER_SIZE {
                bucket.push(r);
                return Ok(());
            }
        }
        self.nic.mrs().deregister(&r)?;
        Ok(())
    }

    pub(crate) fn internal_gen(&self) -> u64 {
        self.next_xid.fetch_add(1, Ordering::Relaxed)
    }

    // ------------------------------------------------------------- sending

    /// Blocking send of `data` to `peer` with `tag`. Small messages go
    /// eager; large ones rendezvous with a per-transfer registration (the
    /// uncached-MPI cost model).
    pub fn send(&self, peer: Rank, data: &[u8], tag: u64) -> Result<()> {
        self.check_rank(peer)?;
        if data.len() <= self.cfg.eager_threshold {
            self.send_eager(peer, tag, data)
        } else {
            let region = self.acquire_region(data.len())?;
            region.write_at(0, data);
            self.clock.advance(self.copy_ns(data.len()));
            self.send_rendezvous(peer, region, 0, data.len(), tag, true)
        }
    }

    /// Blocking zero-copy send from a pre-registered buffer.
    pub fn send_from(
        &self,
        peer: Rank,
        buf: &MsgBuffer,
        off: usize,
        len: usize,
        tag: u64,
    ) -> Result<()> {
        self.check_rank(peer)?;
        buf.check(off, len)?;
        if len <= self.cfg.eager_threshold {
            let data = buf.to_vec(off, len);
            self.send_eager(peer, tag, &data)
        } else {
            self.send_rendezvous(peer, buf.region().clone(), off, len, tag, false)
        }
    }

    fn send_eager(&self, peer: Rank, tag: u64, data: &[u8]) -> Result<()> {
        self.check_peer_alive(peer)?;
        let h =
            Header { kind: MsgKind::Eager, tag, size: data.len() as u64, xid: 0, addr: 0, rkey: 0 };
        {
            let stage = self.stage.lock();
            stage.write_at(0, &h.encode());
            if !data.is_empty() {
                stage.write_at(HDR, data);
                self.clock.advance(self.copy_ns(data.len()));
            }
            let wr = SendWr::unsignaled(WrOp::Send {
                local: MrSlice::new(&stage, 0, HDR + data.len()),
                imm: None,
            });
            self.nic
                .post_send(self.qps[peer], wr, self.clock.now())
                .map_err(|e| self.fail_post(peer, e.into()))?;
        }
        StatsInner::bump(&self.stats.sends_eager);
        StatsInner::add(&self.stats.bytes_sent, data.len() as u64);
        Ok(())
    }

    fn post_ctrl(&self, peer: Rank, h: Header) -> Result<()> {
        let stage = self.stage.lock();
        stage.write_at(0, &h.encode());
        let wr = SendWr::unsignaled(WrOp::Send { local: MrSlice::new(&stage, 0, HDR), imm: None });
        self.nic
            .post_send(self.qps[peer], wr, self.clock.now())
            .map_err(|e| self.fail_post(peer, e.into()))?;
        Ok(())
    }

    fn send_rendezvous(
        &self,
        peer: Rank,
        region: MemoryRegion,
        off: usize,
        len: usize,
        tag: u64,
        owned: bool,
    ) -> Result<()> {
        let xid = self.start_rendezvous(peer, region, off, len, tag, owned)?;
        self.wait_send_xid(xid)
    }

    /// Kick off a rendezvous send (RTS posted); returns its transfer id.
    fn start_rendezvous(
        &self,
        peer: Rank,
        region: MemoryRegion,
        off: usize,
        len: usize,
        tag: u64,
        owned: bool,
    ) -> Result<u64> {
        self.check_peer_alive(peer)?;
        let xid = ((self.rank as u64) << 48) | self.next_xid.fetch_add(1, Ordering::Relaxed);
        self.state.lock().sender_rdv.insert(xid, SenderRdv { peer, region, off, len, owned });
        self.post_ctrl(
            peer,
            Header { kind: MsgKind::Rts, tag, size: len as u64, xid, addr: 0, rkey: 0 },
        )?;
        StatsInner::bump(&self.stats.sends_rdv);
        StatsInner::add(&self.stats.bytes_sent, len as u64);
        Ok(xid)
    }

    /// Block until rendezvous `xid`'s data + FIN were injected. Resolves
    /// with [`MsgError::PeerUnreachable`] if the peer died mid-handshake.
    pub(crate) fn wait_send_xid(&self, xid: u64) -> Result<()> {
        self.blocking("rendezvous clear-to-send", |s| {
            let mut st = s.state.lock();
            if let Some(peer) = st.failed_sends.remove(&xid) {
                return Err(MsgError::PeerUnreachable(peer));
            }
            Ok(st.sends_done.remove(&xid).then_some(()))
        })
    }

    /// Consume the done-flag of rendezvous `xid` if set (nonblocking);
    /// errors if the transfer was resolved by peer failure instead.
    pub(crate) fn send_xid_done(&self, xid: u64) -> Result<bool> {
        let mut st = self.state.lock();
        if let Some(peer) = st.failed_sends.remove(&xid) {
            return Err(MsgError::PeerUnreachable(peer));
        }
        Ok(st.sends_done.remove(&xid))
    }

    /// Post an owned-landing receive request (nonblocking API support).
    pub(crate) fn post_owned_recv(&self, src: Option<Rank>, tag: Option<u64>) -> Result<u64> {
        self.post_recv_req(src, tag, Landing::Owned)
    }

    /// Blocking completion of request `req` (nonblocking API support).
    pub(crate) fn wait_req_pub(&self, req: u64) -> Result<RecvMsg> {
        self.wait_req(req)
    }

    /// Take request `req`'s completed message if present (nonblocking);
    /// errors if the request was resolved by peer failure instead.
    pub(crate) fn take_completed(&self, req: u64) -> Result<Option<RecvMsg>> {
        let m = {
            let mut st = self.state.lock();
            if let Some(peer) = st.failed_reqs.remove(&req) {
                return Err(MsgError::PeerUnreachable(peer));
            }
            match st.completed.remove(&req) {
                Some(m) => m,
                None => return Ok(None),
            }
        };
        self.clock.advance_to(m.ts);
        StatsInner::bump(&self.stats.recvs);
        Ok(Some(m))
    }

    /// Start a send without blocking: eager sends complete at post
    /// (returns `None`); large ones return the rendezvous id to wait on.
    pub(crate) fn start_send(&self, peer: Rank, data: &[u8], tag: u64) -> Result<Option<u64>> {
        self.check_rank(peer)?;
        if data.len() <= self.cfg.eager_threshold {
            self.send_eager(peer, tag, data)?;
            Ok(None)
        } else {
            let region = self.acquire_region(data.len())?;
            region.write_at(0, data);
            self.clock.advance(self.copy_ns(data.len()));
            Ok(Some(self.start_rendezvous(peer, region, 0, data.len(), tag, true)?))
        }
    }

    // ----------------------------------------------------------- receiving

    /// Blocking receive. `src`/`tag` of `None` are wildcards. Returns the
    /// payload as an owned `Vec` (eager: one bounce-buffer copy; rendezvous:
    /// per-transfer registration of the landing buffer).
    pub fn recv(&self, src: Option<Rank>, tag: Option<u64>) -> Result<RecvMsg> {
        let req = self.post_recv_req(src, tag, Landing::Owned)?;
        self.wait_req(req)
    }

    /// Blocking receive into a pre-registered buffer (zero-copy rendezvous
    /// path; eager payloads are copied in).
    pub fn recv_into(
        &self,
        buf: &MsgBuffer,
        off: usize,
        cap: usize,
        src: Option<Rank>,
        tag: Option<u64>,
    ) -> Result<RecvMsg> {
        buf.check(off, cap)?;
        let req =
            self.post_recv_req(src, tag, Landing::User { region: buf.region().clone(), off, cap })?;
        self.wait_req(req)
    }

    /// Non-blocking envelope probe (`MPI_Iprobe` analogue): reports the
    /// `(src, tag, len)` of the first queued message matching the pattern
    /// without consuming it.
    pub fn probe(&self, src: Option<Rank>, tag: Option<u64>) -> Result<Option<(Rank, u64, usize)>> {
        self.progress()?;
        let st = self.state.lock();
        Ok(st.unexpected.peek(src, tag).or_else(|| {
            st.rts_queue
                .iter()
                .find(|r| src.is_none_or(|w| w == r.src) && tag.is_none_or(|w| w == r.tag))
                .map(|r| (r.src, r.tag, r.size))
        }))
    }

    /// Non-blocking probe-and-receive: `Ok(None)` if nothing matches yet.
    pub fn try_recv(&self, src: Option<Rank>, tag: Option<u64>) -> Result<Option<RecvMsg>> {
        self.progress()?;
        let mut st = self.state.lock();
        if let Some((s, t, data, ts)) = st.unexpected.take(src, tag) {
            drop(st);
            self.clock.advance(self.copy_ns(data.len()));
            self.clock.advance_to(ts);
            StatsInner::bump(&self.stats.recvs);
            return Ok(Some(RecvMsg { src: s, tag: t, len: data.len(), data, ts }));
        }
        Ok(None)
    }

    fn post_recv_req(&self, src: Option<Rank>, tag: Option<u64>, landing: Landing) -> Result<u64> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let req = self.next_req.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        if let Some((s, t, data, ts)) = st.unexpected.take(src, tag) {
            drop(st);
            self.complete_eager(req, s, t, data, ts, landing)?;
            return Ok(req);
        }
        if let Some(pos) = st
            .rts_queue
            .iter()
            .position(|r| src.is_none_or(|w| w == r.src) && tag.is_none_or(|w| w == r.tag))
        {
            let rts = st.rts_queue.remove(pos).expect("position valid");
            drop(st);
            self.start_cts(req, rts, landing)?;
            return Ok(req);
        }
        // Nothing queued can satisfy it: a source known to be dead makes
        // the request unsatisfiable, so fail now rather than park forever.
        if let Some(s) = src {
            if st.dead.contains(&s) {
                return Err(MsgError::PeerUnreachable(s));
            }
        }
        st.posted.push(PostedRecv { req, src, tag, landing });
        Ok(req)
    }

    fn wait_req(&self, req: u64) -> Result<RecvMsg> {
        let msg = self.blocking("receive completion", |s| {
            let mut st = s.state.lock();
            if let Some(peer) = st.failed_reqs.remove(&req) {
                return Err(MsgError::PeerUnreachable(peer));
            }
            Ok(st.completed.remove(&req))
        })?;
        self.clock.advance_to(msg.ts);
        StatsInner::bump(&self.stats.recvs);
        Ok(msg)
    }

    fn complete_eager(
        &self,
        req: u64,
        src: Rank,
        tag: u64,
        data: Vec<u8>,
        ts: VTime,
        landing: Landing,
    ) -> Result<()> {
        // Tag matching and the bounce-buffer copy are the two-sided tax.
        self.clock.advance_to(ts);
        self.clock.advance(self.cfg.match_overhead_ns);
        let done = self.clock.advance(self.copy_ns(data.len()));
        let msg = match landing {
            Landing::Owned => RecvMsg { src, tag, len: data.len(), data, ts: done },
            Landing::User { region, off, cap } => {
                if data.len() > cap {
                    return Err(MsgError::TruncatedReceive { incoming: data.len(), capacity: cap });
                }
                region.write_at(off, &data);
                RecvMsg { src, tag, len: data.len(), data: Vec::new(), ts: done }
            }
        };
        self.state.lock().completed.insert(req, msg);
        Ok(())
    }

    fn start_cts(&self, req: u64, rts: RtsInfo, landing: Landing) -> Result<()> {
        self.clock.advance(self.cfg.match_overhead_ns);
        let (region, off, owned) = match landing {
            Landing::Owned => (self.acquire_region(rts.size)?, 0usize, true),
            Landing::User { region, off, cap } => {
                if rts.size > cap {
                    return Err(MsgError::TruncatedReceive { incoming: rts.size, capacity: cap });
                }
                (region, off, false)
            }
        };
        let h = Header {
            kind: MsgKind::Cts,
            tag: rts.tag,
            size: rts.size as u64,
            xid: rts.xid,
            addr: region.base_addr() + off as u64,
            rkey: region.rkey(),
        };
        self.state.lock().recv_rdv.insert(
            rts.xid,
            RecvRdv { req, src: rts.src, tag: rts.tag, size: rts.size, region, off, owned },
        );
        self.clock.advance_to(rts.ts);
        match self.post_ctrl(rts.src, h) {
            // The sender died after its RTS: `fail_post` already resolved
            // the just-parked transfer (and `req`) via `mark_peer_dead`.
            Err(MsgError::PeerUnreachable(_)) => Ok(()),
            r => r,
        }
    }

    // ------------------------------------------------------------ progress

    /// Drain the receive pool: match eager messages, advance rendezvous
    /// state machines, and resolve operations stranded by peer death.
    pub fn progress(&self) -> Result<()> {
        self.scan_dead_peers();
        loop {
            let comps = self.nic.poll_recv_cq_n(64);
            if comps.is_empty() {
                return Ok(());
            }
            for c in comps {
                let CompletionKind::RecvDone { src, len, .. } = c.kind else {
                    continue;
                };
                let slot = c.wr_id as usize;
                let bytes = self.pool.to_vec(slot * self.slot_bytes, len);
                self.repost_slot(slot)?;
                let Some(h) = Header::decode(&bytes) else {
                    return Err(MsgError::Protocol("undecodable message header"));
                };
                match h.kind {
                    MsgKind::Eager => {
                        let payload = bytes[HDR..HDR + h.size as usize].to_vec();
                        self.handle_eager(src, h.tag, payload, c.ts)?;
                    }
                    MsgKind::Rts => {
                        let rts = RtsInfo {
                            src,
                            tag: h.tag,
                            xid: h.xid,
                            size: h.size as usize,
                            ts: c.ts,
                        };
                        let matched = {
                            let mut st = self.state.lock();
                            match st.posted.iter().position(|p| p.matches(src, h.tag)) {
                                Some(pos) => Some((st.posted.remove(pos), rts)),
                                None => {
                                    st.rts_queue.push_back(rts);
                                    None
                                }
                            }
                        };
                        if let Some((p, rts)) = matched {
                            self.start_cts(p.req, rts, p.landing)?;
                        }
                    }
                    MsgKind::Cts => {
                        let rdv = {
                            let mut st = self.state.lock();
                            match st.sender_rdv.remove(&h.xid) {
                                Some(r) => r,
                                // A CTS racing our declaration of the peer's
                                // death: the transfer is already resolved.
                                None if st.dead.contains(&src)
                                    || st.failed_sends.contains_key(&h.xid) =>
                                {
                                    continue;
                                }
                                None => {
                                    return Err(MsgError::Protocol("CTS for unknown transfer"));
                                }
                            }
                        };
                        self.clock.advance_to(c.ts);
                        // Data write then FIN on the same QP: ordered. The
                        // write is signaled so the (blocking) sender's clock
                        // can advance to injection completion — an MPI-style
                        // send returns only when the source is reusable.
                        let wr_id = 0xD0_0000_0000_0000 | h.xid;
                        let wr = SendWr::new(
                            wr_id,
                            WrOp::Write {
                                local: MrSlice::new(&rdv.region, rdv.off, rdv.len),
                                remote: RemoteSlice { addr: h.addr, rkey: h.rkey, len: rdv.len },
                                imm: None,
                            },
                        );
                        let fin = Header {
                            kind: MsgKind::Fin,
                            tag: h.tag,
                            size: rdv.len as u64,
                            xid: h.xid,
                            addr: 0,
                            rkey: 0,
                        };
                        let posted = self
                            .nic
                            .post_send(self.qps[rdv.peer], wr, self.clock.now())
                            .map_err(|e| self.fail_post(rdv.peer, e.into()))
                            .and_then(|()| {
                                // The fabric is synchronous: the CQE is
                                // available now.
                                while let Some(wc) = self.nic.poll_send_cq() {
                                    if wc.wr_id == wr_id {
                                        self.clock.advance_to(wc.ts);
                                        break;
                                    }
                                }
                                self.post_ctrl(rdv.peer, fin)
                            });
                        match posted {
                            Ok(()) => {}
                            Err(MsgError::PeerUnreachable(p)) => {
                                // The peer died between its CTS and our
                                // data/FIN: resolve the send with an error.
                                self.state.lock().failed_sends.insert(h.xid, p);
                                if rdv.owned {
                                    let _ = self.release_region(rdv.region);
                                }
                                continue;
                            }
                            Err(e) => return Err(e),
                        }
                        if rdv.owned {
                            self.release_region(rdv.region)?;
                        }
                        self.state.lock().sends_done.insert(h.xid);
                    }
                    MsgKind::Fin => {
                        let rdv = self.state.lock().recv_rdv.remove(&h.xid);
                        let Some(rdv) = rdv else {
                            return Err(MsgError::Protocol("FIN for unknown transfer"));
                        };
                        let msg = if rdv.owned {
                            let data = rdv.region.to_vec(rdv.off, rdv.size);
                            self.release_region(rdv.region.clone())?;
                            self.clock.advance_to(c.ts);
                            let done = self.clock.advance(self.copy_ns(rdv.size));
                            RecvMsg { src: rdv.src, tag: rdv.tag, len: rdv.size, data, ts: done }
                        } else {
                            RecvMsg {
                                src: rdv.src,
                                tag: rdv.tag,
                                len: rdv.size,
                                data: Vec::new(),
                                ts: c.ts,
                            }
                        };
                        self.state.lock().completed.insert(rdv.req, msg);
                    }
                }
            }
        }
    }

    fn handle_eager(&self, src: Rank, tag: u64, payload: Vec<u8>, ts: VTime) -> Result<()> {
        let matched = {
            let mut st = self.state.lock();
            if let Some(pos) = st.posted.iter().position(|p| p.matches(src, tag)) {
                Some(st.posted.remove(pos))
            } else {
                st.unexpected.push(src, tag, payload.clone(), ts);
                StatsInner::bump(&self.stats.unexpected);
                None
            }
        };
        if let Some(p) = matched {
            self.complete_eager(p.req, src, tag, payload, ts, p.landing)?;
        }
        Ok(())
    }

    /// Spin, making progress, until `f` yields a value or the deadline
    /// passes.
    pub(crate) fn blocking<T>(
        &self,
        what: &'static str,
        mut f: impl FnMut(&Self) -> Result<Option<T>>,
    ) -> Result<T> {
        let deadline = Instant::now() + Duration::from_secs(self.cfg.wait_timeout_secs);
        let mut spins: u32 = 0;
        loop {
            self.progress()?;
            if let Some(v) = f(self)? {
                return Ok(v);
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
                if Instant::now() > deadline {
                    return Err(MsgError::Timeout(what));
                }
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> MsgCluster {
        MsgCluster::new(2, NetworkModel::ib_fdr(), MsgConfig::default())
    }

    #[test]
    fn eager_send_recv() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        e0.send(1, b"hello baseline", 5).unwrap();
        let m = e1.recv(Some(0), Some(5)).unwrap();
        assert_eq!(m.data, b"hello baseline");
        assert_eq!((m.src, m.tag, m.len), (0, 5, 14));
        assert!(m.ts.as_nanos() >= 700);
        assert_eq!(e0.stats().sends_eager, 1);
        assert_eq!(e1.stats().recvs, 1);
    }

    #[test]
    fn wildcard_receive() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        e0.send(1, b"any", 77).unwrap();
        let m = e1.recv(None, None).unwrap();
        assert_eq!((m.src, m.tag), (0, 77));
    }

    #[test]
    fn unexpected_messages_queue_in_order() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        for i in 0..5u64 {
            e0.send(1, &[i as u8], 100 + i).unwrap();
        }
        // Receive out of order by tag.
        let m = e1.recv(Some(0), Some(103)).unwrap();
        assert_eq!(m.data, vec![3]);
        // Then in order with wildcards.
        for expect in [0u8, 1, 2, 4] {
            let m = e1.recv(Some(0), None).unwrap();
            assert_eq!(m.data, vec![expect]);
        }
        assert!(e1.stats().unexpected >= 4);
    }

    #[test]
    fn rendezvous_large_transfer() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let len = 1 << 20;
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        std::thread::scope(|s| {
            s.spawn(|| e0.send(1, &data, 9).unwrap());
            s.spawn(|| {
                let m = e1.recv(Some(0), Some(9)).unwrap();
                assert_eq!(m.len, len);
                assert_eq!(m.data[..16], data[..16]);
                assert_eq!(m.data[len - 16..], data[len - 16..]);
            });
        });
        assert_eq!(e0.stats().sends_rdv, 1);
        assert_eq!(e0.stats().registrations, 1, "sender staged via a temp registration");
        assert_eq!(e1.stats().registrations, 1, "receiver landed via a temp registration");
    }

    #[test]
    fn zero_copy_rendezvous_via_buffers() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let len = 256 * 1024;
        let sbuf = e0.register_buffer(len).unwrap();
        let rbuf = e1.register_buffer(len).unwrap();
        sbuf.fill(0x3C);
        std::thread::scope(|s| {
            s.spawn(|| e0.send_from(1, &sbuf, 0, len, 4).unwrap());
            s.spawn(|| {
                let m = e1.recv_into(&rbuf, 0, len, Some(0), Some(4)).unwrap();
                assert_eq!(m.len, len);
                assert!(m.data.is_empty());
            });
        });
        assert_eq!(rbuf.to_vec(0, 16), vec![0x3C; 16]);
        // No per-transfer registrations on either side.
        assert_eq!(e0.stats().registrations, 0);
        assert_eq!(e1.stats().registrations, 0);
    }

    #[test]
    fn rts_before_recv_and_recv_before_rts() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let len = 64 * 1024;
        let data = vec![7u8; len];
        // RTS first (receiver late).
        std::thread::scope(|s| {
            s.spawn(|| e0.send(1, &data, 1).unwrap());
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                let m = e1.recv(Some(0), Some(1)).unwrap();
                assert_eq!(m.len, len);
            });
        });
        // Receiver first (sender late).
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                e1.send(0, &data, 2).unwrap()
            });
            s.spawn(|| {
                let m = e0.recv(Some(1), Some(2)).unwrap();
                assert_eq!(m.len, len);
            });
        });
    }

    #[test]
    fn try_recv_nonblocking() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        assert!(e1.try_recv(None, None).unwrap().is_none());
        e0.send(1, b"now", 3).unwrap();
        let m = e1.blocking("try_recv poll", |s| s.try_recv(None, None)).unwrap();
        assert_eq!(m.data, b"now");
    }

    #[test]
    fn truncated_receive_rejected() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let rbuf = e1.register_buffer(8).unwrap();
        e0.send(1, &[1u8; 32], 6).unwrap();
        // Wait until the message is queued, then match it into a tiny buffer.
        let err = e1.recv_into(&rbuf, 0, 8, Some(0), Some(6));
        assert!(matches!(err, Err(MsgError::TruncatedReceive { .. })));
    }

    #[test]
    fn invalid_rank_rejected() {
        let c = pair();
        assert!(matches!(c.rank(0).send(7, b"x", 0), Err(MsgError::InvalidRank(7))));
        assert!(matches!(c.rank(0).recv(Some(9), None), Err(MsgError::InvalidRank(9))));
    }

    #[test]
    fn probe_reports_envelope_without_consuming() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        assert_eq!(e1.probe(None, None).unwrap(), None);
        e0.send(1, &[1u8; 24], 9).unwrap();
        // Wait for arrival, probe repeatedly: not consumed.
        let env = e1.blocking("probe arrival", |s| s.probe(Some(0), Some(9))).unwrap();
        assert_eq!(env, (0, 9, 24));
        assert_eq!(e1.probe(None, None).unwrap(), Some((0, 9, 24)));
        let m = e1.recv(Some(0), Some(9)).unwrap();
        assert_eq!(m.len, 24);
        assert_eq!(e1.probe(None, None).unwrap(), None);
    }

    #[test]
    fn probe_sees_rendezvous_rts() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let len = 64 * 1024;
        std::thread::scope(|s| {
            s.spawn(|| e0.send(1, &vec![3u8; len], 10).unwrap());
            s.spawn(|| {
                let env = e1.blocking("rts arrival", |st| st.probe(Some(0), Some(10))).unwrap();
                assert_eq!(env, (0, 10, len));
                let m = e1.recv(Some(0), Some(10)).unwrap();
                assert_eq!(m.len, len);
            });
        });
    }

    #[test]
    fn matching_agrees_with_reference_model() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let mut runner = TestRunner::new(Config { cases: 32, ..Config::default() });
        runner
            .run(
                &(
                    proptest::collection::vec(0u64..4, 1..30), // send tags
                    proptest::collection::vec(proptest::option::of(0u64..4), 1..30), // recv tags (None = wildcard)
                ),
                |(send_tags, recv_tags)| {
                    let c = MsgCluster::new(2, NetworkModel::ideal(), MsgConfig::default());
                    let (e0, e1) = (c.rank(0), c.rank(1));
                    // Sender: message k carries its index as payload.
                    for (k, &tag) in send_tags.iter().enumerate() {
                        e0.send(1, &(k as u64).to_le_bytes(), tag).unwrap();
                    }
                    // Let everything become unexpected before matching, so
                    // the reference model (ordered queue scan) applies
                    // deterministically.
                    e1.blocking("drain", |s| {
                        s.progress()?;
                        Ok((s.state.lock().unexpected.len() == send_tags.len()).then_some(()))
                    })
                    .unwrap();
                    // Reference: first unconsumed message matching the tag.
                    let mut consumed = vec![false; send_tags.len()];
                    for want in recv_tags.iter() {
                        let expect = send_tags
                            .iter()
                            .enumerate()
                            .position(|(k, &t)| !consumed[k] && want.is_none_or(|w| w == t));
                        match expect {
                            Some(k) => {
                                let m = e1.recv(Some(0), *want).unwrap();
                                let got = u64::from_le_bytes(m.data[..8].try_into().unwrap());
                                prop_assert_eq!(got, k as u64, "wrong message matched");
                                consumed[k] = true;
                            }
                            None => {
                                // Nothing can match: try_recv must agree.
                                prop_assert!(e1.try_recv(Some(0), *want).unwrap().is_none());
                            }
                        }
                    }
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn reg_cache_is_bounded_per_size() {
        let cfg = MsgConfig { registration_cache: true, ..MsgConfig::default() };
        let c = MsgCluster::new(1, NetworkModel::ideal(), cfg);
        let e = c.rank(0);
        let nic_regions = e.nic.mrs().region_count();
        let burst = REG_CACHE_PER_SIZE + 4;
        let regions: Vec<_> = (0..burst).map(|_| e.acquire_region(4096).unwrap()).collect();
        assert_eq!(e.stats().registrations, burst as u64, "cold cache registers each");
        assert_eq!(e.nic.mrs().region_count(), nic_regions + burst);
        for r in regions {
            e.release_region(r).unwrap();
        }
        // Only the cap survives; the overflow was deregistered.
        assert_eq!(e.reg_cache.lock()[&4096].len(), REG_CACHE_PER_SIZE);
        assert_eq!(e.nic.mrs().region_count(), nic_regions + REG_CACHE_PER_SIZE);
        // Reacquiring the burst hits the cache first, then registers anew.
        let regions: Vec<_> = (0..burst).map(|_| e.acquire_region(4096).unwrap()).collect();
        assert_eq!(e.stats().registrations, (2 * burst - REG_CACHE_PER_SIZE) as u64);
        for r in regions {
            e.release_region(r).unwrap();
        }
    }

    #[test]
    fn peer_death_fails_sends_fast_and_resolves_posted_recvs() {
        use photon_fabric::VTime;
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        // A message delivered before the crash stays receivable.
        e0.send(1, b"pre-crash", 1).unwrap();
        c.fabric().switch().faults().kill_node_at(0, VTime(e1.now().as_nanos() + 1));
        assert_eq!(e1.recv(Some(0), Some(1)).unwrap().data, b"pre-crash");
        // A receive bound to the dead source resolves with an error
        // (detected by the progress-time scan), never a hang.
        let err = e1.recv(Some(0), Some(2)).unwrap_err();
        assert_eq!(err, MsgError::PeerUnreachable(0));
        assert!(e1.peer_unreachable(0));
        // New sends toward the dead peer fail fast.
        assert_eq!(e1.send(0, b"x", 3).unwrap_err(), MsgError::PeerUnreachable(0));
        // Large (rendezvous) sends too: no RTS can reach a dead peer.
        assert_eq!(e1.send(0, &vec![0u8; 64 * 1024], 4).unwrap_err(), MsgError::PeerUnreachable(0));
    }

    #[test]
    fn peer_death_mid_rendezvous_resolves_both_sides() {
        use photon_fabric::VTime;
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        // Sender posts its RTS, then the receiver dies before answering
        // with a CTS: the pending rendezvous send must resolve with an
        // error, not spin to the wall-clock timeout.
        let s = e0.isend(1, &vec![5u8; 64 * 1024], 7).unwrap();
        c.fabric().switch().faults().kill_node_at(1, VTime(e0.now().as_nanos() + 1));
        e0.elapse(2);
        assert_eq!(e0.wait_send(s).unwrap_err(), MsgError::PeerUnreachable(1));
        let _ = e1;
    }

    #[test]
    fn nonblocking_requests_surface_peer_death() {
        use photon_fabric::VTime;
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let mut r = e1.irecv(Some(0), Some(9)).unwrap();
        assert!(!e1.test_recv(&mut r).unwrap());
        c.fabric().switch().faults().kill_node_at(0, VTime(e1.now().as_nanos() + 1));
        e1.elapse(2);
        // The posted request is resolved by the dead-peer scan; both the
        // poll and the wait surface the error.
        let err = loop {
            match e1.test_recv(&mut r) {
                Ok(false) => continue,
                Ok(true) => panic!("receive from a dead peer cannot complete"),
                Err(e) => break e,
            }
        };
        assert_eq!(err, MsgError::PeerUnreachable(0));
        let _ = e0;
    }

    #[test]
    fn wildcard_recv_survives_another_peers_death() {
        use photon_fabric::VTime;
        let c = MsgCluster::new(3, NetworkModel::ib_fdr(), MsgConfig::default());
        let (e0, e1, e2) = (c.rank(0), c.rank(1), c.rank(2));
        // A wildcard receive is posted, rank 2 dies, rank 0 still sends:
        // the wildcard must stay posted and match the live sender.
        let mut r = e1.irecv(None, None).unwrap();
        c.fabric().switch().faults().kill_node_at(2, VTime(0));
        e1.progress().unwrap();
        assert!(e1.peer_unreachable(2));
        assert!(!e1.test_recv(&mut r).unwrap(), "wildcard recv must not be failed");
        e0.send(1, b"still here", 4).unwrap();
        let m = e1.wait_recv(r).unwrap();
        assert_eq!((m.src, m.data.as_slice()), (0, b"still here".as_slice()));
        let _ = e2;
    }

    #[test]
    fn pingpong_latency_exceeds_oneway_model() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..10u64 {
                    e0.send(1, &[0u8; 8], i).unwrap();
                    e0.recv(Some(1), Some(i)).unwrap();
                }
            });
            s.spawn(|| {
                for i in 0..10u64 {
                    e1.recv(Some(0), Some(i)).unwrap();
                    e1.send(0, &[0u8; 8], i).unwrap();
                }
            });
        });
        let m = NetworkModel::ib_fdr();
        // 10 round trips, each at least 2 * (o + L).
        assert!(c.rank(0).now().as_nanos() >= 20 * (m.send_overhead_ns + m.latency_ns));
    }
}
