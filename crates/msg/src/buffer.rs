//! Pre-registered application buffers for the zero-copy send/recv variants.

use crate::{MsgError, Result};
use photon_fabric::mr::Access;
use photon_fabric::{MemoryRegion, Nic};
use std::sync::Arc;

/// A registered buffer usable with [`crate::MsgEndpoint::send_from`] and
/// [`crate::MsgEndpoint::recv_into`].
#[derive(Debug, Clone)]
pub struct MsgBuffer {
    mr: MemoryRegion,
}

impl MsgBuffer {
    pub(crate) fn register(nic: &Arc<Nic>, len: usize) -> Result<MsgBuffer> {
        Ok(MsgBuffer { mr: nic.register(len, Access::ALL)? })
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.mr.len()
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.mr.is_empty()
    }

    /// Write `src` at `offset`.
    pub fn write_at(&self, offset: usize, src: &[u8]) {
        self.mr.write_at(offset, src);
    }

    /// Read into `dst` from `offset`.
    pub fn read_at(&self, offset: usize, dst: &mut [u8]) {
        self.mr.read_at(offset, dst);
    }

    /// Snapshot `len` bytes from `offset`.
    pub fn to_vec(&self, offset: usize, len: usize) -> Vec<u8> {
        self.mr.to_vec(offset, len)
    }

    /// Fill with `byte`.
    pub fn fill(&self, byte: u8) {
        self.mr.fill(byte);
    }

    /// The underlying region.
    pub(crate) fn region(&self) -> &MemoryRegion {
        &self.mr
    }

    /// Bounds check.
    pub fn check(&self, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len()) {
            return Err(MsgError::OutOfRange { offset, len, cap: self.len() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_fabric::{Cluster, NetworkModel};

    #[test]
    fn rw_and_bounds() {
        let c = Cluster::new(1, NetworkModel::ideal());
        let b = MsgBuffer::register(c.nic(0), 32).unwrap();
        b.write_at(0, b"baseline");
        assert_eq!(b.to_vec(0, 8), b"baseline");
        assert!(b.check(24, 8).is_ok());
        assert!(b.check(25, 8).is_err());
    }
}
