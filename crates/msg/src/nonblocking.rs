//! Nonblocking point-to-point (MPI `isend`/`irecv`/`wait`/`test` analogue).
//!
//! Requests are handles over the same engine state as the blocking calls:
//! `irecv` posts a matching request immediately; `isend` is eager-immediate
//! for small messages (the send buffer is copied out before return) and
//! deferred-rendezvous for large ones, completing when the CTS round trip
//! finishes.

use crate::endpoint::{MsgEndpoint, RecvMsg};
use crate::{Rank, Result};

/// A nonblocking receive in flight.
#[derive(Debug)]
pub struct RecvRequest {
    req: u64,
    done: Option<RecvMsg>,
}

/// A nonblocking send in flight.
#[derive(Debug)]
pub struct SendRequest {
    /// Rendezvous transfer id still outstanding, if any (eager sends
    /// complete immediately).
    xid: Option<u64>,
}

impl MsgEndpoint {
    /// Post a nonblocking receive; complete it with
    /// [`MsgEndpoint::wait_recv`] or poll with [`MsgEndpoint::test_recv`].
    pub fn irecv(&self, src: Option<Rank>, tag: Option<u64>) -> Result<RecvRequest> {
        let req = self.post_owned_recv(src, tag)?;
        Ok(RecvRequest { req, done: None })
    }

    /// Block until the receive completes.
    pub fn wait_recv(&self, mut r: RecvRequest) -> Result<RecvMsg> {
        if let Some(m) = r.done.take() {
            return Ok(m);
        }
        self.wait_req_pub(r.req)
    }

    /// Poll the receive: `Ok(true)` once complete (then use
    /// [`MsgEndpoint::wait_recv`] to take the message without blocking).
    pub fn test_recv(&self, r: &mut RecvRequest) -> Result<bool> {
        if r.done.is_some() {
            return Ok(true);
        }
        self.progress()?;
        if let Some(m) = self.take_completed(r.req)? {
            r.done = Some(m);
            return Ok(true);
        }
        Ok(false)
    }

    /// Post a nonblocking send of `data`. Small messages are injected
    /// eagerly before return (buffer immediately reusable); large ones
    /// start a rendezvous that [`MsgEndpoint::wait_send`] completes.
    pub fn isend(&self, peer: Rank, data: &[u8], tag: u64) -> Result<SendRequest> {
        let xid = self.start_send(peer, data, tag)?;
        Ok(SendRequest { xid })
    }

    /// Block until the send's source buffer is reusable.
    pub fn wait_send(&self, r: SendRequest) -> Result<()> {
        match r.xid {
            None => Ok(()),
            Some(xid) => self.wait_send_xid(xid),
        }
    }

    /// Poll the send: `Ok(true)` once the source buffer is reusable.
    /// A `true` result consumes the completion; pair with
    /// [`MsgEndpoint::wait_send`] afterwards (which then returns at once).
    pub fn test_send(&self, r: &mut SendRequest) -> Result<bool> {
        match r.xid {
            None => Ok(true),
            Some(xid) => {
                self.progress()?;
                if self.send_xid_done(xid)? {
                    r.xid = None;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Wait for all of a batch of receives (order preserved).
    pub fn wait_all_recv(&self, rs: Vec<RecvRequest>) -> Result<Vec<RecvMsg>> {
        rs.into_iter().map(|r| self.wait_recv(r)).collect()
    }

    /// Wait for all of a batch of sends.
    pub fn wait_all_send(&self, rs: Vec<SendRequest>) -> Result<()> {
        for r in rs {
            self.wait_send(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{MsgCluster, MsgConfig};
    use photon_fabric::NetworkModel;

    fn pair() -> MsgCluster {
        MsgCluster::new(2, NetworkModel::ib_fdr(), MsgConfig::default())
    }

    #[test]
    fn irecv_before_send_completes() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let mut r = e1.irecv(Some(0), Some(4)).unwrap();
        assert!(!e1.test_recv(&mut r).unwrap());
        e0.send(1, b"later", 4).unwrap();
        let m = e1.wait_recv(r).unwrap();
        assert_eq!(m.data, b"later");
    }

    #[test]
    fn eager_isend_completes_immediately() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let mut s = e0.isend(1, b"small", 1).unwrap();
        assert!(e0.test_send(&mut s).unwrap(), "eager send is done at post");
        e0.wait_send(s).unwrap();
        assert_eq!(e1.recv(Some(0), Some(1)).unwrap().data, b"small");
    }

    #[test]
    fn rendezvous_isend_overlaps_with_work() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        let len = 128 * 1024;
        let data = vec![9u8; len];
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let s = e0.isend(1, &data, 2).unwrap();
                // "Work" happens here while the rendezvous progresses.
                e0.elapse(10_000);
                e0.wait_send(s).unwrap();
            });
            scope.spawn(|| {
                let m = e1.recv(Some(0), Some(2)).unwrap();
                assert_eq!(m.len, len);
            });
        });
    }

    #[test]
    fn many_outstanding_requests_wait_all() {
        let c = pair();
        let (e0, e1) = (c.rank(0), c.rank(1));
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let sends: Vec<_> =
                    (0..20u64).map(|i| e0.isend(1, &[i as u8; 16], i).unwrap()).collect();
                e0.wait_all_send(sends).unwrap();
            });
            scope.spawn(|| {
                let recvs: Vec<_> =
                    (0..20u64).map(|i| e1.irecv(Some(0), Some(i)).unwrap()).collect();
                let msgs = e1.wait_all_recv(recvs).unwrap();
                for (i, m) in msgs.iter().enumerate() {
                    assert_eq!(m.data, vec![i as u8; 16]);
                }
            });
        });
    }
}
