//! Wire header for two-sided messages.

/// Header size prepended to every two-sided send.
pub const HDR: usize = 48;

/// Message classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Eager payload follows the header.
    Eager,
    /// Rendezvous request-to-send (no payload).
    Rts,
    /// Rendezvous clear-to-send: carries the landing descriptor.
    Cts,
    /// Rendezvous finished: the RDMA write has landed.
    Fin,
}

impl MsgKind {
    fn to_u8(self) -> u8 {
        match self {
            MsgKind::Eager => 1,
            MsgKind::Rts => 2,
            MsgKind::Cts => 3,
            MsgKind::Fin => 4,
        }
    }

    fn from_u8(v: u8) -> Option<MsgKind> {
        match v {
            1 => Some(MsgKind::Eager),
            2 => Some(MsgKind::Rts),
            3 => Some(MsgKind::Cts),
            4 => Some(MsgKind::Fin),
            _ => None,
        }
    }
}

/// A decoded message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Classification.
    pub kind: MsgKind,
    /// User tag (or internal collective tag).
    pub tag: u64,
    /// Payload size (eager) or transfer size (rendezvous).
    pub size: u64,
    /// Rendezvous transfer id.
    pub xid: u64,
    /// CTS: landing buffer address.
    pub addr: u64,
    /// CTS: landing buffer rkey.
    pub rkey: u32,
}

impl Header {
    /// Encode to the fixed wire format.
    pub fn encode(&self) -> [u8; HDR] {
        let mut b = [0u8; HDR];
        b[0] = self.kind.to_u8();
        b[8..16].copy_from_slice(&self.tag.to_le_bytes());
        b[16..24].copy_from_slice(&self.size.to_le_bytes());
        b[24..32].copy_from_slice(&self.xid.to_le_bytes());
        b[32..40].copy_from_slice(&self.addr.to_le_bytes());
        b[40..44].copy_from_slice(&self.rkey.to_le_bytes());
        b
    }

    /// Decode; `None` for an invalid kind byte.
    pub fn decode(b: &[u8]) -> Option<Header> {
        debug_assert!(b.len() >= HDR);
        Some(Header {
            kind: MsgKind::from_u8(b[0])?,
            tag: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            size: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            xid: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            addr: u64::from_le_bytes(b[32..40].try_into().unwrap()),
            rkey: u32::from_le_bytes(b[40..44].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let h = Header {
            kind: MsgKind::Cts,
            tag: 0xfeed,
            size: 1 << 20,
            xid: 42,
            addr: 0x1000_0100,
            rkey: 7,
        };
        assert_eq!(Header::decode(&h.encode()), Some(h));
        assert_eq!(Header::decode(&[0u8; HDR]), None);
    }

    proptest! {
        #[test]
        fn roundtrip_prop(k in 1u8..=4, tag in any::<u64>(), size in any::<u64>(),
                          xid in any::<u64>(), addr in any::<u64>(), rkey in any::<u32>()) {
            let h = Header { kind: MsgKind::from_u8(k).unwrap(), tag, size, xid, addr, rkey };
            prop_assert_eq!(Header::decode(&h.encode()), Some(h));
        }
    }
}
