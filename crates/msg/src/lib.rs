//! # photon-msg — the two-sided messaging baseline
//!
//! A deliberately classical tag-matched message-passing library (the shape
//! of an MPI point-to-point layer) over the same simulated RDMA fabric as
//! the Photon middleware.  It exists to reproduce the paper-era comparisons:
//! every latency/bandwidth/message-rate figure pits Photon's one-sided PWC
//! machinery against this baseline, so protocol differences — matching,
//! bounce-buffer copies, rendezvous handshakes, per-transfer registration —
//! are isolated from wire costs (identical by construction).
//!
//! Protocols:
//!
//! * **Eager** (small messages): header + payload in one two-sided `Send`
//!   into a pre-posted pool slot; the receiver matches `(src, tag)` against
//!   posted receives and copies the payload out of the slot (matched) or
//!   into an unexpected-message queue (unmatched).
//! * **Rendezvous** (large messages): `RTS(tag, size)` → receiver matches a
//!   posted receive, registers/provides a landing buffer, answers
//!   `CTS(descriptor)` → sender RDMA-writes the payload → `FIN` completes
//!   the receive.  The convenience [`MsgEndpoint::send`]/[`MsgEndpoint::recv`]
//!   path pays per-transfer registration, as an MPI without a registration
//!   cache would; [`MsgEndpoint::send_from`]/[`MsgEndpoint::recv_into`] use
//!   pre-registered [`MsgBuffer`]s for the zero-copy variant.
//!
//! Collectives (barrier, broadcast, reduce/allreduce) are built from
//! send/recv with internal tags, mirroring how the Photon collectives are
//! built from PWC — so collective comparisons are protocol-level, not
//! implementation-trick-level.
//!
//! ```
//! use photon_msg::{MsgCluster, MsgConfig};
//! use photon_fabric::NetworkModel;
//!
//! let c = MsgCluster::new(2, NetworkModel::ib_fdr(), MsgConfig::default());
//! c.rank(0).send(1, b"two-sided", 7).unwrap();
//! let m = c.rank(1).recv(Some(0), Some(7)).unwrap();
//! assert_eq!(m.data, b"two-sided");
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod collectives;
pub mod endpoint;
pub mod nonblocking;
pub mod wire;

pub use buffer::MsgBuffer;
pub use endpoint::{MsgCluster, MsgEndpoint, RecvMsg};
pub use nonblocking::{RecvRequest, SendRequest};

use photon_fabric::FabricError;
use std::fmt;

/// A rank in the messaging job.
pub type Rank = usize;

/// Errors surfaced by the baseline library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgError {
    /// Underlying fabric error.
    Fabric(FabricError),
    /// Rank out of range.
    InvalidRank(Rank),
    /// Receive buffer smaller than the incoming message.
    TruncatedReceive {
        /// Incoming message size.
        incoming: usize,
        /// Receiver capacity.
        capacity: usize,
    },
    /// A blocking wait exceeded the wall-clock deadline.
    Timeout(&'static str),
    /// The peer crashed or the path to it broke: the operation cannot
    /// complete, and every pending operation bound to that peer has been
    /// resolved with this error (no silent hangs). The baseline has no
    /// reconnection machinery — contrast with photon-core's health machine.
    PeerUnreachable(Rank),
    /// Peers disagree about a collective.
    Protocol(&'static str),
    /// Access outside a buffer's bounds.
    OutOfRange {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Buffer capacity.
        cap: usize,
    },
}

impl fmt::Display for MsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgError::Fabric(e) => write!(f, "fabric: {e}"),
            MsgError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MsgError::TruncatedReceive { incoming, capacity } => {
                write!(f, "message of {incoming} bytes exceeds receive capacity {capacity}")
            }
            MsgError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            MsgError::PeerUnreachable(r) => write!(f, "peer rank {r} is unreachable"),
            MsgError::Protocol(what) => write!(f, "protocol violation: {what}"),
            MsgError::OutOfRange { offset, len, cap } => {
                write!(f, "range [{offset}, +{len}) outside buffer of {cap} bytes")
            }
        }
    }
}

impl std::error::Error for MsgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MsgError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for MsgError {
    fn from(e: FabricError) -> Self {
        MsgError::Fabric(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, MsgError>;

/// Tunables of the baseline library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgConfig {
    /// Messages at or below this size take the eager path.
    pub eager_threshold: usize,
    /// Pre-posted receive-pool slots.
    pub pool_slots: usize,
    /// Modeled CPU copy throughput (picoseconds per byte), matching the
    /// Photon config default so copy costs are comparable.
    pub copy_ps_per_byte: u64,
    /// Modeled software cost of tag matching + receive-request completion
    /// per message, nanoseconds. This is the receive-path work one-sided
    /// delivery avoids; Photon's ledger poll is charged nothing by symmetry
    /// (it is a single local memory read).
    pub match_overhead_ns: u64,
    /// Wall-clock seconds a blocking wait may spin (deadlock guard).
    pub wait_timeout_secs: u64,
    /// Keep a size-keyed pool of registered regions for the convenience
    /// send/recv paths instead of registering per transfer (the classic MPI
    /// registration-cache optimization; ablated by experiment E12).
    pub registration_cache: bool,
}

impl Default for MsgConfig {
    fn default() -> Self {
        MsgConfig {
            eager_threshold: 8192,
            pool_slots: 256,
            copy_ps_per_byte: 25,
            match_overhead_ns: 150,
            wait_timeout_secs: 30,
            registration_cache: false,
        }
    }
}

/// Internal tag namespace for collectives (top byte set).
pub(crate) const RESERVED_TAG_BASE: u64 = 0xFF00_0000_0000_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(MsgError::from(FabricError::CqOverflow).to_string().contains("fabric"));
        assert!(MsgError::TruncatedReceive { incoming: 10, capacity: 5 }
            .to_string()
            .contains("exceeds"));
        assert_eq!(MsgError::PeerUnreachable(2).to_string(), "peer rank 2 is unreachable");
    }

    #[test]
    fn default_config_sane() {
        let c = MsgConfig::default();
        assert!(c.eager_threshold > 0 && c.pool_slots > 1);
    }
}
