//! Collectives for the baseline, built from tag-matched send/recv.

use crate::{MsgEndpoint, MsgError, Rank, Result, RESERVED_TAG_BASE};

const KIND_BARRIER: u64 = 1;
const KIND_BCAST: u64 = 2;
const KIND_REDUCE: u64 = 3;
const KIND_ALLREDUCE_BCAST: u64 = 4;

fn ctag(kind: u64, gen: u64, round: u64) -> u64 {
    RESERVED_TAG_BASE | (kind << 48) | ((gen & 0xFFFF_FFFF) << 8) | (round & 0xFF)
}

impl MsgEndpoint {
    /// Dissemination barrier over send/recv.
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let gen = self.internal_gen();
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < n {
            let dst = (self.rank() + dist) % n;
            let src = (self.rank() + n - dist) % n;
            self.send(dst, &[], ctag(KIND_BARRIER, gen, round))?;
            self.recv(Some(src), Some(ctag(KIND_BARRIER, gen, round)))?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Binomial broadcast from `root`.
    pub fn bcast(&self, root: Rank, data: &mut Vec<u8>) -> Result<()> {
        if root >= self.size() {
            return Err(MsgError::InvalidRank(root));
        }
        let gen = self.internal_gen();
        self.bcast_internal(root, data, KIND_BCAST, gen)
    }

    fn bcast_internal(&self, root: Rank, data: &mut Vec<u8>, kind: u64, gen: u64) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let tag = ctag(kind, gen, 0);
        let vr = (self.rank() + n - root) % n;
        let mut recv_mask = 1usize;
        if vr != 0 {
            while vr & recv_mask == 0 {
                recv_mask <<= 1;
            }
            let parent = (vr - recv_mask + root) % n;
            let m = self.recv(Some(parent), Some(tag))?;
            *data = m.data;
        } else {
            recv_mask = n.next_power_of_two();
        }
        let mut m = recv_mask >> 1;
        while m >= 1 {
            if vr + m < n {
                let child = (vr + m + root) % n;
                self.send(child, data, tag)?;
            }
            if m == 1 {
                break;
            }
            m >>= 1;
        }
        Ok(())
    }

    /// Allreduce (element-wise wrapping sum) over `u64`: binomial reduce to
    /// rank 0, then broadcast.
    pub fn allreduce_u64_sum(&self, data: &mut [u64]) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let gen = self.internal_gen();
        let vr = self.rank();
        let mut mask = 1usize;
        let mut round = 0u64;
        while mask < n {
            if vr & mask != 0 {
                let parent = vr - mask;
                let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.send(parent, &bytes, ctag(KIND_REDUCE, gen, round))?;
                break;
            } else if vr + mask < n {
                let m = self.recv(Some(vr + mask), Some(ctag(KIND_REDUCE, gen, round)))?;
                if m.data.len() != data.len() * 8 {
                    return Err(MsgError::Protocol("allreduce length mismatch"));
                }
                for (d, c) in data.iter_mut().zip(m.data.chunks_exact(8)) {
                    *d = d.wrapping_add(u64::from_le_bytes(c.try_into().unwrap()));
                }
            }
            mask <<= 1;
            round += 1;
        }
        let mut bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.bcast_internal(0, &mut bytes, KIND_ALLREDUCE_BCAST, gen)?;
        for (d, c) in data.iter_mut().zip(bytes.chunks_exact(8)) {
            *d = u64::from_le_bytes(c.try_into().unwrap());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgCluster, MsgConfig};
    use photon_fabric::NetworkModel;

    fn run_all(c: &MsgCluster, f: impl Fn(&MsgEndpoint) + Sync) {
        std::thread::scope(|s| {
            for e in c.ranks() {
                let f = &f;
                s.spawn(move || f(e));
            }
        });
    }

    #[test]
    fn barrier_various_sizes() {
        for n in [1, 2, 3, 5, 8] {
            let c = MsgCluster::new(n, NetworkModel::ib_fdr(), MsgConfig::default());
            run_all(&c, |e| {
                for _ in 0..3 {
                    e.barrier().unwrap();
                }
            });
        }
    }

    #[test]
    fn bcast_all_roots() {
        let n = 4;
        for root in 0..n {
            let c = MsgCluster::new(n, NetworkModel::ib_fdr(), MsgConfig::default());
            run_all(&c, |e| {
                let mut data = if e.rank() == root { vec![9u8; 33] } else { Vec::new() };
                e.bcast(root, &mut data).unwrap();
                assert_eq!(data, vec![9u8; 33]);
            });
        }
    }

    #[test]
    fn allreduce_sums() {
        let n = 6;
        let c = MsgCluster::new(n, NetworkModel::ib_fdr(), MsgConfig::default());
        run_all(&c, |e| {
            let mut v = vec![e.rank() as u64, 2 * e.rank() as u64];
            e.allreduce_u64_sum(&mut v).unwrap();
            assert_eq!(v, vec![15, 30]);
        });
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        let n = 3;
        let c = MsgCluster::new(n, NetworkModel::ib_fdr(), MsgConfig::default());
        run_all(&c, |e| {
            let next = (e.rank() + 1) % 3;
            let prev = (e.rank() + 2) % 3;
            e.send(next, &[e.rank() as u8], 1000).unwrap();
            e.barrier().unwrap();
            let m = e.recv(Some(prev), Some(1000)).unwrap();
            assert_eq!(m.data, vec![prev as u8]);
            e.barrier().unwrap();
        });
    }
}
