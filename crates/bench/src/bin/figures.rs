//! Regenerate the evaluation figures/tables.
//!
//! ```text
//! figures            # run everything
//! figures e1 e6      # run a subset
//! figures --list     # show available experiment ids
//! ```
//!
//! Each experiment prints an aligned table and writes `results/<id>.csv`.

use photon_bench::experiments;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.is_empty() {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let out_dir = PathBuf::from("results");
    for id in ids {
        let Some(table) = ({
            let start = Instant::now();
            let t = experiments::run(id);
            if let Some(t) = &t {
                eprintln!("[{} finished in {:.1}s]", t.id, start.elapsed().as_secs_f64());
            }
            t
        }) else {
            eprintln!("unknown experiment id: {id} (try --list)");
            std::process::exit(2);
        };
        println!("{}", table.render());
        if let Err(e) = table.write_csv(&out_dir) {
            eprintln!("warning: could not write CSV for {}: {e}", table.id);
        }
    }
}
