//! Wall-clock throughput of the completion path, recorded as a JSON
//! baseline so successive PRs have a perf trajectory.
//!
//! ```text
//! probe_bench --label sharded          # writes results/BENCH_probe_sharded.json
//! probe_bench --label baseline --ops 20000
//! ```
//!
//! Scenarios (all on the `ideal` network model so wall-clock time is
//! dominated by the engine's own locking and queueing, not modeled wire
//! latency):
//!
//! * `wait_local_deep_10k` — consume 10 000 queued local completions by rid
//!   in worst-case (reverse-arrival) order: quadratic on a scan-based
//!   queue, linear on an indexed one.
//! * `st_send_probe` — single-threaded post+probe ping: batches of eager
//!   sends drained by the consumer's probe loop.
//! * `mt_post_probe` — 4 producer threads hammering `put` + `wait_local`
//!   on one shared context: the many-workers-one-NIC pattern the sharded
//!   engine exists for.
//! * `drain_10k` — one rank drains a 10 000-event backlog through the
//!   probe API (single-event probes; the sharded engine also records
//!   `drain_10k_batch` through `probe_completions`).

use photon_core::{Completion, PhotonCluster, PhotonConfig, ProbeFlags};
use photon_fabric::NetworkModel;
use std::fmt::Write as _;
use std::time::Instant;

struct Entry {
    name: &'static str,
    ops: u64,
    ns: u128,
}

impl Entry {
    fn mops(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.ops as f64 / self.ns as f64 * 1000.0
        }
    }
}

fn cluster() -> PhotonCluster {
    PhotonCluster::new(2, NetworkModel::ideal(), PhotonConfig::default())
}

/// Queue `depth` local completions on rank 0 (chunked posts so the send CQ
/// never overflows), rids `1000..1000+depth` in arrival order.
fn fill_local_events(c: &PhotonCluster, depth: u64) {
    let p0 = c.rank(0);
    let p1 = c.rank(1);
    let src = p0.register_buffer(8).unwrap();
    let dst = p1.register_buffer(8).unwrap();
    let d = dst.descriptor();
    let mut posted = 0u64;
    while posted < depth {
        let chunk = 128.min(depth - posted);
        for i in 0..chunk {
            p0.put(1, &src, 0, 8, &d, 0, 1000 + posted + i).unwrap();
        }
        posted += chunk;
        p0.progress().unwrap();
    }
}

fn wait_local_deep(depth: u64) -> Entry {
    let c = cluster();
    fill_local_events(&c, depth);
    let p0 = c.rank(0);
    let t0 = Instant::now();
    // Reverse order: every wait is a worst-case lookup for a scanning queue.
    for rid in (0..depth).rev() {
        p0.wait_local(1000 + rid).unwrap();
    }
    Entry { name: "wait_local_deep_10k", ops: depth, ns: t0.elapsed().as_nanos() }
}

fn st_send_probe(ops: u64) -> Entry {
    let c = cluster();
    let p0 = c.rank(0);
    let p1 = c.rank(1);
    let payload = [7u8; 64];
    let batch = 16u64;
    let t0 = Instant::now();
    let mut done = 0u64;
    while done < ops {
        let n = batch.min(ops - done);
        for i in 0..n {
            p0.send(1, &payload, done + i).unwrap();
        }
        let mut got = 0u64;
        while got < n {
            if p1.poll_completion(ProbeFlags::Any).unwrap().is_some() {
                got += 1;
            }
        }
        done += n;
    }
    Entry { name: "st_send_probe", ops, ns: t0.elapsed().as_nanos() }
}

fn mt_post_probe(threads: u64, per_thread: u64) -> Entry {
    let c = cluster();
    let p0 = c.rank(0);
    let p1 = c.rank(1);
    let dst = p1.register_buffer(64).unwrap();
    let d = dst.descriptor();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let p0 = p0.clone();
            let src = p0.register_buffer(8).unwrap();
            s.spawn(move || {
                for i in 0..per_thread {
                    let rid = (t << 32) | i;
                    p0.put(1, &src, 0, 8, &d, 0, rid).unwrap();
                    p0.wait_local(rid).unwrap();
                }
            });
        }
    });
    Entry { name: "mt_post_probe", ops: threads * per_thread, ns: t0.elapsed().as_nanos() }
}

fn drain_10k(depth: u64) -> Entry {
    let c = cluster();
    fill_local_events(&c, depth);
    let p0 = c.rank(0);
    let t0 = Instant::now();
    let mut got = 0u64;
    while got < depth {
        if p0.poll_completion(ProbeFlags::Local).unwrap().is_some() {
            got += 1;
        }
    }
    Entry { name: "drain_10k", ops: depth, ns: t0.elapsed().as_nanos() }
}

#[cfg(feature = "batch-probe")]
fn drain_10k_batch(depth: u64) -> Entry {
    let c = cluster();
    fill_local_events(&c, depth);
    let p0 = c.rank(0);
    let mut buf: Vec<Completion> = Vec::with_capacity(256);
    let t0 = Instant::now();
    let mut got = 0u64;
    while got < depth {
        got += p0.poll_completions(ProbeFlags::Local, &mut buf, 256).unwrap() as u64;
        buf.clear();
    }
    Entry { name: "drain_10k_batch", ops: depth, ns: t0.elapsed().as_nanos() }
}

/// Min over `reps` runs: each scenario does a fixed amount of work, so the
/// minimum is the run least disturbed by scheduler noise (this matters on
/// small shared vCPUs, where single runs swing by tens of percent).
fn best_of(reps: u32, f: impl Fn() -> Entry) -> Entry {
    let mut best: Option<Entry> = None;
    for _ in 0..reps {
        let e = f();
        best = Some(match best {
            Some(b) if b.ns <= e.ns => b,
            _ => e,
        });
    }
    best.expect("reps >= 1")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = String::from("current");
    let mut ops = 50_000u64;
    let mut reps = 5u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args[i + 1].clone();
                i += 2;
            }
            "--ops" => {
                ops = args[i + 1].parse().expect("--ops takes a number");
                i += 2;
            }
            "--reps" => {
                reps = args[i + 1].parse().expect("--reps takes a number");
                i += 2;
            }
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }

    #[cfg_attr(not(feature = "batch-probe"), allow(unused_mut))]
    let mut entries = vec![
        best_of(reps, || wait_local_deep(10_000)),
        best_of(reps, || st_send_probe(ops)),
        best_of(reps, || mt_post_probe(4, ops / 4)),
        best_of(reps, || drain_10k(10_000)),
    ];
    #[cfg(feature = "batch-probe")]
    entries.push(best_of(reps, || drain_10k_batch(10_000)));
    // Keep the unused import warning-free when the feature is off.
    let _ = std::marker::PhantomData::<Completion>;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"probe_completion_engine\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"stat\": \"min_over_reps\",");
    let _ = writeln!(json, "  \"entries\": [");
    for (k, e) in entries.iter().enumerate() {
        let comma = if k + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ops\": {}, \"ns_total\": {}, \"mops_per_sec\": {:.4}}}{comma}",
            e.name, e.ops, e.ns, e.mops()
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    for e in &entries {
        println!("{:>20}  {:>9} ops  {:>12} ns  {:>8.3} Mops/s", e.name, e.ops, e.ns, e.mops());
    }
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("BENCH_probe_{label}.json"));
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {}", path.display());
}
